//! The fault/overload scenario suite: workload fixtures that push the
//! system past capacity in characteristic ways.
//!
//! Each scenario is a deterministic (trace, fault-injection) pair built
//! from a seed: flash crowds, diurnal arrival cycles, adversarial hotspot
//! drift, interactive-vs-batch mixes, and injected shard slowdowns. The
//! suite lives here — below the runtime — because a scenario is *workload
//! shape*, not policy: the sharded runtime consumes the trace through its
//! front door and converts the recommended [`ShardSlowdown`] windows into
//! its fault plan, and the single-engine simulation can replay the same
//! traces unsharded. Everything is a pure function of the
//! [`ScenarioScale`], so golden and determinism tests can pin scenario
//! runs exactly like any other fixture.

use liferaft_storage::{SimDuration, SimTime};
use liferaft_workload::arrivals::{diurnal_arrivals, flash_crowd_arrivals, poisson_arrivals};
use liferaft_workload::{TimedTrace, TraceGenerator, WorkloadConfig};

/// The scenario family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// A sudden arrival burst far beyond service capacity: low base rate,
    /// then a window at ~40× the sustainable rate.
    FlashCrowd,
    /// A sinusoidal day/night arrival cycle whose peak exceeds capacity.
    DiurnalCycle,
    /// Adversarial hotspot drift: the hot region rotates across the sky
    /// epoch by epoch, defeating any static placement.
    HotspotDrift,
    /// A bimodal interactive-vs-batch mix: many tiny exploratory probes
    /// racing a minority of exhaustive scans for the same shards.
    InteractiveBatchMix,
    /// A nominal workload plus an injected shard slowdown: one shard's
    /// virtual-time rate drops for an interval (see [`ShardSlowdown`]).
    ShardStall,
    /// A nominal workload plus a full shard outage: one shard freezes for a
    /// mid-trace interval (see [`ShardOutage`]) — the failover path must
    /// evacuate its buckets and re-deliver its lost work.
    ShardCrash,
    /// A nominal workload over degraded router↔shard links plus one slow
    /// shard: data-direction loss and delay force retransmits, a lossy ack
    /// path forces duplicate suppression, and the stalled shard is the
    /// straggler that hedging routes around (see [`LinkFault`]).
    LossyLink,
}

impl ScenarioKind {
    /// Every scenario, in canonical order.
    pub const ALL: [ScenarioKind; 7] = [
        ScenarioKind::FlashCrowd,
        ScenarioKind::DiurnalCycle,
        ScenarioKind::HotspotDrift,
        ScenarioKind::InteractiveBatchMix,
        ScenarioKind::ShardStall,
        ScenarioKind::ShardCrash,
        ScenarioKind::LossyLink,
    ];

    /// Stable machine-readable name (bench row keys, CI labels).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::FlashCrowd => "flash_crowd",
            ScenarioKind::DiurnalCycle => "diurnal_cycle",
            ScenarioKind::HotspotDrift => "hotspot_drift",
            ScenarioKind::InteractiveBatchMix => "interactive_batch_mix",
            ScenarioKind::ShardStall => "shard_stall",
            ScenarioKind::ShardCrash => "shard_crash",
            ScenarioKind::LossyLink => "lossy_link",
        }
    }
}

/// An injected shard slowdown: between `from` and `until`, every batch the
/// shard starts costs `factor ×` its modeled virtual time (a degraded disk,
/// a noisy neighbor, a failing replica). Plain indices rather than runtime
/// shard ids so the suite stays below the runtime crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSlowdown {
    /// Index of the slowed shard.
    pub shard: u32,
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub until: SimTime,
    /// Virtual-time cost multiplier (≥ 1.0).
    pub factor: f64,
}

/// An injected shard outage: between `down_at` (inclusive) and `up_at`
/// (exclusive) the shard is dead — it executes nothing and accepts nothing
/// (a crashed process, a lost node). At `up_at` it rejoins empty. Plain
/// indices rather than runtime shard ids so the suite stays below the
/// runtime crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutage {
    /// Index of the dead shard.
    pub shard: u32,
    /// Start of the outage (inclusive).
    pub down_at: SimTime,
    /// End of the outage (exclusive) — the shard rejoins here, cold.
    pub up_at: SimTime,
}

/// The direction of the router↔shard hop a [`LinkFault`] degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDirection {
    /// Router → shard: fragment deliveries (and retransmissions).
    ToShard,
    /// Shard → router: delivery acknowledgements.
    ToRouter,
}

/// An injected link-quality window: between `from` (inclusive) and `until`
/// (exclusive), every message crossing the router↔shard link of `shard` in
/// `direction` is dropped with probability `drop_prob`; a delivered message
/// is delayed by `delay + entries × delay_per_entry`, duplicated with
/// probability `dup_prob`, and reordered — held back an extra
/// `reorder_delay` behind later traffic — with probability `reorder_prob`.
/// Plain indices rather than runtime shard ids so the suite stays below the
/// runtime crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Index of the shard whose link degrades.
    pub shard: u32,
    /// Which direction of the hop is degraded.
    pub direction: LinkDirection,
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub until: SimTime,
    /// Per-message drop probability in `[0, 1]`.
    pub drop_prob: f64,
    /// Fixed one-way latency added to every delivered message.
    pub delay: SimDuration,
    /// Serialization latency per (object × bucket) entry carried.
    pub delay_per_entry: SimDuration,
    /// Probability a delivered message arrives twice in `[0, 1]`.
    pub dup_prob: f64,
    /// Probability a delivered message is reordered in `[0, 1]`.
    pub reorder_prob: f64,
    /// Extra delay a reordered message is held back by.
    pub reorder_delay: SimDuration,
}

/// Size/seed knobs of a scenario build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioScale {
    /// HTM level of the partition the trace targets.
    pub level: u8,
    /// Buckets in the partition.
    pub n_buckets: u32,
    /// Queries in the trace.
    pub n_queries: usize,
    /// Master seed; every derived stream re-seeds from it.
    pub seed: u64,
}

impl ScenarioScale {
    /// The test-suite scale: small enough to run every scenario × scheduler
    /// combination in seconds, busy enough to actually overload.
    pub fn small() -> Self {
        ScenarioScale {
            level: 10,
            n_buckets: 128,
            n_queries: 96,
            seed: 2009,
        }
    }
}

/// One built scenario: the timed trace plus recommended fault injection.
#[derive(Debug, Clone)]
pub struct ScenarioFixture {
    /// Which scenario this is.
    pub kind: ScenarioKind,
    /// The arrival-stamped trace.
    pub trace: TimedTrace,
    /// Injected shard slowdowns (empty for pure-overload scenarios).
    pub stalls: Vec<ShardSlowdown>,
    /// Injected shard outages (empty for every scenario but
    /// [`ScenarioKind::ShardCrash`]).
    pub outages: Vec<ShardOutage>,
    /// Injected link-fault windows (empty for every scenario but
    /// [`ScenarioKind::LossyLink`]).
    pub links: Vec<LinkFault>,
}

/// Builds a scenario fixture — a pure function of `(kind, scale)`.
pub fn build_scenario(kind: ScenarioKind, scale: &ScenarioScale) -> ScenarioFixture {
    let base = || {
        WorkloadConfig::paper_like(
            scale.level,
            scale.n_buckets,
            scale.n_queries,
            scale.seed ^ 0x5C,
        )
    };
    let n = scale.n_queries;
    let seed = scale.seed;
    let no_faults = || (Vec::new(), Vec::new(), Vec::new());
    let (cfg, arrivals, (stalls, outages, links)) = match kind {
        ScenarioKind::FlashCrowd => {
            // Quiet base load, then ~60% of the trace crammed into a burst
            // window at 40× the base rate.
            let cfg = base();
            let flash_at = SimDuration::from_secs(30);
            let flash_len = SimDuration::from_secs_f64(0.6 * n as f64 / 20.0);
            let arrivals = flash_crowd_arrivals(0.5, 20.0, flash_at, flash_len, n, seed ^ 0xF1A5);
            (cfg, arrivals, no_faults())
        }
        ScenarioKind::DiurnalCycle => {
            // Two day/night cycles; the daily peak exceeds capacity, the
            // trough drains the backlog.
            let cfg = base();
            let period = SimDuration::from_secs_f64(n as f64 / 1.3);
            let arrivals = diurnal_arrivals(0.2, 4.0, period, n, seed ^ 0xD1);
            (cfg, arrivals, no_faults())
        }
        ScenarioKind::HotspotDrift => {
            // The hot set rotates every epoch with no always-active core:
            // whatever placement a static map starts with goes cold.
            let mut cfg = base();
            cfg.epochs = 6;
            cfg.active_per_epoch = 2;
            cfg.always_active = 0;
            cfg.hotspots = 6;
            cfg.hotspot_zipf = 0.5;
            cfg.hotspot_fraction = 0.95;
            let arrivals = poisson_arrivals(4.0, n, seed ^ 0xD21F);
            (cfg, arrivals, no_faults())
        }
        ScenarioKind::InteractiveBatchMix => {
            // Bimodal sizes: tiny exploratory probes (interactive-class
            // under any sane threshold) against exhaustive scans (batch),
            // arriving together past capacity.
            let mut cfg = base();
            cfg.size_small = (1, 25);
            cfg.size_large = (800, 2_000);
            cfg.large_fraction = 0.35;
            cfg.hot_large_fraction = 0.35;
            let arrivals = poisson_arrivals(3.0, n, seed ^ 0x1B);
            (cfg, arrivals, no_faults())
        }
        ScenarioKind::ShardStall => {
            // Nominal load, but one shard runs 6× slow for a mid-trace
            // interval — the controller must route around its backlog.
            let cfg = base();
            let arrivals = poisson_arrivals(1.5, n, seed ^ 0x57A1);
            let stall_from = SimTime::ZERO + SimDuration::from_secs(15);
            let stall_until = SimTime::ZERO + SimDuration::from_secs_f64(15.0 + n as f64 / 1.5);
            let stalls = vec![ShardSlowdown {
                shard: 0,
                from: stall_from,
                until: stall_until,
                factor: 6.0,
            }];
            (cfg, arrivals, (stalls, Vec::new(), Vec::new()))
        }
        ScenarioKind::ShardCrash => {
            // A flash of load builds a pool-wide backlog, then one shard
            // dies outright mid-drain and stays dead until well past the
            // last arrival — everything queued there must be evacuated and
            // every arrival targeting it re-delivered elsewhere, because
            // nothing the shard holds runs before the trace is over. (An
            // outage that ends mid-drain is indistinguishable from a stall:
            // both rows lose the same capacity-seconds and the stranded
            // work still drains in parallel afterwards.)
            let cfg = base();
            let flash_at = SimDuration::from_secs(10);
            let flash_len = SimDuration::from_secs_f64(0.5 * n as f64 / 16.0);
            let arrivals = flash_crowd_arrivals(1.0, 16.0, flash_at, flash_len, n, seed ^ 0xDEAD);
            let down_at = SimTime::ZERO + SimDuration::from_secs(12);
            let last = arrivals.last().copied().unwrap_or(SimTime::ZERO);
            let up_at = last + SimDuration::from_secs(30);
            let outages = vec![ShardOutage {
                shard: 0,
                down_at,
                up_at,
            }];
            (cfg, arrivals, (Vec::new(), outages, Vec::new()))
        }
        ScenarioKind::LossyLink => {
            // Nominal load, one shard running slow behind flaky links: the
            // slow shard's data direction loses and delays fragments (so
            // retransmits fire), its ack path is lossy (so retransmits of
            // already-delivered fragments must be dedup-suppressed), and a
            // second shard's milder loss keeps the chaos from being
            // single-shard. The stalled shard is the straggler a hedging
            // policy routes around. Windows run well past the last arrival
            // so retransmit tails stay inside the faulty regime.
            let cfg = base();
            let arrivals = poisson_arrivals(1.5, n, seed ^ 0x1055);
            let span = SimDuration::from_secs_f64(2.5 * n as f64 / 1.5);
            let from = SimTime::ZERO;
            let until = SimTime::ZERO + span;
            let stalls = vec![ShardSlowdown {
                shard: 0,
                from: SimTime::ZERO + SimDuration::from_secs(5),
                until,
                factor: 5.0,
            }];
            let flaky = |shard, direction, drop_prob, dup_prob| LinkFault {
                shard,
                direction,
                from,
                until,
                drop_prob,
                delay: SimDuration::from_millis(150),
                delay_per_entry: SimDuration::from_micros(20),
                dup_prob,
                reorder_prob: 0.10,
                reorder_delay: SimDuration::from_millis(400),
            };
            let links = vec![
                flaky(0, LinkDirection::ToShard, 0.20, 0.05),
                flaky(0, LinkDirection::ToRouter, 0.20, 0.0),
                flaky(1, LinkDirection::ToShard, 0.05, 0.02),
            ];
            (cfg, arrivals, (stalls, Vec::new(), links))
        }
    };
    let trace = TraceGenerator::new(cfg).generate().with_arrivals(arrivals);
    ScenarioFixture {
        kind,
        trace,
        stalls,
        outages,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_builds_deterministically() {
        let scale = ScenarioScale::small();
        for kind in ScenarioKind::ALL {
            let a = build_scenario(kind, &scale);
            let b = build_scenario(kind, &scale);
            assert_eq!(a.trace.len(), scale.n_queries, "{}", kind.name());
            assert_eq!(
                a.trace.entries().len(),
                b.trace.entries().len(),
                "{}",
                kind.name()
            );
            for ((ta, qa), (tb, qb)) in a.trace.entries().iter().zip(b.trace.entries()) {
                assert_eq!(ta, tb, "{}", kind.name());
                assert_eq!(qa.id, qb.id, "{}", kind.name());
                assert_eq!(qa.objects.len(), qb.objects.len(), "{}", kind.name());
            }
            assert_eq!(a.stalls.len(), b.stalls.len());
            assert_eq!(a.outages, b.outages, "{}", kind.name());
            assert_eq!(a.links, b.links, "{}", kind.name());
        }
    }

    #[test]
    fn shard_crash_recommends_an_outage_window() {
        let fx = build_scenario(ScenarioKind::ShardCrash, &ScenarioScale::small());
        assert!(fx.stalls.is_empty());
        assert_eq!(fx.outages.len(), 1);
        let o = fx.outages[0];
        assert_eq!(o.shard, 0);
        assert!(o.up_at > o.down_at);
        // The window overlaps the arrival span, else it injects nothing.
        let last = fx.trace.entries().last().unwrap().0;
        assert!(o.down_at < last, "outage must start within the trace");
    }

    #[test]
    fn shard_stall_recommends_a_slowdown_window() {
        let fx = build_scenario(ScenarioKind::ShardStall, &ScenarioScale::small());
        assert_eq!(fx.stalls.len(), 1);
        let s = fx.stalls[0];
        assert_eq!(s.shard, 0);
        assert!(s.factor > 1.0);
        assert!(s.until > s.from);
        // The window overlaps the arrival span, else it injects nothing.
        let last = fx.trace.entries().last().unwrap().0;
        assert!(s.from < last, "stall must start within the trace");
    }

    #[test]
    fn lossy_link_recommends_flaky_windows_and_a_straggler() {
        let fx = build_scenario(ScenarioKind::LossyLink, &ScenarioScale::small());
        assert!(fx.outages.is_empty());
        assert_eq!(fx.stalls.len(), 1, "the straggler shard");
        assert!(!fx.links.is_empty());
        let last = fx.trace.entries().last().unwrap().0;
        for l in &fx.links {
            assert!(l.until > l.from);
            assert!(l.from < last, "link fault must start within the trace");
            assert!((0.0..=1.0).contains(&l.drop_prob));
            assert!((0.0..=1.0).contains(&l.dup_prob));
            assert!((0.0..=1.0).contains(&l.reorder_prob));
        }
        // Both directions are exercised: data loss forces retransmits, ack
        // loss forces duplicate suppression.
        assert!(fx
            .links
            .iter()
            .any(|l| l.direction == LinkDirection::ToShard && l.drop_prob > 0.0));
        assert!(fx
            .links
            .iter()
            .any(|l| l.direction == LinkDirection::ToRouter && l.drop_prob > 0.0));
    }

    #[test]
    fn names_are_stable_and_unique() {
        let mut names: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ScenarioKind::ALL.len());
    }
}
