//! Multi-site federation: serial cross-match chains across archives.
//!
//! SkyQuery "produces a serial, left-deep join plan for each query that
//! joins each archive serially in which intermediate join results are
//! shipped from database to database until all archives are cross-matched"
//! (Section 3). The paper evaluates a single site (SDSS) by replaying the
//! work arriving there; this module implements the full chain as an
//! extension: each site runs its *own* LifeRaft scheduler independently
//! ("our solution allows individual sites in a cluster or federation to
//! batch queries independently", Section 6), and a query's matches at site
//! `k` become its cross-match object list at site `k+1`, arriving when site
//! `k` completed it.
//!
//! Queries whose intermediate result becomes empty leave the chain early —
//! the cross-match semantics of a probabilistic join with no surviving
//! candidates.

use liferaft_catalog::Catalog;
use liferaft_core::Scheduler;
use liferaft_join::sweep::sweep_join;
use liferaft_metrics::Summary;
use liferaft_query::{CrossMatchQuery, QueryId, QueryPreProcessor, QueueEntry};
use liferaft_storage::SimTime;
use liferaft_workload::{TimedTrace, Trace};

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::report::RunReport;

/// The outcome of a federated chain run.
#[derive(Debug, Clone)]
pub struct FederationReport {
    /// Per-site run reports, in chain order.
    pub sites: Vec<RunReport>,
    /// Per-site count of queries that *entered* the site.
    pub entered: Vec<usize>,
    /// Per-site count of queries whose results became empty there.
    pub dropped: Vec<usize>,
    /// End-to-end response times (arrival at site 0 → completion at the last
    /// site) in seconds, for queries that survived the whole chain.
    pub end_to_end: Summary,
}

impl FederationReport {
    /// Queries that produced a non-empty final cross-match.
    pub fn survivors(&self) -> usize {
        self.end_to_end.count()
    }
}

/// Runs a serial cross-match chain over `sites`, scheduling each site with
/// the scheduler produced by `mk_scheduler(site_index)`.
///
/// The trace's object bounding boxes must be at the first site's partition
/// level; subsequent sites re-index intermediate results at their own level.
///
/// # Panics
/// Panics if `sites` is empty.
pub fn run_chain(
    sites: &[&dyn Catalog],
    trace: &TimedTrace,
    mk_scheduler: &mut dyn FnMut(usize) -> Box<dyn Scheduler>,
    config: SimConfig,
) -> FederationReport {
    assert!(!sites.is_empty(), "a federation needs at least one site");
    let mut reports = Vec::with_capacity(sites.len());
    let mut entered = Vec::with_capacity(sites.len());
    let mut dropped = Vec::with_capacity(sites.len());

    // Arrival time at site 0 per query, for end-to-end accounting.
    let origin: std::collections::HashMap<QueryId, SimTime> =
        trace.entries().iter().map(|(t, q)| (q.id, *t)).collect();

    let mut current = trace.clone();
    let mut final_completions: Vec<(QueryId, SimTime)> = Vec::new();
    for (k, site) in sites.iter().enumerate() {
        entered.push(current.len());
        // Timing: replay this site's trace under its own scheduler.
        let mut scheduler = mk_scheduler(k);
        let report = Simulation::new(*site, config).run(&current, scheduler.as_mut());
        let completions: std::collections::HashMap<QueryId, SimTime> = report
            .outcomes
            .iter()
            .map(|o| (o.query, o.completion))
            .collect();

        // Results: the scheduler-independent cross-match output per query.
        let next_level = sites.get(k + 1).map(|s| s.partition().level());
        let mut next: Vec<(SimTime, CrossMatchQuery)> = Vec::new();
        let mut dropped_here = 0usize;
        for (_, query) in current.entries() {
            let matches = site_matches(*site, query);
            let completion = completions
                .get(&query.id)
                .copied()
                .expect("every delivered query completes");
            if matches.is_empty() {
                dropped_here += 1;
                continue;
            }
            if let Some(level) = next_level {
                let objects = matches
                    .iter()
                    .map(|&(pos, radius)| liferaft_query::MatchObject::new(pos, radius, level))
                    .collect();
                next.push((
                    completion,
                    CrossMatchQuery::new(query.id, objects, query.predicate),
                ));
            } else {
                final_completions.push((query.id, completion));
            }
        }
        dropped.push(dropped_here);
        reports.push(report);

        if let Some(level) = next_level {
            next.sort_by_key(|(t, _)| *t);
            let (times, queries): (Vec<SimTime>, Vec<CrossMatchQuery>) = next.into_iter().unzip();
            current = Trace::new(level, queries).with_arrivals(times);
        }
    }

    let end_to_end = Summary::from_samples(
        final_completions
            .iter()
            .map(|(q, done)| done.since(origin[q]).as_secs_f64())
            .collect(),
    );
    FederationReport {
        sites: reports,
        entered,
        dropped,
        end_to_end,
    }
}

/// The deterministic (scheduler-independent) cross-match result of one query
/// at one site: deduplicated matched catalog positions with the query's
/// error radii.
fn site_matches(site: &dyn Catalog, query: &CrossMatchQuery) -> Vec<(liferaft_htm::Vec3, f64)> {
    let pre = QueryPreProcessor::new(site.partition());
    let mut matched: Vec<(liferaft_htm::HtmId, liferaft_htm::Vec3, f64)> = Vec::new();
    for item in pre.preprocess(query) {
        let objects = site.bucket_objects(item.bucket);
        let entries: Vec<QueueEntry> = item
            .object_indices
            .iter()
            .map(|&oi| {
                let obj = &query.objects[oi as usize];
                QueueEntry {
                    query: query.id,
                    object_index: oi,
                    pos: obj.pos,
                    radius: obj.radius,
                    bbox: obj.bounding_range(),
                    enqueued_at: SimTime::ZERO,
                }
            })
            .collect();
        let out = sweep_join(&objects, &entries);
        for pair in &out.pairs {
            let cat = &objects[pair.catalog_index as usize];
            if query.predicate.accepts_mag(cat.mag) {
                let radius = query.objects[pair.object_index as usize].radius;
                matched.push((cat.htm, cat.pos, radius));
            }
        }
    }
    // A catalog object matched by several workload objects ships once.
    matched.sort_by_key(|&(htm, _, _)| htm);
    matched.dedup_by_key(|&mut (htm, _, _)| htm);
    matched.into_iter().map(|(_, pos, r)| (pos, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_catalog::{generate::uniform_sky, MaterializedCatalog};
    use liferaft_core::{LifeRaftScheduler, MetricParams, NoShareScheduler};
    use liferaft_query::Predicate;
    use liferaft_workload::arrivals::uniform_arrivals;

    const LEVEL: u8 = 8;

    /// Two archives observing the *same* sky (so cross-matches survive),
    /// with different seeds jittering magnitudes.
    fn two_sites() -> (MaterializedCatalog, MaterializedCatalog) {
        let sky = uniform_sky(4_000, LEVEL, 7);
        let a = MaterializedCatalog::build(&sky, LEVEL, 200, 4096);
        // Second archive: identical positions (same survey footprint).
        let b = MaterializedCatalog::build(&sky, LEVEL, 100, 4096);
        (a, b)
    }

    fn anchored_trace(cat: &MaterializedCatalog, n: usize) -> Trace {
        let queries: Vec<CrossMatchQuery> = (0..n)
            .map(|i| {
                let objs = cat.bucket_objects(liferaft_storage::BucketId((i % 4) as u32 * 3));
                let positions: Vec<_> = objs.iter().step_by(15).map(|o| o.pos).collect();
                CrossMatchQuery::from_positions(
                    QueryId(i as u64),
                    &positions,
                    1e-4,
                    LEVEL,
                    Predicate::All,
                )
            })
            .collect();
        Trace::new(LEVEL, queries)
    }

    #[test]
    fn chain_completes_and_accounts_end_to_end() {
        let (a, b) = two_sites();
        let trace = anchored_trace(&a, 8);
        let timed = trace.with_arrivals(uniform_arrivals(0.5, 8));
        let sites: Vec<&dyn Catalog> = vec![&a, &b];
        let report = run_chain(
            &sites,
            &timed,
            &mut |_| Box::new(LifeRaftScheduler::greedy(MetricParams::paper())),
            SimConfig::paper(),
        );
        assert_eq!(report.sites.len(), 2);
        assert_eq!(report.entered[0], 8);
        // Anchored queries always match at site 0 (identical sky).
        assert_eq!(report.dropped[0], 0);
        assert_eq!(report.entered[1], 8);
        assert!(report.survivors() > 0);
        // End-to-end responses dominate each site's own response.
        let site0_last = report.sites[0]
            .outcomes
            .iter()
            .map(|o| o.completion.as_secs_f64())
            .fold(0.0, f64::max);
        assert!(report.end_to_end.max() >= report.sites[1].response.min());
        assert!(report.sites[1].makespan_s >= site0_last * 0.5);
    }

    #[test]
    fn second_site_arrivals_follow_first_site_completions() {
        let (a, b) = two_sites();
        let trace = anchored_trace(&a, 5);
        let timed = trace.with_arrivals(uniform_arrivals(1.0, 5));
        let sites: Vec<&dyn Catalog> = vec![&a, &b];
        let report = run_chain(
            &sites,
            &timed,
            &mut |_| Box::new(NoShareScheduler::new()),
            SimConfig::paper(),
        );
        // Site 1 cannot start a query before site 0 finished it, so site 1's
        // makespan is at least site 0's first completion plus its own work.
        let first_done_site0 = report.sites[0]
            .outcomes
            .iter()
            .map(|o| o.completion.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        assert!(report.sites[1].makespan_s > first_done_site0);
        // End-to-end is at least the max of per-site responses.
        assert!(report.end_to_end.mean() >= report.sites[0].response.mean());
    }

    #[test]
    fn queries_without_matches_leave_the_chain() {
        let (a, b) = two_sites();
        // A query far from any catalog object (tiny radius at a pole gap).
        let mut queries = anchored_trace(&a, 3).queries().to_vec();
        queries.push(CrossMatchQuery::from_positions(
            QueryId(99),
            &[liferaft_htm::Vec3::from_radec_deg(12.3456, 4.5678)],
            1e-9,
            LEVEL,
            Predicate::All,
        ));
        let trace = Trace::new(LEVEL, queries);
        let timed = trace.with_arrivals(uniform_arrivals(1.0, 4));
        let sites: Vec<&dyn Catalog> = vec![&a, &b];
        let report = run_chain(
            &sites,
            &timed,
            &mut |_| Box::new(LifeRaftScheduler::greedy(MetricParams::paper())),
            SimConfig::paper(),
        );
        assert_eq!(report.entered[0], 4);
        assert!(
            report.dropped[0] >= 1,
            "the orphan query must drop at site 0"
        );
        assert_eq!(report.entered[1], 4 - report.dropped[0]);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_federation_rejected() {
        let trace = Trace::new(LEVEL, vec![]).with_arrivals(vec![]);
        run_chain(
            &[],
            &trace,
            &mut |_| Box::new(NoShareScheduler::new()),
            SimConfig::paper(),
        );
    }
}
