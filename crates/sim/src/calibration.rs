//! Offline calibration of throughput/response trade-off curves.
//!
//! "Currently, we determine trade-off curves offline by manually varying
//! workload saturation using a representative workload" (Section 4). This
//! module automates that procedure: replay one trace at a grid of
//! saturations × α values, collect (throughput, mean response) per point,
//! and assemble the [`TradeoffTable`] the adaptive controller consumes.

use liferaft_catalog::Catalog;
use liferaft_core::adaptive::TradeoffPoint;
use liferaft_core::{AgingMode, LifeRaftScheduler, MetricParams, TradeoffCurve, TradeoffTable};
use liferaft_workload::arrivals::poisson_arrivals;
use liferaft_workload::Trace;

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::report::RunReport;

/// Replays `trace` at every saturation × α combination and returns the
/// calibrated table plus the raw reports (for figure generation).
///
/// Arrival processes are seeded deterministically per saturation so that
/// every α at one saturation sees the *same* arrival sequence — the paper's
/// controlled comparison.
pub fn calibrate_tradeoff_table<C: Catalog>(
    catalog: &C,
    trace: &Trace,
    saturations_qps: &[f64],
    alphas: &[f64],
    config: SimConfig,
    arrival_seed: u64,
) -> (TradeoffTable, Vec<(f64, Vec<RunReport>)>) {
    assert!(!saturations_qps.is_empty(), "need at least one saturation");
    assert!(!alphas.is_empty(), "need at least one α");
    let sim = Simulation::new(catalog, config);
    let params = MetricParams::from_cost(&config.cost);

    let mut curves = Vec::with_capacity(saturations_qps.len());
    let mut all_reports = Vec::with_capacity(saturations_qps.len());
    for (si, &sat) in saturations_qps.iter().enumerate() {
        let arrivals = poisson_arrivals(sat, trace.len(), arrival_seed ^ (si as u64) << 32);
        let timed = trace.with_arrivals(arrivals);
        let mut points = Vec::with_capacity(alphas.len());
        let mut reports = Vec::with_capacity(alphas.len());
        for &alpha in alphas {
            let mut scheduler = LifeRaftScheduler::new(params, AgingMode::Normalized, alpha);
            let report = sim.run(&timed, &mut scheduler);
            points.push(TradeoffPoint {
                alpha,
                throughput_qps: report.throughput_qps,
                mean_response_s: report.mean_response_s(),
            });
            reports.push(report);
        }
        curves.push(TradeoffCurve::new(sat, points));
        all_reports.push((sat, reports));
    }
    (TradeoffTable::new(curves), all_reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_catalog::{generate::uniform_sky, MaterializedCatalog};
    use liferaft_workload::{TraceGenerator, WorkloadConfig};

    const LEVEL: u8 = 8;

    #[test]
    fn calibration_produces_one_curve_per_saturation() {
        let sky = uniform_sky(2_000, LEVEL, 1);
        let cat = MaterializedCatalog::build(&sky, LEVEL, 100, 4096);
        let mut cfg = WorkloadConfig::paper_like(LEVEL, 20, 30, 5);
        cfg.size_small = (4, 8);
        cfg.size_large = (10, 20);
        let trace = TraceGenerator::new(cfg).generate();

        let (table, reports) = calibrate_tradeoff_table(
            &cat,
            &trace,
            &[0.05, 0.5],
            &[0.0, 1.0],
            SimConfig::paper(),
            42,
        );
        assert_eq!(table.curves().len(), 2);
        assert_eq!(reports.len(), 2);
        for (sat, runs) in &reports {
            assert_eq!(runs.len(), 2, "two α points at saturation {sat}");
            for r in runs {
                assert_eq!(r.queries, 30);
            }
        }
        // Selecting α must be possible at any tolerance.
        let a = table.select_alpha(0.05, 0.2);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    #[should_panic(expected = "at least one saturation")]
    fn empty_saturations_rejected() {
        let sky = uniform_sky(500, LEVEL, 1);
        let cat = MaterializedCatalog::build(&sky, LEVEL, 100, 4096);
        let trace = Trace::new(LEVEL, vec![]);
        calibrate_tradeoff_table(&cat, &trace, &[], &[0.0], SimConfig::paper(), 1);
    }
}
