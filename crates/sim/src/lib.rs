//! Discrete-event simulation of a LifeRaft-scheduled archive.
//!
//! The paper measures a real SQL Server installation; we reproduce the
//! experiments with a deterministic virtual-time simulation whose costs come
//! from the same constants the paper reports (`Tb = 1.2 s`, `Tm = 0.13 ms`,
//! a 20-bucket LRU cache, and random-I/O probe costs for the hybrid join).
//! Everything *except* the clock is real: queries are pre-processed through
//! the actual HTM machinery, workload queues are the actual scheduler
//! inputs, and (optionally) every batch executes a real cross-match join
//! whose results are identical across schedulers.
//!
//! # Model
//!
//! One executor (the database server) processes one batch at a time — a
//! batch being a bucket read plus the cross-match of queued requests against
//! it. Queries arrive by an open-loop arrival process ([`TimedTrace`]),
//! enqueue their per-bucket sub-queries immediately, and complete when their
//! last sub-query is serviced. Scheduling decisions happen at batch
//! boundaries, exactly as in the paper's architecture (Figure 3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod config;
pub mod engine;
pub mod federation;
pub mod report;
pub mod scenario;

pub use calibration::calibrate_tradeoff_table;
pub use config::SimConfig;
pub use engine::{EngineCore, MigratedBucket, Simulation};
pub use federation::{run_chain, FederationReport};
pub use liferaft_workload::TimedTrace;
pub use report::RunReport;
pub use scenario::{
    build_scenario, LinkDirection, LinkFault, ScenarioFixture, ScenarioKind, ScenarioScale,
    ShardOutage, ShardSlowdown,
};
