//! Per-run results: everything the figures report.

use liferaft_metrics::Summary;
use liferaft_query::tracker::QueryOutcome;
use liferaft_storage::cache::CacheStats;
use liferaft_storage::IoStats;

/// The measured outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheduler name (figure row label).
    pub scheduler: String,
    /// Queries completed.
    pub queries: usize,
    /// First arrival to last completion, in seconds of virtual time.
    pub makespan_s: f64,
    /// Query throughput: queries / makespan (Figures 7a, 8a).
    pub throughput_qps: f64,
    /// Response-time distribution in seconds (Figures 7b, 8b).
    pub response: Summary,
    /// Bucket cache statistics (the Section 6 cache-hit comparison).
    pub cache: CacheStats,
    /// Disk-level accounting.
    pub io: IoStats,
    /// Batches executed.
    pub batches: u64,
    /// Batches evaluated by sequential scan.
    pub scan_batches: u64,
    /// Batches evaluated by indexed join.
    pub indexed_batches: u64,
    /// Workload objects serviced (queue entries consumed).
    pub serviced_entries: u64,
    /// Workload objects serviced from a cached bucket.
    pub cache_serviced_entries: u64,
    /// Mixed-α decisions resolved by the frontier threshold scan (0 for
    /// policies without one) — see `liferaft_core::DecisionStats`.
    pub frontier_picks: u64,
    /// Mixed-α decisions that fell back to the full streamed scan.
    pub fallback_picks: u64,
    /// Cross-match result pairs after predicates (0 in cost-only runs).
    pub total_matches: u64,
    /// Longest wait observed by the starvation monitor, milliseconds.
    pub max_wait_ms: f64,
    /// Per-query outcomes in completion order.
    pub outcomes: Vec<QueryOutcome>,
}

impl RunReport {
    /// Mean response time in seconds.
    pub fn mean_response_s(&self) -> f64 {
        self.response.mean()
    }

    /// Coefficient of variation of response times (Figure 7b's second series).
    pub fn response_cov(&self) -> f64 {
        self.response.coefficient_of_variation()
    }

    /// Mean workload objects consumed per batch (the batching win).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.serviced_entries as f64 / self.batches as f64
        }
    }

    /// Fraction of serviced requests that hit the bucket cache
    /// ("40% and 7% of requests serviced from the cache", Section 6).
    pub fn cache_service_fraction(&self) -> f64 {
        if self.serviced_entries == 0 {
            0.0
        } else {
            self.cache_serviced_entries as f64 / self.serviced_entries as f64
        }
    }

    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<22} tput={:.4} q/s  mean_rt={:>8.1}s  p90={:>8.1}s  cov={:.2}  batches={}  cache={:.0}%",
            self.scheduler,
            self.throughput_qps,
            self.mean_response_s(),
            self.response.percentile(90.0),
            self.response_cov(),
            self.batches,
            self.cache_service_fraction() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            scheduler: "test".into(),
            queries: 10,
            makespan_s: 100.0,
            throughput_qps: 0.1,
            response: Summary::from_samples(vec![1.0, 2.0, 3.0]),
            cache: CacheStats::default(),
            io: IoStats::default(),
            batches: 4,
            scan_batches: 3,
            indexed_batches: 1,
            serviced_entries: 100,
            cache_serviced_entries: 40,
            frontier_picks: 3,
            fallback_picks: 1,
            total_matches: 0,
            max_wait_ms: 0.0,
            outcomes: vec![],
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert_eq!(r.mean_response_s(), 2.0);
        assert_eq!(r.mean_batch_size(), 25.0);
        assert!((r.cache_service_fraction() - 0.4).abs() < 1e-12);
        assert!(r.response_cov() > 0.0);
    }

    #[test]
    fn zero_batches_edge() {
        let mut r = report();
        r.batches = 0;
        r.serviced_entries = 0;
        assert_eq!(r.mean_batch_size(), 0.0);
        assert_eq!(r.cache_service_fraction(), 0.0);
    }

    #[test]
    fn summary_line_mentions_scheduler() {
        assert!(report().summary_line().contains("test"));
    }
}
