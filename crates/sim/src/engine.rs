//! The discrete-event simulation engine.
//!
//! The batch-execution machinery lives in [`EngineCore`], a stepped state
//! machine over one workload table + bucket cache + tracker. `Simulation`
//! drives one core with a simple arrival/decision loop; the sharded runtime
//! (`liferaft-runtime`) drives one core *per shard* under its own event
//! merge, so both execute bit-identical batch semantics by construction.

use std::collections::{BTreeSet, HashMap};

use liferaft_catalog::Catalog;
use liferaft_core::{
    BatchScope, BatchSpec, DecisionStats, IndexedSchedulerView, Scheduler, StarvationMonitor,
};
use liferaft_join::{hybrid, JoinStrategy};
use liferaft_metrics::Summary;
use liferaft_query::{
    CrossMatchQuery, Predicate, QueryId, QueryPreProcessor, QueryTracker, QueueEntry, WorkItem,
    WorkloadTable,
};
use liferaft_storage::{BucketCache, BucketId, IoStats, SimDuration, SimTime};
use liferaft_telemetry::{Event, EventKind, NullSink, TelemetrySink};
use liferaft_workload::TimedTrace;

use crate::config::SimConfig;
use crate::report::RunReport;

/// A simulation of one archive under one catalog and configuration.
///
/// `run` is reentrant: each call replays a trace from scratch with fresh
/// state, so the same `Simulation` drives whole parameter sweeps.
#[derive(Debug, Clone)]
pub struct Simulation<'a, C: Catalog + ?Sized> {
    catalog: &'a C,
    config: SimConfig,
}

impl<'a, C: Catalog + ?Sized> Simulation<'a, C> {
    /// Creates a simulation over `catalog` with the given configuration.
    pub fn new(catalog: &'a C, config: SimConfig) -> Self {
        config.validate();
        Simulation { catalog, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replays `trace` under `scheduler` and reports the outcome.
    ///
    /// # Panics
    /// Panics if the scheduler violates its contract (refuses to pick while
    /// work is pending, picks an empty bucket, or picks a non-candidate) —
    /// all of these are policy bugs that must fail loudly, not skew results.
    pub fn run(&self, trace: &TimedTrace, scheduler: &mut dyn Scheduler) -> RunReport {
        self.run_with_sink(trace, scheduler, Box::new(NullSink)).0
    }

    /// [`run`](Self::run) with a flight-recorder sink attached: the engine
    /// records typed events at every instrumented seam (arrivals, decisions,
    /// batch boundaries, cache residency churn, completions) and returns the
    /// captured stream alongside the report. [`run`](Self::run) is this with
    /// a [`NullSink`] — the same code path, so recorded and unrecorded runs
    /// execute identical batch semantics.
    pub fn run_with_sink(
        &self,
        trace: &TimedTrace,
        scheduler: &mut dyn Scheduler,
        sink: Box<dyn TelemetrySink>,
    ) -> (RunReport, Vec<Event>) {
        let mut core = EngineCore::new(self.catalog, self.config);
        core.set_sink(sink);
        let arrivals = trace.entries();
        let mut next_arrival = 0usize;
        let mut now = SimTime::ZERO;

        loop {
            // Deliver every arrival due by `now` (ages reference the true
            // arrival instants, not the batch boundary).
            while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= now {
                let (at, query) = &arrivals[next_arrival];
                core.deliver(query, *at);
                scheduler.on_query_arrival(*at);
                next_arrival += 1;
            }

            if core.is_idle() {
                if next_arrival < arrivals.len() {
                    // Idle until the next arrival.
                    now = arrivals[next_arrival].0;
                    continue;
                }
                break; // drained everything
            }

            now += core.decide_and_execute(scheduler, now);
        }

        assert!(
            core.all_complete(),
            "simulation ended with incomplete queries"
        );
        let events = core.take_events();
        (core.into_report(scheduler, trace.len()), events)
    }
}

/// The portable state of one bucket leaving an [`EngineCore`] — the elastic
/// runtime's migration payload. Carries the bucket's queued entries (with
/// their original `enqueued_at` stamps, so ages survive the move), the
/// per-query bookkeeping the destination core needs to adopt them, and the
/// bucket's cache residency at the source.
#[derive(Debug, Clone)]
pub struct MigratedBucket {
    /// The migrating bucket.
    pub bucket: BucketId,
    /// Its queued entries, ages preserved.
    pub entries: Vec<QueueEntry>,
    /// One row per distinct query in `entries`: the query, how many of its
    /// assignments are migrating, its original arrival, and its join
    /// predicate (populated only when the source executes real joins).
    pub queries: Vec<(QueryId, u64, SimTime, Option<Predicate>)>,
    /// Whether the bucket was cache-resident at the source when extracted.
    pub was_resident: bool,
}

impl MigratedBucket {
    /// Number of queued entries in the payload.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the payload carries no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The batch-execution core: one workload table, bucket cache, tracker, and
/// starvation monitor, advanced one scheduling decision at a time.
///
/// The core owns no clock and no arrival process — callers deliver work
/// ([`deliver`](Self::deliver) / [`deliver_items`](Self::deliver_items)) and
/// ask for decisions ([`decide_and_execute`](Self::decide_and_execute)) at
/// times of their choosing. `Simulation` wraps one core in a serial loop;
/// the sharded runtime runs one core per shard and merges their event
/// streams, reusing this exact execution semantics per shard.
pub struct EngineCore<'a, C: Catalog + ?Sized> {
    catalog: &'a C,
    config: SimConfig,
    pre: QueryPreProcessor<'a>,
    table: WorkloadTable,
    tracker: QueryTracker,
    cache: BucketCache,
    io: IoStats,
    /// Buckets still holding queued entries, per in-flight query.
    per_query: HashMap<QueryId, BTreeSet<BucketId>>,
    /// Predicates of in-flight queries (populated only when joins execute).
    predicates: HashMap<QueryId, Predicate>,
    starvation: StarvationMonitor,
    /// Scratch: entries drained by the batch in flight.
    batch_entries: Vec<QueueEntry>,
    /// Scratch: query IDs of the batch in flight, for completion grouping.
    completion_scratch: Vec<QueryId>,
    batches: u64,
    scan_batches: u64,
    indexed_batches: u64,
    serviced_entries: u64,
    cache_serviced_entries: u64,
    total_matches: u64,
    /// The flight recorder ([`NullSink`] by default: every emission site
    /// guards on `sink.enabled()`, so a disabled core executes the exact
    /// un-instrumented instruction stream).
    sink: Box<dyn TelemetrySink>,
}

impl<'a, C: Catalog + ?Sized> EngineCore<'a, C> {
    /// A fresh core over `catalog` with the given configuration.
    pub fn new(catalog: &'a C, config: SimConfig) -> Self {
        config.validate();
        let partition = catalog.partition();
        EngineCore {
            catalog,
            config,
            pre: QueryPreProcessor::new(partition),
            table: WorkloadTable::new(partition.num_buckets())
                .with_object_counts(|b| partition.meta(b).object_count),
            tracker: QueryTracker::new(),
            cache: BucketCache::new(config.cache_buckets),
            io: IoStats::new(),
            per_query: HashMap::new(),
            predicates: HashMap::new(),
            starvation: StarvationMonitor::new(),
            batch_entries: Vec::new(),
            completion_scratch: Vec::new(),
            batches: 0,
            scan_batches: 0,
            indexed_batches: 0,
            serviced_entries: 0,
            cache_serviced_entries: 0,
            total_matches: 0,
            sink: Box::new(NullSink),
        }
    }

    /// Attaches a flight-recorder sink (replacing the default [`NullSink`]).
    /// Events are stamped with `shard = 0`; a multi-core driver rewrites the
    /// shard id when it drains the stream.
    pub fn set_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sink = sink;
    }

    /// Drains the events recorded so far (record order), leaving the sink
    /// recording.
    pub fn take_events(&mut self) -> Vec<Event> {
        self.sink.take_events()
    }

    /// Events the sink has discarded (bounded sinks only).
    pub fn telemetry_dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// Preprocesses and enqueues one arriving query in full.
    pub fn deliver(&mut self, query: &CrossMatchQuery, at: SimTime) {
        let items = self.pre.preprocess(query);
        self.deliver_items(query, &items, at);
    }

    /// Enqueues a pre-routed subset of a query's work items (all belonging
    /// to `query`) — the sharded runtime's per-fragment delivery path. The
    /// tracker registers exactly the delivered assignments, so a query split
    /// across several cores completes *per core* when its local fragment
    /// drains.
    pub fn deliver_items(&mut self, query: &CrossMatchQuery, items: &[WorkItem], at: SimTime) {
        let assignments: u64 = items.iter().map(|i| i.len() as u64).sum();
        if self.tracker.arrival_of(query.id).is_some() {
            // A migration already carried part of this query here; the
            // fragment tops up the in-flight record (same arrival instant —
            // transferred work keeps the query's original arrival).
            if assignments > 0 {
                self.tracker.transfer_in(query.id, assignments, at);
            }
        } else {
            self.tracker.register(query.id, assignments, at);
        }
        if self.sink.enabled() {
            self.sink.record(
                at,
                EventKind::QueryArrival {
                    query: query.id.0,
                    assignments,
                },
            );
        }
        if assignments == 0 {
            return;
        }
        let buckets: BTreeSet<BucketId> = items.iter().map(|i| i.bucket).collect();
        self.per_query.entry(query.id).or_default().extend(buckets);
        if self.config.execute_joins {
            self.predicates.insert(query.id, query.predicate);
        }
        for item in items {
            self.table.enqueue(item, query, at);
        }
    }

    /// True if no work is queued anywhere.
    pub fn is_idle(&self) -> bool {
        self.table.is_idle()
    }

    /// Total queued (object × bucket) entries — the backpressure signal.
    pub fn total_queued(&self) -> u64 {
        self.table.total_queued()
    }

    /// True when every delivered query has completed.
    pub fn all_complete(&self) -> bool {
        self.tracker.all_complete()
    }

    /// The per-query lifecycle tracker (completions appear in push order).
    pub fn tracker(&self) -> &QueryTracker {
        &self.tracker
    }

    /// The workload table — read-only, for load inspection (per-bucket queue
    /// depths via [`WorkloadTable::non_empty_buckets`] + `queue(b).len()`).
    pub fn workload(&self) -> &WorkloadTable {
        &self.table
    }

    /// Entries serviced so far — the controller's throughput signal.
    pub fn serviced_entries(&self) -> u64 {
        self.serviced_entries
    }

    /// Number of cache-resident buckets — the controller's residency signal.
    pub fn resident_buckets(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cache-resident bucket — the crash model's residency
    /// loss. A shard that dies loses its page cache whatever happens to its
    /// queued work, so outage injection wipes residency at the window start
    /// in every configuration (failover on or off). Evictions go through
    /// the residency mutation log one bucket at a time, so the candidate
    /// index resynchronizes incrementally exactly as it does after normal
    /// cache churn. Returns the number of buckets dropped.
    pub fn wipe_residency(&mut self) -> usize {
        let resident: Vec<BucketId> = self.cache.resident_lru_order().collect();
        for b in &resident {
            self.cache.remove(*b);
        }
        resident.len()
    }

    /// Rips one bucket's queued state out of this core for migration: drains
    /// its entries (ages preserved), transfers the affected queries' pending
    /// assignments out of the tracker at virtual time `at`, and detaches the
    /// bucket from per-query bookkeeping. With `evict_residency` the bucket
    /// also leaves the cache (its residency travels in the payload);
    /// otherwise residency is only observed, not disturbed.
    ///
    /// A query whose assignments all leave but which already serviced some
    /// entries here closes locally with `completion = at` — migration ends
    /// its story on this core.
    pub fn extract_bucket(
        &mut self,
        bucket: BucketId,
        at: SimTime,
        evict_residency: bool,
    ) -> MigratedBucket {
        let mut entries = Vec::new();
        self.table.extract_bucket(bucket, &mut entries);
        // Entries drain grouped by query (directory order), so distinct
        // queries form contiguous runs.
        let mut queries: Vec<(QueryId, u64, SimTime, Option<Predicate>)> = Vec::new();
        for e in &entries {
            match queries.last_mut() {
                Some(row) if row.0 == e.query => row.1 += 1,
                _ => {
                    debug_assert!(
                        queries.iter().all(|row| row.0 != e.query),
                        "bucket drain interleaved query {} across runs",
                        e.query
                    );
                    let arrival = self
                        .tracker
                        .arrival_of(e.query)
                        .expect("queued entry for a query the tracker does not know");
                    queries.push((e.query, 1, arrival, self.predicates.get(&e.query).copied()));
                }
            }
        }
        for &(q, n, _, _) in &queries {
            self.tracker.transfer_out(q, n, at);
            if let Some(set) = self.per_query.get_mut(&q) {
                set.remove(&bucket);
                if set.is_empty() {
                    self.per_query.remove(&q);
                }
            }
        }
        let was_resident = if evict_residency {
            self.cache.remove(bucket)
        } else {
            self.cache.contains(bucket)
        };
        MigratedBucket {
            bucket,
            entries,
            queries,
            was_resident,
        }
    }

    /// Adopts a migrated bucket: re-opens (or tops up) the affected queries
    /// at their original arrivals, merges the entries into the local table
    /// with ages intact, and — when `warm_residency` and the bucket was
    /// resident at its source — inserts it into the local cache (normal LRU
    /// effects apply, so this may evict another bucket).
    pub fn absorb_bucket(&mut self, mut payload: MigratedBucket, warm_residency: bool) {
        for &(q, n, arrival, predicate) in &payload.queries {
            self.tracker.transfer_in(q, n, arrival);
            self.per_query.entry(q).or_default().insert(payload.bucket);
            if self.config.execute_joins {
                if let Some(p) = predicate {
                    self.predicates.insert(q, p);
                }
            }
        }
        self.table
            .merge_bucket(payload.bucket, &mut payload.entries);
        if warm_residency && payload.was_resident {
            self.cache.insert(payload.bucket);
        }
    }

    /// Makes one scheduling decision at `now`, executes the chosen batch,
    /// and returns its virtual-time cost.
    ///
    /// # Panics
    /// Panics if no work is pending or the scheduler violates its contract.
    pub fn decide_and_execute(
        &mut self,
        scheduler: &mut dyn Scheduler,
        now: SimTime,
    ) -> SimDuration {
        self.decide_and_execute_scaled(scheduler, now, 1.0)
    }

    /// [`decide_and_execute`](Self::decide_and_execute) with the batch's
    /// virtual-time cost multiplied by `cost_factor` — the fault-injection
    /// hook (a degraded disk, a noisy neighbor). Completion instants move
    /// with the scaled cost, so response times see the slowdown. A factor of
    /// exactly 1.0 is the identity (no float round-trip).
    ///
    /// # Panics
    /// Panics if no work is pending or the scheduler violates its contract.
    pub fn decide_and_execute_scaled(
        &mut self,
        scheduler: &mut dyn Scheduler,
        now: SimTime,
        cost_factor: f64,
    ) -> SimDuration {
        // Bring the candidate index's φ keys current with the cache — with
        // the residency mutation log this touches only the buckets the last
        // batch's insert/evict actually flipped. The decision itself then
        // runs entirely against the index: no snapshot gather, no
        // per-candidate scoring sweep, no allocation.
        self.table.sync_residency(&self.cache);
        let telemetry = self.sink.enabled();
        // Frontier-vs-fallback attribution: diff the scheduler's decision
        // counters across the pick (both counters are cumulative).
        let stats_before = if telemetry {
            scheduler.decision_stats()
        } else {
            DecisionStats::default()
        };
        let view = PickView {
            now,
            table: &self.table,
            tracker: &self.tracker,
            per_query: &self.per_query,
        };
        let spec = scheduler
            .pick(&view)
            .expect("scheduler must pick while work is pending");
        assert!(
            self.table.snapshot_of(spec.bucket).is_some(),
            "scheduler picked a bucket with no pending work"
        );
        if telemetry {
            let stats_after = scheduler.decision_stats();
            self.sink.record(
                now,
                EventKind::Decision {
                    bucket: spec.bucket.0,
                    candidates: self.table.candidate_count() as u64,
                    frontier: stats_after.frontier_picks > stats_before.frontier_picks,
                },
            );
        }
        // Starvation accounting in O(log n): everything except the picked
        // bucket waited; the oldest wait is the age-lens maximum once the
        // picked bucket is excluded.
        let passed_over = self.table.candidate_count() as u64 - 1;
        let oldest_passed = self
            .table
            .oldest_candidate_excluding(spec.bucket)
            .map(|s| s.oldest_enqueue);
        self.starvation
            .record_decision(now, passed_over, oldest_passed);
        self.execute_batch(spec, now, cost_factor)
    }

    /// Executes one batch and returns its virtual-time cost.
    fn execute_batch(&mut self, spec: BatchSpec, now: SimTime, cost_factor: f64) -> SimDuration {
        match spec.scope {
            BatchScope::AllQueued => self
                .table
                .take_all_into(spec.bucket, &mut self.batch_entries),
            BatchScope::SingleQuery(q) => {
                self.table
                    .take_query_into(spec.bucket, q, &mut self.batch_entries)
            }
        }
        assert!(
            !self.batch_entries.is_empty(),
            "scheduler scheduled an empty batch"
        );
        let w = self.batch_entries.len() as u64;
        let meta = self.catalog.meta(spec.bucket);

        // The hybrid join decision belongs to LifeRaft's Join Evaluator
        // (Figure 3). NoShare (share_io = false) models the pre-existing
        // scan-based evaluation: no warm cache, no hybrid fallback.
        let cached = spec.share_io && self.cache.contains(spec.bucket);
        let strategy = if spec.share_io {
            self.config.hybrid.choose(w, meta.object_count, cached)
        } else {
            JoinStrategy::SequentialScan
        };

        let telemetry = self.sink.enabled();
        // Residency epoch before the batch touches the cache: the mutation
        // log between this epoch and the post-batch epoch is exactly the
        // insert/evict churn this batch caused.
        let epoch_before = if telemetry {
            self.sink.record(
                now,
                EventKind::BatchStart {
                    bucket: spec.bucket.0,
                    entries: w,
                    cached,
                    indexed: matches!(strategy, JoinStrategy::Indexed),
                },
            );
            Some(self.cache.residency_epoch())
        } else {
            None
        };

        let cost = match strategy {
            JoinStrategy::SequentialScan => {
                if spec.share_io {
                    let hit = self.cache.access(spec.bucket);
                    debug_assert_eq!(hit, cached, "residency probe and access disagree");
                }
                if !cached {
                    self.io.record_scan(meta.bytes, self.config.cost.tb);
                }
                self.io.record_match(self.config.cost.tm.times(w));
                self.scan_batches += 1;
                if cached {
                    self.cache_serviced_entries += w;
                }
                self.config.cost.scan_batch(w, cached)
            }
            JoinStrategy::Indexed => {
                // Random probes bypass the bucket cache entirely.
                self.io.record_probes(w, self.config.cost.probe.times(w));
                self.io.record_match(self.config.cost.tm.times(w));
                self.indexed_batches += 1;
                self.config.cost.indexed_batch(w)
            }
        };
        debug_assert!(
            cost_factor.is_finite() && cost_factor >= 1.0,
            "cost factor must be a slowdown, got {cost_factor}"
        );
        let cost = if cost_factor == 1.0 {
            cost
        } else {
            SimDuration::from_secs_f64(cost.as_secs_f64() * cost_factor)
        };
        self.batches += 1;
        self.serviced_entries += w;

        if let Some(epoch) = epoch_before {
            if cached && matches!(strategy, JoinStrategy::SequentialScan) {
                self.sink.record(
                    now,
                    EventKind::CacheHit {
                        bucket: spec.bucket.0,
                    },
                );
            }
            // A batch flips at most two residencies (one insert, one
            // eviction), far inside the cache's mutation-log window — the
            // log can only be exhausted here if the epoch maths is broken.
            let churn: Vec<_> = self
                .cache
                .mutations_since(epoch)
                .expect("batch residency churn outlived the mutation log")
                .collect();
            for m in churn {
                let kind = if m.resident {
                    EventKind::CacheInsert { bucket: m.bucket.0 }
                } else {
                    EventKind::CacheEvict { bucket: m.bucket.0 }
                };
                self.sink.record(now, kind);
            }
        }

        if self.config.execute_joins {
            let objects = self.catalog.bucket_objects(spec.bucket);
            let out = hybrid::execute(strategy, &objects, &self.batch_entries);
            for pair in &out.pairs {
                let pred = self
                    .predicates
                    .get(&pair.query)
                    .copied()
                    .unwrap_or(Predicate::All);
                if pred.accepts_mag(objects[pair.catalog_index as usize].mag) {
                    self.total_matches += 1;
                }
            }
        }

        // Account completions at batch end. Grouped in QueryId order so the
        // completion sequence (and thus the report) is deterministic even
        // when one batch finishes several queries at the same instant. The
        // grouping sorts a reused scratch of query IDs and walks the runs —
        // no per-batch map allocation.
        let end = now + cost;
        self.completion_scratch.clear();
        self.completion_scratch
            .extend(self.batch_entries.iter().map(|e| e.query));
        self.completion_scratch.sort_unstable();
        let mut i = 0;
        while i < self.completion_scratch.len() {
            let q = self.completion_scratch[i];
            let mut n = 0u64;
            while i < self.completion_scratch.len() && self.completion_scratch[i] == q {
                n += 1;
                i += 1;
            }
            if let Some(set) = self.per_query.get_mut(&q) {
                set.remove(&spec.bucket);
                if set.is_empty() {
                    self.per_query.remove(&q);
                }
            }
            let outcome = self.tracker.complete_assignments(q, n, end);
            if telemetry {
                if let Some(o) = outcome {
                    self.sink.record(
                        end,
                        EventKind::QueryComplete {
                            query: q.0,
                            assignments: o.assignments,
                            response: o.response_time(),
                        },
                    );
                }
            }
        }
        if telemetry {
            self.sink.record(
                end,
                EventKind::BatchEnd {
                    bucket: spec.bucket.0,
                    entries: w,
                },
            );
        }
        cost
    }

    /// Consumes the core into a [`RunReport`] labelled with `scheduler`'s
    /// name and carrying its decision-path counters, with `queries` as the
    /// denominator of the throughput statistic.
    pub fn into_report(self, scheduler: &dyn Scheduler, queries: usize) -> RunReport {
        let stats = scheduler.decision_stats();
        let outcomes = self.tracker.completed().to_vec();
        let response = Summary::from_samples(
            outcomes
                .iter()
                .map(|o| o.response_time().as_secs_f64())
                .collect(),
        );
        let makespan_s = outcomes
            .iter()
            .map(|o| o.completion.as_secs_f64())
            .fold(0.0, f64::max);
        let throughput_qps = if makespan_s > 0.0 {
            queries as f64 / makespan_s
        } else {
            0.0
        };
        RunReport {
            scheduler: scheduler.name(),
            queries,
            makespan_s,
            throughput_qps,
            response,
            cache: self.cache.stats(),
            io: self.io,
            batches: self.batches,
            scan_batches: self.scan_batches,
            indexed_batches: self.indexed_batches,
            serviced_entries: self.serviced_entries,
            cache_serviced_entries: self.cache_serviced_entries,
            frontier_picks: stats.frontier_picks,
            fallback_picks: stats.fallback_picks,
            total_matches: self.total_matches,
            max_wait_ms: self.starvation.max_wait_ms(),
            outcomes,
        }
    }
}

/// The scheduler's view at one decision point: the candidate surface comes
/// from the workload table's index (φ bits synced by the caller) via the
/// [`IndexedSchedulerView`] blanket impl; this adapter only supplies the
/// clock, the tracker's arrival cursor, and the per-query bucket sets.
struct PickView<'s> {
    now: SimTime,
    table: &'s WorkloadTable,
    tracker: &'s QueryTracker,
    per_query: &'s HashMap<QueryId, BTreeSet<BucketId>>,
}

impl IndexedSchedulerView for PickView<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn table(&self) -> &WorkloadTable {
        self.table
    }

    fn oldest_pending_query(&self) -> Option<(QueryId, SimTime)> {
        self.tracker.oldest_pending()
    }

    fn pending_buckets_of(&self, query: QueryId) -> Vec<BucketId> {
        self.per_query
            .get(&query)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    fn first_pending_bucket_of(&self, query: QueryId) -> Option<BucketId> {
        self.per_query
            .get(&query)
            .and_then(|s| s.iter().next().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_catalog::{generate::uniform_sky, MaterializedCatalog};
    use liferaft_core::{
        AgingMode, LifeRaftScheduler, MetricParams, NoShareScheduler, RoundRobinScheduler,
    };
    use liferaft_query::{CrossMatchQuery, Predicate};
    use liferaft_workload::arrivals::uniform_arrivals;
    use liferaft_workload::Trace;

    const LEVEL: u8 = 8;

    fn catalog() -> MaterializedCatalog {
        let sky = uniform_sky(2_000, LEVEL, 1);
        MaterializedCatalog::build(&sky, LEVEL, 100, 4096)
    }

    fn small_trace(cat: &MaterializedCatalog, n: usize) -> Trace {
        // Queries anchored on catalog objects so real joins find matches.
        let queries: Vec<CrossMatchQuery> = (0..n)
            .map(|i| {
                let objs = cat.bucket_objects(BucketId((i % 5) as u32 * 3));
                let positions: Vec<_> = objs.iter().step_by(10).map(|o| o.pos).collect();
                CrossMatchQuery::from_positions(
                    QueryId(i as u64),
                    &positions,
                    1e-4,
                    LEVEL,
                    Predicate::All,
                )
            })
            .collect();
        Trace::new(LEVEL, queries)
    }

    fn params() -> MetricParams {
        MetricParams::paper()
    }

    #[test]
    fn all_schedulers_complete_all_queries() {
        let cat = catalog();
        let trace = small_trace(&cat, 12);
        let timed = trace.with_arrivals(uniform_arrivals(0.5, 12));
        let sim = Simulation::new(&cat, SimConfig::paper());
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(NoShareScheduler::new()),
            Box::new(RoundRobinScheduler::new()),
            Box::new(LifeRaftScheduler::greedy(params())),
            Box::new(LifeRaftScheduler::age_based(params())),
            Box::new(LifeRaftScheduler::new(params(), AgingMode::Normalized, 0.5)),
        ];
        for s in &mut schedulers {
            let report = sim.run(&timed, s.as_mut());
            assert_eq!(report.queries, 12, "{}", report.scheduler);
            assert_eq!(report.outcomes.len(), 12);
            assert!(report.throughput_qps > 0.0);
            assert!(report.makespan_s > 0.0);
            assert!(report.batches > 0);
            assert_eq!(report.batches, report.scan_batches + report.indexed_batches);
        }
    }

    #[test]
    fn real_joins_produce_identical_matches_across_schedulers() {
        let cat = catalog();
        let trace = small_trace(&cat, 8);
        let timed = trace.with_arrivals(uniform_arrivals(0.5, 8));
        let sim = Simulation::new(&cat, SimConfig::with_real_joins());
        let mut baseline = None;
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(NoShareScheduler::new()),
            Box::new(RoundRobinScheduler::new()),
            Box::new(LifeRaftScheduler::greedy(params())),
            Box::new(LifeRaftScheduler::age_based(params())),
        ];
        for s in &mut schedulers {
            let report = sim.run(&timed, s.as_mut());
            assert!(
                report.total_matches > 0,
                "{} found nothing",
                report.scheduler
            );
            match baseline {
                None => baseline = Some(report.total_matches),
                Some(b) => assert_eq!(
                    report.total_matches, b,
                    "{} disagrees on matches",
                    report.scheduler
                ),
            }
        }
    }

    #[test]
    fn batching_shares_io_relative_to_noshare() {
        let cat = catalog();
        // Many queries over the same few buckets, arriving together.
        let trace = small_trace(&cat, 20);
        let timed = trace.with_arrivals(uniform_arrivals(10.0, 20));
        let sim = Simulation::new(&cat, SimConfig::paper());
        let noshare = sim.run(&timed, &mut NoShareScheduler::new());
        let greedy = sim.run(&timed, &mut LifeRaftScheduler::greedy(params()));
        assert!(
            greedy.io.bucket_reads < noshare.io.bucket_reads,
            "sharing must reduce bucket reads: {} vs {}",
            greedy.io.bucket_reads,
            noshare.io.bucket_reads
        );
        assert!(greedy.throughput_qps > noshare.throughput_qps);
        assert!(greedy.mean_batch_size() > noshare.mean_batch_size());
    }

    #[test]
    fn response_times_are_positive_and_bounded_by_makespan() {
        let cat = catalog();
        let trace = small_trace(&cat, 10);
        let timed = trace.with_arrivals(uniform_arrivals(1.0, 10));
        let sim = Simulation::new(&cat, SimConfig::paper());
        let report = sim.run(&timed, &mut LifeRaftScheduler::greedy(params()));
        for o in &report.outcomes {
            let rt = o.response_time().as_secs_f64();
            assert!(rt > 0.0);
            assert!(rt <= report.makespan_s);
        }
    }

    #[test]
    fn conservation_every_assignment_serviced_exactly_once() {
        let cat = catalog();
        let trace = small_trace(&cat, 15);
        let pre = QueryPreProcessor::new(cat.partition());
        let expected: u64 = trace
            .queries()
            .iter()
            .map(|q| {
                pre.preprocess(q)
                    .iter()
                    .map(|i| i.len() as u64)
                    .sum::<u64>()
            })
            .sum();
        let timed = trace.with_arrivals(uniform_arrivals(2.0, 15));
        let sim = Simulation::new(&cat, SimConfig::paper());
        for s in [
            &mut NoShareScheduler::new() as &mut dyn Scheduler,
            &mut RoundRobinScheduler::new(),
            &mut LifeRaftScheduler::greedy(params()),
        ] {
            let report = sim.run(&timed, s);
            assert_eq!(report.serviced_entries, expected, "{}", report.scheduler);
        }
    }

    #[test]
    fn empty_trace_completes_trivially() {
        let cat = catalog();
        let trace = Trace::new(LEVEL, vec![]);
        let timed = trace.with_arrivals(vec![]);
        let sim = Simulation::new(&cat, SimConfig::paper());
        let report = sim.run(&timed, &mut LifeRaftScheduler::greedy(params()));
        assert_eq!(report.queries, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.throughput_qps, 0.0);
    }

    #[test]
    fn migrating_buckets_between_cores_conserves_all_work() {
        let cat = catalog();
        let trace = small_trace(&cat, 10);
        let timed = trace.with_arrivals(uniform_arrivals(50.0, 10));
        let mut src: EngineCore<'_, _> = EngineCore::new(&cat, SimConfig::paper());
        let mut dst: EngineCore<'_, _> = EngineCore::new(&cat, SimConfig::paper());
        let mut sched_src = LifeRaftScheduler::greedy(params());
        let mut sched_dst = LifeRaftScheduler::greedy(params());
        let mut expected = 0u64;
        let mut last_arrival = SimTime::ZERO;
        for (at, query) in timed.entries() {
            src.deliver(query, *at);
            sched_src.on_query_arrival(*at);
            expected += src.tracker().remaining_of(query.id).unwrap_or(0);
            last_arrival = *at;
        }
        // Move every other pending bucket to the destination core.
        let buckets: Vec<BucketId> = src.workload().non_empty_buckets().to_vec();
        let at = last_arrival + SimDuration::from_millis(1);
        let mut moved_entries = 0u64;
        for (i, &b) in buckets.iter().enumerate() {
            if i % 2 == 0 {
                continue;
            }
            let payload = src.extract_bucket(b, at, true);
            moved_entries += payload.len() as u64;
            dst.absorb_bucket(payload, true);
        }
        assert!(moved_entries > 0, "fixture must migrate something");
        assert_eq!(src.total_queued() + dst.total_queued(), expected);
        src.workload().validate_index();
        dst.workload().validate_index();
        // Both cores drain independently; together they service every
        // assignment exactly once.
        let mut now = at;
        while !src.is_idle() {
            now += src.decide_and_execute(&mut sched_src, now);
        }
        let mut now = at;
        while !dst.is_idle() {
            now += dst.decide_and_execute(&mut sched_dst, now);
        }
        assert!(src.all_complete() && dst.all_complete());
        assert_eq!(src.serviced_entries() + dst.serviced_entries(), expected);
    }

    #[test]
    fn migration_can_carry_cache_residency() {
        let cat = catalog();
        let trace = small_trace(&cat, 6);
        let timed = trace.with_arrivals(uniform_arrivals(50.0, 6));
        let mut src: EngineCore<'_, _> = EngineCore::new(&cat, SimConfig::paper());
        let mut dst: EngineCore<'_, _> = EngineCore::new(&cat, SimConfig::paper());
        let mut sched = LifeRaftScheduler::greedy(params());
        let mut now = SimTime::ZERO;
        for (at, query) in timed.entries() {
            src.deliver(query, *at);
            sched.on_query_arrival(*at);
            now = *at;
        }
        // Execute a few batches so some bucket becomes cache-resident with
        // work still queued behind it.
        let mut hot = None;
        for _ in 0..64 {
            if src.is_idle() {
                break;
            }
            now += src.decide_and_execute(&mut sched, now);
            hot = src
                .workload()
                .non_empty_buckets()
                .iter()
                .copied()
                .find(|&b| src.resident_buckets() > 0 && !src.workload().queue(b).is_empty());
            if hot.is_some() {
                break;
            }
        }
        let Some(bucket) = hot else {
            panic!("fixture never produced a pending bucket alongside residency");
        };
        let resident_before = src.resident_buckets();
        let payload = src.extract_bucket(bucket, now, true);
        if payload.was_resident {
            assert_eq!(src.resident_buckets(), resident_before - 1);
        }
        let dst_resident_before = dst.resident_buckets();
        let was_resident = payload.was_resident;
        dst.absorb_bucket(payload, true);
        if was_resident {
            assert_eq!(dst.resident_buckets(), dst_resident_before + 1);
        }
        dst.workload().validate_index();
    }

    #[test]
    fn greedy_uses_cache_more_than_age_based() {
        let cat = catalog();
        let trace = small_trace(&cat, 30);
        let timed = trace.with_arrivals(uniform_arrivals(5.0, 30));
        let mut config = SimConfig::paper();
        config.cache_buckets = 3;
        let sim = Simulation::new(&cat, config);
        let greedy = sim.run(&timed, &mut LifeRaftScheduler::greedy(params()));
        let aged = sim.run(&timed, &mut LifeRaftScheduler::age_based(params()));
        // Cached-bucket affinity is the greedy policy's defining behaviour.
        assert!(
            greedy.cache_service_fraction() >= aged.cache_service_fraction(),
            "greedy {} < aged {}",
            greedy.cache_service_fraction(),
            aged.cache_service_fraction()
        );
    }
}
