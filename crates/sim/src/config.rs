//! Simulation configuration.

use liferaft_join::HybridConfig;
use liferaft_storage::CostModel;

/// Knobs of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Cost constants (`Tb`, `Tm`, probe costs).
    pub cost: CostModel,
    /// Bucket cache capacity in buckets (the paper fixes 20).
    pub cache_buckets: usize,
    /// Hybrid join strategy configuration.
    pub hybrid: HybridConfig,
    /// If true, every batch executes a real cross-match join against
    /// materialized bucket objects (results identical across schedulers; use
    /// at small scale). If false, only costs and accounting are simulated —
    /// the configuration for paper-scale figure sweeps.
    pub execute_joins: bool,
}

impl SimConfig {
    /// The paper's experimental configuration (Section 5), cost-only joins.
    pub fn paper() -> Self {
        SimConfig {
            cost: CostModel::paper(),
            cache_buckets: 20,
            hybrid: HybridConfig::paper(),
            execute_joins: false,
        }
    }

    /// Small-scale configuration with real join execution, for correctness
    /// tests and examples.
    pub fn with_real_joins() -> Self {
        SimConfig {
            execute_joins: true,
            ..Self::paper()
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        assert!(
            self.cache_buckets > 0,
            "cache must hold at least one bucket"
        );
        assert!(
            self.hybrid.threshold_ratio >= 0.0,
            "hybrid threshold must be non-negative"
        );
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper();
        assert_eq!(c.cache_buckets, 20);
        assert!(!c.execute_joins);
        assert!(c.hybrid.enabled);
        c.validate();
    }

    #[test]
    fn real_join_variant() {
        assert!(SimConfig::with_real_joins().execute_joins);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_cache_rejected() {
        let mut c = SimConfig::paper();
        c.cache_buckets = 0;
        c.validate();
    }
}
