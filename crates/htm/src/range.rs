//! Inclusive HTM ID ranges and sorted disjoint range sets.
//!
//! Both bucket extents ("start and end HTM ID values", Section 3.1) and the
//! per-object cross-match bounding boxes are expressed as ranges of same-level
//! HTM IDs. The pre-processor intersects the two, so the range algebra here is
//! on the hot path of query admission.

use std::fmt;

use crate::id::HtmId;

/// An inclusive range `[lo, hi]` of HTM IDs at a single level.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HtmRange {
    lo: HtmId,
    hi: HtmId,
}

impl HtmRange {
    /// Creates a range. `lo` and `hi` must be at the same level with `lo ≤ hi`.
    pub fn new(lo: HtmId, hi: HtmId) -> Self {
        assert_eq!(
            lo.level(),
            hi.level(),
            "range endpoints must share a level ({} vs {})",
            lo.level(),
            hi.level()
        );
        assert!(lo <= hi, "range lo {lo} must not exceed hi {hi}");
        HtmRange { lo, hi }
    }

    /// A single-ID range.
    pub fn singleton(id: HtmId) -> Self {
        HtmRange { lo: id, hi: id }
    }

    /// The full range of all IDs at `level`.
    pub fn full(level: u8) -> Self {
        HtmRange::new(HtmId::first_at_level(level), HtmId::last_at_level(level))
    }

    /// Lower (inclusive) endpoint.
    #[inline]
    pub fn lo(self) -> HtmId {
        self.lo
    }

    /// Upper (inclusive) endpoint.
    #[inline]
    pub fn hi(self) -> HtmId {
        self.hi
    }

    /// The common level of the endpoints.
    #[inline]
    pub fn level(self) -> u8 {
        self.lo.level()
    }

    /// Number of IDs in the range.
    #[inline]
    pub fn len(self) -> u64 {
        self.hi.raw() - self.lo.raw() + 1
    }

    /// Ranges are never empty (construction requires `lo ≤ hi`).
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// True if `id` (same level) lies within the range.
    #[inline]
    pub fn contains(self, id: HtmId) -> bool {
        debug_assert_eq!(id.level(), self.level());
        self.lo <= id && id <= self.hi
    }

    /// True if the two same-level ranges share at least one ID.
    #[inline]
    pub fn overlaps(self, o: HtmRange) -> bool {
        debug_assert_eq!(self.level(), o.level());
        self.lo <= o.hi && o.lo <= self.hi
    }

    /// The overlap of two same-level ranges, if any.
    pub fn intersect(self, o: HtmRange) -> Option<HtmRange> {
        if self.overlaps(o) {
            Some(HtmRange {
                lo: self.lo.max(o.lo),
                hi: self.hi.min(o.hi),
            })
        } else {
            None
        }
    }

    /// True if the ranges overlap or are adjacent on the curve (mergeable).
    #[inline]
    pub fn touches(self, o: HtmRange) -> bool {
        debug_assert_eq!(self.level(), o.level());
        self.lo.raw() <= o.hi.raw().saturating_add(1)
            && o.lo.raw() <= self.hi.raw().saturating_add(1)
    }

    /// Re-expresses the range at a **deeper** level (descendant expansion).
    pub fn at_level(self, level: u8) -> HtmRange {
        assert!(level >= self.level(), "at_level only deepens ranges");
        HtmRange {
            lo: self.lo.descendant_range(level).lo(),
            hi: self.hi.descendant_range(level).hi(),
        }
    }

    /// Iterates over every ID in the range (use with care on wide ranges).
    pub fn iter(self) -> impl Iterator<Item = HtmId> {
        (self.lo.raw()..=self.hi.raw())
            .map(|r| HtmId::from_raw(r).expect("all raw values inside a valid range are valid IDs"))
    }
}

impl fmt::Debug for HtmRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..={}]", self.lo, self.hi)
    }
}

impl fmt::Display for HtmRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// A normalized set of HTM IDs at one level: sorted, disjoint,
/// non-adjacent inclusive ranges.
///
/// This is the output type of region coverage ([`crate::cover::Coverer`]) and
/// the "bounding box covering all potential regions for cross matching" each
/// workload object carries in the paper.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct HtmRangeSet {
    ranges: Vec<HtmRange>,
}

impl HtmRangeSet {
    /// The empty set.
    pub fn empty() -> Self {
        HtmRangeSet { ranges: Vec::new() }
    }

    /// Builds a normalized set from arbitrary (possibly overlapping,
    /// unsorted) same-level ranges.
    pub fn from_ranges(mut ranges: Vec<HtmRange>) -> Self {
        if ranges.is_empty() {
            return Self::empty();
        }
        let level = ranges[0].level();
        assert!(
            ranges.iter().all(|r| r.level() == level),
            "all ranges in a set must share a level"
        );
        ranges.sort_unstable_by_key(|r| r.lo());
        let mut out: Vec<HtmRange> = Vec::with_capacity(ranges.len());
        for r in ranges {
            match out.last_mut() {
                Some(last) if last.touches(r) => {
                    *last = HtmRange::new(last.lo().min(r.lo()), last.hi().max(r.hi()));
                }
                _ => out.push(r),
            }
        }
        HtmRangeSet { ranges: out }
    }

    /// The normalized ranges, sorted ascending.
    #[inline]
    pub fn ranges(&self) -> &[HtmRange] {
        &self.ranges
    }

    /// True if the set contains no IDs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of ranges (not IDs).
    #[inline]
    pub fn num_ranges(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of IDs across all ranges.
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|r| r.len()).sum()
    }

    /// The level of the set's IDs, or `None` if empty.
    pub fn level(&self) -> Option<u8> {
        self.ranges.first().map(|r| r.level())
    }

    /// The single range spanning the whole set (its "bounding box" on the
    /// curve), or `None` if empty. This is the `[start, end]` HTM ID pair the
    /// paper attaches to each cross-match object.
    pub fn bounding_range(&self) -> Option<HtmRange> {
        match (self.ranges.first(), self.ranges.last()) {
            (Some(first), Some(last)) => Some(HtmRange::new(first.lo(), last.hi())),
            _ => None,
        }
    }

    /// Membership test by binary search. `O(log n_ranges)`.
    pub fn contains(&self, id: HtmId) -> bool {
        let i = self.ranges.partition_point(|r| r.hi() < id);
        self.ranges.get(i).is_some_and(|r| r.contains(id))
    }

    /// True if any range overlaps `probe`.
    pub fn intersects_range(&self, probe: HtmRange) -> bool {
        let i = self.ranges.partition_point(|r| r.hi() < probe.lo());
        self.ranges.get(i).is_some_and(|r| r.overlaps(probe))
    }

    /// Union of two sets.
    pub fn union(&self, o: &HtmRangeSet) -> HtmRangeSet {
        let mut all = Vec::with_capacity(self.ranges.len() + o.ranges.len());
        all.extend_from_slice(&self.ranges);
        all.extend_from_slice(&o.ranges);
        HtmRangeSet::from_ranges(all)
    }

    /// Intersection of two sets (linear merge).
    pub fn intersect(&self, o: &HtmRangeSet) -> HtmRangeSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < o.ranges.len() {
            let (a, b) = (self.ranges[i], o.ranges[j]);
            if let Some(x) = a.intersect(b) {
                out.push(x);
            }
            if a.hi() < b.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Intersections of normalized inputs are already sorted and disjoint.
        HtmRangeSet { ranges: out }
    }

    /// Iterates over every ID in the set.
    pub fn iter_ids(&self) -> impl Iterator<Item = HtmId> + '_ {
        self.ranges.iter().flat_map(|r| r.iter())
    }
}

impl fmt::Debug for HtmRangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(&self.ranges).finish()
    }
}

impl FromIterator<HtmRange> for HtmRangeSet {
    fn from_iter<T: IntoIterator<Item = HtmRange>>(iter: T) -> Self {
        HtmRangeSet::from_ranges(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> HtmId {
        HtmId::from_raw_unchecked(raw)
    }

    fn rng(lo: u64, hi: u64) -> HtmRange {
        HtmRange::new(id(lo), id(hi))
    }

    // Level-2 IDs occupy 128..=255.
    #[test]
    fn range_basics() {
        let r = rng(130, 140);
        assert_eq!(r.len(), 11);
        assert!(r.contains(id(130)));
        assert!(r.contains(id(140)));
        assert!(!r.contains(id(141)));
        assert_eq!(r.level(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn range_rejects_inverted_bounds() {
        rng(140, 130);
    }

    #[test]
    #[should_panic(expected = "share a level")]
    fn range_rejects_mixed_levels() {
        HtmRange::new(id(8), id(32));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = rng(130, 150);
        let b = rng(145, 160);
        let c = rng(151, 155);
        assert!(a.overlaps(b));
        assert_eq!(a.intersect(b), Some(rng(145, 150)));
        assert!(!a.overlaps(c));
        assert_eq!(a.intersect(c), None);
        // Touching but not overlapping.
        assert!(a.touches(c));
        assert!(!a.touches(rng(152, 155)));
    }

    #[test]
    fn at_level_expands_descendants() {
        let r = HtmRange::singleton(HtmId::root(0)); // S0
        let deep = r.at_level(2);
        assert_eq!(deep.len(), 16); // 4^2 descendants
        assert_eq!(deep.lo(), HtmId::root(0).descendant_range(2).lo());
    }

    #[test]
    fn set_normalizes_overlaps_and_adjacency() {
        let s = HtmRangeSet::from_ranges(vec![
            rng(140, 150),
            rng(128, 135),
            rng(136, 139), // adjacent to both neighbours -> all merge
            rng(200, 210),
        ]);
        assert_eq!(s.num_ranges(), 2);
        assert_eq!(s.ranges()[0], rng(128, 150));
        assert_eq!(s.ranges()[1], rng(200, 210));
        assert_eq!(s.len(), 23 + 11);
    }

    #[test]
    fn set_membership_binary_search() {
        let s = HtmRangeSet::from_ranges(vec![rng(130, 135), rng(150, 155), rng(170, 170)]);
        for present in [130, 133, 135, 150, 155, 170] {
            assert!(s.contains(id(present)), "{present}");
        }
        for absent in [128, 136, 149, 156, 169, 171, 255] {
            assert!(!s.contains(id(absent)), "{absent}");
        }
    }

    #[test]
    fn set_intersects_range_probe() {
        let s = HtmRangeSet::from_ranges(vec![rng(130, 135), rng(150, 155)]);
        assert!(s.intersects_range(rng(135, 140)));
        assert!(s.intersects_range(rng(136, 151)));
        assert!(!s.intersects_range(rng(136, 149)));
        assert!(!s.intersects_range(rng(200, 255)));
    }

    #[test]
    fn union_and_intersection_algebra() {
        let a = HtmRangeSet::from_ranges(vec![rng(130, 140), rng(160, 170)]);
        let b = HtmRangeSet::from_ranges(vec![rng(135, 165)]);
        let u = a.union(&b);
        assert_eq!(u.ranges(), &[rng(130, 170)]);
        let i = a.intersect(&b);
        assert_eq!(i.ranges(), &[rng(135, 140), rng(160, 165)]);
        // Intersection with empty is empty.
        assert!(a.intersect(&HtmRangeSet::empty()).is_empty());
        assert_eq!(a.union(&HtmRangeSet::empty()), a);
    }

    #[test]
    fn bounding_range_spans_set() {
        let s = HtmRangeSet::from_ranges(vec![rng(130, 135), rng(150, 155)]);
        assert_eq!(s.bounding_range(), Some(rng(130, 155)));
        assert_eq!(HtmRangeSet::empty().bounding_range(), None);
    }

    #[test]
    fn iter_ids_matches_len() {
        let s = HtmRangeSet::from_ranges(vec![rng(130, 132), rng(200, 201)]);
        let ids: Vec<_> = s.iter_ids().collect();
        assert_eq!(ids.len() as u64, s.len());
        assert_eq!(ids[0], id(130));
        assert_eq!(ids[4], id(201));
    }

    #[test]
    fn full_range_covers_level() {
        let f = HtmRange::full(1);
        assert_eq!(f.len(), 32);
        assert_eq!(f.lo().raw(), 32);
        assert_eq!(f.hi().raw(), 63);
    }
}
