//! Region coverage: turning a sky region (spherical cap) into HTM ID ranges.
//!
//! The pre-processor needs, for every cross-match object, "a range of HTM ID
//! values, which serve as a bounding box covering all potential regions for
//! cross matching" (Section 3.1). The coverer walks the mesh from the eight
//! roots, pruning disjoint trixels, emitting whole subtrees for trixels fully
//! inside the region, and recursing on partial overlaps until the target
//! level, where partially-overlapping trixels are included conservatively.

use crate::cap::{Cap, CapTrixelRelation};
use crate::range::{HtmRange, HtmRangeSet};
use crate::trixel::Trixel;
use crate::MAX_LEVEL;

/// Computes conservative HTM coverages of sky regions at a fixed level.
#[derive(Debug, Clone, Copy)]
pub struct Coverer {
    level: u8,
}

impl Coverer {
    /// Creates a coverer emitting ranges at the given mesh `level`.
    pub fn new(level: u8) -> Self {
        assert!(level <= MAX_LEVEL, "level {level} exceeds MAX_LEVEL");
        Coverer { level }
    }

    /// The output level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Covers a spherical cap: returns the normalized set of level-`level`
    /// IDs whose trixels (possibly) intersect the cap.
    ///
    /// The cover is **complete** (every point of the cap lies in some covered
    /// trixel) and conservative (it may include trixels that only graze the
    /// cap boundary).
    pub fn cover(&self, cap: &Cap) -> HtmRangeSet {
        let mut ranges = Vec::new();
        for root in Trixel::roots() {
            self.visit(cap, &root, &mut ranges);
        }
        HtmRangeSet::from_ranges(ranges)
    }

    fn visit(&self, cap: &Cap, t: &Trixel, out: &mut Vec<HtmRange>) {
        match cap.classify(t) {
            CapTrixelRelation::Disjoint => {}
            CapTrixelRelation::Inside => {
                out.push(t.id().descendant_range(self.level));
            }
            CapTrixelRelation::Partial => {
                if t.id().level() == self.level {
                    out.push(HtmRange::singleton(t.id()));
                } else {
                    for c in t.children() {
                        self.visit(cap, &c, out);
                    }
                }
            }
        }
    }

    /// Covers the cap but stops refining once the cover consists of at most
    /// `max_ranges` ranges, re-expressing coarse trixels as deep ranges.
    ///
    /// Buckets only need *approximate* pruning; capping the range count keeps
    /// per-object bounding boxes small, trading a looser cover for less
    /// pre-processing work — the same reason the paper uses a single
    /// `[start, end]` pair per object.
    pub fn cover_bounded(&self, cap: &Cap, max_ranges: usize) -> HtmRangeSet {
        assert!(max_ranges >= 1, "need at least one range");
        // Breadth-first refinement: refine the frontier level by level and
        // stop when the next refinement would exceed the budget.
        let mut frontier: Vec<Trixel> = Vec::new();
        let mut inside: Vec<HtmRange> = Vec::new();
        for root in Trixel::roots() {
            match cap.classify(&root) {
                CapTrixelRelation::Disjoint => {}
                CapTrixelRelation::Inside => inside.push(root.id().descendant_range(self.level)),
                CapTrixelRelation::Partial => frontier.push(root),
            }
        }
        // Double-buffered refinement: `next` is reused across levels, so a
        // cover performs a constant number of allocations regardless of
        // depth (this runs once per cross-match object — it is the fixture
        // builder's hot loop).
        let mut next: Vec<Trixel> = Vec::new();
        for _level in 0..self.level {
            next.clear();
            for t in &frontier {
                for c in t.children() {
                    match cap.classify(&c) {
                        CapTrixelRelation::Disjoint => {}
                        CapTrixelRelation::Inside => {
                            inside.push(c.id().descendant_range(self.level));
                        }
                        CapTrixelRelation::Partial => next.push(c),
                    }
                }
            }
            if inside.len() + next.len() > max_ranges {
                // Refining further would blow the budget: emit the current
                // frontier coarsely and stop.
                break;
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        let mut ranges = inside;
        ranges.extend(frontier.iter().map(|t| t.id().descendant_range(self.level)));
        HtmRangeSet::from_ranges(ranges)
    }
}

/// A [`Coverer`] with reusable scratch and a child-trixel memo — the
/// fixture builder's workhorse.
///
/// Subdividing a trixel costs three spherical midpoints (a square root and
/// three divisions each); covers of *spatially clustered* caps — the
/// objects of one cross-match query — descend through the same upper-level
/// trixels over and over. The memo returns the previously computed child
/// array for those (bit-identical: `Trixel::children` is a pure function),
/// and the BFS buffers persist across calls, so a clustered object list is
/// covered with near-zero redundant geometry and no per-call allocation
/// beyond the result set.
///
/// Produces exactly the same cover as [`Coverer::cover_bounded`] for every
/// cap — pinned by the equivalence tests below.
#[derive(Debug, Clone)]
pub struct CachingCoverer {
    coverer: Coverer,
    /// Direct-mapped memo: `(parent raw id, children)` per slot, raw 0 =
    /// empty. Collisions overwrite — correctness never depends on a hit.
    memo: Vec<(u64, [Trixel; 4])>,
    frontier: Vec<Trixel>,
    next: Vec<Trixel>,
    inside: Vec<HtmRange>,
}

/// Memo slots (power of two). 4096 × ~330 B ≈ 1.3 MB — L2-resident, deep
/// enough that one query's descent paths rarely collide.
const MEMO_SLOTS: usize = 4096;

/// Trixels at this level or deeper bypass the memo: clustered caps share
/// descent prefixes, not leaves, so deep entries would be written once and
/// read never.
const MEMO_MAX_LEVEL: u8 = 8;

impl CachingCoverer {
    /// Creates a caching coverer emitting ranges at `level`.
    pub fn new(level: u8) -> Self {
        CachingCoverer {
            coverer: Coverer::new(level),
            memo: vec![
                (
                    0,
                    [
                        Trixel::root(0),
                        Trixel::root(0),
                        Trixel::root(0),
                        Trixel::root(0)
                    ]
                );
                MEMO_SLOTS
            ],
            frontier: Vec::new(),
            next: Vec::new(),
            inside: Vec::new(),
        }
    }

    /// The output level.
    pub fn level(&self) -> u8 {
        self.coverer.level()
    }

    fn children_of(&mut self, t: &Trixel) -> [Trixel; 4] {
        if t.id().level() >= MEMO_MAX_LEVEL {
            // Deep trixels are mostly unique per cap: a memo's copy traffic
            // outweighs the subdivision it saves. Compute directly.
            return t.children();
        }
        let raw = t.id().raw();
        // SplitMix64-style finalizer over the raw id.
        let mut h = raw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let slot = (h >> 32) as usize & (MEMO_SLOTS - 1);
        let (key, cached) = &self.memo[slot];
        if *key == raw {
            return *cached;
        }
        let children = t.children();
        self.memo[slot] = (raw, children);
        children
    }

    /// Exactly [`Coverer::cover_bounded`], through the memo, the scratch
    /// buffers, and the strict-descent fast path.
    pub fn cover_bounded(&mut self, cap: &Cap, max_ranges: usize) -> HtmRangeSet {
        assert!(max_ranges >= 1, "need at least one range");
        let level = self.coverer.level();
        self.frontier.clear();
        self.inside.clear();
        for root in Trixel::roots() {
            match cap.classify(&root) {
                CapTrixelRelation::Disjoint => {}
                CapTrixelRelation::Inside => self.inside.push(root.id().descendant_range(level)),
                CapTrixelRelation::Partial => self.frontier.push(root),
            }
        }
        for _level in 0..level {
            // Strict-descent fast path: a single-trixel frontier whose cap
            // is *strictly* inside one child (see [`strict_child`]) steps
            // straight to that child — the refinement the full classify
            // pass would produce, at a quarter of the geometry.
            if self.inside.is_empty() && self.frontier.len() == 1 {
                let t = self.frontier[0];
                let kids = self.children_of(&t);
                if let Some(k) = strict_child(cap, &kids) {
                    self.frontier[0] = kids[k];
                    continue;
                }
                // Fall through with the already-computed children.
                self.next.clear();
                for c in kids {
                    match cap.classify(&c) {
                        CapTrixelRelation::Disjoint => {}
                        CapTrixelRelation::Inside => {
                            self.inside.push(c.id().descendant_range(level));
                        }
                        CapTrixelRelation::Partial => self.next.push(c),
                    }
                }
            } else {
                self.next.clear();
                for fi in 0..self.frontier.len() {
                    let t = self.frontier[fi];
                    for c in self.children_of(&t) {
                        match cap.classify(&c) {
                            CapTrixelRelation::Disjoint => {}
                            CapTrixelRelation::Inside => {
                                self.inside.push(c.id().descendant_range(level));
                            }
                            CapTrixelRelation::Partial => self.next.push(c),
                        }
                    }
                }
            }
            if self.inside.len() + self.next.len() > max_ranges {
                break;
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        let mut ranges = std::mem::take(&mut self.inside);
        ranges.extend(self.frontier.iter().map(|t| t.id().descendant_range(level)));
        HtmRangeSet::from_ranges(ranges)
    }
}

/// The child strictly containing `cap`, if the strict-containment screen
/// certifies one — the refinement step of [`CachingCoverer`]'s fast path.
///
/// # Why this reproduces the full classify pass exactly
///
/// The screen demands the cap center `c` be on the interior side of all
/// three edge planes of child `K`, with sin(distance to each edge's great
/// circle) > sin(1.001·radius). Distances to the bounding *arcs* are at
/// least distances to their circles, so dist(c, ∂K) > 1.001·radius; any
/// point outside `K` is then farther than 1.001·radius from `c` (a geodesic
/// from `c` must cross ∂K first). With a margin of 0.1% of the radius —
/// astronomically beyond the ~10⁻¹⁶ relative rounding of either code path —
/// the exact classifier must therefore find: every sibling `Disjoint` (no
/// corner within the cap, center beyond a sibling plane by far more than
/// the containment tolerance, every edge arc beyond the cap), `K` itself
/// `Partial` (center inside, corners outside), and no child `Inside`. So
/// descending to `[K]` is precisely the frontier the classify pass would
/// compute — pinned by the equivalence tests and proptests against
/// [`Coverer::cover_bounded`].
fn strict_child(cap: &Cap, kids: &[Trixel; 4]) -> Option<usize> {
    let c = cap.center();
    // Locate the center against the middle child's edges: (w0,w1), (w1,w2),
    // (w2,w0). Being beyond one of them puts the center in the opposite
    // corner child (child 2, 0, 1 respectively). Ambiguity near a plane is
    // harmless — the strict screen below rejects wrong or borderline picks.
    let [w0, w1, w2] = *kids[3].corners();
    let k = if w1.cross(w2).dot(c) < 0.0 {
        0
    } else if w2.cross(w0).dot(c) < 0.0 {
        1
    } else if w0.cross(w1).dot(c) < 0.0 {
        2
    } else {
        3
    };
    let [a, b, d] = *kids[k].corners();
    let screen = cap.strict_screen();
    for (p, q) in [(a, b), (b, d), (d, a)] {
        let n = p.cross(q);
        let dist = n.dot(c);
        // Interior side (children are counter-clockwise) and strictly
        // farther from the edge circle than 1.001·radius.
        if dist <= 0.0 || dist * dist <= screen * n.norm_sq() {
            return None;
        }
    }
    Some(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::HtmId;
    use crate::index::locate;
    use crate::vector::Vec3;

    #[test]
    fn cover_contains_cap_center() {
        let cap = Cap::from_radec_deg(12.0, 34.0, 60.0);
        let cover = Coverer::new(10).cover(&cap);
        assert!(cover.contains(locate(cap.center(), 10)));
    }

    #[test]
    fn cover_is_complete_for_boundary_samples() {
        // Points on (just inside) the cap rim must be covered.
        let center = Vec3::from_radec_deg(200.0, -10.0);
        let radius = 0.01; // ~34 arcmin
        let cap = Cap::new(center, radius);
        let cover = Coverer::new(12).cover(&cap);
        // March around the rim at 0.999 of the radius.
        let (ra0, dec0) = center.to_radec();
        for k in 0..36 {
            let theta = k as f64 * std::f64::consts::TAU / 36.0;
            let p = Vec3::from_radec(
                ra0 + 0.999 * radius * theta.cos() / dec0.cos(),
                dec0 + 0.999 * radius * theta.sin(),
            );
            assert!(cap.contains(p), "sample {k} escaped the cap");
            assert!(cover.contains(locate(p, 12)), "sample {k} not covered");
        }
    }

    #[test]
    fn cover_excludes_far_away_ids() {
        let cap = Cap::from_radec_deg(10.0, 10.0, 10.0);
        let cover = Coverer::new(10).cover(&cap);
        let far = locate(Vec3::from_radec_deg(190.0, -10.0), 10);
        assert!(!cover.contains(far));
    }

    #[test]
    fn tiny_cap_covers_few_trixels() {
        // A 1-arcsecond error circle at level 14 touches at most a handful
        // of trixels (typically 1–4 around a corner).
        let cap = Cap::from_radec_deg(123.0, 45.0, 1.0);
        let cover = Coverer::new(14).cover(&cap);
        assert!(
            cover.len() <= 8,
            "cover unexpectedly large: {}",
            cover.len()
        );
        assert!(!cover.is_empty());
    }

    #[test]
    fn cover_area_is_sane() {
        // The summed real area of covered trixels must contain the cap and
        // exceed it only by a thin boundary ring (HTM trixels are not
        // equal-area, so the average-area estimate is useless here).
        let cap = Cap::new(Vec3::from_radec_deg(80.0, 40.0), 0.02);
        let level = 12;
        let cover = Coverer::new(level).cover(&cap);
        let covered: f64 = cover
            .iter_ids()
            .map(|i| crate::index::trixel_of(i).area())
            .sum();
        assert!(covered >= cap.area(), "cover must not undershoot");
        assert!(
            covered < cap.area() * 1.5,
            "cover overshoots: {covered} vs cap {}",
            cap.area()
        );
    }

    #[test]
    fn bounded_cover_is_superset_of_exact_cover() {
        let cap = Cap::new(Vec3::from_radec_deg(45.0, -20.0), 0.05);
        let exact = Coverer::new(12).cover(&cap);
        for budget in [1, 2, 4, 16, 64] {
            let bounded = Coverer::new(12).cover_bounded(&cap, budget);
            assert!(
                bounded.num_ranges() <= budget.max(8),
                "budget {budget} violated"
            );
            // Superset check: every exact range is inside the bounded set.
            for id in exact.iter_ids().take(500) {
                assert!(bounded.contains(id), "budget {budget} dropped {id}");
            }
        }
    }

    #[test]
    fn bounded_cover_with_large_budget_matches_exact() {
        let cap = Cap::new(Vec3::from_radec_deg(300.0, 5.0), 0.01);
        let exact = Coverer::new(10).cover(&cap);
        let bounded = Coverer::new(10).cover_bounded(&cap, 10_000);
        assert_eq!(exact, bounded);
    }

    #[test]
    fn caching_coverer_matches_plain_coverer_exactly() {
        // Many clustered caps (memo-friendly) plus scattered ones, through
        // one reused CachingCoverer: every cover must equal the plain
        // coverer's, bit for bit, at several levels and budgets.
        for level in [6u8, 10, 12] {
            let plain = Coverer::new(level);
            let mut caching = CachingCoverer::new(level);
            assert_eq!(caching.level(), level);
            for k in 0..200 {
                let (ra, dec, r) = if k % 3 == 0 {
                    // Clustered around one hotspot.
                    (120.0 + (k as f64) * 0.01, -30.0 + (k as f64) * 0.007, 1e-4)
                } else {
                    // Scattered, varied radius.
                    (
                        (k as f64 * 37.3) % 360.0,
                        ((k as f64 * 17.9) % 160.0) - 80.0,
                        1e-5 + (k as f64) * 1e-4,
                    )
                };
                let cap = Cap::new(Vec3::from_radec_deg(ra, dec), r);
                for budget in [1usize, 4, 16] {
                    assert_eq!(
                        caching.cover_bounded(&cap, budget),
                        plain.cover_bounded(&cap, budget),
                        "level {level}, cap {k}, budget {budget}"
                    );
                }
            }
        }
    }

    #[test]
    fn hemisphere_cover_is_half_the_sphere() {
        let cap = Cap::new(Vec3::NORTH, std::f64::consts::FRAC_PI_2);
        let cover = Coverer::new(6).cover(&cap);
        let total = HtmId::count_at_level(6);
        // Exactly half the trixels are strictly north; boundary trixels of the
        // equator are included conservatively.
        assert!(cover.len() >= total / 2);
        assert!(cover.len() < total * 6 / 10);
    }
}
