//! Region coverage: turning a sky region (spherical cap) into HTM ID ranges.
//!
//! The pre-processor needs, for every cross-match object, "a range of HTM ID
//! values, which serve as a bounding box covering all potential regions for
//! cross matching" (Section 3.1). The coverer walks the mesh from the eight
//! roots, pruning disjoint trixels, emitting whole subtrees for trixels fully
//! inside the region, and recursing on partial overlaps until the target
//! level, where partially-overlapping trixels are included conservatively.

use crate::cap::{Cap, CapTrixelRelation};
use crate::range::{HtmRange, HtmRangeSet};
use crate::trixel::Trixel;
use crate::MAX_LEVEL;

/// Computes conservative HTM coverages of sky regions at a fixed level.
#[derive(Debug, Clone, Copy)]
pub struct Coverer {
    level: u8,
}

impl Coverer {
    /// Creates a coverer emitting ranges at the given mesh `level`.
    pub fn new(level: u8) -> Self {
        assert!(level <= MAX_LEVEL, "level {level} exceeds MAX_LEVEL");
        Coverer { level }
    }

    /// The output level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Covers a spherical cap: returns the normalized set of level-`level`
    /// IDs whose trixels (possibly) intersect the cap.
    ///
    /// The cover is **complete** (every point of the cap lies in some covered
    /// trixel) and conservative (it may include trixels that only graze the
    /// cap boundary).
    pub fn cover(&self, cap: &Cap) -> HtmRangeSet {
        let mut ranges = Vec::new();
        for root in Trixel::roots() {
            self.visit(cap, &root, &mut ranges);
        }
        HtmRangeSet::from_ranges(ranges)
    }

    fn visit(&self, cap: &Cap, t: &Trixel, out: &mut Vec<HtmRange>) {
        match cap.classify(t) {
            CapTrixelRelation::Disjoint => {}
            CapTrixelRelation::Inside => {
                out.push(t.id().descendant_range(self.level));
            }
            CapTrixelRelation::Partial => {
                if t.id().level() == self.level {
                    out.push(HtmRange::singleton(t.id()));
                } else {
                    for c in t.children() {
                        self.visit(cap, &c, out);
                    }
                }
            }
        }
    }

    /// Covers the cap but stops refining once the cover consists of at most
    /// `max_ranges` ranges, re-expressing coarse trixels as deep ranges.
    ///
    /// Buckets only need *approximate* pruning; capping the range count keeps
    /// per-object bounding boxes small, trading a looser cover for less
    /// pre-processing work — the same reason the paper uses a single
    /// `[start, end]` pair per object.
    pub fn cover_bounded(&self, cap: &Cap, max_ranges: usize) -> HtmRangeSet {
        assert!(max_ranges >= 1, "need at least one range");
        // Breadth-first refinement: refine the frontier level by level and
        // stop when the next refinement would exceed the budget.
        let mut frontier: Vec<Trixel> = Vec::new();
        let mut inside: Vec<HtmRange> = Vec::new();
        for root in Trixel::roots() {
            match cap.classify(&root) {
                CapTrixelRelation::Disjoint => {}
                CapTrixelRelation::Inside => inside.push(root.id().descendant_range(self.level)),
                CapTrixelRelation::Partial => frontier.push(root),
            }
        }
        for _level in 0..self.level {
            let mut next: Vec<Trixel> = Vec::new();
            for t in &frontier {
                for c in t.children() {
                    match cap.classify(&c) {
                        CapTrixelRelation::Disjoint => {}
                        CapTrixelRelation::Inside => {
                            inside.push(c.id().descendant_range(self.level));
                        }
                        CapTrixelRelation::Partial => next.push(c),
                    }
                }
            }
            if inside.len() + next.len() > max_ranges {
                // Refining further would blow the budget: emit the current
                // frontier coarsely and stop.
                break;
            }
            frontier = next;
        }
        let mut ranges = inside;
        ranges.extend(frontier.iter().map(|t| t.id().descendant_range(self.level)));
        HtmRangeSet::from_ranges(ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::HtmId;
    use crate::index::locate;
    use crate::vector::Vec3;

    #[test]
    fn cover_contains_cap_center() {
        let cap = Cap::from_radec_deg(12.0, 34.0, 60.0);
        let cover = Coverer::new(10).cover(&cap);
        assert!(cover.contains(locate(cap.center(), 10)));
    }

    #[test]
    fn cover_is_complete_for_boundary_samples() {
        // Points on (just inside) the cap rim must be covered.
        let center = Vec3::from_radec_deg(200.0, -10.0);
        let radius = 0.01; // ~34 arcmin
        let cap = Cap::new(center, radius);
        let cover = Coverer::new(12).cover(&cap);
        // March around the rim at 0.999 of the radius.
        let (ra0, dec0) = center.to_radec();
        for k in 0..36 {
            let theta = k as f64 * std::f64::consts::TAU / 36.0;
            let p = Vec3::from_radec(
                ra0 + 0.999 * radius * theta.cos() / dec0.cos(),
                dec0 + 0.999 * radius * theta.sin(),
            );
            assert!(cap.contains(p), "sample {k} escaped the cap");
            assert!(cover.contains(locate(p, 12)), "sample {k} not covered");
        }
    }

    #[test]
    fn cover_excludes_far_away_ids() {
        let cap = Cap::from_radec_deg(10.0, 10.0, 10.0);
        let cover = Coverer::new(10).cover(&cap);
        let far = locate(Vec3::from_radec_deg(190.0, -10.0), 10);
        assert!(!cover.contains(far));
    }

    #[test]
    fn tiny_cap_covers_few_trixels() {
        // A 1-arcsecond error circle at level 14 touches at most a handful
        // of trixels (typically 1–4 around a corner).
        let cap = Cap::from_radec_deg(123.0, 45.0, 1.0);
        let cover = Coverer::new(14).cover(&cap);
        assert!(
            cover.len() <= 8,
            "cover unexpectedly large: {}",
            cover.len()
        );
        assert!(!cover.is_empty());
    }

    #[test]
    fn cover_area_is_sane() {
        // The summed real area of covered trixels must contain the cap and
        // exceed it only by a thin boundary ring (HTM trixels are not
        // equal-area, so the average-area estimate is useless here).
        let cap = Cap::new(Vec3::from_radec_deg(80.0, 40.0), 0.02);
        let level = 12;
        let cover = Coverer::new(level).cover(&cap);
        let covered: f64 = cover
            .iter_ids()
            .map(|i| crate::index::trixel_of(i).area())
            .sum();
        assert!(covered >= cap.area(), "cover must not undershoot");
        assert!(
            covered < cap.area() * 1.5,
            "cover overshoots: {covered} vs cap {}",
            cap.area()
        );
    }

    #[test]
    fn bounded_cover_is_superset_of_exact_cover() {
        let cap = Cap::new(Vec3::from_radec_deg(45.0, -20.0), 0.05);
        let exact = Coverer::new(12).cover(&cap);
        for budget in [1, 2, 4, 16, 64] {
            let bounded = Coverer::new(12).cover_bounded(&cap, budget);
            assert!(
                bounded.num_ranges() <= budget.max(8),
                "budget {budget} violated"
            );
            // Superset check: every exact range is inside the bounded set.
            for id in exact.iter_ids().take(500) {
                assert!(bounded.contains(id), "budget {budget} dropped {id}");
            }
        }
    }

    #[test]
    fn bounded_cover_with_large_budget_matches_exact() {
        let cap = Cap::new(Vec3::from_radec_deg(300.0, 5.0), 0.01);
        let exact = Coverer::new(10).cover(&cap);
        let bounded = Coverer::new(10).cover_bounded(&cap, 10_000);
        assert_eq!(exact, bounded);
    }

    #[test]
    fn hemisphere_cover_is_half_the_sphere() {
        let cap = Cap::new(Vec3::NORTH, std::f64::consts::FRAC_PI_2);
        let cover = Coverer::new(6).cover(&cap);
        let total = HtmId::count_at_level(6);
        // Exactly half the trixels are strictly north; boundary trixels of the
        // equator are included conservatively.
        assert!(cover.len() >= total / 2);
        assert!(cover.len() < total * 6 / 10);
    }
}
