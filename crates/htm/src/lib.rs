//! Hierarchical Triangular Mesh (HTM) spatial indexing.
//!
//! The HTM is a recursive quad-tree decomposition of the unit sphere into
//! spherical triangles ("trixels"), introduced by Kunszt, Szalay, Csabai and
//! Thakar for the Sloan Digital Sky Survey science archive and used by
//! SkyQuery to index celestial objects. Level 0 consists of the eight faces
//! of an octahedron; every level subdivides each trixel into four children by
//! connecting the (normalized) edge midpoints.
//!
//! Two properties matter for LifeRaft (Wang, Burns, Malik, CIDR 2009):
//!
//! 1. **Point indexing** — every unit vector maps to exactly one trixel per
//!    level, giving each object a compact integer ID ([`locate`]).
//! 2. **Space-filling curve** — the depth-first ID numbering preserves
//!    spatial locality, so sorting objects by HTM ID produces a linear
//!    ordering of the sky that can be cut into equal-sized, spatially
//!    coherent buckets (Figure 1 of the paper).
//!
//! The crate additionally provides spherical-cap region coverage
//! ([`cover::Coverer`]) used to compute the "bounding box" HTM ranges that
//! cross-match objects carry, and a sorted disjoint [`range::HtmRangeSet`]
//! algebra used throughout query pre-processing.
//!
//! # Example
//!
//! ```
//! use liferaft_htm::{locate, Vec3, HtmId, cover::Coverer, cap::Cap};
//!
//! // Index a point at RA=10°, Dec=+5° at HTM level 14 (the paper's level).
//! let p = Vec3::from_radec_deg(10.0, 5.0);
//! let id = locate(p, 14);
//! assert_eq!(id.level(), 14);
//!
//! // Cover a 1-arcminute error circle around the point.
//! let cap = Cap::new(p, (1.0 / 60.0_f64).to_radians());
//! let ranges = Coverer::new(14).cover(&cap);
//! assert!(ranges.contains(id));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cap;
pub mod cover;
pub mod id;
pub mod index;
pub mod range;
pub mod trixel;
pub mod vector;

pub use cap::Cap;
pub use cover::{CachingCoverer, Coverer};
pub use id::HtmId;
pub use index::{locate, trixel_of};
pub use range::{HtmRange, HtmRangeSet};
pub use trixel::Trixel;
pub use vector::Vec3;

/// The HTM level used by SkyQuery / the LifeRaft paper for object IDs.
///
/// "Each astronomical observation in SkyQuery is currently assigned a unique
/// 32-bit integer denoting the HTM ID at the fourteenth level" (Section 3.1).
pub const PAPER_LEVEL: u8 = 14;

/// Deepest level supported by the `u64` ID encoding (4 + 2·29 = 62 bits,
/// leaving headroom so `last_at_level` never overflows).
pub const MAX_LEVEL: u8 = 29;
