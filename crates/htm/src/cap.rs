//! Spherical caps: the circular sky regions used for cross-match error
//! circles and region queries.

use crate::trixel::Trixel;
use crate::vector::Vec3;

/// A spherical cap: all points within angular `radius` of `center`.
///
/// Cross-match is a *probabilistic* spatial join — instrument imprecision
/// turns every observation into a small error circle, and two observations
/// match when their circles' centers are within the combined radius. Caps are
/// also the query footprint for "area of the sky" exploration queries.
///
/// Radii are restricted to `(0, π/2]`: caps no larger than a hemisphere are
/// geodesically convex, which the coverage classifier relies on ("all three
/// corners inside ⇒ whole trixel inside").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cap {
    center: Vec3,
    radius: f64,
    /// Cached cos(radius): `p` inside ⇔ `p · center ≥ cos_radius`.
    cos_radius: f64,
    /// Cached sin²(radius) × (1 + 2e-9), for the arc test's
    /// square-root-free screen (margin pre-applied).
    arc_screen: f64,
    /// Cached sin²(radius × 1.001): the strict-containment screen used by
    /// the coverer's descent fast path. The 0.1% relative radius margin is
    /// ~10¹² ULPs, so "strictly inside by this screen" survives any
    /// rounding in either the screen or the exact classifier.
    strict_screen: f64,
}

impl Cap {
    /// Creates a cap from a unit-vector center and radius in radians.
    ///
    /// # Panics
    /// Panics if the radius is not in `(0, π/2]` or the center is not unit.
    pub fn new(center: Vec3, radius: f64) -> Self {
        assert!(
            radius > 0.0 && radius <= std::f64::consts::FRAC_PI_2,
            "cap radius must be in (0, π/2], got {radius}"
        );
        assert!(
            (center.norm() - 1.0).abs() < 1e-6,
            "cap center must be a unit vector"
        );
        let sin_radius = radius.sin();
        let strict = (radius * 1.001).min(std::f64::consts::FRAC_PI_2).sin();
        Cap {
            center,
            radius,
            cos_radius: radius.cos(),
            arc_screen: sin_radius * sin_radius * (1.0 + 2e-9),
            strict_screen: strict * strict,
        }
    }

    /// Convenience constructor from RA/Dec in degrees and radius in arcseconds.
    pub fn from_radec_deg(ra_deg: f64, dec_deg: f64, radius_arcsec: f64) -> Self {
        Cap::new(
            Vec3::from_radec_deg(ra_deg, dec_deg),
            (radius_arcsec / 3600.0).to_radians(),
        )
    }

    /// The cap center (unit vector).
    #[inline]
    pub fn center(&self) -> Vec3 {
        self.center
    }

    /// The angular radius in radians.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// sin²(radius × 1.001) — the coverer's strict-containment screen.
    #[inline]
    pub(crate) fn strict_screen(&self) -> f64 {
        self.strict_screen
    }

    /// True if the unit vector lies inside the cap (inclusive).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.dot(self.center) >= self.cos_radius
    }

    /// Solid angle of the cap in steradians: `2π(1 − cos r)`.
    pub fn area(&self) -> f64 {
        std::f64::consts::TAU * (1.0 - self.cos_radius)
    }

    /// Classifies a trixel against this cap for region coverage.
    pub fn classify(&self, t: &Trixel) -> CapTrixelRelation {
        let corners = t.corners();
        let inside = corners.iter().filter(|&&v| self.contains(v)).count();
        if inside == 3 {
            // Caps with radius ≤ π/2 are convex, and so are trixels; the
            // geodesic hull of the three corners (the whole trixel) is inside.
            return CapTrixelRelation::Inside;
        }
        if inside > 0 {
            return CapTrixelRelation::Partial;
        }
        // No corner inside. The cap may still poke through an edge or sit
        // entirely within the trixel's interior. Both tests consume the
        // same edge geometry — the edge-plane normals `n_i` and the center's
        // signed components `d_i = c·n_i` — so it is computed once and
        // shared (this is the coverer's innermost loop).
        let [a, b, c] = *corners;
        let edges = [(a, b), (b, c), (c, a)];
        let n = [a.cross(b), b.cross(c), c.cross(a)];
        let d = [
            self.center.dot(n[0]),
            self.center.dot(n[1]),
            self.center.dot(n[2]),
        ];
        // `t.contains(self.center)`, on the shared terms.
        if d.iter().all(|&di| di >= -crate::trixel::CONTAINS_EPS) {
            return CapTrixelRelation::Partial;
        }
        for i in 0..3 {
            if self.intersects_arc(edges[i].0, edges[i].1, n[i], d[i]) {
                return CapTrixelRelation::Partial;
            }
        }
        CapTrixelRelation::Disjoint
    }

    /// True if the cap boundary/interior meets the great-circle arc `a→b`,
    /// given the precomputed plane normal `n = a × b` and `cn = center · n`.
    ///
    /// Computes the point of the arc closest to the cap center: project the
    /// center onto the arc's great-circle plane, then check the projection
    /// falls between the endpoints (endpoint distances are handled by the
    /// corner tests in [`Cap::classify`]).
    fn intersects_arc(&self, a: Vec3, b: Vec3, n: Vec3, cn: f64) -> bool {
        // Square-root- and asin-free screen for the common far-away case:
        // sin(dist to great circle) = |c·n|/|n|, so
        // (c·n)² > sin²(radius)·|n|²·(1 + margin) implies the asin test
        // below fires. The 2e-9 relative margin is ~10⁶ ULPs — far beyond
        // any rounding in either formulation — so the screen never fires
        // where the exact test would not; the ambiguous band (including
        // degenerate arcs, whose |n|² ≈ 0 cannot satisfy the inequality)
        // falls through to the exact path.
        if cn * cn > self.arc_screen * n.norm_sq() {
            return false;
        }
        let n_norm = n.norm();
        if n_norm < 1e-15 {
            return false; // degenerate arc
        }
        let n = n.scale(1.0 / n_norm);
        // Distance from center to the great circle.
        let sin_dist = self.center.dot(n).abs().min(1.0);
        if sin_dist.asin() > self.radius {
            return false;
        }
        // Closest point on the great circle to the center.
        let proj = self.center - n.scale(self.center.dot(n));
        if proj.norm() < 1e-15 {
            // Center is one of the circle's poles: every point of the circle
            // is at π/2; covered only if radius == π/2 (checked above via
            // asin(1) > radius). Reaching here means radius == π/2 exactly.
            return true;
        }
        let p = proj.normalized();
        // p between a and b along the arc (counter-clockwise w.r.t. n)?
        a.cross(p).dot(n) >= 0.0 && p.cross(b).dot(n) >= 0.0
    }
}

/// How a trixel relates to a cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapTrixelRelation {
    /// The trixel lies entirely within the cap.
    Inside,
    /// The trixel and cap overlap partially (or the test is inconclusive and
    /// conservatively reported as overlapping).
    Partial,
    /// The trixel and cap are disjoint.
    Disjoint,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::locate_trixel;

    #[test]
    fn contains_basic() {
        let cap = Cap::new(Vec3::from_radec_deg(0.0, 0.0), 0.1);
        assert!(cap.contains(Vec3::from_radec_deg(0.0, 0.0)));
        assert!(cap.contains(Vec3::from_radec_deg(5.0, 0.0)));
        assert!(!cap.contains(Vec3::from_radec_deg(6.0, 0.0)));
    }

    #[test]
    fn from_radec_arcsec() {
        let cap = Cap::from_radec_deg(10.0, 10.0, 3600.0); // 1 degree
        assert!((cap.radius() - 1.0_f64.to_radians()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cap radius")]
    fn rejects_oversized_radius() {
        Cap::new(Vec3::NORTH, 2.0);
    }

    #[test]
    fn area_of_hemisphere() {
        let cap = Cap::new(Vec3::NORTH, std::f64::consts::FRAC_PI_2);
        assert!((cap.area() - std::f64::consts::TAU).abs() < 1e-12);
    }

    #[test]
    fn classify_inside() {
        // A huge cap centered on a small trixel: trixel fully inside.
        let t = locate_trixel(Vec3::from_radec_deg(45.0, 45.0), 8);
        let cap = Cap::new(t.center(), 0.5);
        assert_eq!(cap.classify(&t), CapTrixelRelation::Inside);
    }

    #[test]
    fn classify_disjoint() {
        let t = locate_trixel(Vec3::from_radec_deg(45.0, 45.0), 8);
        let cap = Cap::new(Vec3::from_radec_deg(225.0, -45.0), 0.1);
        assert_eq!(cap.classify(&t), CapTrixelRelation::Disjoint);
    }

    #[test]
    fn classify_partial_cap_inside_trixel() {
        // A tiny cap strictly inside a big trixel: no corners inside the cap,
        // no edges crossed, but the center is contained -> Partial.
        let t = Trixel::root(0);
        let cap = Cap::new(t.center(), 1e-4);
        assert_eq!(cap.classify(&t), CapTrixelRelation::Partial);
    }

    #[test]
    fn classify_partial_edge_crossing() {
        // Cap centered just outside an edge of a root trixel, poking through
        // without containing any corner.
        let t = Trixel::root(0); // corners at (RA 0, Dec 0), south pole, (RA 90, Dec 0)
                                 // The N3/S0 boundary is the equator between RA 0 and RA 90.
        let cap = Cap::new(Vec3::from_radec_deg(45.0, 1.0), 0.05); // ~2.9° radius
        assert_eq!(cap.classify(&t), CapTrixelRelation::Partial);
    }

    #[test]
    fn classify_corner_cases_consistent_with_sampling() {
        // Randomised-ish consistency: classification must agree with point
        // sampling (sampled points inside cap & trixel exist iff not Disjoint;
        // Inside means all sampled trixel points are inside the cap).
        let t = locate_trixel(Vec3::from_radec_deg(120.0, -30.0), 6);
        let samples: Vec<Vec3> = {
            let [a, b, c] = *t.corners();
            let mut v = vec![t.center(), a, b, c];
            v.push(a.midpoint(b));
            v.push(b.midpoint(c));
            v.push(a.midpoint(c));
            v
        };
        for (center, radius) in [
            (t.center(), 1.0),                         // giant: Inside
            (t.center(), 1e-5),                        // tiny inside: Partial
            (Vec3::from_radec_deg(300.0, 60.0), 0.05), // far away: Disjoint
        ] {
            let cap = Cap::new(center, radius);
            match cap.classify(&t) {
                CapTrixelRelation::Inside => {
                    assert!(samples.iter().all(|&p| cap.contains(p)));
                }
                CapTrixelRelation::Disjoint => {
                    assert!(samples.iter().all(|&p| !cap.contains(p)));
                }
                CapTrixelRelation::Partial => {}
            }
        }
    }
}
