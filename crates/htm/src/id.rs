//! HTM identifier encoding and tree navigation.
//!
//! An HTM ID encodes a path through the triangular quad-tree. The eight
//! level-0 trixels (octahedron faces) are numbered 8–15 (`0b1000`–`0b1111`;
//! the leading 1-bit marks the start of the encoding), and each level appends
//! two bits selecting one of four children. A level-`L` ID therefore occupies
//! `4 + 2·L` bits, and IDs at a fixed level are contiguous integers in
//! `[8·4^L, 16·4^L)` — the property that turns depth-first numbering into a
//! space-filling curve (Figure 1 of the paper labels each trixel with these
//! two-bit path digits).

use std::fmt;

use crate::range::HtmRange;
use crate::MAX_LEVEL;

/// An HTM trixel identifier at some level of the mesh.
///
/// Ordering of `HtmId`s at the same level corresponds to position along the
/// HTM space-filling curve; the LifeRaft bucket partitioning sorts objects by
/// this value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HtmId(u64);

/// Names of the eight root trixels in conventional order (S0..S3, N0..N3).
pub const ROOT_NAMES: [&str; 8] = ["S0", "S1", "S2", "S3", "N0", "N1", "N2", "N3"];

impl HtmId {
    /// Smallest raw value of a root trixel (`S0`).
    pub const FIRST_ROOT: u64 = 8;

    /// Creates an ID from its raw integer encoding.
    ///
    /// Returns `None` if the value is not a valid HTM ID: valid encodings
    /// have their most significant set bit at an even position ≥ 3 (i.e. the
    /// value lies in `[2·4^k, 4·4^k)` for some `k ≥ 1`).
    pub fn from_raw(raw: u64) -> Option<Self> {
        if raw < Self::FIRST_ROOT {
            return None;
        }
        let msb = 63 - raw.leading_zeros(); // position of highest set bit
        if msb % 2 != 1 {
            // Root IDs 8..=15 have msb = 3; each level adds 2 bits, keeping
            // the msb at an odd position.
            return None;
        }
        let level = (msb as u8 - 3) / 2;
        if level > MAX_LEVEL {
            return None;
        }
        Some(HtmId(raw))
    }

    /// Creates an ID from its raw encoding, panicking on invalid input.
    ///
    /// Prefer [`HtmId::from_raw`] for untrusted values; this is for literals
    /// and tests.
    #[track_caller]
    pub fn from_raw_unchecked(raw: u64) -> Self {
        Self::from_raw(raw).unwrap_or_else(|| panic!("invalid raw HTM ID {raw:#x}"))
    }

    /// Creates the root trixel ID for face index `face ∈ 0..8` (S0..S3, N0..N3).
    #[inline]
    pub fn root(face: u8) -> Self {
        assert!(face < 8, "HTM has 8 root trixels, got face {face}");
        HtmId(Self::FIRST_ROOT + face as u64)
    }

    /// The raw integer encoding.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The mesh level of this ID (0 for the octahedron faces).
    #[inline]
    pub fn level(self) -> u8 {
        let msb = 63 - self.0.leading_zeros();
        (msb as u8 - 3) / 2
    }

    /// The `k`-th child (k ∈ 0..4) one level deeper.
    #[inline]
    pub fn child(self, k: u8) -> Self {
        debug_assert!(k < 4, "trixels have 4 children, got {k}");
        debug_assert!(self.level() < MAX_LEVEL, "exceeded MAX_LEVEL");
        HtmId((self.0 << 2) | k as u64)
    }

    /// The parent trixel, or `None` for root trixels.
    #[inline]
    pub fn parent(self) -> Option<Self> {
        if self.level() == 0 {
            None
        } else {
            Some(HtmId(self.0 >> 2))
        }
    }

    /// Which child of its parent this trixel is (0..4), or `None` for roots.
    #[inline]
    pub fn child_index(self) -> Option<u8> {
        if self.level() == 0 {
            None
        } else {
            Some((self.0 & 0b11) as u8)
        }
    }

    /// The root face index (0..8) this trixel descends from.
    #[inline]
    pub fn root_face(self) -> u8 {
        let shift = 2 * self.level() as u32;
        ((self.0 >> shift) - Self::FIRST_ROOT) as u8
    }

    /// The two-bit path digit chosen at `level ∈ 1..=self.level()`.
    #[inline]
    pub fn path_digit(self, level: u8) -> u8 {
        debug_assert!(level >= 1 && level <= self.level());
        let shift = 2 * (self.level() - level) as u32;
        ((self.0 >> shift) & 0b11) as u8
    }

    /// The ancestor of this ID at a shallower (or equal) `level`.
    #[inline]
    pub fn ancestor_at(self, level: u8) -> Self {
        let my = self.level();
        assert!(
            level <= my,
            "ancestor_at({level}) on a level-{my} ID; use descendant_range for deeper levels"
        );
        HtmId(self.0 >> (2 * (my - level) as u32))
    }

    /// The contiguous range of descendant IDs at a deeper (or equal) `level`.
    ///
    /// This is the heart of the space-filling-curve property: all level-`L`
    /// descendants of a trixel form one consecutive integer interval.
    #[inline]
    pub fn descendant_range(self, level: u8) -> HtmRange {
        let my = self.level();
        assert!(
            level >= my && level <= MAX_LEVEL,
            "descendant_range({level}) on a level-{my} ID"
        );
        let shift = 2 * (level - my) as u32;
        let lo = self.0 << shift;
        let hi = ((self.0 + 1) << shift) - 1;
        HtmRange::new(HtmId(lo), HtmId(hi))
    }

    /// True if `other` is this trixel or one of its descendants.
    #[inline]
    pub fn contains_id(self, other: HtmId) -> bool {
        let (my, theirs) = (self.level(), other.level());
        theirs >= my && other.ancestor_at(my) == self
    }

    /// First (smallest) ID at a given level.
    #[inline]
    pub fn first_at_level(level: u8) -> Self {
        assert!(level <= MAX_LEVEL);
        HtmId(Self::FIRST_ROOT << (2 * level as u32))
    }

    /// Last (largest) ID at a given level.
    #[inline]
    pub fn last_at_level(level: u8) -> Self {
        assert!(level <= MAX_LEVEL);
        HtmId((16u64 << (2 * level as u32)) - 1)
    }

    /// Number of trixels at a given level (`8 · 4^level`).
    #[inline]
    pub fn count_at_level(level: u8) -> u64 {
        assert!(level <= MAX_LEVEL);
        8u64 << (2 * level as u32)
    }

    /// The next ID along the space-filling curve at the same level, if any.
    #[inline]
    pub fn next(self) -> Option<Self> {
        if self == Self::last_at_level(self.level()) {
            None
        } else {
            Some(HtmId(self.0 + 1))
        }
    }

    /// Zero-based position of this trixel along the curve at its own level.
    #[inline]
    pub fn curve_position(self) -> u64 {
        self.0 - Self::first_at_level(self.level()).0
    }

    /// The canonical name, e.g. `N2:0313` (root face then path digits).
    pub fn name(self) -> String {
        let mut s = String::with_capacity(3 + self.level() as usize);
        s.push_str(ROOT_NAMES[self.root_face() as usize]);
        if self.level() > 0 {
            s.push(':');
            for l in 1..=self.level() {
                s.push((b'0' + self.path_digit(l)) as char);
            }
        }
        s
    }
}

impl fmt::Debug for HtmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HtmId({} = {})", self.0, self.name())
    }
}

impl fmt::Display for HtmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_8_through_15() {
        for face in 0..8 {
            let id = HtmId::root(face);
            assert_eq!(id.raw(), 8 + face as u64);
            assert_eq!(id.level(), 0);
            assert_eq!(id.root_face(), face);
            assert_eq!(id.parent(), None);
            assert_eq!(id.child_index(), None);
        }
    }

    #[test]
    fn from_raw_rejects_invalid() {
        for bad in [0u64, 1, 7, 16, 17, 30, 31, 64, 127] {
            assert!(HtmId::from_raw(bad).is_none(), "{bad} should be invalid");
        }
        for good in [8u64, 15, 32, 33, 63, 128, 255] {
            assert!(HtmId::from_raw(good).is_some(), "{good} should be valid");
        }
    }

    #[test]
    #[should_panic(expected = "invalid raw HTM ID")]
    fn from_raw_unchecked_panics() {
        HtmId::from_raw_unchecked(7);
    }

    #[test]
    fn child_parent_round_trip() {
        let root = HtmId::root(3);
        for k in 0..4 {
            let c = root.child(k);
            assert_eq!(c.level(), 1);
            assert_eq!(c.parent(), Some(root));
            assert_eq!(c.child_index(), Some(k));
            assert_eq!(c.root_face(), 3);
        }
    }

    #[test]
    fn deep_path_digits() {
        // N2 (face 6) -> child 0 -> 3 -> 1 -> 3
        let id = HtmId::root(6).child(0).child(3).child(1).child(3);
        assert_eq!(id.level(), 4);
        assert_eq!(id.path_digit(1), 0);
        assert_eq!(id.path_digit(2), 3);
        assert_eq!(id.path_digit(3), 1);
        assert_eq!(id.path_digit(4), 3);
        assert_eq!(id.name(), "N2:0313");
        assert_eq!(id.ancestor_at(2), HtmId::root(6).child(0).child(3));
    }

    #[test]
    fn descendant_range_covers_exactly_the_subtree() {
        let id = HtmId::root(1).child(2);
        let r = id.descendant_range(3);
        // 4^(3-1) = 16 descendants.
        assert_eq!(r.len(), 16);
        assert_eq!(r.lo().ancestor_at(1), id);
        assert_eq!(r.hi().ancestor_at(1), id);
        // The ID just outside on either side is not a descendant.
        let before = HtmId::from_raw_unchecked(r.lo().raw() - 1);
        let after = HtmId::from_raw_unchecked(r.hi().raw() + 1);
        assert_ne!(before.ancestor_at(1), id);
        assert_ne!(after.ancestor_at(1), id);
    }

    #[test]
    fn descendant_range_at_same_level_is_singleton() {
        let id = HtmId::root(0).child(1);
        let r = id.descendant_range(1);
        assert_eq!(r.lo(), id);
        assert_eq!(r.hi(), id);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn contains_id_semantics() {
        let a = HtmId::root(2).child(1);
        assert!(a.contains_id(a));
        assert!(a.contains_id(a.child(3)));
        assert!(a.contains_id(a.child(3).child(0)));
        assert!(!a.contains_id(HtmId::root(2).child(2)));
        assert!(!a.contains_id(HtmId::root(2))); // parent not contained
        assert!(HtmId::root(2).contains_id(a));
    }

    #[test]
    fn level_extremes() {
        assert_eq!(HtmId::first_at_level(0).raw(), 8);
        assert_eq!(HtmId::last_at_level(0).raw(), 15);
        assert_eq!(HtmId::first_at_level(1).raw(), 32);
        assert_eq!(HtmId::last_at_level(1).raw(), 63);
        assert_eq!(HtmId::count_at_level(0), 8);
        assert_eq!(HtmId::count_at_level(1), 32);
        assert_eq!(HtmId::count_at_level(14), 8u64 << 28);
        // The paper's level-14 IDs fit in 32 bits.
        assert!(HtmId::last_at_level(14).raw() < u32::MAX as u64 + 1);
    }

    #[test]
    fn next_walks_the_curve() {
        let mut id = HtmId::first_at_level(1);
        let mut count = 1;
        while let Some(n) = id.next() {
            assert_eq!(n.raw(), id.raw() + 1);
            id = n;
            count += 1;
        }
        assert_eq!(count, HtmId::count_at_level(1));
        assert_eq!(id, HtmId::last_at_level(1));
    }

    #[test]
    fn curve_position_is_zero_based() {
        assert_eq!(HtmId::first_at_level(5).curve_position(), 0);
        assert_eq!(
            HtmId::last_at_level(5).curve_position(),
            HtmId::count_at_level(5) - 1
        );
    }

    #[test]
    fn max_level_fits_in_u64() {
        let last = HtmId::last_at_level(MAX_LEVEL);
        assert_eq!(last.level(), MAX_LEVEL);
        assert!(HtmId::from_raw(last.raw()).is_some());
    }

    #[test]
    fn display_names() {
        assert_eq!(HtmId::root(0).to_string(), "S0");
        assert_eq!(HtmId::root(7).to_string(), "N3");
        assert_eq!(HtmId::root(4).child(2).to_string(), "N0:2");
    }
}
