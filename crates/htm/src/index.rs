//! Point location: mapping unit vectors to HTM IDs and back.

use crate::id::HtmId;
use crate::trixel::Trixel;
use crate::vector::Vec3;
use crate::MAX_LEVEL;

/// Returns the HTM ID of the trixel containing `p` at the given `level`.
///
/// Walks from the containing octahedron face down the quad-tree, testing the
/// four children at every step. Points on trixel boundaries are claimed by
/// the first child (in HTM child order) whose inclusive containment test
/// passes, which makes the assignment total and deterministic.
///
/// # Panics
/// Panics if `level > MAX_LEVEL` or `p` is not (approximately) unit length.
pub fn locate(p: Vec3, level: u8) -> HtmId {
    locate_trixel(p, level).id()
}

/// Like [`locate`], but returns the full [`Trixel`] (corners included).
pub fn locate_trixel(p: Vec3, level: u8) -> Trixel {
    assert!(
        level <= MAX_LEVEL,
        "level {level} exceeds MAX_LEVEL {MAX_LEVEL}"
    );
    assert!(
        (p.norm() - 1.0).abs() < 1e-6,
        "locate requires a unit vector, |p| = {}",
        p.norm()
    );
    let mut cur = root_containing(p);
    for _ in 0..level {
        cur = descend(cur, p);
    }
    cur
}

/// The root trixel containing `p` (first match in face order for boundary points).
fn root_containing(p: Vec3) -> Trixel {
    for t in Trixel::roots() {
        if t.contains(p) {
            return t;
        }
    }
    // Floating-point slop can in principle exclude a point from all eight
    // faces only if it is microscopically off the sphere near an edge; fall
    // back to the face whose center is nearest. This keeps `locate` total.
    Trixel::roots()
        .into_iter()
        .max_by(|a, b| {
            a.center()
                .dot(p)
                .partial_cmp(&b.center().dot(p))
                .expect("dot products are finite")
        })
        .expect("eight roots exist")
}

/// The child of `t` containing `p` (first match in child order).
fn descend(t: Trixel, p: Vec3) -> Trixel {
    let children = t.children();
    for c in children {
        if c.contains(p) {
            return c;
        }
    }
    // Same fallback rationale as `root_containing`: pick the child whose
    // center is closest. Exercised only by adversarial boundary points.
    children
        .into_iter()
        .max_by(|a, b| {
            a.center()
                .dot(p)
                .partial_cmp(&b.center().dot(p))
                .expect("dot products are finite")
        })
        .expect("four children exist")
}

/// Reconstructs the [`Trixel`] (corner geometry) for an HTM ID.
///
/// Replays the two-bit path digits stored in the ID from the root face down.
pub fn trixel_of(id: HtmId) -> Trixel {
    let mut t = Trixel::root(id.root_face());
    for l in 1..=id.level() {
        t = t.child(id.path_digit(l));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_level0_matches_roots() {
        for face in 0..8u8 {
            let t = Trixel::root(face);
            assert_eq!(locate(t.center(), 0), HtmId::root(face));
        }
    }

    #[test]
    fn locate_id_round_trips_through_trixel_of() {
        for &(ra, dec) in &[
            (0.1, 0.1),
            (45.0, 45.0),
            (123.4, -56.7),
            (200.0, 80.0),
            (359.0, -89.0),
            (90.0, 0.5),
        ] {
            let p = Vec3::from_radec_deg(ra, dec);
            for level in [0u8, 1, 5, 10, 14] {
                let id = locate(p, level);
                assert_eq!(id.level(), level);
                let t = trixel_of(id);
                assert_eq!(t.id(), id);
                assert!(t.contains(p), "trixel {id} lost point ({ra}, {dec})");
            }
        }
    }

    #[test]
    fn deeper_ids_refine_shallower_ones() {
        let p = Vec3::from_radec_deg(77.7, -33.3);
        let shallow = locate(p, 6);
        let deep = locate(p, 14);
        assert_eq!(deep.ancestor_at(6), shallow);
    }

    #[test]
    fn nearby_points_share_deep_prefixes() {
        // Spatial locality: two points 0.001° apart agree to a deep level.
        let a = Vec3::from_radec_deg(50.0, 20.0);
        let b = Vec3::from_radec_deg(50.001, 20.0);
        let ia = locate(a, 14);
        let ib = locate(b, 14);
        // They must at least share the level-7 ancestor (trixel edge ~0.4°).
        assert_eq!(ia.ancestor_at(7), ib.ancestor_at(7));
    }

    #[test]
    fn octahedron_vertices_locate_totally() {
        // The worst boundary points: corners shared by four faces.
        for v in crate::trixel::OCTAHEDRON {
            let id = locate(v, 14);
            assert!(trixel_of(id).contains(v));
        }
    }

    #[test]
    fn level14_fits_paper_encoding() {
        let p = Vec3::from_radec_deg(12.3, 4.5);
        let id = locate(p, 14);
        assert!(id.raw() <= u32::MAX as u64, "level-14 IDs are 32-bit");
    }

    #[test]
    #[should_panic(expected = "unit vector")]
    fn locate_rejects_non_unit_vectors() {
        locate(Vec3::new(2.0, 0.0, 0.0), 5);
    }
}
