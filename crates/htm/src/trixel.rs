//! Spherical triangles ("trixels") of the mesh and their geometry.

use crate::id::HtmId;
use crate::vector::Vec3;

/// Tolerance for boundary containment tests.
///
/// Points that lie numerically *on* a trixel edge must be claimed by at least
/// one adjacent trixel; the slack makes `contains` err on the inclusive side
/// so coverage tests remain complete. `locate` resolves the resulting
/// ambiguity deterministically by taking the first matching child.
pub const CONTAINS_EPS: f64 = 1e-12;

/// A spherical triangle of the HTM, defined by three corner unit vectors in
/// counter-clockwise order (seen from outside the sphere).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trixel {
    id: HtmId,
    corners: [Vec3; 3],
}

/// The octahedron vertices used to seed the mesh, in the conventional HTM
/// order `v0..v5`.
pub const OCTAHEDRON: [Vec3; 6] = [
    Vec3::new(0.0, 0.0, 1.0),  // v0: north pole
    Vec3::new(1.0, 0.0, 0.0),  // v1: RA 0
    Vec3::new(0.0, 1.0, 0.0),  // v2: RA 90
    Vec3::new(-1.0, 0.0, 0.0), // v3: RA 180
    Vec3::new(0.0, -1.0, 0.0), // v4: RA 270
    Vec3::new(0.0, 0.0, -1.0), // v5: south pole
];

/// Corner assignments of the eight root trixels (indices into [`OCTAHEDRON`]),
/// in the conventional S0..S3, N0..N3 order matching [`HtmId::root`].
const ROOT_CORNERS: [[usize; 3]; 8] = [
    [1, 5, 2], // S0
    [2, 5, 3], // S1
    [3, 5, 4], // S2
    [4, 5, 1], // S3
    [1, 0, 4], // N0
    [4, 0, 3], // N1
    [3, 0, 2], // N2
    [2, 0, 1], // N3
];

impl Trixel {
    /// The root trixel for octahedron face `face ∈ 0..8`.
    pub fn root(face: u8) -> Self {
        let idx = ROOT_CORNERS[face as usize];
        Trixel {
            id: HtmId::root(face),
            corners: [OCTAHEDRON[idx[0]], OCTAHEDRON[idx[1]], OCTAHEDRON[idx[2]]],
        }
    }

    /// All eight root trixels (cached — region covers fetch these once per
    /// covered object).
    pub fn roots() -> [Trixel; 8] {
        static ROOTS: std::sync::OnceLock<[Trixel; 8]> = std::sync::OnceLock::new();
        *ROOTS.get_or_init(|| std::array::from_fn(|f| Trixel::root(f as u8)))
    }

    /// This trixel's identifier.
    #[inline]
    pub fn id(&self) -> HtmId {
        self.id
    }

    /// The three corner unit vectors (counter-clockwise).
    #[inline]
    pub fn corners(&self) -> &[Vec3; 3] {
        &self.corners
    }

    /// The normalized centroid of the corners — a representative interior point.
    pub fn center(&self) -> Vec3 {
        (self.corners[0] + self.corners[1] + self.corners[2]).normalized()
    }

    /// An upper bound (radians) on the angular distance from [`Trixel::center`]
    /// to any point of the trixel: the max corner distance (corners are the
    /// extremal points of a spherical triangle with edges < π).
    pub fn bounding_radius(&self) -> f64 {
        let c = self.center();
        self.corners
            .iter()
            .map(|&v| c.angle_to(v))
            .fold(0.0, f64::max)
    }

    /// Splits into the four child trixels using the HTM midpoint rule.
    ///
    /// With corners `(v0, v1, v2)` and edge midpoints `w0 = mid(v1,v2)`,
    /// `w1 = mid(v0,v2)`, `w2 = mid(v0,v1)`, the children are numbered
    /// `0:(v0,w2,w1)`, `1:(v1,w0,w2)`, `2:(v2,w1,w0)`, `3:(w0,w1,w2)` —
    /// the ordering that defines the HTM space-filling curve.
    pub fn children(&self) -> [Trixel; 4] {
        let [v0, v1, v2] = self.corners;
        let w0 = v1.midpoint(v2);
        let w1 = v0.midpoint(v2);
        let w2 = v0.midpoint(v1);
        [
            Trixel {
                id: self.id.child(0),
                corners: [v0, w2, w1],
            },
            Trixel {
                id: self.id.child(1),
                corners: [v1, w0, w2],
            },
            Trixel {
                id: self.id.child(2),
                corners: [v2, w1, w0],
            },
            Trixel {
                id: self.id.child(3),
                corners: [w0, w1, w2],
            },
        ]
    }

    /// The child with index `k ∈ 0..4`.
    pub fn child(&self, k: u8) -> Trixel {
        self.children()[k as usize]
    }

    /// True if the unit vector lies inside this trixel (inclusive of edges,
    /// within [`CONTAINS_EPS`] tolerance).
    ///
    /// A point is inside a spherical triangle with counter-clockwise corners
    /// iff it is on the positive side of all three edge great-circles, i.e.
    /// `(vi × vj) · p ≥ 0` for consecutive corner pairs.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        let [a, b, c] = self.corners;
        a.cross(b).dot(p) >= -CONTAINS_EPS
            && b.cross(c).dot(p) >= -CONTAINS_EPS
            && c.cross(a).dot(p) >= -CONTAINS_EPS
    }

    /// Strict interior test used for sanity checks (no boundary tolerance).
    pub fn contains_strict(&self, p: Vec3) -> bool {
        let [a, b, c] = self.corners;
        a.cross(b).dot(p) > CONTAINS_EPS
            && b.cross(c).dot(p) > CONTAINS_EPS
            && c.cross(a).dot(p) > CONTAINS_EPS
    }

    /// Solid angle of the trixel, in steradians (Van Oosterom–Strackee).
    pub fn area(&self) -> f64 {
        let [a, b, c] = self.corners;
        let num = a.dot(b.cross(c)).abs();
        let den = 1.0 + a.dot(b) + b.dot(c) + c.dot(a);
        2.0 * num.atan2(den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn roots_tile_the_sphere() {
        let total: f64 = Trixel::roots().iter().map(Trixel::area).sum();
        assert!((total - 4.0 * PI).abs() < 1e-9, "total area {total}");
    }

    #[test]
    fn roots_have_ccw_orientation() {
        // CCW corners seen from outside means each root contains its center.
        for t in Trixel::roots() {
            assert!(
                t.contains(t.center()),
                "{:?} does not contain center",
                t.id()
            );
            assert!(t.contains_strict(t.center()));
        }
    }

    #[test]
    fn children_partition_parent_area() {
        let t = Trixel::root(5);
        let child_area: f64 = t.children().iter().map(Trixel::area).sum();
        assert!((child_area - t.area()).abs() < 1e-9);
    }

    #[test]
    fn children_lie_within_parent() {
        let t = Trixel::root(2).child(3).child(1);
        for c in t.children() {
            assert!(t.contains(c.center()));
            for &corner in c.corners() {
                assert!(t.contains(corner));
            }
            assert_eq!(c.id().parent(), Some(t.id()));
        }
    }

    #[test]
    fn corner_points_are_contained_inclusively() {
        let t = Trixel::root(0);
        for &corner in t.corners() {
            assert!(t.contains(corner));
            assert!(!t.contains_strict(corner));
        }
    }

    #[test]
    fn every_point_is_in_exactly_one_strict_root() {
        // Interior points (not on octahedron edges) are in exactly one root.
        let p = Vec3::from_radec_deg(33.0, 12.0);
        let n = Trixel::roots()
            .iter()
            .filter(|t| t.contains_strict(p))
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn antipode_of_interior_point_is_outside() {
        let t = Trixel::root(4);
        let c = t.center();
        assert!(!t.contains(c.scale(-1.0)));
    }

    #[test]
    fn bounding_radius_bounds_corners() {
        let t = Trixel::root(1).child(0).child(2);
        let c = t.center();
        let r = t.bounding_radius();
        for &v in t.corners() {
            assert!(c.angle_to(v) <= r + 1e-12);
        }
        // And shrinks roughly by half per level.
        let child_r = t.child(3).bounding_radius();
        assert!(child_r < r * 0.75);
    }

    #[test]
    fn area_shrinks_by_roughly_a_quarter_per_level() {
        // Subdivision is exactly area-preserving in total but uneven across
        // children (the middle child of a root octant is ~1.4× the average).
        let t = Trixel::root(6);
        let avg_child = t.area() / 4.0;
        for c in t.children() {
            let ratio = c.area() / avg_child;
            assert!((0.5..1.6).contains(&ratio), "ratio {ratio}");
        }
    }
}
