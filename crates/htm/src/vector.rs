//! Unit vectors on the celestial sphere and spherical trigonometry helpers.

use std::fmt;

/// A three-dimensional vector, usually a unit vector on the celestial sphere.
///
/// Astronomical positions are given as (right ascension, declination) pairs;
/// all internal geometry works on Cartesian unit vectors because the HTM
/// containment tests reduce to sign tests of scalar triple products.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    /// X component (towards RA=0°, Dec=0°).
    pub x: f64,
    /// Y component (towards RA=90°, Dec=0°).
    pub y: f64,
    /// Z component (towards the north celestial pole).
    pub z: f64,
}

impl Vec3 {
    /// Creates a vector from raw components without normalizing.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Unit vector along +Z (the north celestial pole).
    pub const NORTH: Vec3 = Vec3::new(0.0, 0.0, 1.0);
    /// Unit vector along −Z (the south celestial pole).
    pub const SOUTH: Vec3 = Vec3::new(0.0, 0.0, -1.0);

    /// Builds a unit vector from right ascension and declination in radians.
    #[inline]
    pub fn from_radec(ra: f64, dec: f64) -> Self {
        let (sin_ra, cos_ra) = ra.sin_cos();
        let (sin_dec, cos_dec) = dec.sin_cos();
        Vec3::new(cos_dec * cos_ra, cos_dec * sin_ra, sin_dec)
    }

    /// Builds a unit vector from right ascension and declination in degrees.
    #[inline]
    pub fn from_radec_deg(ra_deg: f64, dec_deg: f64) -> Self {
        Self::from_radec(ra_deg.to_radians(), dec_deg.to_radians())
    }

    /// Returns `(ra, dec)` in radians, with `ra ∈ [0, 2π)` and `dec ∈ [−π/2, π/2]`.
    pub fn to_radec(self) -> (f64, f64) {
        let dec = self.z.clamp(-1.0, 1.0).asin();
        let mut ra = self.y.atan2(self.x);
        if ra < 0.0 {
            ra += std::f64::consts::TAU;
        }
        // The poles have no well-defined RA; report 0 for determinism.
        if self.x == 0.0 && self.y == 0.0 {
            ra = 0.0;
        }
        (ra, dec)
    }

    /// Returns `(ra, dec)` in degrees.
    pub fn to_radec_deg(self) -> (f64, f64) {
        let (ra, dec) = self.to_radec();
        (ra.to_degrees(), dec.to_degrees())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (no square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    /// Panics in debug builds if the vector is (near) zero; geometry code
    /// never normalizes degenerate vectors when inputs are unit vectors.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 1e-12, "cannot normalize near-zero vector {self:?}");
        Vec3::new(self.x / n, self.y / n, self.z / n)
    }

    /// Scalar multiplication.
    #[inline]
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Normalized midpoint of two unit vectors (the HTM edge-bisection rule).
    #[inline]
    pub fn midpoint(self, o: Vec3) -> Vec3 {
        (self + o).normalized()
    }

    /// Angular distance to another unit vector, in radians.
    ///
    /// Uses the `atan2(|a×b|, a·b)` form, which is numerically stable for
    /// both tiny separations (where `acos(a·b)` loses precision — exactly the
    /// arcsecond-scale regime of cross-match radii) and near-antipodal pairs.
    #[inline]
    pub fn angle_to(self, o: Vec3) -> f64 {
        self.cross(o).norm().atan2(self.dot(o))
    }

    /// True if the angular distance to `o` is at most `radius` radians.
    ///
    /// Compares chord lengths, avoiding trigonometry in the hot cross-match
    /// inner loop: `angle ≤ r  ⇔  |a−b|² ≤ (2·sin(r/2))²` for unit vectors.
    #[inline]
    pub fn within_angle(self, o: Vec3, radius: f64) -> bool {
        let d = self - o;
        let chord = 2.0 * (radius * 0.5).sin();
        d.dot(d) <= chord * chord
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;

    /// Component-wise sum.
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;

    /// Component-wise difference.
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ra, dec) = self.to_radec_deg();
        write!(f, "(ra={ra:.6}°, dec={dec:.6}°)")
    }
}

/// Precomputed squared chord length for a given angular radius.
///
/// The cross-match inner loop tests millions of candidate pairs against the
/// same radius; hoisting the `sin` out of the loop is a measurable win.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChordBound {
    radius: f64,
    chord2: f64,
}

impl ChordBound {
    /// Builds the bound for an angular `radius` in radians (must be in `[0, π]`).
    #[inline]
    pub fn new(radius: f64) -> Self {
        debug_assert!((0.0..=std::f64::consts::PI).contains(&radius));
        let chord = 2.0 * (radius * 0.5).sin();
        ChordBound {
            radius,
            chord2: chord * chord,
        }
    }

    /// The angular radius this bound was constructed from, in radians.
    #[inline]
    pub fn radius(self) -> f64 {
        self.radius
    }

    /// True if unit vectors `a` and `b` are within the angular radius.
    #[inline]
    pub fn matches(self, a: Vec3, b: Vec3) -> bool {
        let d = a - b;
        d.dot(d) <= self.chord2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    #[test]
    fn radec_round_trip() {
        for &(ra, dec) in &[
            (0.0, 0.0),
            (10.0, 5.0),
            (180.0, -45.0),
            (359.9, 89.0),
            (123.456, -67.89),
        ] {
            let v = Vec3::from_radec_deg(ra, dec);
            assert!((v.norm() - 1.0).abs() < EPS, "not unit length");
            let (ra2, dec2) = v.to_radec_deg();
            assert!((ra - ra2).abs() < 1e-9, "ra {ra} -> {ra2}");
            assert!((dec - dec2).abs() < 1e-9, "dec {dec} -> {dec2}");
        }
    }

    #[test]
    fn poles_have_deterministic_ra() {
        assert_eq!(Vec3::NORTH.to_radec(), (0.0, FRAC_PI_2));
        assert_eq!(Vec3::SOUTH.to_radec(), (0.0, -FRAC_PI_2));
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Vec3::from_radec_deg(30.0, 10.0);
        let b = Vec3::from_radec_deg(80.0, -20.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < EPS);
        assert!(c.dot(b).abs() < EPS);
    }

    #[test]
    fn angle_to_matches_known_separations() {
        let a = Vec3::from_radec_deg(0.0, 0.0);
        let b = Vec3::from_radec_deg(90.0, 0.0);
        assert!((a.angle_to(b) - FRAC_PI_2).abs() < EPS);
        let c = Vec3::from_radec_deg(180.0, 0.0);
        assert!((a.angle_to(c) - PI).abs() < EPS);
        assert!(a.angle_to(a) < EPS);
    }

    #[test]
    fn angle_to_is_precise_at_arcsecond_scale() {
        let arcsec = (1.0 / 3600.0_f64).to_radians();
        let a = Vec3::from_radec_deg(10.0, 20.0);
        let b = Vec3::from_radec_deg(10.0, 20.0 + 1.0 / 3600.0);
        let got = a.angle_to(b);
        assert!(
            (got - arcsec).abs() < arcsec * 1e-6,
            "got {got}, want {arcsec}"
        );
    }

    #[test]
    fn within_angle_agrees_with_angle_to() {
        let a = Vec3::from_radec_deg(42.0, -7.0);
        for sep_deg in [0.001, 0.01, 0.5, 10.0, 90.0] {
            let b = Vec3::from_radec_deg(42.0, -7.0 + sep_deg);
            let sep = a.angle_to(b);
            assert!(a.within_angle(b, sep * 1.000001));
            assert!(!a.within_angle(b, sep * 0.999999));
        }
    }

    #[test]
    fn chord_bound_matches_within_angle() {
        let a = Vec3::from_radec_deg(0.0, 0.0);
        let b = Vec3::from_radec_deg(0.0, 0.25);
        let r = 0.3_f64.to_radians();
        let bound = ChordBound::new(r);
        assert_eq!(bound.matches(a, b), a.within_angle(b, r));
        assert!((bound.radius() - r).abs() < EPS);
        let tight = ChordBound::new(0.2_f64.to_radians());
        assert!(!tight.matches(a, b));
    }

    #[test]
    fn midpoint_bisects() {
        let a = Vec3::from_radec_deg(0.0, 0.0);
        let b = Vec3::from_radec_deg(60.0, 0.0);
        let m = a.midpoint(b);
        assert!((m.angle_to(a) - m.angle_to(b)).abs() < EPS);
        assert!((m.norm() - 1.0).abs() < EPS);
    }
}
