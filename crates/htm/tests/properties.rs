//! Property-based tests for the HTM substrate.

use liferaft_htm::{
    cap::Cap,
    cover::Coverer,
    id::HtmId,
    index::{locate, trixel_of},
    range::{HtmRange, HtmRangeSet},
    vector::Vec3,
};
use proptest::prelude::*;

/// Uniform-ish random point on the sphere via uniform z and azimuth.
fn arb_point() -> impl Strategy<Value = Vec3> {
    (0.0..std::f64::consts::TAU, -1.0..1.0f64).prop_map(|(ra, z)| {
        let dec = z.asin();
        Vec3::from_radec(ra, dec)
    })
}

fn arb_level() -> impl Strategy<Value = u8> {
    0u8..=14
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// locate() always produces an ID at the requested level whose trixel
    /// contains the point.
    #[test]
    fn locate_round_trip(p in arb_point(), level in arb_level()) {
        let id = locate(p, level);
        prop_assert_eq!(id.level(), level);
        prop_assert!(trixel_of(id).contains(p));
    }

    /// The ID at a deeper level refines the ID at a shallower level.
    #[test]
    fn locate_is_hierarchical(p in arb_point(), l1 in 0u8..10, extra in 1u8..5) {
        let l2 = l1 + extra;
        let shallow = locate(p, l1);
        let deep = locate(p, l2);
        prop_assert_eq!(deep.ancestor_at(l1), shallow);
    }

    /// Raw-value validity is exactly characterized by from_raw.
    #[test]
    fn id_raw_round_trip(face in 0u8..8, path in proptest::collection::vec(0u8..4, 0..14)) {
        let mut id = HtmId::root(face);
        for &k in &path {
            id = id.child(k);
        }
        prop_assert_eq!(HtmId::from_raw(id.raw()), Some(id));
        prop_assert_eq!(id.level() as usize, path.len());
        // Reconstruct the path digits.
        for (i, &k) in path.iter().enumerate() {
            prop_assert_eq!(id.path_digit(i as u8 + 1), k);
        }
    }

    /// Descendant ranges nest: the range of a child is inside the parent's.
    #[test]
    fn descendant_ranges_nest(face in 0u8..8, k in 0u8..4, level in 2u8..12) {
        let parent = HtmId::root(face);
        let child = parent.child(k);
        let pr = parent.descendant_range(level);
        let cr = child.descendant_range(level);
        prop_assert!(pr.lo() <= cr.lo() && cr.hi() <= pr.hi());
        prop_assert_eq!(pr.len(), 4 * cr.len());
    }

    /// Range-set normalization: sorted, disjoint, non-adjacent, and
    /// membership agrees with the raw input ranges.
    #[test]
    fn range_set_normalization(
        raws in proptest::collection::vec((128u64..256, 0u64..16), 0..12)
    ) {
        // Level-2 IDs are 128..=255.
        let ranges: Vec<HtmRange> = raws
            .iter()
            .map(|&(lo, len)| {
                let hi = (lo + len).min(255);
                HtmRange::new(
                    HtmId::from_raw_unchecked(lo),
                    HtmId::from_raw_unchecked(hi),
                )
            })
            .collect();
        let set = HtmRangeSet::from_ranges(ranges.clone());
        // Normalized invariants.
        let rs = set.ranges();
        for w in rs.windows(2) {
            prop_assert!(w[0].hi().raw() + 1 < w[1].lo().raw(), "not disjoint/non-adjacent");
        }
        // Membership equivalence.
        for raw in 128u64..256 {
            let id = HtmId::from_raw_unchecked(raw);
            let in_input = ranges.iter().any(|r| r.contains(id));
            prop_assert_eq!(set.contains(id), in_input, "mismatch at {}", raw);
        }
        // Cardinality equals the number of distinct covered IDs.
        let distinct = (128u64..256)
            .filter(|&raw| ranges.iter().any(|r| r.contains(HtmId::from_raw_unchecked(raw))))
            .count() as u64;
        prop_assert_eq!(set.len(), distinct);
    }

    /// Set algebra: union and intersection agree with pointwise semantics.
    #[test]
    fn range_set_algebra(
        a in proptest::collection::vec((128u64..256, 0u64..10), 0..8),
        b in proptest::collection::vec((128u64..256, 0u64..10), 0..8),
    ) {
        let mk = |raws: &[(u64, u64)]| {
            HtmRangeSet::from_ranges(
                raws.iter()
                    .map(|&(lo, len)| {
                        let hi = (lo + len).min(255);
                        HtmRange::new(
                            HtmId::from_raw_unchecked(lo),
                            HtmId::from_raw_unchecked(hi),
                        )
                    })
                    .collect(),
            )
        };
        let sa = mk(&a);
        let sb = mk(&b);
        let u = sa.union(&sb);
        let i = sa.intersect(&sb);
        for raw in 128u64..256 {
            let id = HtmId::from_raw_unchecked(raw);
            prop_assert_eq!(u.contains(id), sa.contains(id) || sb.contains(id));
            prop_assert_eq!(i.contains(id), sa.contains(id) && sb.contains(id));
        }
    }

    /// Cap coverage is complete: points sampled inside the cap always land in
    /// a covered trixel.
    #[test]
    fn cover_completeness(
        p in arb_point(),
        radius in 1e-4..0.2f64,
        frac in 0.0..0.95f64,
        theta in 0.0..std::f64::consts::TAU,
        level in 4u8..12,
    ) {
        let cap = Cap::new(p, radius);
        let cover = Coverer::new(level).cover(&cap);
        // Sample a point at `frac * radius` from the center along bearing theta.
        let (ra0, dec0) = p.to_radec();
        let d = frac * radius;
        let dec = (dec0 + d * theta.sin()).clamp(
            -std::f64::consts::FRAC_PI_2,
            std::f64::consts::FRAC_PI_2,
        );
        let cos_dec = dec0.cos().max(1e-9);
        let sample = Vec3::from_radec(ra0 + d * theta.cos() / cos_dec, dec);
        // Only assert for samples that truly fall inside the cap (the naive
        // tangent-plane offset can overshoot near the poles).
        if cap.contains(sample) {
            prop_assert!(
                cover.contains(locate(sample, level)),
                "point inside cap not covered"
            );
        }
    }

    /// Bounded covers are supersets of exact covers and respect the budget
    /// within the root-count floor.
    #[test]
    fn bounded_cover_superset(
        p in arb_point(),
        radius in 1e-3..0.1f64,
        budget in 1usize..32,
    ) {
        let cap = Cap::new(p, radius);
        let level = 10;
        let exact = Coverer::new(level).cover(&cap);
        let bounded = Coverer::new(level).cover_bounded(&cap, budget);
        for r in exact.ranges() {
            prop_assert!(bounded.intersects_range(*r));
            // Every exact ID must be in the bounded cover: sample endpoints.
            prop_assert!(bounded.contains(r.lo()));
            prop_assert!(bounded.contains(r.hi()));
        }
    }

    /// Neighbouring points map to nearby curve positions more often than
    /// random pairs (statistical locality of the space-filling curve).
    #[test]
    fn curve_locality_statistical(seed_points in proptest::collection::vec(arb_point(), 8)) {
        let level = 10;
        let scale = HtmId::count_at_level(level) as f64;
        let mut near_fracs = Vec::new();
        for p in &seed_points {
            let (ra, dec) = p.to_radec();
            let q = Vec3::from_radec(ra + 1e-4, (dec + 1e-4).min(std::f64::consts::FRAC_PI_2));
            let a = locate(*p, level).curve_position() as f64;
            let b = locate(q, level).curve_position() as f64;
            near_fracs.push((a - b).abs() / scale);
        }
        // Median normalized curve distance of near pairs should be small.
        near_fracs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = near_fracs[near_fracs.len() / 2];
        prop_assert!(median < 0.05, "median curve distance {median} too large");
    }
}
