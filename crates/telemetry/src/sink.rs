//! Event sinks and the telemetry configuration.
//!
//! A [`TelemetrySink`] is the engine-side half of the flight recorder: the
//! engine calls [`record`](TelemetrySink::record) at each instrumented seam
//! and a driver drains the captured stream with
//! [`take_events`](TelemetrySink::take_events). Emission sites guard on
//! [`enabled`](TelemetrySink::enabled), so a [`NullSink`] run executes the
//! exact instruction stream of an un-instrumented build — zero allocation,
//! zero event construction — and stays bit-identical to the recorded
//! goldens.

use std::collections::VecDeque;

use liferaft_storage::{SimDuration, SimTime};

use crate::event::{Event, EventKind};

/// The event bus: a per-engine recorder of typed events.
///
/// Sinks are `Send` (one lives inside each shard's engine, which may run on
/// its own thread) and stamp `shard = 0` — the driver that drains a sink
/// rewrites the shard id, since only it knows which shard the engine is.
pub trait TelemetrySink: Send {
    /// Fast guard: `false` means [`record`](Self::record) will be skipped
    /// entirely by emission sites (including any payload construction).
    fn enabled(&self) -> bool;

    /// Records one event at virtual time `time`. Sequence numbers are
    /// assigned here, in record order, dense from 0.
    fn record(&mut self, time: SimTime, kind: EventKind);

    /// Drains the captured events (record order, `shard = 0`), leaving the
    /// sink empty but still recording.
    fn take_events(&mut self) -> Vec<Event>;

    /// Events discarded so far (bounded sinks only).
    fn dropped(&self) -> u64 {
        0
    }
}

/// The disabled sink: records nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _time: SimTime, _kind: EventKind) {}

    fn take_events(&mut self) -> Vec<Event> {
        Vec::new()
    }
}

/// A bounded last-N recorder: keeps the most recent `capacity` events and
/// counts what it sheds — the always-on, allocation-bounded production
/// shape of the recorder.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: VecDeque<Event>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring keeping the last `capacity` events.
    ///
    /// # Panics
    /// Panics on zero capacity — a ring that keeps nothing is [`NullSink`]
    /// misspelled.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity ring records nothing");
        RingBufferSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }
}

impl TelemetrySink for RingBufferSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, time: SimTime, kind: EventKind) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event {
            time,
            shard: 0,
            seq: self.next_seq,
            kind,
        });
        self.next_seq += 1;
    }

    fn take_events(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The unbounded recorder: keeps every event, in record order — the source
/// stream of the JSONL and Chrome-trace exports.
#[derive(Debug, Clone, Default)]
pub struct JsonlSink {
    events: Vec<Event>,
    next_seq: u64,
}

impl JsonlSink {
    /// An empty recorder.
    pub fn new() -> Self {
        JsonlSink::default()
    }
}

impl TelemetrySink for JsonlSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, time: SimTime, kind: EventKind) {
        self.events.push(Event {
            time,
            shard: 0,
            seq: self.next_seq,
            kind,
        });
        self.next_seq += 1;
    }

    fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

/// Which sink each engine gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// No recording (the default): bit-identical to an un-instrumented run.
    #[default]
    Off,
    /// Bounded last-N ring per shard.
    Ring(usize),
    /// Unbounded full-fidelity recording per shard.
    Jsonl,
}

/// The flight-recorder configuration carried by a runtime config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Recording mode (off by default).
    pub mode: TelemetryMode,
    /// Virtual-time sampling window of the derived per-shard time series
    /// (queue depth, decisions/s, hit rate, response percentiles).
    pub window: SimDuration,
}

impl TelemetryConfig {
    /// Recording off — the default, and behaviour-neutral by contract.
    pub fn off() -> Self {
        TelemetryConfig {
            mode: TelemetryMode::Off,
            window: SimDuration::from_secs(10),
        }
    }

    /// Bounded recording: each shard keeps its last `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        TelemetryConfig {
            mode: TelemetryMode::Ring(capacity),
            ..Self::off()
        }
    }

    /// Full-fidelity recording — every event, exportable as JSONL or a
    /// Chrome/Perfetto trace.
    pub fn jsonl() -> Self {
        TelemetryConfig {
            mode: TelemetryMode::Jsonl,
            ..Self::off()
        }
    }

    /// The same configuration with a different sampling window.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// True unless the mode is [`TelemetryMode::Off`].
    pub fn enabled(&self) -> bool {
        self.mode != TelemetryMode::Off
    }

    /// Builds the configured sink (one per engine).
    pub fn make_sink(&self) -> Box<dyn TelemetrySink> {
        match self.mode {
            TelemetryMode::Off => Box::new(NullSink),
            TelemetryMode::Ring(capacity) => Box::new(RingBufferSink::new(capacity)),
            TelemetryMode::Jsonl => Box::new(JsonlSink::new()),
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        if let TelemetryMode::Ring(capacity) = self.mode {
            assert!(
                capacity > 0,
                "a zero-capacity telemetry ring records nothing"
            );
        }
        if self.enabled() {
            assert!(
                self.window > SimDuration::ZERO,
                "a zero telemetry window would sample forever"
            );
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(q: u64) -> EventKind {
        EventKind::QueryArrival {
            query: q,
            assignments: 1,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_empty() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(SimTime::ZERO, arrival(1));
        assert!(s.take_events().is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn ring_keeps_the_tail_and_counts_drops() {
        let mut s = RingBufferSink::new(3);
        assert!(s.enabled());
        for q in 0..5 {
            s.record(SimTime::from_micros(q), arrival(q));
        }
        assert_eq!(s.dropped(), 2);
        let events = s.take_events();
        assert_eq!(events.len(), 3);
        // Sequence numbers keep counting across the shed prefix.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        // Still recording after a drain.
        s.record(SimTime::from_micros(9), arrival(9));
        assert_eq!(s.take_events().len(), 1);
    }

    #[test]
    fn jsonl_sink_keeps_everything_in_order() {
        let mut s = JsonlSink::new();
        for q in 0..100 {
            s.record(SimTime::from_micros(q), arrival(q));
        }
        let events = s.take_events();
        assert_eq!(events.len(), 100);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert!(events.iter().all(|e| e.shard == 0));
        assert!(s.take_events().is_empty());
    }

    #[test]
    fn config_constructors_and_sinks() {
        assert!(!TelemetryConfig::off().enabled());
        assert!(TelemetryConfig::ring(16).enabled());
        assert!(TelemetryConfig::jsonl().enabled());
        TelemetryConfig::off().validate();
        TelemetryConfig::jsonl()
            .with_window(SimDuration::from_secs(5))
            .validate();
        assert!(!TelemetryConfig::off().make_sink().enabled());
        assert!(TelemetryConfig::ring(16).make_sink().enabled());
        assert!(TelemetryConfig::jsonl().make_sink().enabled());
        assert_eq!(TelemetryConfig::default(), TelemetryConfig::off());
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_ring_rejected() {
        TelemetryConfig::ring(0).validate();
    }

    #[test]
    #[should_panic(expected = "zero telemetry window")]
    fn zero_window_rejected() {
        TelemetryConfig::jsonl()
            .with_window(SimDuration::ZERO)
            .validate();
    }
}
