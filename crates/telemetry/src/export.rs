//! Trace export: JSONL event streams and Chrome trace-event / Perfetto
//! JSON.
//!
//! Everything here is hand-rolled, dependency-free JSON over integer and
//! boolean payloads — the byte-identical-across-executors contract forbids
//! float formatting in the event stream, and every quantity the recorder
//! captures is integer virtual time anyway.

use std::fmt::Write as _;

use crate::event::{class_label, Event, EventKind, ROUTER_SHARD};

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one event as a single-line JSON object: the common envelope
/// (`t` µs, `shard`, `seq`, `kind`) followed by the kind's payload fields.
/// All values are integers or booleans, so the rendering is byte-stable.
pub fn event_to_json(e: &Event) -> String {
    let mut s = format!(
        "{{\"t\":{},\"shard\":{},\"seq\":{},\"kind\":\"{}\"",
        e.time.as_micros(),
        e.shard,
        e.seq,
        e.kind.name()
    );
    match &e.kind {
        EventKind::QueryArrival { query, assignments } => {
            let _ = write!(s, ",\"query\":{query},\"assignments\":{assignments}");
        }
        EventKind::Decision {
            bucket,
            candidates,
            frontier,
        } => {
            let _ = write!(
                s,
                ",\"bucket\":{bucket},\"candidates\":{candidates},\"frontier\":{frontier}"
            );
        }
        EventKind::BatchStart {
            bucket,
            entries,
            cached,
            indexed,
        } => {
            let _ = write!(
                s,
                ",\"bucket\":{bucket},\"entries\":{entries},\"cached\":{cached},\"indexed\":{indexed}"
            );
        }
        EventKind::BatchEnd { bucket, entries } => {
            let _ = write!(s, ",\"bucket\":{bucket},\"entries\":{entries}");
        }
        EventKind::CacheHit { bucket }
        | EventKind::CacheInsert { bucket }
        | EventKind::CacheEvict { bucket } => {
            let _ = write!(s, ",\"bucket\":{bucket}");
        }
        EventKind::QueryComplete {
            query,
            assignments,
            response,
        } => {
            let _ = write!(
                s,
                ",\"query\":{query},\"assignments\":{assignments},\"response_us\":{}",
                response.as_micros()
            );
        }
        EventKind::MigrationPlanned {
            epoch,
            bucket,
            from,
            to,
            entries,
        } => {
            let _ = write!(
                s,
                ",\"epoch\":{epoch},\"bucket\":{bucket},\"from\":{from},\"to\":{to},\"entries\":{entries}"
            );
        }
        EventKind::MigrationApplied {
            epoch,
            bucket,
            to,
            cost,
        } => {
            let _ = write!(
                s,
                ",\"epoch\":{epoch},\"bucket\":{bucket},\"to\":{to},\"cost_us\":{}",
                cost.as_micros()
            );
        }
        EventKind::Admitted {
            query_index,
            class,
            assignments,
            sheds,
            waited,
        } => {
            let _ = write!(
                s,
                ",\"query_index\":{query_index},\"class\":{class},\"assignments\":{assignments},\"sheds\":{sheds},\"waited_us\":{}",
                waited.as_micros()
            );
        }
        EventKind::Rejected {
            query_index,
            class,
            assignments,
            sheds,
        } => {
            let _ = write!(
                s,
                ",\"query_index\":{query_index},\"class\":{class},\"assignments\":{assignments},\"sheds\":{sheds}"
            );
        }
        EventKind::ShardDown { target, queued } => {
            let _ = write!(s, ",\"target\":{target},\"queued\":{queued}");
        }
        EventKind::ShardUp { target } => {
            let _ = write!(s, ",\"target\":{target}");
        }
        EventKind::BucketEvacuated {
            bucket,
            from,
            to,
            entries,
            resident,
        } => {
            let _ = write!(
                s,
                ",\"bucket\":{bucket},\"from\":{from},\"to\":{to},\"entries\":{entries},\"resident\":{resident}"
            );
        }
        EventKind::FragmentRetried {
            query,
            from,
            attempt,
            delivered,
            to,
        } => {
            let _ = write!(
                s,
                ",\"query\":{query},\"from\":{from},\"attempt\":{attempt},\"delivered\":{delivered},\"to\":{to}"
            );
        }
        EventKind::FragmentDropped {
            query,
            shard,
            to_shard,
            attempt,
        } => {
            let _ = write!(
                s,
                ",\"query\":{query},\"shard\":{shard},\"to_shard\":{to_shard},\"attempt\":{attempt}"
            );
        }
        EventKind::FragmentRetransmitted {
            query,
            shard,
            attempt,
        } => {
            let _ = write!(
                s,
                ",\"query\":{query},\"shard\":{shard},\"attempt\":{attempt}"
            );
        }
        EventKind::FragmentHedged {
            query,
            from,
            to,
            entries,
        } => {
            let _ = write!(
                s,
                ",\"query\":{query},\"from\":{from},\"to\":{to},\"entries\":{entries}"
            );
        }
        EventKind::DuplicateSuppressed {
            query,
            shard,
            attempt,
        } => {
            let _ = write!(
                s,
                ",\"query\":{query},\"shard\":{shard},\"attempt\":{attempt}"
            );
        }
        EventKind::AdmissionSampled {
            epoch,
            inflight,
            waiting,
            backoff,
            admitted,
            shed_events,
            rejected,
        } => {
            let _ = write!(
                s,
                ",\"epoch\":{epoch},\"inflight\":{inflight},\"waiting\":{waiting},\"backoff\":{backoff},\"admitted\":{admitted},\"shed_events\":{shed_events},\"rejected\":{rejected}"
            );
        }
    }
    s.push('}');
    s
}

/// Renders a merged event stream as JSONL: one event per line, in stream
/// order, with a trailing newline after every line.
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

/// Renders a merged event stream as a Chrome trace-event / Perfetto JSON
/// document (open with `chrome://tracing` or <https://ui.perfetto.dev>).
///
/// - Each shard becomes a thread (`tid = shard`) of process 0; the router
///   pseudo-shard becomes the `"router"` thread.
/// - Batches render as complete spans (`ph: "X"`) on their shard's
///   timeline, paired [`BatchStart`](EventKind::BatchStart) →
///   [`BatchEnd`](EventKind::BatchEnd) (a shard runs one batch at a time).
/// - Applied migrations render as spans on the router timeline (duration =
///   the destination's migration cost); planned moves and cache mutations
///   render as instant events.
/// - Admission waits render as spans from arrival to release; rejections
///   and load samples as instants.
///
/// Timestamps are integer virtual-time microseconds, so the document is
/// byte-stable across platforms and executors.
pub fn events_to_chrome_trace(events: &[Event], n_shards: u32) -> String {
    let mut rows: Vec<String> = Vec::new();
    for shard in 0..n_shards {
        rows.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{shard},\"args\":{{\"name\":\"shard {shard}\"}}}}"
        ));
    }
    rows.push(format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{n_shards},\"args\":{{\"name\":\"router\"}}}}"
    ));
    // The router pseudo-shard id is u32::MAX; remap it onto the compact tid
    // right after the real shards so viewers show a tight thread list.
    let tid_of = |shard: u32| {
        if shard == ROUTER_SHARD {
            n_shards
        } else {
            shard
        }
    };

    // One open batch per shard at most — keyed by shard id.
    let mut open: Vec<Option<(u64, u64, bool, bool)>> = vec![None; n_shards as usize];
    for e in events {
        let tid = tid_of(e.shard);
        let ts = e.time.as_micros();
        match &e.kind {
            EventKind::BatchStart {
                bucket,
                entries: _,
                cached,
                indexed,
            } => {
                let slot = &mut open[e.shard as usize];
                debug_assert!(slot.is_none(), "overlapping batches on shard {}", e.shard);
                *slot = Some((ts, *bucket as u64, *cached, *indexed));
            }
            EventKind::BatchEnd { bucket, entries } => {
                let (start, b, cached, indexed) = open[e.shard as usize]
                    .take()
                    .expect("batch_end without a matching batch_start");
                debug_assert_eq!(b, *bucket as u64, "batch pairing drifted");
                rows.push(format!(
                    "{{\"name\":\"bucket {bucket}\",\"cat\":\"batch\",\"ph\":\"X\",\"ts\":{start},\"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{\"entries\":{entries},\"cached\":{cached},\"indexed\":{indexed}}}}}",
                    ts - start
                ));
            }
            EventKind::CacheInsert { bucket } => {
                rows.push(format!(
                    "{{\"name\":\"insert {bucket}\",\"cat\":\"cache\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{tid}}}"
                ));
            }
            EventKind::CacheEvict { bucket } => {
                rows.push(format!(
                    "{{\"name\":\"evict {bucket}\",\"cat\":\"cache\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{tid}}}"
                ));
            }
            EventKind::MigrationPlanned {
                epoch,
                bucket,
                from,
                to,
                entries,
            } => {
                rows.push(format!(
                    "{{\"name\":\"plan {bucket}: {from}\\u2192{to}\",\"cat\":\"migration\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"epoch\":{epoch},\"entries\":{entries}}}}}"
                ));
            }
            EventKind::MigrationApplied {
                epoch,
                bucket,
                to,
                cost,
            } => {
                rows.push(format!(
                    "{{\"name\":\"migrate {bucket}\\u2192shard {to}\",\"cat\":\"migration\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{\"epoch\":{epoch}}}}}",
                    cost.as_micros()
                ));
            }
            EventKind::Admitted {
                query_index,
                class,
                sheds,
                waited,
                ..
            } => {
                if waited.as_micros() > 0 {
                    rows.push(format!(
                        "{{\"name\":\"admission wait q{query_index}\",\"cat\":\"admission\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{\"class\":\"{}\",\"sheds\":{sheds}}}}}",
                        ts - waited.as_micros(),
                        waited.as_micros(),
                        class_label(*class)
                    ));
                }
            }
            EventKind::Rejected {
                query_index, class, ..
            } => {
                rows.push(format!(
                    "{{\"name\":\"reject q{query_index} ({})\",\"cat\":\"admission\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\"pid\":0,\"tid\":{tid}}}",
                    class_label(*class)
                ));
            }
            EventKind::ShardDown { target, queued } => {
                rows.push(format!(
                    "{{\"name\":\"shard {target} down\",\"cat\":\"failover\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"queued\":{queued}}}}}"
                ));
            }
            EventKind::ShardUp { target } => {
                rows.push(format!(
                    "{{\"name\":\"shard {target} up\",\"cat\":\"failover\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\"pid\":0,\"tid\":{tid}}}"
                ));
            }
            EventKind::BucketEvacuated {
                bucket,
                from,
                to,
                entries,
                resident,
            } => {
                rows.push(format!(
                    "{{\"name\":\"evacuate {bucket}: {from}\\u2192{to}\",\"cat\":\"failover\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"entries\":{entries},\"resident\":{resident}}}}}"
                ));
            }
            EventKind::FragmentRetried {
                query,
                attempt,
                delivered,
                ..
            } => {
                rows.push(format!(
                    "{{\"name\":\"retry q{query} #{attempt}\",\"cat\":\"failover\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"delivered\":{delivered}}}}}"
                ));
            }
            EventKind::FragmentDropped {
                query,
                shard,
                to_shard,
                attempt,
            } => {
                let leg = if *to_shard { "data" } else { "ack" };
                rows.push(format!(
                    "{{\"name\":\"drop q{query} {leg} #{attempt}\",\"cat\":\"transport\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"shard\":{shard}}}}}"
                ));
            }
            EventKind::FragmentRetransmitted {
                query,
                shard,
                attempt,
            } => {
                rows.push(format!(
                    "{{\"name\":\"retransmit q{query} #{attempt}\",\"cat\":\"transport\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"shard\":{shard}}}}}"
                ));
            }
            EventKind::FragmentHedged {
                query,
                from,
                to,
                entries,
            } => {
                rows.push(format!(
                    "{{\"name\":\"hedge q{query}: {from}\\u2192{to}\",\"cat\":\"transport\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"entries\":{entries}}}}}"
                ));
            }
            EventKind::DuplicateSuppressed {
                query,
                shard,
                attempt,
            } => {
                rows.push(format!(
                    "{{\"name\":\"dedup q{query} #{attempt}\",\"cat\":\"transport\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"shard\":{shard}}}}}"
                ));
            }
            EventKind::AdmissionSampled {
                inflight, waiting, ..
            } => {
                rows.push(format!(
                    "{{\"name\":\"load sample\",\"cat\":\"admission\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{tid},\"args\":{{\"inflight\":{inflight},\"waiting\":{waiting}}}}}"
                ));
            }
            // Per-query and per-decision events stay in the JSONL stream;
            // rendering millions of instants would drown the span timeline.
            EventKind::QueryArrival { .. }
            | EventKind::Decision { .. }
            | EventKind::CacheHit { .. }
            | EventKind::QueryComplete { .. } => {}
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_storage::{SimDuration, SimTime};

    fn ev(t: u64, shard: u32, seq: u64, kind: EventKind) -> Event {
        Event {
            time: SimTime::from_micros(t),
            shard,
            seq,
            kind,
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn jsonl_lines_carry_envelope_and_payload() {
        let events = vec![
            ev(
                5,
                1,
                0,
                EventKind::QueryArrival {
                    query: 7,
                    assignments: 3,
                },
            ),
            ev(
                9,
                1,
                1,
                EventKind::QueryComplete {
                    query: 7,
                    assignments: 3,
                    response: SimDuration::from_micros(4),
                },
            ),
        ];
        let out = events_to_jsonl(&events);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t\":5,\"shard\":1,\"seq\":0,\"kind\":\"query_arrival\",\"query\":7,\"assignments\":3}"
        );
        assert!(lines[1].contains("\"response_us\":4"));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn chrome_trace_pairs_batches_into_spans() {
        let events = vec![
            ev(
                10,
                0,
                0,
                EventKind::BatchStart {
                    bucket: 3,
                    entries: 8,
                    cached: true,
                    indexed: false,
                },
            ),
            ev(
                25,
                0,
                1,
                EventKind::BatchEnd {
                    bucket: 3,
                    entries: 8,
                },
            ),
        ];
        let out = events_to_chrome_trace(&events, 2);
        assert!(out.contains("\"name\":\"bucket 3\""));
        assert!(out.contains("\"ts\":10,\"dur\":15"));
        assert!(out.contains("\"name\":\"shard 0\""));
        assert!(out.contains("\"name\":\"router\""));
        assert!(out.trim_end().ends_with("]}"));
    }

    #[test]
    fn router_events_land_on_the_router_thread() {
        let events = vec![ev(
            100,
            ROUTER_SHARD,
            0,
            EventKind::MigrationApplied {
                epoch: 1,
                bucket: 9,
                to: 2,
                cost: SimDuration::from_micros(50),
            },
        )];
        let out = events_to_chrome_trace(&events, 4);
        // Router remaps to tid 4 (first id after the real shards).
        assert!(out.contains("\"tid\":4,\"args\":{\"epoch\":1}"));
    }
}
