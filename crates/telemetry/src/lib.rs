//! Flight recorder for LifeRaft: structured event tracing, per-shard
//! time-series telemetry, and Chrome/Perfetto trace export.
//!
//! The recorder has three layers:
//!
//! 1. **Event bus** — engines call a [`TelemetrySink`] at each instrumented
//!    seam (scheduler decisions, batch boundaries, cache residency churn,
//!    query lifecycle; the runtime adds migrations and admission verdicts
//!    under the [`ROUTER_SHARD`] pseudo-shard). [`NullSink`] is the
//!    default: emission sites guard on [`TelemetrySink::enabled`], so a
//!    disabled run executes the exact un-instrumented instruction stream
//!    and stays bit-identical to the recorded goldens.
//! 2. **Time series** — [`TelemetryReport::build`] folds a merged stream
//!    into fixed virtual-time-window samples per shard (queue depth,
//!    decision rate, scan hit rate, response percentiles) and cross-shard
//!    aggregates.
//! 3. **Export** — [`TelemetryReport::to_jsonl`] renders the stream one
//!    event per line; [`TelemetryReport::to_chrome_trace`] renders a
//!    Chrome trace-event / Perfetto document of per-shard batch timelines,
//!    migrations, and admission waits on virtual time.
//!
//! **Determinism contract.** Events are recorded per shard and merged in
//! the same canonical `(time, shard, seq)` order the runtime uses for
//! completion merging, with every payload field an integer or boolean of
//! virtual-time quantities — so the stepped and threaded executors produce
//! byte-identical JSONL and trace documents for the same configuration.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod export;
pub mod report;
pub mod sink;

pub use event::{class_label, Event, EventKind, ROUTER_SHARD};
pub use export::{event_to_json, events_to_chrome_trace, events_to_jsonl, json_escape};
pub use report::{ShardSeries, TelemetryReport};
pub use sink::{
    JsonlSink, NullSink, RingBufferSink, TelemetryConfig, TelemetryMode, TelemetrySink,
};
