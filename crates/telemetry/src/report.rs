//! Per-shard time-series telemetry derived from a merged event stream.
//!
//! [`TelemetryReport::build`] folds a canonical event stream into fixed
//! virtual-time-window samples per shard — queue depth, scheduler decision
//! rate, shared-scan hit rate, response percentiles — plus cross-shard
//! aggregates folded with the mergeable accumulators from
//! `liferaft-metrics` ([`Summary::merge`], [`StreamingStats::merge`]).
//! The raw stream rides along for the JSONL / Chrome-trace exports.

use liferaft_metrics::table::fmt_f;
use liferaft_metrics::{Series, StreamingStats, Summary, Table};
use liferaft_storage::SimDuration;

use crate::event::{Event, EventKind, ROUTER_SHARD};
use crate::export::{events_to_chrome_trace, events_to_jsonl};

/// Windowed series and whole-run aggregates for one shard.
#[derive(Debug, Clone)]
pub struct ShardSeries {
    /// The shard id.
    pub shard: u32,
    /// Net queued assignments at each window boundary (arrivals minus
    /// serviced entries, prefix-summed; x = window end in seconds).
    pub queue_depth: Series,
    /// Scheduler decisions per second in each window.
    pub decisions_per_s: Series,
    /// Cache hit rate of shared scans in each window (0 when no scans ran).
    pub hit_rate: Series,
    /// p90 response time (seconds) of queries completing in each window.
    pub response_p90_s: Series,
    /// All response times (seconds) completed on this shard.
    pub response: Summary,
    /// Entries per executed batch on this shard.
    pub batch_entries: StreamingStats,
    /// Total events this shard recorded.
    pub events: u64,
    /// Total scheduler decisions.
    pub decisions: u64,
    /// Total batches executed.
    pub batches: u64,
    /// Shared (non-indexed) scan batches.
    pub scans: u64,
    /// Shared scan batches served from the bucket cache.
    pub scan_hits: u64,
}

impl ShardSeries {
    /// Whole-run shared-scan hit rate, 0 when no shared scans ran.
    pub fn overall_hit_rate(&self) -> f64 {
        if self.scans == 0 {
            0.0
        } else {
            self.scan_hits as f64 / self.scans as f64
        }
    }
}

/// The flight-recorder report: per-shard time series, cross-shard
/// aggregates, and the raw canonical event stream for export.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Sampling window the series were folded over.
    pub window: SimDuration,
    /// Virtual time of the last event (ZERO for an empty stream).
    pub makespan: SimDuration,
    /// Shards the stream was recorded over (router pseudo-shard excluded).
    pub n_shards: u32,
    /// Per-shard windowed series, indexed by shard id.
    pub shards: Vec<ShardSeries>,
    /// Cross-shard response summary (seconds), folded via [`Summary::merge`].
    pub response: Summary,
    /// Cross-shard batch-size accumulator, folded via
    /// [`StreamingStats::merge`].
    pub batch_entries: StreamingStats,
    /// The canonical merged event stream (`(time, shard, seq)` order).
    pub events: Vec<Event>,
}

impl TelemetryReport {
    /// Folds a canonical event stream into windowed per-shard series.
    ///
    /// Router-shard events ([`ROUTER_SHARD`]) stay in the stream but do not
    /// contribute to per-shard series.
    ///
    /// # Panics
    /// Panics on a zero window, or on an event from a shard `>= n_shards`
    /// that is not the router pseudo-shard.
    pub fn build(events: Vec<Event>, n_shards: u32, window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "zero telemetry window");
        assert!(n_shards > 0, "telemetry needs at least one shard");
        let makespan = events
            .iter()
            .map(|e| SimDuration::from_micros(e.time.as_micros()))
            .max()
            .unwrap_or(SimDuration::ZERO);
        let window_us = window.as_micros();
        let n_windows = (makespan.as_micros().div_ceil(window_us)).max(1) as usize;
        let n = n_shards as usize;

        // Per-shard, per-window accumulators.
        let mut net_flow = vec![vec![0i64; n_windows]; n];
        let mut decisions_w = vec![vec![0u64; n_windows]; n];
        let mut scans_w = vec![vec![0u64; n_windows]; n];
        let mut hits_w = vec![vec![0u64; n_windows]; n];
        let mut responses_w: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); n_windows]; n];
        let mut totals = vec![(0u64, 0u64, 0u64, 0u64, 0u64); n]; // events, decisions, batches, scans, hits
        let mut batch_stats = vec![StreamingStats::new(); n];
        let mut responses_all: Vec<Vec<f64>> = vec![Vec::new(); n];

        for e in &events {
            if e.shard == ROUTER_SHARD {
                continue;
            }
            assert!(
                e.shard < n_shards,
                "event from shard {} but report spans {n_shards}",
                e.shard
            );
            let s = e.shard as usize;
            let w = ((e.time.as_micros() / window_us) as usize).min(n_windows - 1);
            totals[s].0 += 1;
            match &e.kind {
                EventKind::QueryArrival { assignments, .. } => {
                    net_flow[s][w] += *assignments as i64;
                }
                EventKind::Decision { .. } => {
                    decisions_w[s][w] += 1;
                    totals[s].1 += 1;
                }
                EventKind::BatchStart {
                    cached,
                    indexed: false,
                    ..
                } => {
                    scans_w[s][w] += 1;
                    totals[s].3 += 1;
                    if *cached {
                        hits_w[s][w] += 1;
                        totals[s].4 += 1;
                    }
                }
                EventKind::BatchEnd { entries, .. } => {
                    net_flow[s][w] -= *entries as i64;
                    totals[s].2 += 1;
                    batch_stats[s].push(*entries as f64);
                }
                EventKind::QueryComplete { response, .. } => {
                    let secs = response.as_secs_f64();
                    responses_w[s][w].push(secs);
                    responses_all[s].push(secs);
                }
                _ => {}
            }
        }

        let window_secs = window.as_secs_f64();
        let mut shards = Vec::with_capacity(n);
        let mut response = Summary::from_samples(Vec::new());
        let mut batch_entries = StreamingStats::new();
        for s in 0..n {
            let mut queue_depth = Series::new(format!("shard {s} queue depth"));
            let mut decisions_per_s = Series::new(format!("shard {s} decisions/s"));
            let mut hit_rate = Series::new(format!("shard {s} hit rate"));
            let mut response_p90_s = Series::new(format!("shard {s} p90 response (s)"));
            let mut depth = 0i64;
            for w in 0..n_windows {
                let x = (w as f64 + 1.0) * window_secs;
                depth += net_flow[s][w];
                queue_depth.push(x, depth as f64);
                decisions_per_s.push(x, decisions_w[s][w] as f64 / window_secs);
                let rate = if scans_w[s][w] == 0 {
                    0.0
                } else {
                    hits_w[s][w] as f64 / scans_w[s][w] as f64
                };
                hit_rate.push(x, rate);
                let p90 =
                    Summary::from_samples(std::mem::take(&mut responses_w[s][w])).percentile(90.0);
                response_p90_s.push(x, p90);
            }
            let shard_response = Summary::from_samples(std::mem::take(&mut responses_all[s]));
            response.merge(&shard_response);
            batch_entries.merge(&batch_stats[s]);
            let (events_n, decisions, batches, scans, scan_hits) = totals[s];
            shards.push(ShardSeries {
                shard: s as u32,
                queue_depth,
                decisions_per_s,
                hit_rate,
                response_p90_s,
                response: shard_response,
                batch_entries: batch_stats[s],
                events: events_n,
                decisions,
                batches,
                scans,
                scan_hits,
            });
        }

        TelemetryReport {
            window,
            makespan,
            n_shards,
            shards,
            response,
            batch_entries,
            events,
        }
    }

    /// Renders the raw stream as JSONL (one event per line, canonical
    /// order). Byte-identical across executors by the determinism contract.
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.events)
    }

    /// Renders the raw stream as a Chrome trace-event / Perfetto JSON
    /// document.
    pub fn to_chrome_trace(&self) -> String {
        events_to_chrome_trace(&self.events, self.n_shards)
    }

    /// A per-shard whole-run summary table (plus an `all` row).
    pub fn summary_table(&self) -> String {
        let mut t = Table::new([
            "shard",
            "events",
            "decisions",
            "batches",
            "mean_entries",
            "hit_rate",
            "p50_s",
            "p90_s",
        ]);
        for s in &self.shards {
            t.row([
                s.shard.to_string(),
                s.events.to_string(),
                s.decisions.to_string(),
                s.batches.to_string(),
                fmt_f(s.batch_entries.mean(), 1),
                fmt_f(s.overall_hit_rate(), 3),
                fmt_f(s.response.median(), 3),
                fmt_f(s.response.percentile(90.0), 3),
            ]);
        }
        let (scans, hits) = self
            .shards
            .iter()
            .fold((0u64, 0u64), |(a, b), s| (a + s.scans, b + s.scan_hits));
        t.row([
            "all".to_string(),
            self.events.len().to_string(),
            self.shards
                .iter()
                .map(|s| s.decisions)
                .sum::<u64>()
                .to_string(),
            self.shards
                .iter()
                .map(|s| s.batches)
                .sum::<u64>()
                .to_string(),
            fmt_f(self.batch_entries.mean(), 1),
            fmt_f(
                if scans == 0 {
                    0.0
                } else {
                    hits as f64 / scans as f64
                },
                3,
            ),
            fmt_f(self.response.median(), 3),
            fmt_f(self.response.percentile(90.0), 3),
        ]);
        t.render()
    }

    /// An ASCII activity timeline: one row per sampling window, one column
    /// per shard, each cell a bar of that shard's decision count in the
    /// window (scaled to the busiest window) plus the raw count.
    pub fn ascii_timeline(&self) -> String {
        let header: Vec<String> = std::iter::once("t_end_s".to_string())
            .chain(self.shards.iter().map(|s| format!("shard {}", s.shard)))
            .collect();
        let mut t = Table::new(header);
        let n_windows = self
            .shards
            .first()
            .map_or(0, |s| s.decisions_per_s.points().len());
        let peak = self
            .shards
            .iter()
            .flat_map(|s| s.decisions_per_s.ys())
            .fold(0.0f64, f64::max);
        for w in 0..n_windows {
            let (x, _) = self.shards[0].decisions_per_s.points()[w];
            let mut row = vec![fmt_f(x, 1)];
            for s in &self.shards {
                let y = s.decisions_per_s.points()[w].1;
                let len = if peak > 0.0 {
                    ((y / peak) * 10.0).round() as usize
                } else {
                    0
                };
                let count = (y * self.window.as_secs_f64()).round() as u64;
                row.push(format!("{:<10} {count}", "#".repeat(len)));
            }
            t.row(row);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_storage::SimTime;

    fn ev(t: u64, shard: u32, seq: u64, kind: EventKind) -> Event {
        Event {
            time: SimTime::from_micros(t),
            shard,
            seq,
            kind,
        }
    }

    fn sample_stream() -> Vec<Event> {
        vec![
            ev(
                0,
                0,
                0,
                EventKind::QueryArrival {
                    query: 1,
                    assignments: 4,
                },
            ),
            ev(
                0,
                0,
                1,
                EventKind::Decision {
                    bucket: 2,
                    candidates: 3,
                    frontier: true,
                },
            ),
            ev(
                0,
                0,
                2,
                EventKind::BatchStart {
                    bucket: 2,
                    entries: 3,
                    cached: false,
                    indexed: false,
                },
            ),
            ev(
                900_000,
                0,
                3,
                EventKind::BatchEnd {
                    bucket: 2,
                    entries: 3,
                },
            ),
            ev(
                1_200_000,
                0,
                4,
                EventKind::Decision {
                    bucket: 2,
                    candidates: 1,
                    frontier: false,
                },
            ),
            ev(
                1_200_000,
                0,
                5,
                EventKind::BatchStart {
                    bucket: 2,
                    entries: 1,
                    cached: true,
                    indexed: false,
                },
            ),
            ev(
                1_500_000,
                0,
                6,
                EventKind::QueryComplete {
                    query: 1,
                    assignments: 4,
                    response: SimDuration::from_micros(1_500_000),
                },
            ),
            ev(
                1_500_000,
                0,
                7,
                EventKind::BatchEnd {
                    bucket: 2,
                    entries: 1,
                },
            ),
            ev(
                500_000,
                ROUTER_SHARD,
                0,
                EventKind::MigrationPlanned {
                    epoch: 1,
                    bucket: 9,
                    from: 0,
                    to: 1,
                    entries: 2,
                },
            ),
        ]
    }

    #[test]
    fn windows_fold_flow_and_rates() {
        let r = TelemetryReport::build(sample_stream(), 2, SimDuration::from_secs(1));
        assert_eq!(r.n_shards, 2);
        assert_eq!(r.makespan, SimDuration::from_micros(1_500_000));
        assert_eq!(r.shards.len(), 2);
        let s0 = &r.shards[0];
        // Two windows: [0,1s) and [1s,1.5s].
        assert_eq!(s0.queue_depth.points().len(), 2);
        // Window 0: +4 arrivals, -3 serviced => depth 1; window 1: -1 => 0.
        assert_eq!(s0.queue_depth.ys(), vec![1.0, 0.0]);
        assert_eq!(s0.decisions_per_s.ys(), vec![1.0, 1.0]);
        // Window 0: 1 scan 0 hits; window 1: 1 scan 1 hit.
        assert_eq!(s0.hit_rate.ys(), vec![0.0, 1.0]);
        assert_eq!(s0.overall_hit_rate(), 0.5);
        assert_eq!(s0.response.count(), 1);
        assert!((s0.response_p90_s.ys()[1] - 1.5).abs() < 1e-12);
        assert_eq!(s0.batch_entries.count(), 2);
        // Shard 1 recorded nothing; router events excluded from series.
        assert_eq!(r.shards[1].events, 0);
        assert_eq!(r.response.count(), 1);
        assert_eq!(r.batch_entries.count(), 2);
        assert_eq!(r.events.len(), 9);
    }

    #[test]
    fn empty_stream_builds_one_empty_window() {
        let r = TelemetryReport::build(Vec::new(), 1, SimDuration::from_secs(1));
        assert_eq!(r.makespan, SimDuration::ZERO);
        assert_eq!(r.shards[0].queue_depth.points().len(), 1);
        assert_eq!(r.response.count(), 0);
        assert!(r.to_jsonl().is_empty());
    }

    #[test]
    fn tables_render() {
        let r = TelemetryReport::build(sample_stream(), 2, SimDuration::from_secs(1));
        let summary = r.summary_table();
        assert!(summary.contains("hit_rate"));
        assert!(summary.lines().count() >= 4); // header, rule, 2 shards, all
        let timeline = r.ascii_timeline();
        assert!(timeline.contains("t_end_s"));
        assert!(timeline.contains('#'));
    }

    #[test]
    #[should_panic(expected = "zero telemetry window")]
    fn zero_window_rejected() {
        TelemetryReport::build(Vec::new(), 1, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "but report spans")]
    fn out_of_range_shard_rejected() {
        let events = vec![ev(
            0,
            5,
            0,
            EventKind::Decision {
                bucket: 0,
                candidates: 1,
                frontier: false,
            },
        )];
        TelemetryReport::build(events, 2, SimDuration::from_secs(1));
    }
}
