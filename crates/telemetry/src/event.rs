//! The typed event vocabulary of the flight recorder.
//!
//! Every observable state change in the engine and the runtime maps to one
//! [`EventKind`], stamped into an [`Event`] with the virtual time it
//! happened, the shard that recorded it, and a per-shard sequence number.
//! All payload fields are integers or booleans of virtual-time quantities —
//! no floats, no host clocks — so a rendered event stream is byte-identical
//! across platforms and executors.

use liferaft_storage::{SimDuration, SimTime};

/// The pseudo-shard id under which runtime-level (router / controller)
/// events are recorded: migrations from the rebalance log, admission
/// verdicts and samples from the front-door log. `u32::MAX` sorts after
/// every real shard in the canonical `(time, shard, seq)` merge, so router
/// events interleave deterministically with shard events.
pub const ROUTER_SHARD: u32 = u32::MAX;

/// One recorded event: when, where, in what order, and what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time the event happened (a query arrival keeps its *true*
    /// arrival instant even when recorded at a later batch boundary, so
    /// per-shard streams are ordered by record sequence, not raw time).
    pub time: SimTime,
    /// Recording shard (sinks stamp 0; the runtime rewrites this to the
    /// owning shard, or [`ROUTER_SHARD`] for controller events).
    pub shard: u32,
    /// Per-shard record sequence number, dense from 0.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy. One variant per instrumented seam.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A query's work items were delivered to this engine (per-fragment in
    /// the sharded runtime; `assignments` counts the locally delivered
    /// (object × bucket) entries, 0 for a zero-work query).
    QueryArrival {
        /// The query id.
        query: u64,
        /// Locally delivered assignments.
        assignments: u64,
    },
    /// The scheduler picked a bucket.
    Decision {
        /// The chosen bucket.
        bucket: u32,
        /// Candidate buckets at the decision point.
        candidates: u64,
        /// Whether the pick came off the threshold-scan frontier (always
        /// `false` for policies without a frontier).
        frontier: bool,
    },
    /// A batch began executing.
    BatchStart {
        /// The serviced bucket.
        bucket: u32,
        /// Entries drained into the batch.
        entries: u64,
        /// Whether the bucket was cache-resident at batch start.
        cached: bool,
        /// Whether the hybrid evaluator chose the indexed strategy.
        indexed: bool,
    },
    /// A batch finished (recorded at `start + cost`; the matching
    /// [`BatchStart`](EventKind::BatchStart) is the previous batch event on
    /// the same shard — shards run one batch at a time).
    BatchEnd {
        /// The serviced bucket.
        bucket: u32,
        /// Entries the batch serviced.
        entries: u64,
    },
    /// A shared scan was served from the bucket cache.
    CacheHit {
        /// The resident bucket.
        bucket: u32,
    },
    /// A bucket became cache-resident (from the residency mutation log).
    CacheInsert {
        /// The inserted bucket.
        bucket: u32,
    },
    /// A bucket was evicted from the cache (from the residency mutation log).
    CacheEvict {
        /// The evicted bucket.
        bucket: u32,
    },
    /// A query's last local assignment was serviced.
    QueryComplete {
        /// The query id.
        query: u64,
        /// Assignments the query had on this engine.
        assignments: u64,
        /// Completion − arrival, on this engine.
        response: SimDuration,
    },
    /// The rebalance controller planned one bucket move (from the
    /// [`RebalanceLog`](../../liferaft_runtime/rebalance/struct.RebalanceLog.html)).
    MigrationPlanned {
        /// 1-based rebalance epoch.
        epoch: u32,
        /// The migrating bucket.
        bucket: u32,
        /// Source shard.
        from: u32,
        /// Destination shard.
        to: u32,
        /// Queued entries travelling with the bucket.
        entries: u64,
    },
    /// A planned move was applied at the destination.
    MigrationApplied {
        /// 1-based rebalance epoch.
        epoch: u32,
        /// The migrated bucket.
        bucket: u32,
        /// Destination shard.
        to: u32,
        /// Virtual-time migration cost charged to the destination clock.
        cost: SimDuration,
    },
    /// The front door admitted a query (possibly after queueing or shed
    /// backoff; recorded at the release instant).
    Admitted {
        /// Trace index of the query.
        query_index: u64,
        /// Priority class rank (0 interactive, 1 standard, 2 batch — see
        /// [`class_label`]).
        class: u8,
        /// Routed workload size.
        assignments: u64,
        /// Shed-into-backoff count before admission.
        sheds: u32,
        /// Release − arrival: the admission wait.
        waited: SimDuration,
    },
    /// The front door terminally rejected a query.
    Rejected {
        /// Trace index of the query.
        query_index: u64,
        /// Priority class rank.
        class: u8,
        /// Routed workload size.
        assignments: u64,
        /// Shed-into-backoff count before rejection.
        sheds: u32,
    },
    /// An injected outage began: the shard left the pool (its clock
    /// freezes; a crash wipes its cache residency).
    ShardDown {
        /// The crashed shard.
        target: u32,
        /// Its queued-entry backlog at the boundary, before evacuation.
        queued: u64,
    },
    /// The shard's outage window ended: it rejoined the pool empty and cold.
    ShardUp {
        /// The rejoining shard.
        target: u32,
    },
    /// Failover evacuated one bucket off a crashed shard.
    BucketEvacuated {
        /// The evacuated bucket.
        bucket: u32,
        /// The crashed source shard.
        from: u32,
        /// The surviving destination shard.
        to: u32,
        /// Queued entries that moved with the bucket.
        entries: u64,
        /// Whether the bucket was cache-resident at the source.
        resident: bool,
    },
    /// A re-delivery attempt for a fragment lost to a dead shard.
    FragmentRetried {
        /// Trace index of the query whose fragment was lost.
        query: u64,
        /// The dead shard the fragment was originally routed to.
        from: u32,
        /// 1-based attempt number.
        attempt: u32,
        /// Whether the attempt landed on a live shard.
        delivered: bool,
        /// The destination shard (`u32::MAX` when the attempt failed
        /// because no shard was up).
        to: u32,
    },
    /// The transport lost a message on a lossy link window: a data send
    /// that never reached its shard, or an acknowledgement that never made
    /// it back to the router.
    FragmentDropped {
        /// Trace index of the fragment's query.
        query: u64,
        /// The shard whose link ate the message.
        shard: u32,
        /// `true` for a lost data send (router → shard), `false` for a lost
        /// acknowledgement (shard → router).
        to_shard: bool,
        /// 0-based send attempt the message belonged to.
        attempt: u32,
    },
    /// The transport re-sent a fragment whose previous attempt went
    /// unacknowledged past its deadline.
    FragmentRetransmitted {
        /// Trace index of the fragment's query.
        query: u64,
        /// Destination shard.
        shard: u32,
        /// 1-based retransmission attempt (attempt 0 was the original send).
        attempt: u32,
    },
    /// The transport hedged a straggling fragment: a duplicate was issued
    /// to another shard to race the original.
    FragmentHedged {
        /// Trace index of the straggling query.
        query: u64,
        /// The shard the original fragment is lagging on.
        from: u32,
        /// The shard that received the hedge copy.
        to: u32,
        /// (object × bucket) assignments the copy carries.
        entries: u64,
    },
    /// A receiver discarded a duplicate data copy (late retransmission or
    /// network duplicate) by attempt identity — delivery stayed
    /// exactly-once.
    DuplicateSuppressed {
        /// Trace index of the fragment's query.
        query: u64,
        /// The receiving shard.
        shard: u32,
        /// Attempt the discarded copy carried.
        attempt: u32,
    },
    /// A front-door load sample at an epoch boundary.
    AdmissionSampled {
        /// 1-based sample epoch.
        epoch: u32,
        /// Admitted-but-unserviced assignments.
        inflight: u64,
        /// Actively waiting assignments.
        waiting: u64,
        /// Queries in shed backoff.
        backoff: u64,
        /// Cumulative admitted queries.
        admitted: u64,
        /// Cumulative shed events.
        shed_events: u64,
        /// Cumulative rejected queries.
        rejected: u64,
    },
}

impl EventKind {
    /// The stable snake_case name of the variant — the `kind` field of the
    /// JSONL rendering and the key of the checked-in trace schema.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::QueryArrival { .. } => "query_arrival",
            EventKind::Decision { .. } => "decision",
            EventKind::BatchStart { .. } => "batch_start",
            EventKind::BatchEnd { .. } => "batch_end",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheInsert { .. } => "cache_insert",
            EventKind::CacheEvict { .. } => "cache_evict",
            EventKind::QueryComplete { .. } => "query_complete",
            EventKind::MigrationPlanned { .. } => "migration_planned",
            EventKind::MigrationApplied { .. } => "migration_applied",
            EventKind::Admitted { .. } => "admitted",
            EventKind::Rejected { .. } => "rejected",
            EventKind::ShardDown { .. } => "shard_down",
            EventKind::ShardUp { .. } => "shard_up",
            EventKind::BucketEvacuated { .. } => "bucket_evacuated",
            EventKind::FragmentRetried { .. } => "fragment_retried",
            EventKind::FragmentDropped { .. } => "fragment_dropped",
            EventKind::FragmentRetransmitted { .. } => "fragment_retransmitted",
            EventKind::FragmentHedged { .. } => "fragment_hedged",
            EventKind::DuplicateSuppressed { .. } => "duplicate_suppressed",
            EventKind::AdmissionSampled { .. } => "admission_sampled",
        }
    }
}

/// Human label of a priority-class rank (the runtime's `QueryClass::rank`
/// order). Unknown ranks render as `"?"` rather than panicking — a trace
/// viewer must not crash on a forward-compatible stream.
pub fn class_label(rank: u8) -> &'static str {
    match rank {
        0 => "interactive",
        1 => "standard",
        2 => "batch",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        let k = EventKind::BatchStart {
            bucket: 1,
            entries: 2,
            cached: false,
            indexed: false,
        };
        assert_eq!(k.name(), "batch_start");
        assert_eq!(
            EventKind::QueryArrival {
                query: 0,
                assignments: 0
            }
            .name(),
            "query_arrival"
        );
    }

    #[test]
    fn class_labels_cover_ranks() {
        assert_eq!(class_label(0), "interactive");
        assert_eq!(class_label(1), "standard");
        assert_eq!(class_label(2), "batch");
        assert_eq!(class_label(9), "?");
    }
}
