//! Shared experiment fixtures.

use liferaft_catalog::VirtualCatalog;
use liferaft_sim::SimConfig;
use liferaft_workload::{Trace, TraceGenerator, WorkloadConfig};

/// The scale of a figure-reproduction experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// HTM object level.
    pub level: u8,
    /// Buckets in the partition.
    pub n_buckets: u32,
    /// Objects per bucket (the paper: 10 000 ⇒ 40 MB buckets).
    pub objects_per_bucket: u64,
    /// Queries in the trace (the paper: 2 000).
    pub n_queries: usize,
    /// Fixture seed.
    pub seed: u64,
}

impl Scale {
    /// The full reproduction scale.
    ///
    /// Buckets stay 40 MB (the paper's size, hence the same `Tb`), with
    /// 1 000 denser rows each rather than 10 000 — keeping the hybrid
    /// break-even (3% of a bucket) in the same *relative* position against
    /// the synthetic queries' per-bucket object counts as in the paper's
    /// trace, at an order of magnitude less memory for the 2 000-query
    /// fixture.
    pub fn full() -> Self {
        Scale {
            level: 14,
            n_buckets: 16_384,
            objects_per_bucket: 1_000,
            n_queries: 2_000,
            seed: 2009,
        }
    }

    /// A fast scale for iteration and CI.
    pub fn quick() -> Self {
        Scale {
            level: 10,
            n_buckets: 1_024,
            objects_per_bucket: 500,
            n_queries: 250,
            seed: 2009,
        }
    }

    /// Reads `LIFERAFT_SCALE` (`full` | `quick`), defaulting to `full`.
    pub fn from_env() -> Self {
        match std::env::var("LIFERAFT_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            _ => Self::full(),
        }
    }
}

/// A built fixture: catalog + trace + simulation configuration.
pub struct Experiment {
    /// The (virtual, paper-geometry) catalog.
    pub catalog: VirtualCatalog,
    /// The synthetic SkyQuery-shaped trace.
    pub trace: Trace,
    /// The simulation configuration (paper constants, cost-only joins).
    pub config: SimConfig,
    /// The scale it was built at.
    pub scale: Scale,
}

/// Builds the standard fixture for a scale.
pub fn build(scale: Scale) -> Experiment {
    // Keep buckets at the paper's 40 MB regardless of row count, so the
    // cost model's Tb stays meaningful.
    let object_bytes = (40 * 1024 * 1024) / scale.objects_per_bucket;
    let catalog = VirtualCatalog::new(
        scale.level,
        scale.n_buckets,
        scale.objects_per_bucket,
        object_bytes,
        scale.seed,
    );
    let cfg = WorkloadConfig::paper_like(
        scale.level,
        scale.n_buckets,
        scale.n_queries,
        scale.seed ^ 0xA5A5,
    );
    let trace = TraceGenerator::new(cfg).generate();
    Experiment {
        catalog,
        trace,
        config: SimConfig::paper(),
        scale,
    }
}
