//! Benchmark harness regenerating every figure of the LifeRaft paper.
//!
//! The paper's evaluation consists of Figures 2 and 4–8 plus a cache-hit
//! statistic quoted in Section 6; [`figures`] contains one reproduction
//! function per artifact, each printing the same rows/series the paper
//! reports and returning structured results for assertions. [`experiments`]
//! builds the shared catalog/trace fixtures at two scales:
//!
//! - `full` — 4 096 buckets × 10 000 objects at HTM level 14, 2 000 queries
//!   (the paper's bucket geometry; bucket count chosen to match Figure 6's
//!   0–4 000 x-axis, i.e. the populated portion of their 20 000 buckets).
//! - `quick` — 512 buckets × 1 000 objects at level 10, 300 queries, for
//!   fast iteration (`LIFERAFT_SCALE=quick cargo bench`).
//!
//! Run everything with `cargo bench -p liferaft-bench --bench figures`, or a
//! single artifact with `cargo bench -p liferaft-bench --bench figures -- fig7`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod figures;
