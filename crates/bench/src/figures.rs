//! One reproduction function per figure of the paper.
//!
//! Every function prints the same rows/series the paper reports and returns
//! a list of [`Check`]s — qualitative assertions about the *shape* of the
//! result (who wins, by roughly what factor, where crossovers fall). The
//! figure harness prints them as `[ ok ]` / `[MISS]` lines so a `cargo
//! bench` run doubles as a reproduction audit; EXPERIMENTS.md records the
//! measured values against the paper's.

use liferaft_catalog::Catalog;
use liferaft_core::{
    AgingMode, LifeRaftScheduler, MetricParams, NoShareScheduler, RoundRobinScheduler, Scheduler,
    TradeoffTable,
};
use liferaft_join::HybridConfig;
use liferaft_metrics::{Series, Table};
use liferaft_sim::{calibrate_tradeoff_table, RunReport, Simulation};
use liferaft_storage::CostModel;
use liferaft_workload::arrivals::poisson_arrivals;
use liferaft_workload::WorkloadStats;

use crate::experiments::Experiment;

/// One qualitative reproduction check.
#[derive(Debug, Clone)]
pub struct Check {
    /// What shape property is being verified.
    pub name: String,
    /// Whether the measured result exhibits it.
    pub ok: bool,
    /// Measured values backing the verdict.
    pub detail: String,
}

impl Check {
    fn new(name: impl Into<String>, ok: bool, detail: impl Into<String>) -> Self {
        Check {
            name: name.into(),
            ok,
            detail: detail.into(),
        }
    }
}

/// The α grid the paper sweeps in Figures 7 and 8.
pub const ALPHAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// The saturation grid of Figure 8 (queries/second).
pub const SATURATIONS: [f64; 5] = [0.1, 0.13, 0.17, 0.25, 0.5];
/// The arrival rate of the Figure 7 comparison. The paper's Figure 7 shows
/// every scheduler at (or past) its capacity — NoShare at ≈0.105 q/s up to
/// the greedy scheduler at ≈0.23 q/s — so the comparison replays slightly
/// above the LifeRaft policies' capacity, where capacities (and deferral
/// behaviour), not arrival pacing, determine throughput and response time.
pub const FIG7_RATE: f64 = 0.6;

// ---------------------------------------------------------------- Figure 2

/// Figure 2: speed-up of a non-indexed scan over a spatial-index join as a
/// function of the workload-queue / bucket-size ratio.
pub fn fig2(cost: &CostModel, objects_per_bucket: u64) -> Vec<Check> {
    println!("\n=== Figure 2: scan vs index speed-up by queue/bucket ratio ===");
    let ratios = [
        0.001, 0.002, 0.005, 0.01, 0.02, 0.03, 0.05, 0.1, 0.2, 0.5, 1.0,
    ];
    let mut table = Table::new(["queue/bucket", "W", "scan (s)", "indexed (s)", "speed-up"]);
    let mut speedups = Vec::new();
    for &r in &ratios {
        let w = ((objects_per_bucket as f64 * r).round() as u64).max(1);
        let scan = cost.scan_batch(w, false).as_secs_f64();
        let indexed = cost.indexed_batch(w).as_secs_f64();
        let s = indexed / scan;
        speedups.push(s);
        table.row([
            format!("{r}"),
            w.to_string(),
            format!("{scan:.3}"),
            format!("{indexed:.3}"),
            format!("{s:.3}"),
        ]);
    }
    println!("{}", table.render());
    let break_even = cost.break_even_queue_len() as f64 / objects_per_bucket as f64;
    println!("break-even ratio: {break_even:.4} (paper: ~0.03 for its disk)\n");

    vec![
        Check::new(
            "fig2: speed-up grows monotonically with contention",
            speedups.windows(2).all(|w| w[0] < w[1]),
            format!("{:.3} .. {:.3}", speedups[0], speedups[speedups.len() - 1]),
        ),
        Check::new(
            "fig2: index wins at tiny queues (speed-up < 1 at 0.1%)",
            speedups[0] < 1.0,
            format!("speed-up {:.3}", speedups[0]),
        ),
        Check::new(
            "fig2: break-even lands at a few percent",
            (0.004..=0.10).contains(&break_even),
            format!("break-even {break_even:.4}"),
        ),
        Check::new(
            "fig2: up to ~twenty-fold gap at full-bucket queues",
            (8.0..=100.0).contains(&speedups[speedups.len() - 1]),
            format!("speed-up {:.1}", speedups[speedups.len() - 1]),
        ),
    ]
}

// ------------------------------------------------------------ Figures 5, 6

/// Figures 5 and 6: workload shape — top-bucket reuse and cumulative skew.
pub fn fig5_and_fig6(exp: &Experiment) -> Vec<Check> {
    println!("\n=== Figures 5 & 6: workload shape ===");
    let stats = WorkloadStats::analyze(&exp.trace, exp.catalog.partition());

    // Figure 5: reuse of the top-ten buckets over the query sequence.
    let events = stats.reuse_events(10);
    println!(
        "fig5: {} (query, top-10-bucket) reuse events across {} queries; sample:",
        events.len(),
        stats.n_queries()
    );
    let mut t5 = Table::new(["query #", "bucket rank (0 = hottest)"]);
    for &(q, r) in events.iter().step_by((events.len() / 15).max(1)).take(15) {
        t5.row([q.to_string(), r.to_string()]);
    }
    println!("{}", t5.render());
    let coverage = stats.top_k_query_coverage(10);
    println!(
        "top-10 buckets touched by {:.1}% of queries (paper: 61%)",
        coverage * 100.0
    );

    // Figure 6: cumulative workload by bucket rank.
    let cdf = stats.cumulative_workload();
    let mut t6 = Table::new(["bucket rank", "% of buckets", "cumulative workload %"]);
    for frac in [0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let k = ((stats.n_buckets() as f64 * frac).round() as usize).clamp(1, cdf.len());
        t6.row([
            k.to_string(),
            format!("{:.1}", frac * 100.0),
            format!("{:.1}", cdf[k - 1].1 * 100.0),
        ]);
    }
    println!("{}", t6.render());
    let share2 = stats.workload_share_of_top_buckets(0.02);
    println!(
        "top 2% of buckets carry {:.1}% of the workload (paper: ~50%); \
         mean buckets/query {:.1}; reuse gap {:.0} queries\n",
        share2 * 100.0,
        stats.mean_buckets_per_query(),
        stats.mean_reuse_gap(10),
    );

    vec![
        Check::new(
            "fig5: top-10 buckets touched by a majority band of queries (paper 61%)",
            (0.40..=0.85).contains(&coverage),
            format!("{:.1}%", coverage * 100.0),
        ),
        Check::new(
            "fig5: reuse of hot buckets clusters temporally",
            stats.mean_reuse_gap(10) < stats.n_queries() as f64 / 4.0,
            format!(
                "mean gap {:.0} of {} queries",
                stats.mean_reuse_gap(10),
                stats.n_queries()
            ),
        ),
        Check::new(
            "fig6: ~2% of buckets carry ~half the workload (paper 50%)",
            (0.30..=0.80).contains(&share2),
            format!("{:.1}%", share2 * 100.0),
        ),
        Check::new(
            "fig6: the remaining buckets form a long tail",
            stats.touched_buckets() > stats.n_buckets() / 10,
            format!(
                "{} of {} buckets touched",
                stats.touched_buckets(),
                stats.n_buckets()
            ),
        ),
    ]
}

// ---------------------------------------------------------------- Figure 7

/// Figure 7: throughput and response time by scheduling algorithm at one
/// saturation. Returns the reports for reuse (cache statistic).
pub fn fig7(exp: &Experiment) -> (Vec<RunReport>, Vec<Check>) {
    println!("\n=== Figure 7: performance by scheduling algorithm ({FIG7_RATE} q/s) ===");
    let timed = exp
        .trace
        .with_arrivals(poisson_arrivals(FIG7_RATE, exp.trace.len(), 0xF167));
    let sim = Simulation::new(&exp.catalog, exp.config);
    let params = MetricParams::from_cost(&exp.config.cost);

    let mut lineup: Vec<Box<dyn Scheduler>> = vec![Box::new(NoShareScheduler::new())];
    for alpha in [1.0, 0.75, 0.5, 0.25, 0.0] {
        lineup.push(Box::new(LifeRaftScheduler::new(
            params,
            AgingMode::Normalized,
            alpha,
        )));
    }
    lineup.push(Box::new(RoundRobinScheduler::new()));

    let reports: Vec<RunReport> = lineup
        .iter_mut()
        .map(|s| sim.run(&timed, s.as_mut()))
        .collect();
    let noshare_rt = reports[0].mean_response_s();

    let mut table = Table::new([
        "scheduler",
        "throughput (q/s)",
        "rt / NoShare",
        "CoV",
        "bucket reads",
        "mean batch",
    ]);
    for r in &reports {
        table.row([
            r.scheduler.clone(),
            format!("{:.4}", r.throughput_qps),
            format!("{:.2}", r.mean_response_s() / noshare_rt),
            format!("{:.2}", r.response_cov()),
            r.io.bucket_reads.to_string(),
            format!("{:.1}", r.mean_batch_size()),
        ]);
    }
    println!("{}", table.render());

    let noshare = &reports[0];
    let aged = &reports[1]; // α = 1.0
    let greedy = &reports[5]; // α = 0.0
    let rr = &reports[6];
    let speedup = greedy.throughput_qps / noshare.throughput_qps;
    println!("LifeRaft(α=0) vs NoShare: {speedup:.2}x (paper: over two-fold)\n");

    let tputs: Vec<f64> = reports[1..=5].iter().map(|r| r.throughput_qps).collect();
    let checks = vec![
        Check::new(
            "fig7a: greedy LifeRaft achieves ~2x NoShare throughput",
            speedup >= 1.8,
            format!("{speedup:.2}x"),
        ),
        Check::new(
            "fig7a: throughput grows as the age bias drops (α 1 → 0)",
            tputs.windows(2).all(|w| w[1] >= w[0] * 0.97),
            format!("{tputs:.3?}"),
        ),
        Check::new(
            "fig7a: RR performs like LifeRaft at α = 1",
            (0.55..=1.8).contains(&(rr.throughput_qps / aged.throughput_qps)),
            format!("RR/aged = {:.2}", rr.throughput_qps / aged.throughput_qps),
        ),
        Check::new(
            "fig7b: NoShare has the worst mean response time",
            reports[1..]
                .iter()
                .all(|r| r.mean_response_s() <= noshare_rt * 1.02),
            format!(
                "NoShare {:.0}s vs best {:.0}s",
                noshare_rt,
                reports[1..]
                    .iter()
                    .map(|r| r.mean_response_s())
                    .fold(f64::INFINITY, f64::min)
            ),
        ),
        Check::new(
            "fig7b: greedy's response time exceeds the purely-aged scheduler's",
            greedy.mean_response_s() > aged.mean_response_s(),
            format!(
                "α=0: {:.0}s, α=1: {:.0}s",
                greedy.mean_response_s(),
                aged.mean_response_s()
            ),
        ),
        Check::new(
            "fig7b: greedy shows higher response-time variance than aged",
            greedy.response_cov() > aged.response_cov() * 0.9,
            format!(
                "CoV α=0 {:.2} vs α=1 {:.2}",
                greedy.response_cov(),
                aged.response_cov()
            ),
        ),
    ];
    (reports, checks)
}

// ---------------------------------------------------------------- Figure 8

/// Raw Figure-8 sweep output: one `Vec<RunReport>` (one per α) for each
/// saturation level.
pub type SaturationSweep = Vec<(f64, Vec<RunReport>)>;

/// Figure 8: throughput and response time across saturations for every α.
/// Returns the calibration table and raw reports (Figure 4 reuses them).
pub fn fig8(exp: &Experiment) -> (TradeoffTable, SaturationSweep, Vec<Check>) {
    println!("\n=== Figure 8: parameter selection by workload saturation ===");
    let (table, reports) = calibrate_tradeoff_table(
        &exp.catalog,
        &exp.trace,
        &SATURATIONS,
        &ALPHAS,
        exp.config,
        0xF168,
    );

    let mut tput_series: Vec<Series> = ALPHAS
        .iter()
        .map(|a| Series::new(format!("Bias {a}")))
        .collect();
    let mut rt_series: Vec<Series> = ALPHAS
        .iter()
        .map(|a| Series::new(format!("Bias {a}")))
        .collect();
    for (sat, runs) in &reports {
        for (ai, r) in runs.iter().enumerate() {
            tput_series[ai].push(*sat, r.throughput_qps);
            rt_series[ai].push(*sat, r.mean_response_s());
        }
    }

    let mut t8a = Table::new(["saturation", "α=0", "α=0.25", "α=0.5", "α=0.75", "α=1"]);
    let mut t8b = t8a.clone();
    for (si, (sat, _)) in reports.iter().enumerate() {
        let tputs: Vec<String> = tput_series
            .iter()
            .map(|s| format!("{:.3}", s.points()[si].1))
            .collect();
        let rts: Vec<String> = rt_series
            .iter()
            .map(|s| format!("{:.0}", s.points()[si].1))
            .collect();
        t8a.row(std::iter::once(format!("{sat}")).chain(tputs));
        t8b.row(std::iter::once(format!("{sat}")).chain(rts));
    }
    println!("fig8a: throughput (q/s)\n{}", t8a.render());
    println!("fig8b: mean response time (s)\n{}", t8b.render());

    // Shape checks.
    let gap_at = |si: usize| {
        let t0 = tput_series[0].points()[si].1; // α = 0
        let t1 = tput_series[4].points()[si].1; // α = 1
        t0 - t1
    };
    let low_gap = gap_at(0);
    let high_gap = gap_at(SATURATIONS.len() - 1);
    let rt_low_a0 = rt_series[0].points()[0].1;
    let rt_low_a1 = rt_series[4].points()[0].1;
    let tput_low_a0 = tput_series[0].points()[0].1;
    let tput_low_a1 = tput_series[4].points()[0].1;
    let rt_reduction = 1.0 - rt_low_a1 / rt_low_a0;
    let tput_drop = 1.0 - tput_low_a1 / tput_low_a0;
    println!(
        "at saturation 0.1: raising α 0→1 cuts response {:.0}% for a {:.0}% throughput drop \
         (paper: 54% for 7%)\n",
        rt_reduction * 100.0,
        tput_drop * 100.0
    );

    let checks = vec![
        Check::new(
            "fig8a: α differentiates throughput only under saturation (paper: widening gap)",
            high_gap.abs() > low_gap.abs() + 0.005,
            format!(
                "|gap| {:.3} q/s at 0.1 vs {:.3} q/s at 0.5 (ours favors α=1 past capacity; see EXPERIMENTS.md)",
                low_gap.abs(),
                high_gap.abs()
            ),
        ),
        Check::new(
            "fig8a: greedy throughput scales with saturation",
            tput_series[0].points()[SATURATIONS.len() - 1].1
                > tput_series[0].points()[0].1 * 1.5,
            format!(
                "α=0: {:.3} → {:.3} q/s",
                tput_series[0].points()[0].1,
                tput_series[0].points()[SATURATIONS.len() - 1].1
            ),
        ),
        Check::new(
            "fig8b: at low saturation the age bias is nearly free (paper: −54% response for −7% throughput)",
            tput_drop.abs() < 0.05,
            format!(
                "α 0→1 at 0.1 q/s: throughput {:+.1}%, response {:+.1}%",
                -tput_drop * 100.0,
                -rt_reduction * 100.0
            ),
        ),
        Check::new(
            "fig8b: response time grows with saturation under every α",
            rt_series.iter().all(|s| {
                s.points()[SATURATIONS.len() - 1].1 >= s.points()[0].1 * 0.8
            }),
            "per-α rt(0.5) vs rt(0.1)".to_string(),
        ),
    ];
    (table, reports, checks)
}

// ---------------------------------------------------------------- Figure 4

/// Figure 4: normalized trade-off curves at low (0.1) and high (0.5)
/// saturation, with the 20%-tolerance selections.
pub fn fig4(table: &TradeoffTable, reports: &[(f64, Vec<RunReport>)]) -> Vec<Check> {
    println!("\n=== Figure 4: throughput/response trade-off curves ===");
    let mut checks = Vec::new();
    for &(label, sat) in &[("low", 0.1f64), ("high", 0.5f64)] {
        let Some((_, runs)) = reports.iter().find(|(s, _)| (*s - sat).abs() < 1e-9) else {
            continue;
        };
        let max_t = runs.iter().map(|r| r.throughput_qps).fold(0.0, f64::max);
        let max_r = runs.iter().map(|r| r.mean_response_s()).fold(0.0, f64::max);
        let mut t = Table::new(["α", "tput (norm)", "response (norm)"]);
        for (ai, r) in runs.iter().enumerate() {
            t.row([
                format!("{}", ALPHAS[ai]),
                format!("{:.3}", r.throughput_qps / max_t),
                format!("{:.3}", r.mean_response_s() / max_r),
            ]);
        }
        println!("{label} saturation ({sat} q/s):\n{}", t.render());
    }
    let a_low = table.select_alpha(0.1, 0.2);
    let a_high = table.select_alpha(0.5, 0.2);
    println!("20% tolerance selects α = {a_low} at low, α = {a_high} at high saturation");
    println!("(paper: α = 1.0 low, α = 0.25 high)\n");
    checks.push(Check::new(
        "fig4: tolerance threshold picks a mid-to-high α at low saturation (paper: 1.0)",
        a_low >= 0.5,
        format!("α = {a_low} (low-saturation curves are nearly flat, so the pick is noise-prone)"),
    ));
    checks.push(Check::new(
        "fig4: tolerance threshold picks lower α at high saturation",
        a_high < a_low,
        format!("α = {a_high} (low was {a_low})"),
    ));
    checks
}

// ------------------------------------------------------- Section 6 (cache)

/// Section 6's cache statistic: fraction of requests serviced from the
/// bucket cache under α = 0 vs α = 1 (paper: 40% vs 7%).
pub fn cache_stat(fig7_reports: &[RunReport]) -> Vec<Check> {
    println!("\n=== Section 6: cache service fraction by policy ===");
    let aged = &fig7_reports[1]; // α = 1
    let greedy = &fig7_reports[5]; // α = 0
    let mut t = Table::new(["policy", "requests from cache %", "cache hit rate %"]);
    for r in [greedy, aged] {
        t.row([
            r.scheduler.clone(),
            format!("{:.1}", r.cache_service_fraction() * 100.0),
            format!("{:.1}", r.cache.hit_rate() * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: 40% at α = 0 vs 7% at α = 1)\n");
    vec![
        Check::new(
            "§6: the contention-driven policy feeds far more requests from cache",
            greedy.cache_service_fraction() > 2.0 * aged.cache_service_fraction(),
            format!(
                "α=0: {:.1}%, α=1: {:.1}%",
                greedy.cache_service_fraction() * 100.0,
                aged.cache_service_fraction() * 100.0
            ),
        ),
        Check::new(
            "§6: cache fractions land near the published 40%/7% band",
            (0.15..=0.75).contains(&greedy.cache_service_fraction())
                && aged.cache_service_fraction() < 0.30,
            format!(
                "α=0: {:.1}%, α=1: {:.1}%",
                greedy.cache_service_fraction() * 100.0,
                aged.cache_service_fraction() * 100.0
            ),
        ),
    ]
}

// --------------------------------------------------------------- Ablations

/// Ablations of LifeRaft's design choices (ours, not the paper's): aging
/// normalization, cache capacity, and the hybrid threshold.
pub fn ablations(exp: &Experiment) -> Vec<Check> {
    println!("\n=== Ablations ===");
    let timed = exp
        .trace
        .with_arrivals(poisson_arrivals(FIG7_RATE, exp.trace.len(), 0xAB1A));
    let params = MetricParams::from_cost(&exp.config.cost);
    let mut checks = Vec::new();

    // 1. Aging mode: normalized blend vs the paper's raw Eq. 2.
    let sim = Simulation::new(&exp.catalog, exp.config);
    let mut t = Table::new(["aged metric at α=0.25", "tput (q/s)", "mean rt (s)"]);
    let mut raw = LifeRaftScheduler::new(params, AgingMode::Raw, 0.25);
    let mut norm = LifeRaftScheduler::new(params, AgingMode::Normalized, 0.25);
    let mut aged = LifeRaftScheduler::age_based(params);
    let r_raw = sim.run(&timed, &mut raw);
    let r_norm = sim.run(&timed, &mut norm);
    let r_aged = sim.run(&timed, &mut aged);
    t.row([
        "raw (Eq. 2 verbatim)".to_string(),
        format!("{:.4}", r_raw.throughput_qps),
        format!("{:.0}", r_raw.mean_response_s()),
    ]);
    t.row([
        "normalized (ours)".to_string(),
        format!("{:.4}", r_norm.throughput_qps),
        format!("{:.0}", r_norm.mean_response_s()),
    ]);
    t.row([
        "pure age (α=1)".to_string(),
        format!("{:.4}", r_aged.throughput_qps),
        format!("{:.0}", r_aged.mean_response_s()),
    ]);
    println!("{}", t.render());
    // The units mismatch in the verbatim Eq. 2 (objects/ms + ms) lets any
    // α > 0 hand the decision entirely to the age term: the raw policy at
    // α = 0.25 must behave like the pure-age policy, not like the
    // normalized blend.
    let like_aged =
        (r_raw.throughput_qps - r_aged.throughput_qps).abs() / r_aged.throughput_qps < 0.05;
    checks.push(Check::new(
        "ablation: raw Eq. 2 at α=0.25 degenerates to pure aging (units mismatch)",
        like_aged,
        format!(
            "raw {:.4} vs pure-age {:.4} vs normalized {:.4}",
            r_raw.throughput_qps, r_aged.throughput_qps, r_norm.throughput_qps
        ),
    ));

    // 2. Cache capacity sweep under the greedy policy.
    let mut t = Table::new(["cache (buckets)", "tput (q/s)", "requests from cache %"]);
    let mut tputs = Vec::new();
    for cap in [1usize, 5, 20, 100] {
        let mut cfg = exp.config;
        cfg.cache_buckets = cap;
        let sim = Simulation::new(&exp.catalog, cfg);
        let r = sim.run(&timed, &mut LifeRaftScheduler::greedy(params));
        t.row([
            cap.to_string(),
            format!("{:.4}", r.throughput_qps),
            format!("{:.1}", r.cache_service_fraction() * 100.0),
        ]);
        tputs.push(r.throughput_qps);
    }
    println!("{}", t.render());
    checks.push(Check::new(
        "ablation: more cache never hurts greedy throughput (Map-Reduce single-file analogy, §6)",
        tputs.windows(2).all(|w| w[1] >= w[0] * 0.98),
        format!("{tputs:.4?}"),
    ));

    // 3. Hybrid threshold sweep under the aged policy, whose in-order
    //    batches are small ("an age-based scheduler relies more on spatial
    //    indices at higher saturations", Section 5.2).
    let mut t = Table::new(["hybrid threshold", "aged makespan (s)", "indexed batches"]);
    let mut makespans = Vec::new();
    for (label, hybrid) in [
        ("off (scan only)", HybridConfig::scan_only()),
        (
            "0.01",
            HybridConfig {
                threshold_ratio: 0.01,
                enabled: true,
            },
        ),
        (
            "0.03 (paper)",
            HybridConfig {
                threshold_ratio: 0.03,
                enabled: true,
            },
        ),
        (
            "0.10",
            HybridConfig {
                threshold_ratio: 0.10,
                enabled: true,
            },
        ),
    ] {
        let mut cfg = exp.config;
        cfg.hybrid = hybrid;
        let sim = Simulation::new(&exp.catalog, cfg);
        let r = sim.run(&timed, &mut LifeRaftScheduler::age_based(params));
        t.row([
            label.to_string(),
            format!("{:.0}", r.makespan_s),
            r.indexed_batches.to_string(),
        ]);
        makespans.push((label, r.makespan_s));
    }
    println!("{}", t.render());
    let scan_only = makespans[0].1;
    let paper_thr = makespans[2].1;
    checks.push(Check::new(
        "ablation: the paper's 3% hybrid threshold beats scan-only for the aged policy",
        paper_thr < scan_only,
        format!("scan-only {scan_only:.0}s vs 3% {paper_thr:.0}s"),
    ));
    checks
}
