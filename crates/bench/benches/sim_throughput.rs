//! End-to-end scheduler throughput benchmark — the perf trajectory anchor.
//!
//! Replays a large synthetic trace through the full decision path (workload
//! table → snapshots → scheduler → batch execution) for each policy and
//! reports *wall-clock* decisions/second and entries/second, i.e. how fast
//! the engine itself runs, independent of the virtual-time cost model. The
//! results are written as machine-readable JSON (`BENCH_sim.json` at the
//! workspace root by default) so every later PR has a number to beat.
//!
//! Usage:
//!   cargo bench -p liferaft-bench --bench sim_throughput            # full
//!   LIFERAFT_SCALE=quick cargo bench -p liferaft-bench --bench sim_throughput
//!   LIFERAFT_BENCH_OUT=/tmp/x.json cargo bench ... # override output path
//!
//! Full scale is ~2k buckets / 10k queries (thousands of live candidates
//! per decision); quick is CI-sized.

use std::time::Instant;

use liferaft_bench::experiments::Scale;
use liferaft_catalog::{Catalog, VirtualCatalog};
use liferaft_core::{
    AgingMode, LifeRaftScheduler, MetricParams, NoShareScheduler, RoundRobinScheduler, Scheduler,
};
use liferaft_query::QueryPreProcessor;
use liferaft_runtime::{
    parallel_map, ExecMode, FailoverConfig, FaultPlan, FrontDoorConfig, QueryClass,
    RebalanceConfig, RuntimeConfig, ShardAssignment, ShardedRuntime, TransportConfig,
};
use liferaft_sim::{build_scenario, RunReport, ScenarioKind, ScenarioScale, SimConfig, Simulation};
use liferaft_storage::SimDuration;
use liferaft_telemetry::{JsonlSink, NullSink, RingBufferSink, TelemetrySink};
use liferaft_workload::arrivals::poisson_arrivals;
use liferaft_workload::{TimedTrace, Trace, TraceGenerator, WorkloadConfig};

/// The benchmark's own scales: wider than the figure fixtures (the point is
/// scheduler stress, not figure shapes).
fn scale(quick: bool) -> Scale {
    if quick {
        Scale {
            level: 10,
            n_buckets: 512,
            objects_per_bucket: 500,
            n_queries: 600,
            seed: 2009,
        }
    } else {
        Scale {
            level: 12,
            n_buckets: 2_048,
            objects_per_bucket: 1_000,
            n_queries: 10_000,
            seed: 2009,
        }
    }
}

struct Measured {
    report: RunReport,
    /// Best (minimum) wall time over the repetitions — the standard
    /// estimator under noisy schedulers/frequency scaling.
    wall_s: f64,
    reps: u32,
}

/// Best-of-`reps` wall time around an arbitrary runner — shared by the
/// single-engine rows and the sharded elastic-vs-static rows.
fn measure_with(run: impl Fn() -> RunReport, reps: u32) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = run();
        let wall_s = t0.elapsed().as_secs_f64();
        if best.as_ref().map_or(true, |b| wall_s < b.wall_s) {
            best = Some(Measured {
                report,
                wall_s,
                reps,
            });
        }
    }
    best.expect("at least one repetition")
}

fn measure(
    sim: &Simulation<'_, VirtualCatalog>,
    timed: &TimedTrace,
    mk_scheduler: &dyn Fn() -> Box<dyn Scheduler>,
    reps: u32,
) -> Measured {
    // A fresh scheduler per repetition: stateful policies (RR's cursor,
    // adaptive controllers) must not leak state between reps, or the
    // reported row depends on which rep happened to be fastest.
    measure_with(
        || {
            let mut scheduler = mk_scheduler();
            sim.run(timed, scheduler.as_mut())
        },
        reps,
    )
}

fn json_row(label: &str, m: &Measured) -> String {
    let r = &m.report;
    let wall = m.wall_s.max(1e-12);
    format!(
        concat!(
            "    {{\"scheduler\": {:?}, \"wall_s\": {:.6}, \"reps\": {}, \"batches\": {}, ",
            "\"decisions_per_sec\": {:.1}, \"entries_per_sec\": {:.1}, ",
            "\"serviced_entries\": {}, \"frontier_picks\": {}, \"fallback_picks\": {}, ",
            "\"sim_makespan_s\": {:.3}, ",
            "\"sim_throughput_qps\": {:.6}, \"mean_response_s\": {:.3}, ",
            "\"p90_response_s\": {:.3}}}"
        ),
        label,
        m.wall_s,
        m.reps,
        r.batches,
        r.batches as f64 / wall,
        r.serviced_entries as f64 / wall,
        r.serviced_entries,
        r.frontier_picks,
        r.fallback_picks,
        r.makespan_s,
        r.throughput_qps,
        r.mean_response_s(),
        r.response.percentile(90.0),
    )
}

fn main() {
    let quick = matches!(std::env::var("LIFERAFT_SCALE").as_deref(), Ok("quick"));
    let sc = scale(quick);
    println!(
        "sim_throughput — {} buckets x {} objects, {} queries ({})",
        sc.n_buckets,
        sc.objects_per_bucket,
        sc.n_queries,
        if quick { "quick" } else { "full" }
    );

    let t0 = Instant::now();
    let object_bytes = (40 * 1024 * 1024) / sc.objects_per_bucket;
    let catalog = VirtualCatalog::new(
        sc.level,
        sc.n_buckets,
        sc.objects_per_bucket,
        object_bytes,
        sc.seed,
    );
    let cfg = WorkloadConfig::paper_like(sc.level, sc.n_buckets, sc.n_queries, sc.seed ^ 0x51);
    // Trace generation fans per-query-seeded blocks across the sweep
    // driver's thread pool. The block family is chunking- and thread-count
    // invariant (`TraceGenerator::generate_block`), and the chunk list is
    // fixed by the scale alone, so the fixture is bit-identical on any
    // machine — only the wall time varies.
    let gen = TraceGenerator::new(cfg);
    let layout = gen.layout();
    let chunk = 250usize;
    let ranges: Vec<(usize, usize)> = (0..sc.n_queries.div_ceil(chunk))
        .map(|c| (c * chunk, ((c + 1) * chunk).min(sc.n_queries)))
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let blocks = parallel_map(&ranges, threads, |_, &(start, end)| {
        gen.generate_block(&layout, start, end)
    });
    let trace = Trace::new(sc.level, blocks.into_iter().flatten().collect());
    let total_objects = trace.total_objects();
    // A hard arrival rate so queues are deep and candidate sets are wide —
    // the regime where decision cost dominates.
    let timed = trace.into_timed(poisson_arrivals(2.0, sc.n_queries, 0xBE7C));
    let fixture_s = t0.elapsed().as_secs_f64();
    println!(
        "fixture built in {fixture_s:.1}s ({total_objects} queued objects, {threads} threads)"
    );

    let sim = Simulation::new(&catalog, SimConfig::paper());
    let params = MetricParams::paper();
    type Factory = Box<dyn Fn() -> Box<dyn Scheduler>>;
    let runs: Vec<(&str, Factory)> = vec![
        (
            "liferaft_greedy",
            Box::new(move || Box::new(LifeRaftScheduler::greedy(params))),
        ),
        (
            "liferaft_alpha05",
            Box::new(move || Box::new(LifeRaftScheduler::new(params, AgingMode::Normalized, 0.5))),
        ),
        (
            "liferaft_age_based",
            Box::new(move || Box::new(LifeRaftScheduler::age_based(params))),
        ),
        (
            "round_robin",
            Box::new(|| Box::new(RoundRobinScheduler::new())),
        ),
        ("noshare", Box::new(|| Box::new(NoShareScheduler::new()))),
    ];

    let reps: u32 = std::env::var("LIFERAFT_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 3 });
    let mut rows = Vec::new();
    for (key, mk) in &runs {
        let m = measure(&sim, &timed, mk.as_ref(), reps);
        println!(
            "{key:<20} wall={:.3}s  decisions/s={:>12.0}  entries/s={:>12.0}  batches={}",
            m.wall_s,
            m.report.batches as f64 / m.wall_s.max(1e-12),
            m.report.serviced_entries as f64 / m.wall_s.max(1e-12),
            m.report.batches,
        );
        let label = m.report.scheduler.clone();
        rows.push(json_row(&label, &m));
    }

    // --- Flight-recorder overhead ---------------------------------------
    //
    // The greedy single-engine run again, with the recorder off / ring /
    // JSONL. `telemetry_off` goes through `run_with_sink` with an explicit
    // null sink — the exact instrumented code path a production run takes
    // with telemetry disabled — and the regression guard holds it within a
    // hair of the plain greedy row above (the `enabled()` branch must be
    // dead weight). The bounded ring is the always-on flight-recorder
    // configuration; the unbounded JSONL sink is the worst case.
    type SinkFactory = fn() -> Box<dyn TelemetrySink>;
    let telemetry_rows: [(&str, SinkFactory); 3] = [
        ("telemetry_off", || Box::new(NullSink)),
        ("telemetry_ring", || Box::new(RingBufferSink::new(1 << 16))),
        ("telemetry_jsonl", || Box::new(JsonlSink::new())),
    ];
    for (key, mk_sink) in telemetry_rows {
        let m = measure_with(
            || {
                let mut scheduler = LifeRaftScheduler::greedy(params);
                sim.run_with_sink(&timed, &mut scheduler, mk_sink()).0
            },
            reps,
        );
        println!(
            "{key:<20} wall={:.3}s  decisions/s={:>12.0}  entries/s={:>12.0}  batches={}",
            m.wall_s,
            m.report.batches as f64 / m.wall_s.max(1e-12),
            m.report.serviced_entries as f64 / m.wall_s.max(1e-12),
            m.report.batches,
        );
        rows.push(json_row(key, &m));
    }

    // --- Elastic vs static sharding under hotspot drift -----------------
    //
    // A 4-shard pool serving a workload whose hot region *moves*: a few
    // simultaneously-active hotspots rotate across the sky over the trace.
    // The static hashed map eats whatever placement luck the hash gives it;
    // the elastic map migrates hot buckets at epoch boundaries. Both rows
    // run the deterministic stepped executor, so wall time is the serial
    // decision-path cost (routing + scheduling + rebalancing included) on
    // identical work.
    let t0 = Instant::now();
    let mut dcfg = WorkloadConfig::paper_like(sc.level, sc.n_buckets, sc.n_queries, sc.seed ^ 0xD2);
    dcfg.epochs = if quick { 4 } else { 8 };
    dcfg.active_per_epoch = 3;
    dcfg.always_active = 0;
    dcfg.hotspots = 6;
    dcfg.hotspot_zipf = 0.5;
    dcfg.hotspot_fraction = 0.95;
    let dgen = TraceGenerator::new(dcfg);
    let dlayout = dgen.layout();
    let dblocks = parallel_map(&ranges, threads, |_, &(start, end)| {
        dgen.generate_block(&dlayout, start, end)
    });
    let dtrace = Trace::new(sc.level, dblocks.into_iter().flatten().collect());
    let drift_rate = 32.0;
    let dtimed = dtrace.into_timed(poisson_arrivals(drift_rate, sc.n_queries, 0xD21F));
    println!(
        "drift fixture built in {:.1}s ({} queries at {drift_rate} q/s)",
        t0.elapsed().as_secs_f64(),
        sc.n_queries
    );

    // Both rows share the hashed base placement; the elastic row only adds
    // the epoch controller, so the delta is rebalancing itself.
    let shard_rows: Vec<(&str, RuntimeConfig)> = {
        let mut hashed = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        hashed.assignment = ShardAssignment::Hashed { seed: 0xC1D2 };
        let mut elastic = hashed.clone();
        elastic.rebalance = RebalanceConfig::every(SimDuration::from_secs(5));
        elastic.rebalance.min_imbalance = 1.4;
        elastic.rebalance.max_moves_per_epoch = 8;
        vec![
            ("sharded_static_hashed", hashed),
            ("sharded_elastic", elastic),
        ]
    };
    for (key, config) in shard_rows {
        let rt = ShardedRuntime::new(&catalog, config);
        let m = measure_with(
            || {
                rt.run(
                    &dtimed,
                    &mut |_| Box::new(LifeRaftScheduler::greedy(params)),
                    ExecMode::Stepped,
                )
                .global
            },
            reps,
        );
        println!(
            "{key:<22} wall={:.3}s  makespan={:.0}s  p90_rt={:.1}s  batches={}",
            m.wall_s,
            m.report.makespan_s,
            m.report.response.percentile(90.0),
            m.report.batches,
        );
        rows.push(json_row(key, &m));
    }

    // --- Overload front door under flash crowd and shard stall ----------
    //
    // The same 4-shard pool fronted by the global admission controller.
    // Three rows: the flash-crowd scenario through a *neutral* (unbounded)
    // door — behaviour-identical to no controller, but it still records
    // per-class latency — then the same trace with the controller bounds
    // on, then the shard-stall scenario with the controller on. The
    // interactive-class p90 response is *virtual-time*, i.e. deterministic
    // for a given fixture, so the regression guard can hold the door-on
    // row below the door-off row exactly; wall time measures the planner
    // plus the stepped decision path.
    let oq = if quick { 400 } else { 2_000 };
    let oscale = ScenarioScale {
        level: sc.level,
        n_buckets: sc.n_buckets,
        n_queries: oq,
        seed: sc.seed,
    };
    let flash = build_scenario(ScenarioKind::FlashCrowd, &oscale);
    let stall = build_scenario(ScenarioKind::ShardStall, &oscale);
    // Bounds derived from the fixture's own routed-size distribution so
    // the rows stay meaningful at both scales: the class thresholds sit at
    // the 30th/70th size percentiles and the in-flight bound at 4x the
    // median, tight enough that the burst queues and sheds.
    let pre = QueryPreProcessor::new(catalog.partition());
    let mut sizes: Vec<u64> = flash
        .trace
        .entries()
        .iter()
        .map(|(_, q)| pre.workload_size(q))
        .collect();
    sizes.sort_unstable();
    let pct = |p: usize| sizes[(sizes.len() - 1) * p / 100];
    let mut door = FrontDoorConfig::bounded((4 * pct(50)).max(1));
    door.interactive_max_assignments = pct(30);
    door.batch_min_assignments = pct(70).max(pct(30) + 1);
    door.max_waiting_assignments = Some(12 * pct(50));
    let neutral = FrontDoorConfig::bounded(u64::MAX);

    let overload_rows = [
        ("overload_flash_door_off", &flash, neutral),
        ("overload_flash_door_on", &flash, door),
        ("overload_stall_door_on", &stall, door),
    ];
    for (key, fx, fd_cfg) in overload_rows {
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.front_door = fd_cfg;
        config.faults = FaultPlan {
            stalls: fx.stalls.clone(),
            outages: fx.outages.clone(),
            links: fx.links.clone(),
        };
        let rt = ShardedRuntime::new(&catalog, config);
        let mut wall_s = f64::INFINITY;
        let mut captured = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let rep = rt.run(
                &fx.trace,
                &mut |_| Box::new(LifeRaftScheduler::greedy(params)),
                ExecMode::Stepped,
            );
            wall_s = wall_s.min(t0.elapsed().as_secs_f64());
            captured = Some(rep);
        }
        let rep = captured.expect("at least one repetition");
        let fd = rep.front_door.as_ref().expect("door rows report");
        let interactive_p90 = fd.class(QueryClass::Interactive).response.percentile(90.0);
        println!(
            "{key:<24} wall={wall_s:.3}s  interactive_p90={interactive_p90:.1}s  shed={}  rejected={}",
            fd.log.total_shed_events(),
            fd.rejected.len(),
        );
        rows.push(format!(
            concat!(
                "    {{\"scheduler\": {:?}, \"wall_s\": {:.6}, \"reps\": {}, ",
                "\"batches\": {}, \"serviced_entries\": {}, \"sim_makespan_s\": {:.3}, ",
                "\"interactive_p90_s\": {:.3}, \"shed_events\": {}, \"rejected\": {}}}"
            ),
            key,
            wall_s,
            reps,
            rep.global.batches,
            rep.global.serviced_entries,
            rep.global.makespan_s,
            interactive_p90,
            fd.log.total_shed_events(),
            fd.rejected.len(),
        ));
    }

    // --- Shard crash & failover ------------------------------------------
    //
    // The crash scenario: a flash of load builds a pool-wide backlog, then
    // one shard dies outright mid-drain and stays dead past the last
    // arrival. Two rows on the identical trace: failover on (the dead
    // shard's buckets evacuate to survivors and its released fragments are
    // re-delivered) and failover off (the stranded work rides out the
    // outage and finishes grossly late). The p90 is virtual-time —
    // deterministic for the fixture — so the regression guard can require
    // the on-row to beat the off-row exactly; recovery_lag_s is the gap
    // between the last evacuation and the first completion a survivor
    // delivers on adopted work.
    let crash = build_scenario(ScenarioKind::ShardCrash, &oscale);
    let crash_rows = [
        ("crash_failover_on", FailoverConfig::recovery()),
        ("crash_failover_off", FailoverConfig::disabled()),
    ];
    for (key, failover) in crash_rows {
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.faults = FaultPlan {
            stalls: crash.stalls.clone(),
            outages: crash.outages.clone(),
            links: crash.links.clone(),
        };
        config.failover = failover;
        let rt = ShardedRuntime::new(&catalog, config);
        let mut wall_s = f64::INFINITY;
        let mut captured = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let rep = rt.run(
                &crash.trace,
                &mut |_| Box::new(LifeRaftScheduler::greedy(params)),
                ExecMode::Stepped,
            );
            wall_s = wall_s.min(t0.elapsed().as_secs_f64());
            captured = Some(rep);
        }
        let rep = captured.expect("at least one repetition");
        let fo = rep.failover.as_ref().expect("crash rows report failover");
        let p90 = rep.global.response.percentile(90.0);
        let recovery_lag_s = fo.recovery_lag_s();
        println!(
            "{key:<24} wall={wall_s:.3}s  p90={p90:.1}s  evacuated={}  redelivered={}  lag={recovery_lag_s:.2}s",
            fo.log.evacuated_entries(),
            fo.log.delivered_redeliveries(),
        );
        rows.push(format!(
            concat!(
                "    {{\"scheduler\": {:?}, \"wall_s\": {:.6}, \"reps\": {}, ",
                "\"batches\": {}, \"serviced_entries\": {}, \"sim_makespan_s\": {:.3}, ",
                "\"p90_response_s\": {:.3}, \"recovery_lag_s\": {:.3}, ",
                "\"evacuated_entries\": {}, \"redeliveries\": {}, \"rejected\": {}}}"
            ),
            key,
            wall_s,
            reps,
            rep.global.batches,
            rep.global.serviced_entries,
            rep.global.makespan_s,
            p90,
            recovery_lag_s,
            fo.log.evacuated_entries(),
            fo.log.redeliveries.len(),
            fo.total_rejected(),
        ));
    }

    // --- Lossy links & straggler hedging ---------------------------------
    //
    // The lossy-link scenario: flaky links on two shards (data loss forces
    // retransmits, ack loss forces duplicate suppression) plus one 5×
    // stalled shard — the structural straggler. Two rows on the identical
    // trace and identical link chaos: transport with p75-anchored hedging
    // on, and retransmit/dedup-only delivery. The p90 is virtual-time —
    // deterministic for the fixture — so the regression guard can require
    // the hedge-on row to beat hedge-off exactly.
    let lossy = build_scenario(ScenarioKind::LossyLink, &oscale);
    let mut hedge_on = TransportConfig::hedged();
    // Same tuning as the scenario suite: anchor below the
    // straggler-inflated p90 so hedges fire early enough to move the p90
    // itself, with a budget wide enough for the full-scale fixture.
    hedge_on.hedge.quantile = 0.75;
    hedge_on.hedge.latency_multiplier = 1.5;
    hedge_on.hedge.min_samples = 5;
    hedge_on.hedge.max_hedges = 1024;
    let mut hedge_off = hedge_on;
    hedge_off.hedge.enabled = false;
    let lossy_rows = [
        ("lossy_link_hedge_on", hedge_on),
        ("lossy_link_hedge_off", hedge_off),
    ];
    for (key, transport) in lossy_rows {
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.faults = FaultPlan {
            stalls: lossy.stalls.clone(),
            outages: lossy.outages.clone(),
            links: lossy.links.clone(),
        };
        config.transport = transport;
        let rt = ShardedRuntime::new(&catalog, config);
        let mut wall_s = f64::INFINITY;
        let mut captured = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let rep = rt.run(
                &lossy.trace,
                &mut |_| Box::new(LifeRaftScheduler::greedy(params)),
                ExecMode::Stepped,
            );
            wall_s = wall_s.min(t0.elapsed().as_secs_f64());
            captured = Some(rep);
        }
        let rep = captured.expect("at least one repetition");
        let tp = rep.transport.as_ref().expect("lossy rows report transport");
        let p90 = rep.global.response.percentile(90.0);
        println!(
            "{key:<24} wall={wall_s:.3}s  p90={p90:.1}s  retransmits={}  hedges={}  deduped={}",
            tp.log.retransmits.len(),
            tp.log.hedges.len(),
            tp.log.suppressed.len(),
        );
        rows.push(format!(
            concat!(
                "    {{\"scheduler\": {:?}, \"wall_s\": {:.6}, \"reps\": {}, ",
                "\"batches\": {}, \"serviced_entries\": {}, \"sim_makespan_s\": {:.3}, ",
                "\"p90_response_s\": {:.3}, \"retransmits\": {}, \"hedges\": {}, ",
                "\"hedge_wins\": {}, \"suppressed_duplicates\": {}, \"rejected\": {}}}"
            ),
            key,
            wall_s,
            reps,
            rep.global.batches,
            rep.global.serviced_entries,
            rep.global.makespan_s,
            p90,
            tp.log.retransmits.len(),
            tp.log.hedges.len(),
            tp.hedge_wins,
            tp.log.suppressed.len(),
            tp.total_rejected(),
        ));
    }

    let out_path = std::env::var("LIFERAFT_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_sim.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!
    (
        concat!(
            "{{\n",
            "  \"bench\": \"sim_throughput\",\n",
            "  \"mode\": {:?},\n",
            "  \"scale\": {{\"level\": {}, \"n_buckets\": {}, \"objects_per_bucket\": {}, \"n_queries\": {}, \"seed\": {}}},\n",
            "  \"fixture_build_s\": {:.3},\n",
            "  \"fixture_threads\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if quick { "quick" } else { "full" },
        sc.level,
        sc.n_buckets,
        sc.objects_per_bucket,
        sc.n_queries,
        sc.seed,
        fixture_s,
        threads,
        rows.join(",\n"),
    );
    // Fail loudly: a swallowed write error would let CI upload the stale
    // committed baseline as this run's artifact.
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
