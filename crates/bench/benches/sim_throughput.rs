//! End-to-end scheduler throughput benchmark — the perf trajectory anchor.
//!
//! Replays a large synthetic trace through the full decision path (workload
//! table → snapshots → scheduler → batch execution) for each policy and
//! reports *wall-clock* decisions/second and entries/second, i.e. how fast
//! the engine itself runs, independent of the virtual-time cost model. The
//! results are written as machine-readable JSON (`BENCH_sim.json` at the
//! workspace root by default) so every later PR has a number to beat.
//!
//! Usage:
//!   cargo bench -p liferaft-bench --bench sim_throughput            # full
//!   LIFERAFT_SCALE=quick cargo bench -p liferaft-bench --bench sim_throughput
//!   LIFERAFT_BENCH_OUT=/tmp/x.json cargo bench ... # override output path
//!
//! Full scale is ~2k buckets / 10k queries (thousands of live candidates
//! per decision); quick is CI-sized.

use std::time::Instant;

use liferaft_bench::experiments::Scale;
use liferaft_catalog::VirtualCatalog;
use liferaft_core::{
    AgingMode, LifeRaftScheduler, MetricParams, NoShareScheduler, RoundRobinScheduler, Scheduler,
};
use liferaft_runtime::parallel_map;
use liferaft_sim::{RunReport, SimConfig, Simulation};
use liferaft_workload::arrivals::poisson_arrivals;
use liferaft_workload::{TimedTrace, Trace, TraceGenerator, WorkloadConfig};

/// The benchmark's own scales: wider than the figure fixtures (the point is
/// scheduler stress, not figure shapes).
fn scale(quick: bool) -> Scale {
    if quick {
        Scale {
            level: 10,
            n_buckets: 512,
            objects_per_bucket: 500,
            n_queries: 600,
            seed: 2009,
        }
    } else {
        Scale {
            level: 12,
            n_buckets: 2_048,
            objects_per_bucket: 1_000,
            n_queries: 10_000,
            seed: 2009,
        }
    }
}

struct Measured {
    report: RunReport,
    /// Best (minimum) wall time over the repetitions — the standard
    /// estimator under noisy schedulers/frequency scaling.
    wall_s: f64,
    reps: u32,
}

fn measure(
    sim: &Simulation<'_, VirtualCatalog>,
    timed: &TimedTrace,
    mk_scheduler: &dyn Fn() -> Box<dyn Scheduler>,
    reps: u32,
) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..reps {
        // A fresh scheduler per repetition: stateful policies (RR's cursor,
        // adaptive controllers) must not leak state between reps, or the
        // reported row depends on which rep happened to be fastest.
        let mut scheduler = mk_scheduler();
        let t0 = Instant::now();
        let report = sim.run(timed, scheduler.as_mut());
        let wall_s = t0.elapsed().as_secs_f64();
        if best.as_ref().map_or(true, |b| wall_s < b.wall_s) {
            best = Some(Measured {
                report,
                wall_s,
                reps,
            });
        }
    }
    best.expect("at least one repetition")
}

fn json_row(m: &Measured) -> String {
    let r = &m.report;
    let wall = m.wall_s.max(1e-12);
    format!(
        concat!(
            "    {{\"scheduler\": {:?}, \"wall_s\": {:.6}, \"reps\": {}, \"batches\": {}, ",
            "\"decisions_per_sec\": {:.1}, \"entries_per_sec\": {:.1}, ",
            "\"serviced_entries\": {}, \"frontier_picks\": {}, \"fallback_picks\": {}, ",
            "\"sim_makespan_s\": {:.3}, ",
            "\"sim_throughput_qps\": {:.6}, \"mean_response_s\": {:.3}}}"
        ),
        r.scheduler,
        m.wall_s,
        m.reps,
        r.batches,
        r.batches as f64 / wall,
        r.serviced_entries as f64 / wall,
        r.serviced_entries,
        r.frontier_picks,
        r.fallback_picks,
        r.makespan_s,
        r.throughput_qps,
        r.mean_response_s(),
    )
}

fn main() {
    let quick = matches!(std::env::var("LIFERAFT_SCALE").as_deref(), Ok("quick"));
    let sc = scale(quick);
    println!(
        "sim_throughput — {} buckets x {} objects, {} queries ({})",
        sc.n_buckets,
        sc.objects_per_bucket,
        sc.n_queries,
        if quick { "quick" } else { "full" }
    );

    let t0 = Instant::now();
    let object_bytes = (40 * 1024 * 1024) / sc.objects_per_bucket;
    let catalog = VirtualCatalog::new(
        sc.level,
        sc.n_buckets,
        sc.objects_per_bucket,
        object_bytes,
        sc.seed,
    );
    let cfg = WorkloadConfig::paper_like(sc.level, sc.n_buckets, sc.n_queries, sc.seed ^ 0x51);
    // Trace generation fans per-query-seeded blocks across the sweep
    // driver's thread pool. The block family is chunking- and thread-count
    // invariant (`TraceGenerator::generate_block`), and the chunk list is
    // fixed by the scale alone, so the fixture is bit-identical on any
    // machine — only the wall time varies.
    let gen = TraceGenerator::new(cfg);
    let layout = gen.layout();
    let chunk = 250usize;
    let ranges: Vec<(usize, usize)> = (0..sc.n_queries.div_ceil(chunk))
        .map(|c| (c * chunk, ((c + 1) * chunk).min(sc.n_queries)))
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let blocks = parallel_map(&ranges, threads, |_, &(start, end)| {
        gen.generate_block(&layout, start, end)
    });
    let trace = Trace::new(sc.level, blocks.into_iter().flatten().collect());
    let total_objects = trace.total_objects();
    // A hard arrival rate so queues are deep and candidate sets are wide —
    // the regime where decision cost dominates.
    let timed = trace.into_timed(poisson_arrivals(2.0, sc.n_queries, 0xBE7C));
    let fixture_s = t0.elapsed().as_secs_f64();
    println!(
        "fixture built in {fixture_s:.1}s ({total_objects} queued objects, {threads} threads)"
    );

    let sim = Simulation::new(&catalog, SimConfig::paper());
    let params = MetricParams::paper();
    type Factory = Box<dyn Fn() -> Box<dyn Scheduler>>;
    let runs: Vec<(&str, Factory)> = vec![
        (
            "liferaft_greedy",
            Box::new(move || Box::new(LifeRaftScheduler::greedy(params))),
        ),
        (
            "liferaft_alpha05",
            Box::new(move || Box::new(LifeRaftScheduler::new(params, AgingMode::Normalized, 0.5))),
        ),
        (
            "liferaft_age_based",
            Box::new(move || Box::new(LifeRaftScheduler::age_based(params))),
        ),
        (
            "round_robin",
            Box::new(|| Box::new(RoundRobinScheduler::new())),
        ),
        ("noshare", Box::new(|| Box::new(NoShareScheduler::new()))),
    ];

    let reps: u32 = std::env::var("LIFERAFT_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 3 });
    let mut rows = Vec::new();
    for (key, mk) in &runs {
        let m = measure(&sim, &timed, mk.as_ref(), reps);
        println!(
            "{key:<20} wall={:.3}s  decisions/s={:>12.0}  entries/s={:>12.0}  batches={}",
            m.wall_s,
            m.report.batches as f64 / m.wall_s.max(1e-12),
            m.report.serviced_entries as f64 / m.wall_s.max(1e-12),
            m.report.batches,
        );
        rows.push(json_row(&m));
    }

    let out_path = std::env::var("LIFERAFT_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_sim.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!
    (
        concat!(
            "{{\n",
            "  \"bench\": \"sim_throughput\",\n",
            "  \"mode\": {:?},\n",
            "  \"scale\": {{\"level\": {}, \"n_buckets\": {}, \"objects_per_bucket\": {}, \"n_queries\": {}, \"seed\": {}}},\n",
            "  \"fixture_build_s\": {:.3},\n",
            "  \"fixture_threads\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if quick { "quick" } else { "full" },
        sc.level,
        sc.n_buckets,
        sc.objects_per_bucket,
        sc.n_queries,
        sc.seed,
        fixture_s,
        threads,
        rows.join(",\n"),
    );
    // Fail loudly: a swallowed write error would let CI upload the stale
    // committed baseline as this run's artifact.
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
