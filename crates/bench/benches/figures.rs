//! The figure harness: regenerates every table/figure of the paper.
//!
//! Usage:
//!   cargo bench -p liferaft-bench --bench figures            # everything
//!   cargo bench -p liferaft-bench --bench figures -- fig7    # one figure
//!   LIFERAFT_SCALE=quick cargo bench -p liferaft-bench --bench figures
//!
//! Recognized filters: fig2, fig4, fig5, fig6, fig7, fig8, cache, ablate.

use liferaft_bench::experiments::{build, Scale};
use liferaft_bench::figures::{self, Check};

fn main() {
    // Cargo passes its own flags (e.g. `--bench`); keep only plain words.
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let wants =
        |name: &str| filters.is_empty() || filters.iter().any(|f| name.starts_with(f.as_str()));

    let scale = Scale::from_env();
    println!(
        "LifeRaft figure harness — scale: {} buckets x {} objects, {} queries (LIFERAFT_SCALE={})",
        scale.n_buckets,
        scale.objects_per_bucket,
        scale.n_queries,
        if scale == Scale::quick() {
            "quick"
        } else {
            "full"
        },
    );

    let mut checks: Vec<Check> = Vec::new();

    if wants("fig2") {
        // Figure 2 is a pure cost-model artifact at the paper's bucket
        // geometry (10 000 objects per 40 MB bucket), independent of the
        // simulation scale.
        let exp_cost = liferaft_storage::CostModel::paper();
        checks.extend(figures::fig2(&exp_cost, 10_000));
    }

    let needs_experiment = ["fig4", "fig5", "fig6", "fig7", "fig8", "cache", "ablate"]
        .iter()
        .any(|f| wants(f));
    if needs_experiment {
        let t0 = std::time::Instant::now();
        let exp = build(scale);
        println!(
            "fixture built in {:.1}s ({} objects across {} queries)",
            t0.elapsed().as_secs_f64(),
            exp.trace.total_objects(),
            exp.trace.len()
        );

        if wants("fig5") || wants("fig6") {
            checks.extend(figures::fig5_and_fig6(&exp));
        }
        let mut fig7_reports = None;
        if wants("fig7") || wants("cache") {
            let (reports, c) = figures::fig7(&exp);
            checks.extend(c);
            fig7_reports = Some(reports);
        }
        if let Some(reports) = &fig7_reports {
            if wants("cache") {
                checks.extend(figures::cache_stat(reports));
            }
        }
        if wants("fig8") || wants("fig4") {
            let (table, reports, c) = figures::fig8(&exp);
            checks.extend(c);
            if wants("fig4") {
                checks.extend(figures::fig4(&table, &reports));
            }
        }
        if wants("ablate") {
            checks.extend(figures::ablations(&exp));
        }
    }

    // Reproduction audit.
    println!("\n=== Reproduction audit ===");
    let mut missed = 0;
    for c in &checks {
        let tag = if c.ok { "[ ok ]" } else { "[MISS]" };
        if !c.ok {
            missed += 1;
        }
        println!("{tag} {} — {}", c.name, c.detail);
    }
    println!(
        "\n{} of {} shape checks reproduced",
        checks.len() - missed,
        checks.len()
    );
    if missed > 0 {
        // Benches should report, not abort the suite; the audit line above
        // is what EXPERIMENTS.md records.
        eprintln!("warning: {missed} checks missed the published shape");
    }
}
