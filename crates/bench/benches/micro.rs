//! Criterion microbenchmarks for the hot kernels.
//!
//! These quantify the costs the simulator abstracts away — HTM indexing,
//! region coverage, the join inner loops, scheduler decisions — so that the
//! constants in the cost model can be sanity-checked against real code.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use liferaft_catalog::{Catalog, VirtualCatalog};
use liferaft_core::{
    AgingMode, BucketSnapshot, IndexedSchedulerView, LifeRaftScheduler, MetricParams, Scheduler,
};
use liferaft_htm::{cap::Cap, cover::Coverer, locate, Vec3};
use liferaft_join::zones::ZoneMap;
use liferaft_join::{indexed::indexed_join, sweep::sweep_join};
use liferaft_query::QueryId as CoreQueryId;
use liferaft_query::{
    CrossMatchQuery, MatchObject, Predicate, QueryId, QueueEntry, WorkItem, WorkloadTable,
};
use liferaft_storage::{BucketCache, BucketId, SimDuration, SimTime};

fn bench_htm(c: &mut Criterion) {
    let mut g = c.benchmark_group("htm");
    let p = Vec3::from_radec_deg(187.70593, 12.39112); // M87
    g.bench_function("locate_level14", |b| {
        b.iter(|| locate(black_box(p), black_box(14)))
    });
    g.bench_function("trixel_of_level14", |b| {
        let id = locate(p, 14);
        b.iter(|| liferaft_htm::trixel_of(black_box(id)))
    });
    for radius_arcsec in [1.0, 60.0, 3600.0] {
        g.bench_with_input(
            BenchmarkId::new("cover_bounded_level14", format!("{radius_arcsec}arcsec")),
            &radius_arcsec,
            |b, &r| {
                let cap = Cap::new(p, (r / 3600.0_f64).to_radians());
                let coverer = Coverer::new(14);
                b.iter(|| coverer.cover_bounded(black_box(&cap), 4))
            },
        );
    }
    g.finish();
}

fn join_fixture(w: usize) -> (Vec<liferaft_catalog::SkyObject>, Vec<QueueEntry>) {
    const LEVEL: u8 = 14;
    let cat = VirtualCatalog::new(LEVEL, 64, 10_000, 4096, 77);
    let bucket = cat.bucket_objects(BucketId(7)).into_owned();
    let entries: Vec<QueueEntry> = bucket
        .iter()
        .step_by((bucket.len() / w).max(1))
        .take(w)
        .enumerate()
        .map(|(i, o)| {
            let radius = (10.0 / 3600.0_f64).to_radians();
            let mo = MatchObject::new(o.pos, radius, LEVEL);
            QueueEntry {
                query: QueryId(i as u64 % 17),
                object_index: i as u32,
                pos: o.pos,
                radius,
                bbox: mo.bounding_range(),
                enqueued_at: SimTime::ZERO,
            }
        })
        .collect();
    (bucket, entries)
}

fn bench_joins(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_10k_bucket");
    for w in [30usize, 300, 3_000] {
        let (bucket, entries) = join_fixture(w);
        g.bench_with_input(BenchmarkId::new("sweep", w), &w, |b, _| {
            b.iter(|| sweep_join(black_box(&bucket), black_box(&entries)))
        });
        g.bench_with_input(BenchmarkId::new("indexed", w), &w, |b, _| {
            b.iter(|| indexed_join(black_box(&bucket), black_box(&entries)))
        });
        g.bench_with_input(BenchmarkId::new("zones", w), &w, |b, _| {
            let zm = ZoneMap::build(&bucket, 0.001);
            b.iter(|| zm.crossmatch(black_box(&bucket), black_box(&entries)))
        });
    }
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_pick");
    for n in [100usize, 1_000, 5_000] {
        let candidates: Vec<BucketSnapshot> = (0..n)
            .map(|i| BucketSnapshot {
                bucket: BucketId(i as u32),
                queue_len: (i as u64 * 31) % 4_000 + 1,
                oldest_enqueue: SimTime::from_micros((i as u64 * 7_919) % 1_000_000),
                cached: i % 37 == 0,
                bucket_objects: 10_000,
            })
            .collect();
        let now = SimTime::from_micros(2_000_000);
        g.bench_with_input(BenchmarkId::new("liferaft_alpha05", n), &n, |b, _| {
            let s = LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, 0.5);
            b.iter(|| s.pick_index(black_box(now), black_box(&candidates)))
        });
    }
    g.finish();
}

fn bench_candidates(c: &mut Criterion) {
    let mut g = c.benchmark_group("candidates");
    for n in [256usize, 2_048] {
        let positions: Vec<Vec3> = (0..4)
            .map(|i| Vec3::from_radec_deg(10.0 + i as f64 * 0.01, 5.0))
            .collect();
        let query =
            CrossMatchQuery::from_positions(QueryId(1), &positions, 1e-5, 14, Predicate::All);
        let mut table = WorkloadTable::new(n).with_object_counts(|_| 10_000);
        for b in 0..n {
            let item = WorkItem {
                query: query.id,
                bucket: BucketId(b as u32),
                object_indices: (0..positions.len() as u32).collect(),
            };
            table.enqueue(&item, &query, SimTime::from_micros(b as u64));
        }
        let mut cache = BucketCache::new(20);
        for b in 0..20 {
            cache.insert(BucketId(b * 7 % n as u32));
        }
        // The incremental path: memcpy the maintained snapshots, refresh φ.
        g.bench_with_input(BenchmarkId::new("refresh_into", n), &n, |bench, _| {
            let mut out = Vec::new();
            bench.iter(|| {
                table.snapshots_into(black_box(&mut out), &cache);
                out.len()
            })
        });
        // The pre-refactor path: rebuild every snapshot from the queues.
        g.bench_with_input(BenchmarkId::new("rebuild", n), &n, |bench, _| {
            bench.iter(|| {
                let v: Vec<BucketSnapshot> = table
                    .non_empty_buckets()
                    .iter()
                    .map(|&b| {
                        let q = table.queue(b);
                        BucketSnapshot {
                            bucket: b,
                            queue_len: q.len() as u64,
                            oldest_enqueue: q.oldest_enqueue().expect("non-empty"),
                            cached: cache.contains(b),
                            bucket_objects: 10_000,
                        }
                    })
                    .collect();
                v.len()
            })
        });
    }
    g.finish();
}

/// A minimal indexed view over a workload table — the blanket
/// [`IndexedSchedulerView`] impl gives it the exact candidate dispatch the
/// engine's decision loop uses.
struct TableView<'a> {
    now: SimTime,
    table: &'a WorkloadTable,
}

impl IndexedSchedulerView for TableView<'_> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn table(&self) -> &WorkloadTable {
        self.table
    }
    fn oldest_pending_query(&self) -> Option<(CoreQueryId, SimTime)> {
        None
    }
    fn pending_buckets_of(&self, _query: CoreQueryId) -> Vec<BucketId> {
        Vec::new()
    }
}

/// A table with `n` non-empty buckets of varied depth and age, φ synced
/// against a 20-bucket resident set — the decision-path fixture.
fn decision_fixture(n: usize) -> (WorkloadTable, BucketCache) {
    let positions: Vec<Vec3> = (0..8)
        .map(|i| Vec3::from_radec_deg(10.0 + i as f64 * 0.01, 5.0))
        .collect();
    let query = CrossMatchQuery::from_positions(QueryId(1), &positions, 1e-5, 14, Predicate::All);
    let mut table = WorkloadTable::new(n).with_object_counts(|_| 10_000);
    for b in 0..n {
        let item = WorkItem {
            query: query.id,
            bucket: BucketId(b as u32),
            object_indices: (0..((b as u32 * 31) % 8 + 1)).collect(),
        };
        table.enqueue(
            &item,
            &query,
            SimTime::from_micros((b as u64 * 7_919) % 1_000_000),
        );
    }
    let mut cache = BucketCache::new(20);
    for b in 0..20u32 {
        cache.access(BucketId(b * 31 % n as u32));
    }
    table.sync_residency(&cache);
    (table, cache)
}

/// The tentpole's microscope: indexed `pick_top` vs the legacy
/// gather-and-score sweep, plus the index-maintenance cost itself, at
/// candidate-set sizes bracketing the e2e bench (256 / 2k / 16k).
fn bench_decision_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("decision_path");
    let now = SimTime::from_micros(2_000_000);
    for n in [256usize, 2_048, 16_384] {
        let (table, cache) = decision_fixture(n);
        let view = TableView { now, table: &table };
        for (label, alpha) in [("greedy", 0.0), ("alpha05", 0.5), ("aged", 1.0)] {
            // The indexed pick: O(log n + resident) at the extremes, a
            // bounded frontier re-rank at mixed α.
            g.bench_with_input(
                BenchmarkId::new(format!("pick_top_{label}"), n),
                &n,
                |b, _| {
                    let mut s =
                        LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, alpha);
                    b.iter(|| s.pick(black_box(&view)).expect("non-empty"))
                },
            );
            // The legacy path: materialize every snapshot, score them all.
            g.bench_with_input(
                BenchmarkId::new(format!("gather_score_{label}"), n),
                &n,
                |b, _| {
                    let mut table = table.clone();
                    let s =
                        LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, alpha);
                    let mut out = Vec::new();
                    b.iter(|| {
                        table.snapshots_into(black_box(&mut out), &cache);
                        s.pick_index(black_box(now), black_box(&out))
                            .expect("non-empty")
                    })
                },
            );
        }
        // Index maintenance: one empty→non-empty enqueue plus a full drain
        // (two inserts + two removes across the index's orders).
        g.bench_with_input(BenchmarkId::new("index_enqueue_drain", n), &n, |b, _| {
            let (mut table, _) = decision_fixture(n);
            let positions: Vec<Vec3> = (0..4)
                .map(|i| Vec3::from_radec_deg(10.0 + i as f64 * 0.01, 5.0))
                .collect();
            let query =
                CrossMatchQuery::from_positions(QueryId(2), &positions, 1e-5, 14, Predicate::All);
            let item = WorkItem {
                query: query.id,
                bucket: BucketId(0),
                object_indices: (0..4).collect(),
            };
            let mut drained = Vec::new();
            table.take_all_into(BucketId(0), &mut drained);
            b.iter(|| {
                table.enqueue(black_box(&item), &query, SimTime::from_micros(5));
                table.take_all_into(BucketId(0), &mut drained);
                drained.len()
            })
        });
    }
    g.finish();
}

/// The tentpole's microscope: segmented per-(bucket, query) drains at
/// co-queued depths bracketing the e2e bench. `take_query` moves one
/// query's run out and pushes it back (NoShare's steady state — O(matched)
/// in the segmented layout, O(depth) compares in the old sidecar sweep);
/// `take_all` cycles the whole queue (the shared batch).
fn bench_queue_drain(c: &mut Criterion) {
    use liferaft_query::WorkloadQueue;
    let mut g = c.benchmark_group("queue_drain");
    const CO_QUEUED: u64 = 16;
    for depth in [256usize, 2_048, 16_384] {
        let positions = [Vec3::from_radec_deg(10.0, 5.0)];
        let proto =
            CrossMatchQuery::from_positions(QueryId(0), &positions, 1e-5, 14, Predicate::All);
        let mut queue = WorkloadQueue::new();
        for i in 0..depth {
            queue.push(QueueEntry {
                query: QueryId(i as u64 % CO_QUEUED),
                object_index: i as u32,
                pos: proto.objects[0].pos,
                radius: proto.objects[0].radius,
                bbox: proto.objects[0].bounding_range(),
                enqueued_at: SimTime::from_micros(i as u64),
            });
        }
        g.bench_with_input(
            BenchmarkId::new("take_query_refill", depth),
            &depth,
            |b, _| {
                let mut queue = queue.clone();
                let mut scratch = Vec::new();
                let mut victim = 0u64;
                b.iter(|| {
                    queue.drain_query_into(QueryId(victim), &mut scratch);
                    for e in scratch.drain(..) {
                        queue.push(e);
                    }
                    victim = (victim + 1) % CO_QUEUED;
                    queue.len()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("take_all_refill", depth),
            &depth,
            |b, _| {
                let mut queue = queue.clone();
                let mut scratch = Vec::new();
                b.iter(|| {
                    queue.drain_all_into(&mut scratch);
                    for e in scratch.drain(..) {
                        queue.push(e);
                    }
                    queue.len()
                })
            },
        );
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("bucket_cache_access_20", |b| {
        let mut cache = BucketCache::new(20);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 64;
            cache.access(BucketId(black_box(i)))
        })
    });
}

fn bench_preprocess(c: &mut Criterion) {
    const LEVEL: u8 = 14;
    let cat = VirtualCatalog::new(LEVEL, 1_024, 10_000, 4096, 3);
    let positions: Vec<Vec3> = (0..200)
        .map(|i| Vec3::from_radec_deg(150.0 + 0.01 * i as f64, 2.0))
        .collect();
    let query = liferaft_query::CrossMatchQuery::from_positions(
        QueryId(1),
        &positions,
        (10.0 / 3600.0_f64).to_radians(),
        LEVEL,
        liferaft_query::Predicate::All,
    );
    c.bench_function("preprocess_200_object_query", |b| {
        let pre = liferaft_query::QueryPreProcessor::new(cat.partition());
        b.iter(|| pre.preprocess(black_box(&query)))
    });
}

fn bench_materialize(c: &mut Criterion) {
    let cat = VirtualCatalog::new(14, 256, 10_000, 4096, 5);
    c.bench_function("virtual_bucket_materialize_10k", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 256;
            cat.bucket_objects(BucketId(black_box(i))).len()
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_htm, bench_joins, bench_scheduler, bench_candidates, bench_decision_path, bench_queue_drain, bench_cache, bench_preprocess, bench_materialize
}
criterion_main!(benches);

// Silence the unused-duration lint if criterion's config API changes.
#[allow(dead_code)]
fn _keep(_: SimDuration) {}
