//! Property tests for the sharded runtime's determinism contract.
//!
//! Over random catalogs, traces, shard counts, placements, and admission
//! bounds:
//!
//! - threaded execution is bit-identical to the stepped virtual-time merge
//!   (globally and per shard);
//! - a single-shard unbounded runtime reproduces `Simulation::run` exactly;
//! - work is conserved: every routed assignment is serviced exactly once,
//!   and every query completes no earlier than its arrival.

use liferaft_catalog::{Catalog, VirtualCatalog};
use liferaft_core::{
    AgingMode, LifeRaftScheduler, MetricParams, NoShareScheduler, RoundRobinScheduler, Scheduler,
};
use liferaft_query::QueryPreProcessor;
use liferaft_runtime::{
    AdmissionConfig, ExecMode, FailoverConfig, FaultPlan, FrontDoorConfig, QueryClass,
    RuntimeConfig, ShardAssignment, ShardedRuntime, TransportConfig,
};
use liferaft_sim::{
    LinkDirection, LinkFault, RunReport, ShardOutage, ShardSlowdown, SimConfig, Simulation,
};
use liferaft_storage::{SimDuration, SimTime};
use liferaft_workload::arrivals::poisson_arrivals;
use liferaft_workload::{TimedTrace, TraceGenerator, WorkloadConfig};
use proptest::prelude::*;

const LEVEL: u8 = 10;
const BUCKETS: u32 = 64;

/// Exact digest of everything the decision path influences.
fn fp(r: &RunReport) -> String {
    let outcomes: Vec<(u64, u64, u64, u64)> = r
        .outcomes
        .iter()
        .map(|o| {
            (
                o.query.0,
                o.arrival.as_micros(),
                o.completion.as_micros(),
                o.assignments,
            )
        })
        .collect();
    format!(
        "{} {} {} {} {} {:?} {:?} {:x} {:x} {:?}",
        r.batches,
        r.scan_batches,
        r.indexed_batches,
        r.serviced_entries,
        r.cache_serviced_entries,
        r.io,
        r.cache,
        r.makespan_s.to_bits(),
        r.max_wait_ms.to_bits(),
        outcomes,
    )
}

fn fixture(seed: u64, n_queries: usize, rate_qps: f64) -> (VirtualCatalog, TimedTrace) {
    let catalog = VirtualCatalog::new(LEVEL, BUCKETS, 50, 4096, seed);
    let cfg = WorkloadConfig::paper_like(LEVEL, BUCKETS, n_queries, seed ^ 0x51);
    let trace = TraceGenerator::new(cfg).generate();
    let arrivals = poisson_arrivals(rate_qps, trace.len(), seed ^ 0xBEEF);
    let timed = trace.with_arrivals(arrivals);
    (catalog, timed)
}

fn policy(kind: u8) -> Box<dyn Scheduler + Send> {
    match kind % 4 {
        0 => Box::new(NoShareScheduler::new()),
        1 => Box::new(RoundRobinScheduler::new()),
        2 => Box::new(LifeRaftScheduler::greedy(MetricParams::paper())),
        _ => Box::new(LifeRaftScheduler::new(
            MetricParams::paper(),
            AgingMode::Normalized,
            0.5,
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Threaded == stepped, bit for bit, whatever the sharding and
    /// admission policy; and the sharded pool conserves assignments.
    #[test]
    fn threaded_matches_stepped_under_arbitrary_sharding(
        seed in 0u64..10_000,
        n_shards in 1u32..6,
        hashed in proptest::bool::ANY,
        kind in 0u8..4,
        bounded in proptest::bool::ANY,
        rate_deci in 2u64..20,
    ) {
        let (catalog, timed) = fixture(seed, 24, rate_deci as f64 / 10.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), n_shards);
        if hashed {
            config.assignment = ShardAssignment::Hashed { seed: seed ^ 0x5AD };
        }
        if bounded {
            config.admission = AdmissionConfig::bounded(50);
        }
        let rt = ShardedRuntime::new(&catalog, config);
        let stepped = rt.run(&timed, &mut |_| policy(kind), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| policy(kind), ExecMode::Threaded);

        prop_assert_eq!(fp(&stepped.global), fp(&threaded.global));
        prop_assert_eq!(stepped.shards.len(), threaded.shards.len());
        for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
            prop_assert_eq!(fp(&a.report), fp(&b.report));
            prop_assert_eq!(a.admission, b.admission);
        }

        // Conservation: every routed assignment serviced exactly once.
        let pre = QueryPreProcessor::new(catalog.partition());
        let expected: u64 = timed.entries().iter().map(|(_, q)| pre.workload_size(q)).sum();
        prop_assert_eq!(stepped.global.serviced_entries, expected);
        prop_assert_eq!(stepped.global.outcomes.len(), timed.len());
        for o in &stepped.global.outcomes {
            prop_assert!(o.completion >= o.arrival);
        }
    }

    /// Under a random overload regime — arbitrary front-door bounds, shed
    /// retries, waiting caps, and an optional injected shard stall — every
    /// query is exactly-once terminal (completed or rejected, never lost or
    /// double-counted), and the threaded executor replays the stepped
    /// plan bit for bit, front-door report included.
    #[test]
    fn overloaded_front_door_is_exactly_once_and_deterministic(
        seed in 0u64..10_000,
        n_shards in 1u32..5,
        kind in 0u8..4,
        bound_step in 1u64..12,
        soft_step in 0u64..10,  // 0 = no waiting cap
        max_retries in 0u32..4,
        stalled in proptest::bool::ANY,
        rate_deci in 2u64..20,
    ) {
        let (catalog, timed) = fixture(seed, 24, rate_deci as f64 / 10.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), n_shards);
        config.front_door = FrontDoorConfig::bounded(bound_step * 250);
        config.front_door.interactive_max_assignments = 150;
        config.front_door.batch_min_assignments = 500;
        config.front_door.max_waiting_assignments =
            (soft_step > 0).then(|| soft_step * 400);
        config.front_door.max_retries = max_retries;
        if stalled {
            config.faults = FaultPlan {
                stalls: vec![ShardSlowdown {
                    shard: 0,
                    from: SimTime::ZERO,
                    until: SimTime::ZERO + SimDuration::from_secs(30),
                    factor: 6.0,
                }],
                outages: Vec::new(),
                links: Vec::new(),
            };
        }
        let rt = ShardedRuntime::new(&catalog, config);
        let stepped = rt.run(&timed, &mut |_| policy(kind), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| policy(kind), ExecMode::Threaded);

        prop_assert_eq!(fp(&stepped.global), fp(&threaded.global));
        for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
            prop_assert_eq!(fp(&a.report), fp(&b.report));
            prop_assert_eq!(a.admission, b.admission);
        }
        prop_assert_eq!(&stepped.front_door, &threaded.front_door);

        // Exactly-once terminal: completed ∪ rejected covers the trace,
        // disjointly — nothing lost, nothing double-counted.
        let fd = stepped.front_door.as_ref().expect("front door is on");
        prop_assert_eq!(fd.log.verdicts.len(), timed.len());
        prop_assert_eq!(
            stepped.global.outcomes.len() + fd.rejected.len(),
            timed.len()
        );
        let mut terminal = vec![false; timed.len()];
        for o in &stepped.global.outcomes {
            let i = o.query.0 as usize;
            prop_assert!(!terminal[i], "query {} completed twice", i);
            terminal[i] = true;
            prop_assert!(o.completion >= o.arrival);
        }
        for r in &fd.rejected {
            prop_assert!(!terminal[r.index], "query {} rejected after completing", r.index);
            terminal[r.index] = true;
            prop_assert!(r.retries <= max_retries);
        }
        prop_assert!(terminal.iter().all(|&t| t), "some query never became terminal");

        // Per-class books balance and roll up to the whole trace.
        let mut submitted = 0u64;
        for class in QueryClass::ALL {
            let c = fd.class(class);
            prop_assert_eq!(c.submitted, c.admitted + c.rejected, "{} class", class.label());
            submitted += c.submitted;
        }
        prop_assert_eq!(submitted, timed.len() as u64);
    }

    /// Chaos: random crash schedules × retry budgets × schedulers. Every
    /// query is exactly-once terminal (completed or rejected, never lost or
    /// double-counted), per-class conservation holds, the threaded executor
    /// replays the stepped failover plan bit for bit — and when the random
    /// schedule happens to inject no outage at all, the failover-enabled
    /// run is bit-identical to the plain static pool.
    #[test]
    fn random_crashes_are_exactly_once_and_deterministic(
        seed in 0u64..10_000,
        n_shards in 2u32..5,
        kind in 0u8..4,
        n_outages in 0usize..3,
        down_s in 2u64..30,
        len_s in 1u64..25,
        max_redeliveries in 1u32..5,
        warm in proptest::bool::ANY,
        rate_deci in 2u64..20,
    ) {
        let (catalog, timed) = fixture(seed, 24, rate_deci as f64 / 10.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), n_shards);
        config.failover = FailoverConfig::recovery();
        config.failover.max_redeliveries = max_redeliveries;
        config.failover.warm_residency = warm;
        // Staggered windows on distinct shards; windows of *different*
        // shards may still overlap in time, so the schedule sometimes kills
        // every shard at once — the no-survivor retry/reject path.
        config.faults.outages = (0..n_outages)
            .map(|i| {
                let down = SimTime::ZERO + SimDuration::from_secs(down_s + 7 * i as u64);
                ShardOutage {
                    shard: i as u32 % n_shards,
                    down_at: down,
                    up_at: down + SimDuration::from_secs(len_s),
                }
            })
            .collect();
        let rt = ShardedRuntime::new(&catalog, config);
        let stepped = rt.run(&timed, &mut |_| policy(kind), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| policy(kind), ExecMode::Threaded);

        prop_assert_eq!(fp(&stepped.global), fp(&threaded.global));
        for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
            prop_assert_eq!(fp(&a.report), fp(&b.report));
        }
        prop_assert_eq!(&stepped.failover, &threaded.failover);

        // Exactly-once terminal: completed ∪ rejected covers the trace,
        // disjointly.
        let fo = stepped.failover.as_ref().expect("failover is on");
        prop_assert_eq!(
            stepped.global.outcomes.len() + fo.rejected.len(),
            timed.len()
        );
        let mut terminal = vec![false; timed.len()];
        for o in &stepped.global.outcomes {
            let i = o.query.0 as usize;
            prop_assert!(!terminal[i], "query {} completed twice", i);
            terminal[i] = true;
            prop_assert!(o.completion >= o.arrival);
        }
        for r in &fo.rejected {
            prop_assert!(!terminal[r.index], "query {} rejected after completing", r.index);
            terminal[r.index] = true;
            prop_assert!(r.attempts == max_redeliveries);
        }
        prop_assert!(terminal.iter().all(|&t| t), "some query never became terminal");

        // Per-class books balance and roll up to the whole trace.
        let mut submitted = 0u64;
        for c in &fo.per_class {
            prop_assert_eq!(c.submitted, c.completed + c.rejected, "{:?} class", c.class);
            submitted += c.submitted;
        }
        prop_assert_eq!(submitted, timed.len() as u64);

        // An outage-free schedule makes enabled failover behaviour-neutral:
        // bit-identical to the static pool.
        if n_outages == 0 {
            prop_assert!(fo.log.transitions.is_empty());
            let static_rt = ShardedRuntime::new(
                &catalog,
                RuntimeConfig::contiguous(SimConfig::paper(), n_shards),
            );
            let plain = static_rt.run(&timed, &mut |_| policy(kind), ExecMode::Stepped);
            prop_assert_eq!(fp(&stepped.global), fp(&plain.global));
        }
    }

    /// Chaos: random lossy-link schedules (loss × duplication × delay ×
    /// reordering) × hedging on/off × schedulers. Every query is
    /// exactly-once terminal (completed or rejected, never lost or
    /// double-counted despite retransmissions, network duplicates, and
    /// hedge copies), per-class conservation holds, every hedge race
    /// resolves exactly once, the threaded executor replays the stepped
    /// transport plan bit for bit — and when the random schedule injects
    /// no link fault with hedging off, the transport-enabled run is
    /// bit-identical to the plain static pool.
    #[test]
    fn lossy_links_are_exactly_once_and_deterministic(
        seed in 0u64..10_000,
        n_shards in 2u32..5,
        kind in 0u8..4,
        n_links in 0usize..4,
        drop_pct in 0u32..40,
        dup_pct in 0u32..25,
        reorder_pct in 0u32..25,
        delay_ms in 0u64..200,
        hedged in proptest::bool::ANY,
        rate_deci in 2u64..20,
    ) {
        let (catalog, timed) = fixture(seed, 24, rate_deci as f64 / 10.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), n_shards);
        config.transport = if hedged {
            TransportConfig::hedged()
        } else {
            TransportConfig::reliable()
        };
        config.transport.hedge.min_samples = 4;
        // Distinct (shard, direction) pairs keep the windows trivially
        // disjoint, so they can all cover the whole run and actually fire.
        config.faults.links = (0..n_links)
            .map(|i| LinkFault {
                shard: i as u32 % n_shards,
                direction: if (i as u32) < n_shards {
                    LinkDirection::ToShard
                } else {
                    LinkDirection::ToRouter
                },
                from: SimTime::ZERO,
                until: SimTime::ZERO + SimDuration::from_secs(1_000_000),
                drop_prob: drop_pct as f64 / 100.0,
                delay: SimDuration::from_millis(delay_ms),
                delay_per_entry: SimDuration::from_micros(10),
                dup_prob: dup_pct as f64 / 100.0,
                reorder_prob: reorder_pct as f64 / 100.0,
                reorder_delay: SimDuration::from_millis(250),
            })
            .collect();
        let rt = ShardedRuntime::new(&catalog, config);
        let stepped = rt.run(&timed, &mut |_| policy(kind), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| policy(kind), ExecMode::Threaded);

        prop_assert_eq!(fp(&stepped.global), fp(&threaded.global));
        for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
            prop_assert_eq!(fp(&a.report), fp(&b.report));
        }
        prop_assert_eq!(&stepped.transport, &threaded.transport);

        // Exactly-once terminal: completed ∪ rejected covers the trace,
        // disjointly — retransmissions, duplicates, and hedge copies never
        // surface twice.
        let tp = stepped.transport.as_ref().expect("transport is on");
        prop_assert_eq!(
            stepped.global.outcomes.len() + tp.rejected.len(),
            timed.len()
        );
        let mut terminal = vec![false; timed.len()];
        for o in &stepped.global.outcomes {
            let i = o.query.0 as usize;
            prop_assert!(!terminal[i], "query {} completed twice", i);
            terminal[i] = true;
            prop_assert!(o.completion >= o.arrival);
        }
        for r in &tp.rejected {
            prop_assert!(!terminal[r.index], "query {} rejected after completing", r.index);
            terminal[r.index] = true;
        }
        prop_assert!(terminal.iter().all(|&t| t), "some query never became terminal");

        // Per-class books balance and roll up to the whole trace.
        let mut submitted = 0u64;
        for c in &tp.per_class {
            prop_assert_eq!(c.submitted, c.completed + c.rejected, "{:?} class", c.class);
            submitted += c.submitted;
        }
        prop_assert_eq!(submitted, timed.len() as u64);

        // Every hedge race settles exactly once: first copy wins, the
        // loser is suppressed.
        prop_assert_eq!(
            tp.hedge_wins + tp.hedge_losses,
            tp.log.hedges.len() as u64
        );

        // A fault-free schedule with hedging off makes enabled transport
        // behaviour-neutral: bit-identical to the static pool.
        if n_links == 0 && !hedged {
            prop_assert!(tp.log.is_empty());
            prop_assert!(tp.rejected.is_empty());
            let static_rt = ShardedRuntime::new(
                &catalog,
                RuntimeConfig::contiguous(SimConfig::paper(), n_shards),
            );
            let plain = static_rt.run(&timed, &mut |_| policy(kind), ExecMode::Stepped);
            prop_assert_eq!(fp(&stepped.global), fp(&plain.global));
        }
    }

    /// A single-shard unbounded runtime is `Simulation::run`, exactly —
    /// in both execution modes.
    #[test]
    fn one_shard_reproduces_the_simulation(
        seed in 0u64..10_000,
        kind in 0u8..4,
        rate_deci in 2u64..20,
    ) {
        let (catalog, timed) = fixture(seed, 20, rate_deci as f64 / 10.0);
        let mut scheduler = policy(kind);
        let reference = Simulation::new(&catalog, SimConfig::paper())
            .run(&timed, scheduler.as_mut());
        let rt = ShardedRuntime::new(&catalog, RuntimeConfig::single(SimConfig::paper()));
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let sharded = rt.run(&timed, &mut |_| policy(kind), mode);
            prop_assert_eq!(fp(&reference), fp(&sharded.global), "mode {:?}", mode);
        }
    }
}
