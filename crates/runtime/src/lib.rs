//! `liferaft-runtime` — a sharded multi-worker serving runtime for LifeRaft.
//!
//! The paper evaluates one server; its discussion points at clusters: "our
//! solution allows individual sites in a cluster or federation to batch
//! queries independently" (Section 6). This crate is that layer for a
//! *single* archive: the bucket space — already an equal-sized tiling of
//! the HTM curve — is partitioned across N **shards**, each owning its own
//! workload table, bucket cache, and pluggable scheduler; a front-end
//! router splits every arriving query's bucket work into per-shard
//! fragments and applies per-shard admission control (backpressure); a
//! cross-shard query completes when all of its fragments finish.
//!
//! # Execution modes
//!
//! [`ExecMode::Stepped`] is the deterministic reference: a single-threaded
//! virtual-time merge of the shard event queues (earliest next event first,
//! ties by shard id). [`ExecMode::Threaded`] runs one `std::thread` worker
//! per shard with results over `mpsc`. The two are **bit-identical** for
//! the same configuration and trace — shards interact only through the
//! up-front routing and the order-canonicalized aggregation — and a
//! single-shard runtime reproduces `liferaft_sim::Simulation` exactly
//! (both drive the same [`liferaft_sim::EngineCore`]); golden and property
//! tests pin both claims.
//!
//! # Elastic rebalancing
//!
//! With [`RebalanceConfig`] enabled the shard map becomes **elastic**: at
//! every epoch of virtual time a controller compares per-shard queued
//! backlogs and migrates hot buckets — queue state, ages, and (optionally)
//! cache residency — from overloaded to underloaded shards, charging a
//! migration cost to the destination clock. All decisions are made once,
//! in the deterministic stepped pass, and recorded as a [`RebalanceLog`]
//! the threaded executor replays verbatim, so elastic runs keep the
//! bit-identical cross-mode guarantee.
//!
//! # Overload & the front door
//!
//! With [`FrontDoorConfig`] enabled a **global admission controller**
//! fronts the pool: it bounds total in-flight (object × bucket) work,
//! classifies every query into a [`QueryClass`] (interactive / standard /
//! batch) by routed workload size, and under pressure degrades in a fixed
//! order — queue at true arrival age, shed batch-class work into bounded
//! retries with exponential virtual-time backoff, and finally reject with
//! a recorded verdict that conserves accounting (every query is
//! exactly-once terminal: completed or rejected). Like rebalancing, all
//! decisions are planned once in the stepped merge and recorded as an
//! [`AdmissionLog`] the threaded executor replays verbatim. [`FaultPlan`]
//! injects per-shard slowdown windows (the controller's per-shard bound
//! routes traffic around the backlog), and `liferaft_sim`'s scenario suite
//! provides the canonical overload fixtures.
//!
//! # Crash & failover
//!
//! [`FaultPlan`] also injects **shard outages**: hard crash windows during
//! which a shard leaves the pool entirely (its virtual clock freezes and
//! its cache residency is wiped — it rejoins cold). With [`FailoverConfig`]
//! enabled the runtime reacts: at the down edge the controller
//! **evacuates** the dead shard's queued buckets to the least-loaded
//! survivors (arrival ages preserved, transfer cost charged to the
//! destination clock), marks fragments already released to the dead shard
//! as lost, and **re-delivers** them after a virtual-time timeout with
//! exponential backoff and a bounded retry budget — so every query still
//! reaches exactly one terminal outcome (completed, or rejected when the
//! budget exhausts with no shard up), asserted per priority class. All
//! decisions are planned once in the stepped merge and recorded as a
//! [`FailoverLog`] the threaded executor replays verbatim, preserving the
//! bit-identical cross-mode guarantee; with failover disabled the lost
//! fragments simply wait out the outage.
//!
//! # Unreliable transport & hedging
//!
//! With [`TransportConfig`] enabled the router↔shard hop stops being a
//! lossless teleport and becomes a modeled datagram link: [`FaultPlan`]
//! `links` windows drop, delay, duplicate, and reorder messages per
//! `(shard, direction)`, and the transport reacts — unacknowledged sends
//! **retransmit** on the shared [`RetryPolicy`] schedule (the same
//! detection-timeout + exponential-backoff shape failover re-delivery
//! uses), receivers **dedup** by `(query, shard, attempt)` identity so
//! retransmissions and network duplicates are exactly-once in effect, and
//! chains that exhaust their budget undelivered end in a recorded rejection
//! with conserved per-class accounting. Optional **straggler hedging**
//! re-issues fragments lagging a multiple of their class's observed
//! response quantile to the least-loaded other shard; the first completion
//! wins and the loser is suppressed like a duplicate. Every draw is a pure
//! SplitMix64 function of `(seed, query, shard, attempt)` and the whole
//! schedule is planned once into a [`TransportLog`] both executors consume,
//! so the bit-identical stepped/threaded guarantee survives arbitrarily
//! lossy links.
//!
//! # Flight recorder
//!
//! [`RuntimeConfig::telemetry`] turns on `liferaft-telemetry`'s structured
//! event bus: every shard worker records typed scheduler / batch / cache /
//! completion events, the controller paths contribute migration and
//! admission events, and [`RuntimeReport::telemetry`] carries the merged
//! [`TelemetryReport`] — per-shard time series plus the raw event stream,
//! exportable as JSONL or a Chrome/Perfetto trace. Events are merged in
//! the same canonical `(time, shard, seq)` order the completion merge
//! uses, so stepped and threaded runs produce **byte-identical** streams;
//! with the default [`TelemetryMode::Off`] the recorder is a null sink and
//! runs are bit-identical to an un-instrumented build.
//!
//! # Sweep driver
//!
//! [`sweep`] fans independent runs — α sweeps, cache-size sweeps,
//! shard-count sweeps, rebalance-epoch sweeps, per-seed replications —
//! across a thread pool with results in input order whatever the thread
//! count ([`parallel_map`]).
//!
//! # Layout
//!
//! | module | contents |
//! |---|---|
//! | [`shard`] | shard identity, bucket → shard maps (contiguous / hashed / elastic) |
//! | [`router`] | query → per-shard fragment routing (static, elastic, admitted) |
//! | [`worker`] | the per-shard admission-controlled serving loop |
//! | [`rebalance`] | the epoch decision log and the greedy migration planner |
//! | [`failover`] | the crash/outage decision log: evacuations, re-deliveries, conservation |
//! | [`admission`] | the global front door: classes, shedding, the decision log |
//! | [`retry`] | the shared bounded-retry schedule (failover + transport) |
//! | [`transport`] | the lossy-link transport: retransmit, dedup, hedging |
//! | [`runtime`] | stepped/threaded drivers and global aggregation |
//! | [`config`] | runtime + admission + rebalance + fault configuration, execution mode |
//! | [`sweep`] | the deterministic parallel sweep driver |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod config;
pub mod failover;
pub mod rebalance;
pub mod retry;
pub mod router;
pub mod runtime;
pub mod shard;
pub mod sweep;
pub mod transport;
pub mod worker;

pub use admission::{
    AdmissionLog, AdmissionSample, ClassStats, Disposition, FrontDoorConfig, FrontDoorReport,
    QueryClass, QueryVerdict, RejectedQuery,
};
pub use config::{AdmissionConfig, ExecMode, FaultPlan, RebalanceConfig, RuntimeConfig};
pub use failover::{
    ClassConservation, Evacuation, FailedQuery, FailoverConfig, FailoverLog, FailoverReport,
    Redelivery, ShardTransition,
};
pub use rebalance::{EpochRecord, Migration, RebalanceLog};
pub use retry::RetryPolicy;
pub use router::{route, route_admitted, route_elastic, Fragment, Routing};
pub use runtime::{RuntimeReport, ShardedRuntime};
pub use shard::{ElasticShardMap, ShardAssignment, ShardId, ShardMap};
pub use sweep::{
    alpha_sweep, cache_sweep, parallel_map, rebalance_sweep, seed_sweep, shard_sweep, SweepPoint,
};
pub use transport::{
    HedgeConfig, HedgeDecision, LinkDrop, Retransmit, SuppressedDuplicate, TransportConfig,
    TransportLog, TransportReport,
};
pub use worker::{AdmissionStats, ShardRun};

// Re-export the flight-recorder surface so runtime users configure and
// consume telemetry without a separate `liferaft-telemetry` import.
pub use liferaft_telemetry::{
    Event, EventKind, TelemetryConfig, TelemetryMode, TelemetryReport, TelemetrySink, ROUTER_SHARD,
};
