//! Shard identity and the bucket → shard map.
//!
//! The runtime partitions the *bucket space* — already a total, equal-sized
//! tiling of the HTM curve (`liferaft-catalog`) — across N shards, so each
//! shard owns a disjoint subset of buckets and all scheduling state for
//! them. Two assignments are supported:
//!
//! - **Contiguous**: equal spans of the bucket (curve) order, the natural
//!   extension of the paper's partitioning to multiple servers — spatially
//!   adjacent buckets land on the same shard, so a region query touches few
//!   shards (Gray et al.'s "bring the computation to the data" layout).
//! - **Hashed**: counter-hashed (the catalog's SplitMix64 machinery), which
//!   trades locality for load spreading under hot spatial spots.

use liferaft_catalog::hash::hash4;
use liferaft_storage::BucketId;
use std::collections::HashMap;
use std::fmt;

/// Dense index of a shard within a runtime (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard's position (== its index).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// How buckets are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAssignment {
    /// Equal contiguous spans of the bucket order (spatial locality).
    Contiguous,
    /// SplitMix64-hashed buckets (load spreading); `seed` varies placement.
    Hashed {
        /// Placement seed: different seeds give independent layouts.
        seed: u64,
    },
}

/// Hash stream tag reserved for shard placement (streams 0 and 1 are used
/// by the virtual catalog's object generation).
const SHARD_STREAM: u64 = 2;

/// A total map from buckets to shards.
///
/// ```
/// use liferaft_runtime::{ShardId, ShardMap};
/// use liferaft_storage::BucketId;
///
/// // 8 buckets over 4 shards, contiguous spans: buckets 0–1 → shard 0, …
/// let map = ShardMap::contiguous(8, 4);
/// assert_eq!(map.shard_of(BucketId(0)), ShardId(0));
/// assert_eq!(map.shard_of(BucketId(7)), ShardId(3));
/// // Hashed placement spreads buckets without regard to spatial order.
/// let hashed = ShardMap::hashed(8, 4, 0xC1D2);
/// assert!(hashed.shard_of(BucketId(0)).0 < 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    num_buckets: u32,
    n_shards: u32,
    assignment: ShardAssignment,
}

impl ShardMap {
    /// A map over `num_buckets` buckets and `n_shards` shards.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn new(num_buckets: usize, n_shards: u32, assignment: ShardAssignment) -> Self {
        assert!(num_buckets > 0, "need at least one bucket");
        assert!(n_shards > 0, "need at least one shard");
        assert!(
            num_buckets <= u32::MAX as usize,
            "bucket space too large for u32 ids"
        );
        ShardMap {
            num_buckets: num_buckets as u32,
            n_shards,
            assignment,
        }
    }

    /// Contiguous equal spans of the bucket order.
    pub fn contiguous(num_buckets: usize, n_shards: u32) -> Self {
        Self::new(num_buckets, n_shards, ShardAssignment::Contiguous)
    }

    /// Hashed placement with the given seed.
    pub fn hashed(num_buckets: usize, n_shards: u32, seed: u64) -> Self {
        Self::new(num_buckets, n_shards, ShardAssignment::Hashed { seed })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    /// Number of buckets the map covers.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets as usize
    }

    /// The assignment policy.
    pub fn assignment(&self) -> ShardAssignment {
        self.assignment
    }

    /// The shard owning `bucket` — a pure function of the map.
    ///
    /// # Panics
    /// Panics (debug) if the bucket is outside the mapped space.
    #[inline]
    pub fn shard_of(&self, bucket: BucketId) -> ShardId {
        debug_assert!(bucket.0 < self.num_buckets, "bucket outside shard map");
        match self.assignment {
            ShardAssignment::Contiguous => {
                // b * n / num_buckets: equal spans, monotone in bucket order.
                ShardId(((bucket.0 as u64 * self.n_shards as u64) / self.num_buckets as u64) as u32)
            }
            ShardAssignment::Hashed { seed } => ShardId(
                (hash4(seed, bucket.0 as u64, 0, SHARD_STREAM) % self.n_shards as u64) as u32,
            ),
        }
    }
}

/// A [`ShardMap`] plus a sparse set of per-bucket **overrides** — the
/// elastic map the rebalance controller evolves at epoch boundaries.
///
/// Lookups fall through to the base map unless the bucket has been
/// reassigned; re-assigning a bucket back to its base owner removes the
/// override, so the overlay stays minimal.
///
/// ```
/// use liferaft_runtime::{ElasticShardMap, ShardId, ShardMap};
/// use liferaft_storage::BucketId;
///
/// let mut map = ElasticShardMap::new(ShardMap::contiguous(8, 4));
/// map.reassign(BucketId(0), ShardId(3));
/// assert_eq!(map.shard_of(BucketId(0)), ShardId(3));
/// assert_eq!(map.override_count(), 1);
/// // Moving the bucket home again erases the override.
/// map.reassign(BucketId(0), ShardId(0));
/// assert_eq!(map.override_count(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElasticShardMap {
    base: ShardMap,
    overrides: HashMap<BucketId, ShardId>,
}

impl ElasticShardMap {
    /// An elastic map starting identical to `base` (no overrides).
    pub fn new(base: ShardMap) -> Self {
        ElasticShardMap {
            base,
            overrides: HashMap::new(),
        }
    }

    /// The underlying static map.
    pub fn base(&self) -> &ShardMap {
        &self.base
    }

    /// Number of shards.
    pub fn n_shards(&self) -> u32 {
        self.base.n_shards()
    }

    /// Number of buckets the map covers.
    pub fn num_buckets(&self) -> usize {
        self.base.num_buckets()
    }

    /// Number of buckets currently owned away from their base shard.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// The shard currently owning `bucket`.
    #[inline]
    pub fn shard_of(&self, bucket: BucketId) -> ShardId {
        self.overrides
            .get(&bucket)
            .copied()
            .unwrap_or_else(|| self.base.shard_of(bucket))
    }

    /// Moves `bucket` to `shard` (removing the override if that is the
    /// bucket's base owner).
    ///
    /// # Panics
    /// Panics if the shard index is out of range.
    pub fn reassign(&mut self, bucket: BucketId, shard: ShardId) {
        assert!(shard.0 < self.base.n_shards(), "shard outside the pool");
        if self.base.shard_of(bucket) == shard {
            self.overrides.remove(&bucket);
        } else {
            self.overrides.insert(bucket, shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_is_total_monotone_and_balanced() {
        let m = ShardMap::contiguous(1_000, 4);
        let mut counts = [0usize; 4];
        let mut last = ShardId(0);
        for b in 0..1_000u32 {
            let s = m.shard_of(BucketId(b));
            assert!(s.0 < 4);
            assert!(s >= last, "contiguous must be monotone in bucket order");
            last = s;
            counts[s.index()] += 1;
        }
        assert_eq!(counts, [250; 4]);
    }

    #[test]
    fn hashed_is_total_deterministic_and_spread() {
        let m = ShardMap::hashed(1_000, 4, 42);
        let mut counts = [0usize; 4];
        for b in 0..1_000u32 {
            let s = m.shard_of(BucketId(b));
            assert_eq!(s, m.shard_of(BucketId(b)), "placement must be pure");
            counts[s.index()] += 1;
        }
        // Hashing should roughly balance (well within 2x of fair share).
        assert!(counts.iter().all(|&c| c > 125 && c < 500), "{counts:?}");
        // A different seed gives a different layout.
        let m2 = ShardMap::hashed(1_000, 4, 43);
        assert!((0..1_000u32).any(|b| m.shard_of(BucketId(b)) != m2.shard_of(BucketId(b))));
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        for map in [ShardMap::contiguous(64, 1), ShardMap::hashed(64, 1, 9)] {
            for b in 0..64u32 {
                assert_eq!(map.shard_of(BucketId(b)), ShardId(0));
            }
        }
    }

    #[test]
    fn more_shards_than_buckets_is_allowed() {
        let m = ShardMap::contiguous(2, 8);
        assert!(m.shard_of(BucketId(0)).0 < 8);
        assert!(m.shard_of(BucketId(1)).0 < 8);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardMap::contiguous(10, 0);
    }

    #[test]
    fn elastic_overrides_fall_through_and_cancel() {
        let base = ShardMap::contiguous(100, 4);
        let mut m = ElasticShardMap::new(base);
        let b = BucketId(3);
        let home = base.shard_of(b);
        assert_eq!(m.shard_of(b), home);
        assert_eq!(m.override_count(), 0);
        m.reassign(b, ShardId(3));
        assert_eq!(m.shard_of(b), ShardId(3));
        assert_eq!(m.override_count(), 1);
        // Untouched buckets still resolve through the base map.
        assert_eq!(m.shard_of(BucketId(99)), base.shard_of(BucketId(99)));
        // Moving home again erases the override.
        m.reassign(b, home);
        assert_eq!(m.override_count(), 0);
        assert_eq!(m.shard_of(b), home);
    }
}
