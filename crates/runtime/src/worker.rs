//! One shard's serving loop: admission-controlled fragment ingress over an
//! [`EngineCore`].
//!
//! A worker is an event-stepped state machine with exactly the semantics of
//! `liferaft_sim::Simulation::run`, restricted to the fragments routed to
//! its shard: deliver every due fragment (subject to admission), then make
//! one scheduling decision and execute the batch, advancing the shard-local
//! virtual clock by the batch cost. Because a worker's behaviour is a pure
//! function of its own fragment stream, stepping workers in *any* order —
//! the stepped driver's virtual-time merge or one OS thread per shard —
//! produces bit-identical per-shard results.

use std::collections::VecDeque;

use liferaft_catalog::Catalog;
use liferaft_core::Scheduler;
use liferaft_query::CrossMatchQuery;
use liferaft_sim::{EngineCore, MigratedBucket, RunReport, SimConfig};
use liferaft_storage::{BucketId, SimDuration, SimTime};
use liferaft_telemetry::{Event, TelemetrySink};

use crate::config::AdmissionConfig;
use crate::router::Fragment;
use crate::shard::ShardId;

/// Backpressure statistics of one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Fragments that were parked at least once before admission.
    pub deferred_fragments: u64,
    /// Parked fragments broken down by front-door class (indexed by
    /// [`QueryClass::rank`](crate::admission::QueryClass::rank); all
    /// standard-class when the front door is disabled).
    pub deferred_by_class: [u64; 3],
    /// Highest queued-entry backlog observed.
    pub peak_backlog: u64,
    /// Largest amount by which an admission pushed the backlog *past* the
    /// configured limit. The limit is checked before each admission, so one
    /// fragment can overshoot it by up to `fragment.assignments − 1`
    /// entries; this records the worst case actually observed (0 when the
    /// limit was never exceeded or admission is unbounded).
    pub max_overshoot: u64,
}

/// The finished record of one shard: a fragment-level [`RunReport`] (its
/// `queries` field counts *fragments*) plus admission statistics.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The shard.
    pub shard: ShardId,
    /// Fragment-level run report (outcomes are fragment completions in
    /// shard event order).
    pub report: RunReport,
    /// Backpressure statistics.
    pub admission: AdmissionStats,
    /// The shard's recorded telemetry (record order, shard id stamped;
    /// empty under the default [`NullSink`](liferaft_telemetry::NullSink)).
    pub events: Vec<Event>,
    /// Events the shard's sink discarded (bounded sinks only).
    pub events_dropped: u64,
}

/// One shard's engine, scheduler, clock, and ingress.
pub(crate) struct ShardWorker<'a, C: Catalog + ?Sized> {
    shard: ShardId,
    core: EngineCore<'a, C>,
    scheduler: Box<dyn Scheduler + Send>,
    /// The routed trace entries (shared, read-only: fragments reference
    /// queries by index).
    trace: &'a [(SimTime, CrossMatchQuery)],
    fragments: Vec<Fragment>,
    /// Next not-yet-seen fragment (fragments before `next` are admitted or
    /// parked in `deferred`).
    next: usize,
    /// Parked fragment indices, in arrival order.
    deferred: VecDeque<usize>,
    now: SimTime,
    max_backlog_entries: Option<u64>,
    /// Injected slowdown windows afflicting this shard, as
    /// `(from, until, factor)` — factors compose multiplicatively when
    /// windows overlap a batch's start instant.
    stalls: Vec<(SimTime, SimTime, f64)>,
    /// Injected outage windows afflicting this shard, as `(down_at, up_at)`
    /// sorted by start (validated pairwise disjoint). A dead shard executes
    /// nothing: any event instant landing inside a window wakes at `up_at`
    /// (see [`wake`](Self::wake)). Batches are atomic — one started before
    /// `down_at` runs to completion even past the boundary.
    outages: Vec<(SimTime, SimTime)>,
    /// Outage windows whose start the clock has crossed — each crossing
    /// wipes the cache once (a crash loses residency).
    wiped: usize,
    /// Per-batch `(end, cumulative serviced entries)` checkpoints, in end
    /// order. The front-door planner reads capacity through this ledger
    /// ([`serviced_at`](Self::serviced_at)) rather than the engine's raw
    /// counter: the raw counter jumps at batch *start* (when the worker's
    /// clock can be far ahead of global virtual time), and an admission
    /// "enabled" by work that only finishes later is impossible to replay
    /// from release times alone.
    completions: Vec<(SimTime, u64)>,
    stats: AdmissionStats,
}

impl<'a, C: Catalog + ?Sized> ShardWorker<'a, C> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        shard: ShardId,
        catalog: &'a C,
        sim: SimConfig,
        admission: AdmissionConfig,
        stalls: Vec<(SimTime, SimTime, f64)>,
        outages: Vec<(SimTime, SimTime)>,
        trace: &'a [(SimTime, CrossMatchQuery)],
        fragments: Vec<Fragment>,
        scheduler: Box<dyn Scheduler + Send>,
        sink: Box<dyn TelemetrySink>,
    ) -> Self {
        let mut core = EngineCore::new(catalog, sim);
        core.set_sink(sink);
        ShardWorker {
            shard,
            core,
            scheduler,
            trace,
            fragments,
            next: 0,
            deferred: VecDeque::new(),
            now: SimTime::ZERO,
            max_backlog_entries: admission.max_backlog_entries,
            stalls,
            outages,
            wiped: 0,
            completions: Vec::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// Maps an event instant out of any outage window: a dead shard does
    /// nothing until `up_at`, so an instant inside a window wakes at its
    /// end. Identity when the shard has no outages. Windows are sorted and
    /// disjoint, so one forward pass settles (waking at `up_at` may land
    /// inside a *later* window, never an earlier one).
    fn wake(&self, mut t: SimTime) -> SimTime {
        for &(down_at, up_at) in &self.outages {
            if t >= down_at && t < up_at {
                t = up_at;
            }
        }
        t
    }

    /// Virtual time of the worker's next event, or `None` when fully done.
    /// Pending work (or parked ingress) is an event "now"; an idle worker's
    /// next event is its next fragment **release** — clamped to `now`,
    /// because a shard whose clock overshot the release while busy admits
    /// the fragment at `now`, not in the past. The clamp is what lets the
    /// elastic and front-door drivers trust `next_time` as "the virtual
    /// time of the next state change" when placing epoch boundaries. An
    /// instant inside an injected outage window wakes at the window's end —
    /// a dead shard's next event is its rejoin.
    pub(crate) fn next_time(&self) -> Option<SimTime> {
        if !self.core.is_idle() || !self.deferred.is_empty() {
            return Some(self.wake(self.now));
        }
        self.fragments
            .get(self.next)
            .map(|f| self.wake(f.release.max(self.now)))
    }

    /// Advances the clock to `t` adjusted out of any outage window, wiping
    /// the cache once per window whose start the clock crosses — a crashed
    /// shard loses its residency no matter what happens to its queue.
    fn advance_to(&mut self, t: SimTime) {
        let t = self.wake(t);
        while self.wiped < self.outages.len() && t >= self.outages[self.wiped].0 {
            self.core.wipe_residency();
            self.wiped += 1;
        }
        self.now = t;
    }

    /// The shard-local clock (planner observability: evacuation instants
    /// must not predate the dead shard's final atomic batch).
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    /// Admits every due fragment the backlog limit allows: parked fragments
    /// first (FIFO), then newly due (released) arrivals; fragments due
    /// while the shard is over its limit are parked. The limit is checked
    /// *before* each admission, so progress is always possible from an
    /// empty backlog — at the price of a bounded overshoot, which
    /// [`admit`](Self::admit) measures into
    /// [`AdmissionStats::max_overshoot`].
    fn deliver_due(&mut self) {
        loop {
            let backlog = self.core.total_queued();
            self.stats.peak_backlog = self.stats.peak_backlog.max(backlog);
            if self
                .max_backlog_entries
                .is_some_and(|limit| backlog >= limit)
            {
                // Over the limit: park everything already due and stop.
                while self
                    .fragments
                    .get(self.next)
                    .is_some_and(|f| f.release <= self.now)
                {
                    let class = self.fragments[self.next].class;
                    self.deferred.push_back(self.next);
                    self.stats.deferred_fragments += 1;
                    self.stats.deferred_by_class[class.rank()] += 1;
                    self.next += 1;
                }
                return;
            }
            if let Some(&idx) = self.deferred.front() {
                self.deferred.pop_front();
                self.admit(idx);
                continue;
            }
            if self
                .fragments
                .get(self.next)
                .is_some_and(|f| f.release <= self.now)
            {
                let idx = self.next;
                self.next += 1;
                self.admit(idx);
                continue;
            }
            return;
        }
    }

    fn admit(&mut self, idx: usize) {
        let f = &self.fragments[idx];
        let (_, query) = &self.trace[f.query_index];
        debug_assert_eq!(query.id, f.query, "routing and trace disagree");
        self.core.deliver_items(query, &f.items, f.arrival);
        self.scheduler.on_query_arrival(f.arrival);
        // The pre-admission limit check means this admission may have pushed
        // the backlog past the bound — by strictly less than the fragment's
        // own assignments. Record the worst observed overshoot.
        if let Some(limit) = self.max_backlog_entries {
            let backlog = self.core.total_queued();
            if backlog > limit {
                let overshoot = backlog - limit;
                debug_assert!(
                    overshoot < f.assignments.max(1),
                    "overshoot {overshoot} exceeds the one-fragment bound"
                );
                self.stats.max_overshoot = self.stats.max_overshoot.max(overshoot);
            }
        }
    }

    /// Executes one event: delivery (plus an idle-time jump to the next
    /// arrival if needed) and one batch. Returns `false` when the shard has
    /// drained everything — no state changes on a `false` return.
    pub(crate) fn step(&mut self) -> bool {
        self.advance_to(self.now);
        self.deliver_due();
        if self.core.is_idle() {
            // An empty backlog admits at least one fragment, so a parked
            // queue can never coexist with an idle core here.
            debug_assert!(self.deferred.is_empty());
            let Some(f) = self.fragments.get(self.next) else {
                return false; // drained everything
            };
            self.advance_to(f.release);
            self.deliver_due();
            if self.core.is_idle() {
                // Only zero-work fragments arrived at this instant (they
                // register and complete immediately); nothing to schedule.
                return true;
            }
        }
        // An injected slowdown scales every batch *started* inside its
        // window; overlapping windows compound. Pure per-shard state, so
        // the fault changes nothing about cross-shard determinism.
        let mut factor = 1.0f64;
        for &(from, until, f) in &self.stalls {
            if self.now >= from && self.now < until {
                factor *= f;
            }
        }
        self.now += self
            .core
            .decide_and_execute_scaled(self.scheduler.as_mut(), self.now, factor);
        self.completions
            .push((self.now, self.core.serviced_entries()));
        true
    }

    /// Appends later-routed fragments to the ingress stream — the elastic
    /// and front-door drivers' incremental routing path. Release order must
    /// be preserved across appends.
    pub(crate) fn append_fragments(&mut self, extra: Vec<Fragment>) {
        debug_assert!(
            extra.windows(2).all(|w| w[0].release <= w[1].release),
            "appended window out of release order"
        );
        debug_assert!(
            self.fragments
                .last()
                .zip(extra.first())
                .map_or(true, |(a, b)| a.release <= b.release),
            "appended window precedes existing fragments"
        );
        self.fragments.extend(extra);
    }

    /// Queued-entry backlog — the rebalance controller's load signal.
    pub(crate) fn queued(&self) -> u64 {
        self.core.total_queued()
    }

    /// Cumulative serviced entries (controller observability). Counts a
    /// batch the moment it executes — the worker's clock may already sit at
    /// the batch's end, arbitrarily far ahead of global virtual time.
    pub(crate) fn serviced(&self) -> u64 {
        self.core.serviced_entries()
    }

    /// Entries serviced by batches that **completed** by virtual time `t` —
    /// the front-door planner's capacity signal. Work inside a batch still
    /// running at `t` does not count, so an admission decision made at `t`
    /// depends only on events at or before `t` and replays exactly from the
    /// logged release times.
    pub(crate) fn serviced_at(&self, t: SimTime) -> u64 {
        let k = self.completions.partition_point(|&(end, _)| end <= t);
        if k == 0 {
            0
        } else {
            self.completions[k - 1].1
        }
    }

    /// The earliest recorded batch completion strictly after `t` — the
    /// planner's "capacity frees here" event source.
    pub(crate) fn next_completion_after(&self, t: SimTime) -> Option<SimTime> {
        let k = self.completions.partition_point(|&(end, _)| end <= t);
        self.completions.get(k).map(|&(end, _)| end)
    }

    /// Cache-resident bucket count (controller observability).
    pub(crate) fn resident(&self) -> usize {
        self.core.resident_buckets()
    }

    /// The shard's non-empty buckets with queue depths — the planner's
    /// per-source candidate list, in bucket order.
    pub(crate) fn bucket_depths(&self) -> Vec<(BucketId, u64)> {
        let table = self.core.workload();
        table
            .non_empty_buckets()
            .iter()
            .map(|&b| (b, table.queue(b).len() as u64))
            .collect()
    }

    /// Extracts one bucket's queued state for migration (see
    /// [`EngineCore::extract_bucket`]). The source clock is untouched —
    /// migration costs land on the destination.
    pub(crate) fn extract_bucket(
        &mut self,
        bucket: BucketId,
        at: SimTime,
        evict_residency: bool,
    ) -> MigratedBucket {
        self.core.extract_bucket(bucket, at, evict_residency)
    }

    /// Adopts a migrated bucket at epoch boundary `at`, charging `cost`
    /// virtual time to the shard clock (clamped up to the boundary first,
    /// so migration work never appears to predate the decision).
    pub(crate) fn absorb_payload(
        &mut self,
        payload: MigratedBucket,
        at: SimTime,
        cost: SimDuration,
        warm_residency: bool,
    ) {
        self.now = self.now.max(at);
        self.core.absorb_bucket(payload, warm_residency);
        self.now += cost;
    }

    /// Finishes the shard into its run record.
    ///
    /// # Panics
    /// Panics if fragments are still outstanding (the driver must step the
    /// worker to completion first).
    pub(crate) fn into_run(self) -> ShardRun {
        assert!(
            self.next >= self.fragments.len() && self.deferred.is_empty(),
            "shard {} finished with unadmitted fragments",
            self.shard
        );
        assert!(
            self.core.all_complete(),
            "shard {} finished with incomplete fragments",
            self.shard
        );
        let fragments = self.fragments.len();
        let mut core = self.core;
        let mut events = core.take_events();
        // Sinks stamp shard 0 (an engine does not know where it runs); the
        // worker owns that knowledge.
        for e in &mut events {
            e.shard = self.shard.0;
        }
        let events_dropped = core.telemetry_dropped();
        ShardRun {
            shard: self.shard,
            report: core.into_report(self.scheduler.as_ref(), fragments),
            admission: self.stats,
            events,
            events_dropped,
        }
    }
}
