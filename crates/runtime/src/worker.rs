//! One shard's serving loop: admission-controlled fragment ingress over an
//! [`EngineCore`].
//!
//! A worker is an event-stepped state machine with exactly the semantics of
//! `liferaft_sim::Simulation::run`, restricted to the fragments routed to
//! its shard: deliver every due fragment (subject to admission), then make
//! one scheduling decision and execute the batch, advancing the shard-local
//! virtual clock by the batch cost. Because a worker's behaviour is a pure
//! function of its own fragment stream, stepping workers in *any* order —
//! the stepped driver's virtual-time merge or one OS thread per shard —
//! produces bit-identical per-shard results.

use std::collections::VecDeque;

use liferaft_catalog::Catalog;
use liferaft_core::Scheduler;
use liferaft_query::CrossMatchQuery;
use liferaft_sim::{EngineCore, MigratedBucket, RunReport, SimConfig};
use liferaft_storage::{BucketId, SimDuration, SimTime};

use crate::config::AdmissionConfig;
use crate::router::Fragment;
use crate::shard::ShardId;

/// Backpressure statistics of one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Fragments that were parked at least once before admission.
    pub deferred_fragments: u64,
    /// Highest queued-entry backlog observed.
    pub peak_backlog: u64,
}

/// The finished record of one shard: a fragment-level [`RunReport`] (its
/// `queries` field counts *fragments*) plus admission statistics.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The shard.
    pub shard: ShardId,
    /// Fragment-level run report (outcomes are fragment completions in
    /// shard event order).
    pub report: RunReport,
    /// Backpressure statistics.
    pub admission: AdmissionStats,
}

/// One shard's engine, scheduler, clock, and ingress.
pub(crate) struct ShardWorker<'a, C: Catalog + ?Sized> {
    shard: ShardId,
    core: EngineCore<'a, C>,
    scheduler: Box<dyn Scheduler + Send>,
    /// The routed trace entries (shared, read-only: fragments reference
    /// queries by index).
    trace: &'a [(SimTime, CrossMatchQuery)],
    fragments: Vec<Fragment>,
    /// Next not-yet-seen fragment (fragments before `next` are admitted or
    /// parked in `deferred`).
    next: usize,
    /// Parked fragment indices, in arrival order.
    deferred: VecDeque<usize>,
    now: SimTime,
    max_backlog_entries: Option<u64>,
    stats: AdmissionStats,
}

impl<'a, C: Catalog + ?Sized> ShardWorker<'a, C> {
    pub(crate) fn new(
        shard: ShardId,
        catalog: &'a C,
        sim: SimConfig,
        admission: AdmissionConfig,
        trace: &'a [(SimTime, CrossMatchQuery)],
        fragments: Vec<Fragment>,
        scheduler: Box<dyn Scheduler + Send>,
    ) -> Self {
        ShardWorker {
            shard,
            core: EngineCore::new(catalog, sim),
            scheduler,
            trace,
            fragments,
            next: 0,
            deferred: VecDeque::new(),
            now: SimTime::ZERO,
            max_backlog_entries: admission.max_backlog_entries,
            stats: AdmissionStats::default(),
        }
    }

    /// Virtual time of the worker's next event, or `None` when fully done.
    /// Pending work (or parked ingress) is an event "now"; an idle worker's
    /// next event is its next fragment arrival — clamped to `now`, because
    /// a shard whose clock overshot the arrival while busy admits the
    /// fragment at `now`, not in the past. The clamp is what lets the
    /// elastic driver trust `next_time` as "the virtual time of the next
    /// state change" when placing epoch boundaries.
    pub(crate) fn next_time(&self) -> Option<SimTime> {
        if !self.core.is_idle() || !self.deferred.is_empty() {
            return Some(self.now);
        }
        self.fragments
            .get(self.next)
            .map(|f| f.arrival.max(self.now))
    }

    /// Admits every due fragment the backlog limit allows: parked fragments
    /// first (FIFO), then newly due arrivals; arrivals due while the shard
    /// is over its limit are parked. The limit is checked *before* each
    /// admission, so progress is always possible from an empty backlog.
    fn deliver_due(&mut self) {
        loop {
            let backlog = self.core.total_queued();
            self.stats.peak_backlog = self.stats.peak_backlog.max(backlog);
            if self
                .max_backlog_entries
                .is_some_and(|limit| backlog >= limit)
            {
                // Over the limit: park everything already due and stop.
                while self
                    .fragments
                    .get(self.next)
                    .is_some_and(|f| f.arrival <= self.now)
                {
                    self.deferred.push_back(self.next);
                    self.stats.deferred_fragments += 1;
                    self.next += 1;
                }
                return;
            }
            if let Some(&idx) = self.deferred.front() {
                self.deferred.pop_front();
                self.admit(idx);
                continue;
            }
            if self
                .fragments
                .get(self.next)
                .is_some_and(|f| f.arrival <= self.now)
            {
                let idx = self.next;
                self.next += 1;
                self.admit(idx);
                continue;
            }
            return;
        }
    }

    fn admit(&mut self, idx: usize) {
        let f = &self.fragments[idx];
        let (_, query) = &self.trace[f.query_index];
        debug_assert_eq!(query.id, f.query, "routing and trace disagree");
        self.core.deliver_items(query, &f.items, f.arrival);
        self.scheduler.on_query_arrival(f.arrival);
    }

    /// Executes one event: delivery (plus an idle-time jump to the next
    /// arrival if needed) and one batch. Returns `false` when the shard has
    /// drained everything — no state changes on a `false` return.
    pub(crate) fn step(&mut self) -> bool {
        self.deliver_due();
        if self.core.is_idle() {
            // An empty backlog admits at least one fragment, so a parked
            // queue can never coexist with an idle core here.
            debug_assert!(self.deferred.is_empty());
            let Some(f) = self.fragments.get(self.next) else {
                return false; // drained everything
            };
            self.now = f.arrival;
            self.deliver_due();
            if self.core.is_idle() {
                // Only zero-work fragments arrived at this instant (they
                // register and complete immediately); nothing to schedule.
                return true;
            }
        }
        self.now += self
            .core
            .decide_and_execute(self.scheduler.as_mut(), self.now);
        true
    }

    /// Appends later-routed fragments to the ingress stream — the elastic
    /// driver's incremental (per-epoch-window) routing path. Arrival order
    /// must be preserved across appends.
    pub(crate) fn append_fragments(&mut self, extra: Vec<Fragment>) {
        debug_assert!(
            extra.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "appended window out of arrival order"
        );
        debug_assert!(
            self.fragments
                .last()
                .zip(extra.first())
                .map_or(true, |(a, b)| a.arrival <= b.arrival),
            "appended window precedes existing fragments"
        );
        self.fragments.extend(extra);
    }

    /// Queued-entry backlog — the rebalance controller's load signal.
    pub(crate) fn queued(&self) -> u64 {
        self.core.total_queued()
    }

    /// Cumulative serviced entries (controller observability).
    pub(crate) fn serviced(&self) -> u64 {
        self.core.serviced_entries()
    }

    /// Cache-resident bucket count (controller observability).
    pub(crate) fn resident(&self) -> usize {
        self.core.resident_buckets()
    }

    /// The shard's non-empty buckets with queue depths — the planner's
    /// per-source candidate list, in bucket order.
    pub(crate) fn bucket_depths(&self) -> Vec<(BucketId, u64)> {
        let table = self.core.workload();
        table
            .non_empty_buckets()
            .iter()
            .map(|&b| (b, table.queue(b).len() as u64))
            .collect()
    }

    /// Extracts one bucket's queued state for migration (see
    /// [`EngineCore::extract_bucket`]). The source clock is untouched —
    /// migration costs land on the destination.
    pub(crate) fn extract_bucket(
        &mut self,
        bucket: BucketId,
        at: SimTime,
        evict_residency: bool,
    ) -> MigratedBucket {
        self.core.extract_bucket(bucket, at, evict_residency)
    }

    /// Adopts a migrated bucket at epoch boundary `at`, charging `cost`
    /// virtual time to the shard clock (clamped up to the boundary first,
    /// so migration work never appears to predate the decision).
    pub(crate) fn absorb_payload(
        &mut self,
        payload: MigratedBucket,
        at: SimTime,
        cost: SimDuration,
        warm_residency: bool,
    ) {
        self.now = self.now.max(at);
        self.core.absorb_bucket(payload, warm_residency);
        self.now += cost;
    }

    /// Finishes the shard into its run record.
    ///
    /// # Panics
    /// Panics if fragments are still outstanding (the driver must step the
    /// worker to completion first).
    pub(crate) fn into_run(self) -> ShardRun {
        assert!(
            self.next >= self.fragments.len() && self.deferred.is_empty(),
            "shard {} finished with unadmitted fragments",
            self.shard
        );
        assert!(
            self.core.all_complete(),
            "shard {} finished with incomplete fragments",
            self.shard
        );
        let fragments = self.fragments.len();
        ShardRun {
            shard: self.shard,
            report: self.core.into_report(self.scheduler.as_ref(), fragments),
            admission: self.stats,
        }
    }
}
