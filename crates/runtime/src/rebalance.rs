//! Epoch-boundary rebalancing: the decision log and the planner.
//!
//! At every epoch boundary the stepped driver samples per-shard load and
//! asks `plan_moves` for a (possibly empty) set of bucket migrations. The
//! decisions — together with the load sample that produced them — are
//! recorded as an [`EpochRecord`]; the full [`RebalanceLog`] is what the
//! threaded executor replays verbatim, which is the whole determinism
//! story: planning happens exactly once, in the reference merge.
//!
//! The planner is a pure function of its inputs and deliberately greedy:
//! while the most-loaded shard's queued backlog exceeds the configured
//! multiple of the mean, move its deepest bucket to the least-loaded shard
//! — provided the move strictly narrows the max–min gap. All ties break on
//! the lowest id (shard or bucket), so the plan is reproducible from the
//! load sample alone.

use liferaft_storage::{BucketId, SimDuration, SimTime};

use crate::config::RebalanceConfig;
use crate::shard::ShardId;

/// One bucket migration decided at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The migrating bucket.
    pub bucket: BucketId,
    /// The overloaded source shard.
    pub from: ShardId,
    /// The underloaded destination shard.
    pub to: ShardId,
    /// Queued (object × bucket) entries moving with the bucket.
    pub entries: u64,
}

/// The decision record of one epoch boundary: the load sample the planner
/// saw and the moves it chose (often none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord {
    /// 1-based epoch index (boundary k sits at `k × epoch`).
    pub epoch: u32,
    /// The boundary's virtual time.
    pub at: SimTime,
    /// Queued entries per shard at the boundary (the planner's input).
    pub loads: Vec<u64>,
    /// Cumulative serviced entries per shard (observability).
    pub serviced: Vec<u64>,
    /// Cache-resident buckets per shard (observability).
    pub resident: Vec<u32>,
    /// The moves decided at this boundary, in planning order.
    pub moves: Vec<Migration>,
}

/// The epoch-indexed decision log of one elastic run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RebalanceLog {
    /// The epoch length the boundaries were spaced at.
    pub epoch: SimDuration,
    /// One record per fired boundary, in time order.
    pub records: Vec<EpochRecord>,
}

impl RebalanceLog {
    /// Total bucket moves across all epochs.
    pub fn total_moves(&self) -> usize {
        self.records.iter().map(|r| r.moves.len()).sum()
    }

    /// Total queued entries that migrated.
    pub fn moved_entries(&self) -> u64 {
        self.records
            .iter()
            .flat_map(|r| r.moves.iter())
            .map(|m| m.entries)
            .sum()
    }
}

/// Plans this boundary's migrations from the load sample.
///
/// `loads[s]` is shard `s`'s queued-entry backlog; `depths[s]` lists its
/// currently-owned non-empty buckets with their queue depths; `up[s]` marks
/// shards currently in the pool — dead shards (injected outage in force)
/// are invisible to the planner: never a source or destination, and
/// excluded from the mean the trigger compares against. Greedy, up to
/// `max_moves_per_epoch` iterations: pick the most- and least-loaded live
/// shards (ties → lower id), then the source's deepest not-yet-moved bucket
/// whose depth is *strictly* below the max–min gap (so the move narrows it;
/// ties → lower bucket id). Working loads update after every move.
pub(crate) fn plan_moves(
    cfg: &RebalanceConfig,
    loads: &[u64],
    depths: &[Vec<(BucketId, u64)>],
    up: &[bool],
) -> Vec<Migration> {
    let mut loads = loads.to_vec();
    let mut moves: Vec<Migration> = Vec::new();
    let live = up.iter().filter(|&&u| u).count();
    if live < 2 {
        return moves;
    }
    let live_total: u64 = loads
        .iter()
        .zip(up)
        .filter(|&(_, &u)| u)
        .map(|(&l, _)| l)
        .sum();
    let mean = live_total as f64 / live as f64;
    for _ in 0..cfg.max_moves_per_epoch {
        // Most/least loaded live shards, ties on the lower shard id
        // (max_by_key/min_by_key return the *last* max / *first* min among
        // equals, and `rev` flips which end "last" is).
        let (src, &l_max) = loads
            .iter()
            .enumerate()
            .filter(|&(s, _)| up[s])
            .rev()
            .max_by_key(|&(_, l)| l)
            .expect("at least two live shards");
        let (dst, &l_min) = loads
            .iter()
            .enumerate()
            .filter(|&(s, _)| up[s])
            .min_by_key(|&(_, l)| l)
            .expect("at least two live shards");
        // Total load is invariant under moves, so the trigger re-checks
        // against the boundary's mean every iteration.
        if src == dst || (l_max as f64) <= cfg.min_imbalance * mean {
            break;
        }
        let gap = l_max - l_min;
        let candidate = depths[src]
            .iter()
            .filter(|&&(b, d)| d > 0 && d < gap && !moves.iter().any(|m| m.bucket == b))
            .max_by(|&&(ba, da), &&(bb, db)| da.cmp(&db).then(bb.0.cmp(&ba.0)));
        let Some(&(bucket, entries)) = candidate else {
            break; // nothing movable improves the gap
        };
        loads[src] -= entries;
        loads[dst] += entries;
        moves.push(Migration {
            bucket,
            from: ShardId(src as u32),
            to: ShardId(dst as u32),
            entries,
        });
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RebalanceConfig {
        let mut c = RebalanceConfig::every(SimDuration::from_secs(10));
        c.min_imbalance = 1.2;
        c.max_moves_per_epoch = 8;
        c
    }

    #[test]
    fn balanced_loads_plan_nothing() {
        let depths = vec![vec![(BucketId(0), 50)], vec![(BucketId(9), 50)]];
        assert!(plan_moves(&cfg(), &[50, 50], &depths, &[true, true]).is_empty());
        assert!(plan_moves(&cfg(), &[0, 0], &depths, &[true, true]).is_empty());
    }

    #[test]
    fn hotspot_moves_deepest_improving_bucket_to_coldest_shard() {
        // Shard 0 is hot: buckets of depth 60, 30, 10. Shard 2 is empty.
        let loads = [100u64, 40, 0];
        let depths = vec![
            vec![(BucketId(1), 60), (BucketId(2), 30), (BucketId(3), 10)],
            vec![(BucketId(7), 40)],
            vec![],
        ];
        let moves = plan_moves(&cfg(), &loads, &depths, &[true; 3]);
        assert!(!moves.is_empty());
        // First move: the deepest bucket below the 100-0 gap (60) to S2.
        assert_eq!(moves[0].bucket, BucketId(1));
        assert_eq!(moves[0].from, ShardId(0));
        assert_eq!(moves[0].to, ShardId(2));
        assert_eq!(moves[0].entries, 60);
        // No bucket moves twice.
        let mut seen: Vec<BucketId> = moves.iter().map(|m| m.bucket).collect();
        seen.dedup();
        assert_eq!(seen.len(), moves.len());
    }

    #[test]
    fn dead_shards_are_invisible() {
        // Shard 2 is the coldest — but it is down, so moves go to shard 1,
        // and the mean is computed over the two live shards only.
        let loads = [100u64, 20, 0];
        let depths = vec![
            vec![(BucketId(1), 60), (BucketId(2), 30)],
            vec![(BucketId(7), 20)],
            vec![],
        ];
        let moves = plan_moves(&cfg(), &loads, &depths, &[true, true, false]);
        assert!(!moves.is_empty());
        assert_eq!(moves[0].to, ShardId(1), "first move targets the live shard");
        assert!(moves
            .iter()
            .all(|m| m.to != ShardId(2) && m.from != ShardId(2)));
        // With only one live shard there is nowhere to move anything.
        assert!(plan_moves(&cfg(), &loads, &depths, &[true, false, false]).is_empty());
    }

    #[test]
    fn moves_must_strictly_narrow_the_gap() {
        // One indivisible deep bucket as large as the whole gap: moving it
        // would just swap the hotspot, so the planner must decline.
        let loads = [80u64, 0];
        let depths = vec![vec![(BucketId(4), 80)], vec![]];
        assert!(plan_moves(&cfg(), &loads, &depths, &[true, true]).is_empty());
    }

    #[test]
    fn move_budget_is_respected() {
        let mut c = cfg();
        c.max_moves_per_epoch = 1;
        let loads = [90u64, 0];
        let depths = vec![
            vec![(BucketId(0), 30), (BucketId(1), 30), (BucketId(2), 30)],
            vec![],
        ];
        let moves = plan_moves(&c, &loads, &depths, &[true, true]);
        assert_eq!(moves.len(), 1);
    }

    #[test]
    fn ties_break_on_lower_ids() {
        let mut c = cfg();
        c.max_moves_per_epoch = 1;
        // Shards 1 and 2 equally cold; buckets 5 and 3 equally deep.
        let loads = [60u64, 0, 0];
        let depths = vec![vec![(BucketId(5), 20), (BucketId(3), 20)], vec![], vec![]];
        let moves = plan_moves(&c, &loads, &depths, &[true; 3]);
        assert_eq!(moves[0].to, ShardId(1), "tied destinations break low");
        assert_eq!(moves[0].bucket, BucketId(3), "tied buckets break low");
    }
}
