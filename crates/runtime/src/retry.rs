//! The shared bounded-retry schedule: failure detection plus exponential
//! backoff.
//!
//! Two subsystems re-deliver lost work on virtual-time timeouts: the
//! failover path (fragments released to a dead shard, PR 9) and the
//! transport path (fragments dropped by a lossy link). Both follow the
//! same shape — wait a detection timeout after the base event, then space
//! escalations by an exponentially growing backoff, give up after a
//! bounded number of attempts — so the schedule lives here once, and both
//! controllers derive their deadlines from a [`RetryPolicy`] instead of
//! duplicating the arithmetic. The timing contract is pinned by unit
//! tests: attempt 1 fires `detection_timeout` after the base event, and
//! attempt `k + 1` fires `backoff × 2^(k−1)` after attempt `k` (shift
//! clamped at 32 so deep chains saturate instead of overflowing).

use liferaft_storage::{SimDuration, SimTime};

/// A bounded retry schedule: detection timeout, exponential backoff, and
/// an attempt budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Virtual time after the base event (a loss, a send) before the first
    /// retry attempt — the failure-detection timeout.
    pub detection_timeout: SimDuration,
    /// Base backoff between attempts; attempt `k + 1` fires
    /// `backoff × 2^(k−1)` after attempt `k`.
    pub backoff: SimDuration,
    /// Attempts before the caller records a terminal rejection.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// A policy from its three knobs.
    pub fn new(detection_timeout: SimDuration, backoff: SimDuration, max_attempts: u32) -> Self {
        RetryPolicy {
            detection_timeout,
            backoff,
            max_attempts,
        }
    }

    /// The gap between escalation `attempt` and the next one: the
    /// detection timeout after the base event (`attempt == 0`), then
    /// `backoff × 2^(attempt−1)` after attempt `attempt`. The shift is
    /// clamped at 32 so pathological budgets saturate rather than overflow.
    pub fn gap_after(&self, attempt: u32) -> SimDuration {
        if attempt == 0 {
            self.detection_timeout
        } else {
            let shift = (attempt - 1).min(32);
            self.backoff.times(1u64 << shift)
        }
    }

    /// The absolute deadline of the escalation following `attempt`, given
    /// that `attempt` happened at `at` (`attempt == 0` is the base event).
    pub fn deadline_after(&self, at: SimTime, attempt: u32) -> SimTime {
        at + self.gap_after(attempt)
    }

    /// The absolute fire time of 1-based attempt `k` when every prior
    /// attempt fails (or goes unacknowledged) instantly at its own fire
    /// time — the schedule both the failover planner and the transport
    /// retransmitter walk.
    pub fn attempt_time(&self, base: SimTime, k: u32) -> SimTime {
        assert!(k >= 1, "attempts are 1-based");
        let mut at = self.deadline_after(base, 0);
        for j in 1..k {
            at = self.deadline_after(at, j);
        }
        at
    }

    /// Validates invariants; `what` names the owning subsystem in the
    /// panic message.
    pub fn validate(&self, what: &str) {
        assert!(
            self.detection_timeout > SimDuration::ZERO,
            "a zero {what} detection timeout would retry at the loss instant"
        );
        assert!(
            self.backoff > SimDuration::ZERO,
            "a zero {what} retry backoff would spin failed attempts at one instant"
        );
        assert!(
            self.max_attempts >= 1,
            "enabled {what} must attempt at least one retry"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn gaps_reproduce_the_failover_schedule() {
        // The exact timing the PR 9 failover planner shipped with: first
        // attempt at loss + 2 s, then 1 s, 2 s, 4 s, ... between attempts.
        let p = RetryPolicy::new(SimDuration::from_secs(2), SimDuration::from_secs(1), 5);
        assert_eq!(p.gap_after(0), SimDuration::from_secs(2));
        assert_eq!(p.gap_after(1), SimDuration::from_secs(1));
        assert_eq!(p.gap_after(2), SimDuration::from_secs(2));
        assert_eq!(p.gap_after(3), SimDuration::from_secs(4));
        assert_eq!(p.gap_after(4), SimDuration::from_secs(8));
        assert_eq!(p.attempt_time(t(10), 1), t(12));
        assert_eq!(p.attempt_time(t(10), 2), t(13));
        assert_eq!(p.attempt_time(t(10), 3), t(15));
        assert_eq!(p.attempt_time(t(10), 4), t(19));
    }

    #[test]
    fn deep_chains_saturate_the_shift() {
        let p = RetryPolicy::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(1),
            u32::MAX,
        );
        // Attempts beyond the clamp keep the 2^32 gap instead of
        // overflowing the shift.
        assert_eq!(p.gap_after(33), SimDuration::from_micros(1u64 << 32));
        assert_eq!(p.gap_after(40), p.gap_after(33));
    }

    #[test]
    fn deadlines_chain_from_arbitrary_instants() {
        let p = RetryPolicy::new(
            SimDuration::from_millis(500),
            SimDuration::from_millis(250),
            3,
        );
        let first = p.deadline_after(t(1), 0);
        assert_eq!(first, SimTime::from_micros(1_500_000));
        let second = p.deadline_after(first, 1);
        assert_eq!(second, SimTime::from_micros(1_750_000));
    }

    #[test]
    #[should_panic(expected = "zero transport detection timeout")]
    fn zero_detection_timeout_rejected() {
        RetryPolicy::new(SimDuration::ZERO, SimDuration::from_secs(1), 3).validate("transport");
    }

    #[test]
    #[should_panic(expected = "at least one retry")]
    fn zero_attempts_rejected() {
        RetryPolicy::new(SimDuration::from_secs(1), SimDuration::from_secs(1), 0)
            .validate("transport");
    }
}
