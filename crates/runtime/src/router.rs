//! The front-end router: queries → per-shard work fragments.
//!
//! Arriving queries are pre-processed once (the paper's Query Pre-Processor)
//! and their per-bucket work items are split by the [`ShardMap`] into
//! per-shard **fragments**. A fragment is the unit a shard admits, tracks,
//! and completes; the cross-shard query completes when *all* its fragments
//! have finished (the aggregation in `runtime` counts them down).
//!
//! Routing is a pure function of (partition, shard map, trace) — it depends
//! on no execution state, which is the property that lets the threaded
//! executor run shards fully independently yet bit-identically to the
//! stepped reference.

use liferaft_catalog::Partition;
use liferaft_query::{CrossMatchQuery, QueryId, QueryPreProcessor, WorkItem};
use liferaft_storage::{BucketId, SimTime};
use liferaft_workload::TimedTrace;

use crate::admission::{AdmissionLog, QueryClass};
use crate::rebalance::RebalanceLog;
use crate::shard::{ElasticShardMap, ShardId, ShardMap};

/// One shard's slice of one query: the work items whose buckets the shard
/// owns, plus arrival/identity metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Index of the parent query within the routed trace.
    pub query_index: usize,
    /// The parent query.
    pub query: QueryId,
    /// Arrival instant of the parent query (ages reference this).
    pub arrival: SimTime,
    /// Release instant: when the fragment becomes *deliverable* to its
    /// shard. Equal to `arrival` unless the front door held the query back;
    /// ages keep referencing `arrival`, so front-door queueing shows up as
    /// response time exactly like queueing at a loaded shard.
    pub release: SimTime,
    /// The parent query's front-door class ([`QueryClass::Standard`] when
    /// the front door is disabled).
    pub class: QueryClass,
    /// The shard-local work items, sorted by bucket.
    pub items: Vec<WorkItem>,
    /// Total (object × bucket) assignments in `items`.
    pub assignments: u64,
}

/// The routing of one trace across one shard map.
#[derive(Debug, Clone)]
pub struct Routing {
    /// Per-shard fragment streams, each in arrival order.
    pub shards: Vec<Vec<Fragment>>,
    /// Per trace index: number of fragments the query split into (at least
    /// 1 for every routed query — a query whose pre-processing produced no
    /// work ships as one empty fragment, see [`route`]; exactly 0 for a
    /// query the front door rejected, see [`route_admitted`]).
    pub fragments_of: Vec<u32>,
    /// Per trace index: total assignments across all fragments.
    pub assignments_of: Vec<u64>,
    /// Queries that split across more than one shard.
    pub cross_shard_queries: usize,
    /// Total assignments across the whole trace.
    pub total_assignments: u64,
}

impl Routing {
    /// Total fragments across all shards.
    pub fn total_fragments(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
}

/// Routes `trace` across `map`, splitting every query's work items by the
/// shard that owns their bucket.
///
/// A query whose pre-processing yields no work items still produces one
/// **empty** fragment, routed to shard 0: the owning worker registers it
/// (it completes instantly at its arrival) and notifies its scheduler of
/// the arrival — mirroring what the single-engine `Simulation` does, so
/// arrival-driven policies (the adaptive controller) see the same stream.
pub fn route(partition: &Partition, map: &ShardMap, trace: &TimedTrace) -> Routing {
    assert_eq!(
        partition.num_buckets(),
        map.num_buckets(),
        "shard map must cover the partition"
    );
    route_with(partition, map.n_shards() as usize, trace, |_, b| {
        map.shard_of(b)
    })
}

/// Routes `trace` under an **evolving** elastic map: starting from `base`,
/// the moves of every `log` record with `at <= arrival` are applied before
/// a query routes — i.e. arrivals in the window `[T_k, T_{k+1})` see the
/// map as the epoch-`k` rebalance left it. This is exactly the incremental
/// routing the elastic stepped driver performs, re-derived as a pure
/// function of `(base map, decision log, trace)` so the threaded executor
/// can route everything up-front.
pub fn route_elastic(
    partition: &Partition,
    base: &ShardMap,
    log: &RebalanceLog,
    trace: &TimedTrace,
) -> Routing {
    assert_eq!(
        partition.num_buckets(),
        base.num_buckets(),
        "shard map must cover the partition"
    );
    let mut elastic = ElasticShardMap::new(*base);
    let mut next_record = 0usize;
    route_with(partition, base.n_shards() as usize, trace, |arrival, b| {
        while log
            .records
            .get(next_record)
            .is_some_and(|r| r.at <= arrival)
        {
            for m in &log.records[next_record].moves {
                elastic.reassign(m.bucket, m.to);
            }
            next_record += 1;
        }
        elastic.shard_of(b)
    })
}

/// The shared routing core: splits every query by `shard_of(arrival,
/// bucket)`. Arrivals are visited in trace order, so a stateful `shard_of`
/// may evolve monotonically with arrival time (the elastic path).
fn route_with(
    partition: &Partition,
    n_shards: usize,
    trace: &TimedTrace,
    mut shard_of: impl FnMut(SimTime, BucketId) -> ShardId,
) -> Routing {
    let pre = QueryPreProcessor::new(partition);
    let mut shards: Vec<Vec<Fragment>> = vec![Vec::new(); n_shards];
    let mut fragments_of = Vec::with_capacity(trace.len());
    let mut assignments_of = Vec::with_capacity(trace.len());
    let mut cross_shard_queries = 0usize;
    let mut total_assignments = 0u64;
    // Per-query scratch: items grouped by shard (reused across queries).
    let mut split: Vec<Vec<WorkItem>> = vec![Vec::new(); n_shards];

    for (query_index, (arrival, query)) in trace.entries().iter().enumerate() {
        let (fragments, assignments) = split_query(
            &pre,
            query_index,
            *arrival,
            *arrival,
            QueryClass::Standard,
            query,
            &mut |b| shard_of(*arrival, b),
            &mut split,
            &mut shards,
        );
        if fragments > 1 {
            cross_shard_queries += 1;
        }
        fragments_of.push(fragments);
        assignments_of.push(assignments);
        total_assignments += assignments;
    }

    Routing {
        shards,
        fragments_of,
        assignments_of,
        cross_shard_queries,
        total_assignments,
    }
}

/// Splits one query into per-shard fragments, appending them to `shards`
/// (one stream per shard) and returning `(fragments, assignments)`. The
/// zero-work convention (one empty fragment to shard 0) lives here, so the
/// static router, the elastic replay router, the front-door replay router,
/// and the stepped drivers' incremental routing all split queries with the
/// same code.
#[allow(clippy::too_many_arguments)]
pub(crate) fn split_query(
    pre: &QueryPreProcessor<'_>,
    query_index: usize,
    arrival: SimTime,
    release: SimTime,
    class: QueryClass,
    query: &CrossMatchQuery,
    shard_of: &mut dyn FnMut(BucketId) -> ShardId,
    split: &mut [Vec<WorkItem>],
    shards: &mut [Vec<Fragment>],
) -> (u32, u64) {
    let items = pre.preprocess(query);
    let mut assignments = 0u64;
    for item in items {
        assignments += item.len() as u64;
        split[shard_of(item.bucket).index()].push(item);
    }
    let mut fragments = 0u32;
    for (shard, items) in split.iter_mut().enumerate() {
        if items.is_empty() {
            continue;
        }
        fragments += 1;
        let items = std::mem::take(items);
        let assignments = items.iter().map(|i| i.len() as u64).sum();
        shards[shard].push(Fragment {
            query_index,
            query: query.id,
            arrival,
            release,
            class,
            items,
            assignments,
        });
    }
    if fragments == 0 {
        // No work anywhere: ship the arrival itself to shard 0.
        fragments = 1;
        shards[0].push(Fragment {
            query_index,
            query: query.id,
            arrival,
            release,
            class,
            items: Vec::new(),
            assignments: 0,
        });
    }
    (fragments, assignments)
}

/// Routes the **admitted** subset of `trace` per a recorded
/// [`AdmissionLog`]: queries append to the per-shard streams in admission
/// (`seq`) order, each released at its logged admission time; rejected
/// queries route no fragments at all (their `fragments_of` entry is 0 —
/// the aggregation synthesizes their `Rejected` outcome from the log).
///
/// This is the front-door analogue of [`route_elastic`]: the pure function
/// of `(partition, map, trace, decision log)` that lets the threaded
/// executor route everything up-front — no runtime coordination — yet land
/// every shard on exactly the fragment stream the stepped planner produced.
pub fn route_admitted(
    partition: &Partition,
    map: &ShardMap,
    trace: &TimedTrace,
    log: &AdmissionLog,
) -> Routing {
    assert_eq!(
        partition.num_buckets(),
        map.num_buckets(),
        "shard map must cover the partition"
    );
    assert_eq!(log.verdicts.len(), trace.len(), "one verdict per query");
    let n_shards = map.n_shards() as usize;
    let pre = QueryPreProcessor::new(partition);
    let mut shards: Vec<Vec<Fragment>> = vec![Vec::new(); n_shards];
    let mut fragments_of = vec![0u32; trace.len()];
    let mut assignments_of = vec![0u64; trace.len()];
    let mut cross_shard_queries = 0usize;
    let mut total_assignments = 0u64;
    let mut split: Vec<Vec<WorkItem>> = vec![Vec::new(); n_shards];

    for (query_index, release) in log.admissions_in_seq_order() {
        let (arrival, query) = &trace.entries()[query_index];
        let (fragments, assignments) = split_query(
            &pre,
            query_index,
            *arrival,
            release,
            log.verdicts[query_index].class,
            query,
            &mut |b| map.shard_of(b),
            &mut split,
            &mut shards,
        );
        if fragments > 1 {
            cross_shard_queries += 1;
        }
        fragments_of[query_index] = fragments;
        assignments_of[query_index] = assignments;
        total_assignments += assignments;
    }
    // Rejected queries never route, but their workload stays on record.
    for (i, v) in log.verdicts.iter().enumerate() {
        if !v.admitted() {
            assignments_of[i] = v.assignments;
        }
    }

    Routing {
        shards,
        fragments_of,
        assignments_of,
        cross_shard_queries,
        total_assignments,
    }
}

/// Splits one arrival under the failover rules and appends the surviving
/// fragments to `out` (per-shard sinks): the query splits under the current
/// elastic map exactly like any other arrival, then — with failover
/// `enabled` — every fragment that landed on a **down** shard is popped
/// back off the stream and reported in `lost` (it was released into a dead
/// shard: lost in flight, to be re-delivered later), and a zero-work
/// query's empty marker fragment is retargeted from a dead shard 0 to the
/// lowest-id live shard. Returns `(delivered, fragments, assignments)`
/// where `fragments` counts the original split (the cross-shard signal)
/// and `delivered` the fragments actually shipped now.
///
/// Shared verbatim by the stepped failover planner and the threaded
/// replay's [`route_failover`], which is what keeps their per-shard
/// fragment streams bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn split_failover_arrival(
    pre: &QueryPreProcessor<'_>,
    query_index: usize,
    arrival: SimTime,
    query: &CrossMatchQuery,
    enabled: bool,
    up: &[bool],
    elastic: &ElasticShardMap,
    split: &mut [Vec<WorkItem>],
    out: &mut [Vec<Fragment>],
    lost: &mut Vec<(u32, Fragment)>,
) -> (u32, u32, u64) {
    let (fragments, assignments) = split_query(
        pre,
        query_index,
        arrival,
        arrival,
        QueryClass::Standard,
        query,
        &mut |b| elastic.shard_of(b),
        split,
        out,
    );
    let mut delivered = fragments;
    if enabled {
        // One arrival appends at most one fragment per shard, so a down
        // shard's lost slice — if any — is exactly its stream tail.
        for shard in 0..up.len() {
            if up[shard] {
                continue;
            }
            let Some(tail) = out[shard].last() else {
                continue;
            };
            if tail.query_index != query_index {
                continue;
            }
            if tail.items.is_empty() {
                // The zero-work marker fragment: nothing to lose, but its
                // arrival notification should reach a live scheduler.
                debug_assert_eq!(shard, 0, "empty fragments route to shard 0");
                let f = out[shard].pop().expect("tail checked above");
                match up.iter().position(|&u| u) {
                    Some(live) => out[live].push(f),
                    // No shard is up at all: leave it to ride out the
                    // outage — it completes at its arrival either way.
                    None => out[shard].push(f),
                }
            } else {
                let f = out[shard].pop().expect("tail checked above");
                delivered -= 1;
                lost.push((shard as u32, f));
            }
        }
    }
    (delivered, fragments, assignments)
}

/// Routes `trace` under a recorded [`FailoverLog`] (plus an optional
/// [`RebalanceLog`] when elastic rebalancing ran alongside): the pure
/// function of `(partition, base map, decision logs, trace)` that lets the
/// threaded executor route everything up-front yet land every shard on
/// exactly the fragment stream the stepped failover planner produced.
///
/// Three event streams merge in time order — at equal instants, map/pool
/// changes first (outage edges before epoch boundaries, as the planner
/// processes them), then arrivals, then re-deliveries:
///
/// - **transitions** flip each shard's up/down state; a down edge also
///   applies its boundary's evacuation reassignments, and an epoch record
///   applies its moves — so arrivals at or after the instant route under
///   the *new* map (`at <= arrival`, matching [`route_elastic`]);
/// - **arrivals** split via `split_failover_arrival` — fragments landing
///   on a dead shard are held back as lost;
/// - **re-deliveries** (`to: Some`) re-release a held lost fragment on the
///   planner's chosen live shard at the logged attempt instant. Lost
///   fragments whose query the planner rejected are never re-released.
///
/// [`FailoverLog`]: crate::failover::FailoverLog
pub fn route_failover(
    partition: &Partition,
    base: &ShardMap,
    enabled: bool,
    log: &crate::failover::FailoverLog,
    rebalance: Option<&RebalanceLog>,
    trace: &TimedTrace,
) -> Routing {
    assert_eq!(
        partition.num_buckets(),
        base.num_buckets(),
        "shard map must cover the partition"
    );
    let n_shards = base.n_shards() as usize;
    let pre = QueryPreProcessor::new(partition);
    let mut elastic = ElasticShardMap::new(*base);
    let mut up = vec![true; n_shards];
    let mut shards: Vec<Vec<Fragment>> = vec![Vec::new(); n_shards];
    let mut split: Vec<Vec<WorkItem>> = vec![Vec::new(); n_shards];
    let mut fragments_of = vec![0u32; trace.len()];
    let mut assignments_of = vec![0u64; trace.len()];
    let mut cross_shard_queries = 0usize;
    let mut total_assignments = 0u64;
    // Lost fragments awaiting re-delivery, keyed by (query, dead shard) —
    // one arrival loses at most one fragment per shard.
    let mut lost: std::collections::HashMap<(usize, u32), Fragment> =
        std::collections::HashMap::new();
    let mut lost_scratch: Vec<(u32, Fragment)> = Vec::new();

    // Map/pool changes: outage edges carry their evacuation reassignments;
    // epoch records carry their moves. Both logs are time-sorted; merge
    // with transitions first at equal instants (planner order).
    enum Change<'l> {
        Transition(&'l crate::failover::ShardTransition),
        Epoch(&'l crate::rebalance::EpochRecord),
    }
    let epochs: &[crate::rebalance::EpochRecord] =
        rebalance.map_or(&[], |rb| rb.records.as_slice());
    let mut changes: Vec<(SimTime, Change<'_>)> = Vec::new();
    {
        let (mut ti, mut ei) = (0usize, 0usize);
        while ti < log.transitions.len() || ei < epochs.len() {
            let take_transition = match (log.transitions.get(ti), epochs.get(ei)) {
                (Some(t), Some(e)) => t.at <= e.at,
                (Some(_), None) => true,
                _ => false,
            };
            if take_transition {
                changes.push((
                    log.transitions[ti].at,
                    Change::Transition(&log.transitions[ti]),
                ));
                ti += 1;
            } else {
                changes.push((epochs[ei].at, Change::Epoch(&epochs[ei])));
                ei += 1;
            }
        }
    }

    let entries = trace.entries();
    let deliveries: Vec<&crate::failover::Redelivery> =
        log.redeliveries.iter().filter(|r| r.to.is_some()).collect();
    let (mut ci, mut ai, mut ri) = (0usize, 0usize, 0usize);
    loop {
        let tc = changes.get(ci).map(|c| c.0);
        let ta = entries.get(ai).map(|e| e.0);
        let tr = deliveries.get(ri).map(|r| r.at);
        let Some(t) = [tc, ta, tr].into_iter().flatten().min() else {
            break;
        };
        if tc == Some(t) {
            match &changes[ci].1 {
                Change::Transition(edge) => {
                    up[edge.shard as usize] = edge.up;
                    if !edge.up {
                        for e in log
                            .evacuations
                            .iter()
                            .filter(|e| e.boundary == edge.at && e.from == edge.shard)
                        {
                            elastic.reassign(e.bucket, ShardId(e.to));
                        }
                    }
                }
                Change::Epoch(rec) => {
                    for m in &rec.moves {
                        elastic.reassign(m.bucket, m.to);
                    }
                }
            }
            ci += 1;
            continue;
        }
        if ta == Some(t) {
            let (arrival, query) = &entries[ai];
            let (delivered, fragments, assignments) = split_failover_arrival(
                &pre,
                ai,
                *arrival,
                query,
                enabled,
                &up,
                &elastic,
                &mut split,
                &mut shards,
                &mut lost_scratch,
            );
            for (from, f) in lost_scratch.drain(..) {
                lost.insert((ai, from), f);
            }
            if fragments > 1 {
                cross_shard_queries += 1;
            }
            fragments_of[ai] = delivered;
            assignments_of[ai] = assignments;
            total_assignments += assignments;
            ai += 1;
            continue;
        }
        let r = deliveries[ri];
        let f = lost
            .remove(&(r.query_index, r.from))
            .expect("re-delivery of a fragment that was never lost");
        let to = r.to.expect("deliveries are filtered to landed attempts") as usize;
        fragments_of[r.query_index] += 1;
        shards[to].push(Fragment { release: r.at, ..f });
        ri += 1;
    }

    Routing {
        shards,
        fragments_of,
        assignments_of,
        cross_shard_queries,
        total_assignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_catalog::{generate::uniform_sky, Catalog, MaterializedCatalog};
    use liferaft_query::{CrossMatchQuery, Predicate};
    use liferaft_workload::arrivals::uniform_arrivals;
    use liferaft_workload::Trace;

    const LEVEL: u8 = 8;

    fn fixture() -> (MaterializedCatalog, TimedTrace) {
        let sky = uniform_sky(2_000, LEVEL, 3);
        let cat = MaterializedCatalog::build(&sky, LEVEL, 100, 4096);
        // Each query anchors on objects of several scattered buckets, so
        // multi-shard maps must split it.
        let queries: Vec<CrossMatchQuery> = (0..10)
            .map(|i| {
                let mut positions = Vec::new();
                for k in 0..4u32 {
                    let b = (i as u32 * 3 + k * 7) % 20;
                    let objs = cat.bucket_objects(liferaft_storage::BucketId(b));
                    positions.extend(objs.iter().step_by(25).map(|o| o.pos));
                }
                CrossMatchQuery::from_positions(
                    QueryId(i as u64),
                    &positions,
                    1e-4,
                    LEVEL,
                    Predicate::All,
                )
            })
            .collect();
        let trace = Trace::new(LEVEL, queries);
        let timed = trace.with_arrivals(uniform_arrivals(1.0, 10));
        (cat, timed)
    }

    #[test]
    fn routing_conserves_assignments_and_respects_ownership() {
        let (cat, timed) = fixture();
        let pre = QueryPreProcessor::new(cat.partition());
        let expected: u64 = timed
            .entries()
            .iter()
            .map(|(_, q)| pre.workload_size(q))
            .sum();
        for map in [
            ShardMap::contiguous(cat.partition().num_buckets(), 4),
            ShardMap::hashed(cat.partition().num_buckets(), 4, 7),
        ] {
            let routing = route(cat.partition(), &map, &timed);
            assert_eq!(routing.total_assignments, expected);
            let by_fragment: u64 = routing.shards.iter().flatten().map(|f| f.assignments).sum();
            assert_eq!(by_fragment, expected);
            // Every item landed on the shard that owns its bucket, and
            // per-shard fragments are in arrival order.
            for (s, fragments) in routing.shards.iter().enumerate() {
                for w in fragments.windows(2) {
                    assert!(w[0].arrival <= w[1].arrival);
                }
                for f in fragments {
                    assert!(!f.items.is_empty());
                    for item in &f.items {
                        assert_eq!(map.shard_of(item.bucket).index(), s);
                    }
                }
            }
            // fragments_of counts match the shard streams.
            let mut counts = vec![0u32; timed.len()];
            for f in routing.shards.iter().flatten() {
                counts[f.query_index] += 1;
            }
            assert_eq!(counts, routing.fragments_of);
        }
    }

    #[test]
    fn single_shard_routing_is_whole_queries() {
        let (cat, timed) = fixture();
        let map = ShardMap::contiguous(cat.partition().num_buckets(), 1);
        let routing = route(cat.partition(), &map, &timed);
        assert_eq!(routing.cross_shard_queries, 0);
        assert_eq!(routing.total_fragments(), timed.len());
        assert!(routing.fragments_of.iter().all(|&c| c == 1));
    }

    #[test]
    fn zero_work_queries_ship_one_empty_fragment_to_shard_zero() {
        let (cat, _) = fixture();
        let empty = CrossMatchQuery::new(QueryId(7), vec![], Predicate::All);
        let timed = Trace::new(LEVEL, vec![empty]).with_arrivals(uniform_arrivals(1.0, 1));
        let map = ShardMap::contiguous(cat.partition().num_buckets(), 4);
        let routing = route(cat.partition(), &map, &timed);
        assert_eq!(routing.fragments_of, vec![1]);
        assert_eq!(routing.shards[0].len(), 1);
        let f = &routing.shards[0][0];
        assert!(f.items.is_empty());
        assert_eq!(f.assignments, 0);
        assert!(routing.shards[1..].iter().all(|s| s.is_empty()));
    }

    #[test]
    fn multi_shard_routing_splits_wide_queries() {
        let (cat, timed) = fixture();
        let map = ShardMap::hashed(cat.partition().num_buckets(), 4, 1);
        let routing = route(cat.partition(), &map, &timed);
        // The fixture's queries span several buckets; under hashing some
        // must split across shards.
        assert!(routing.cross_shard_queries > 0);
        assert!(routing.total_fragments() > timed.len());
    }
}
