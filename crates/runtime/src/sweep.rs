//! The deterministic parallel sweep driver.
//!
//! Parameter sweeps (figures, calibration, capacity planning) are
//! embarrassingly parallel across *runs*: every run is a pure function of
//! its configuration and seed, so the only thing a thread pool may change
//! is wall-clock time. [`parallel_map`] enforces that contract — results
//! come back in input order whatever the thread count — and the typed
//! sweeps ([`alpha_sweep`], [`cache_sweep`], [`shard_sweep`], [`seed_sweep`])
//! are thin, composable wrappers over it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use liferaft_catalog::Catalog;
use liferaft_core::{AgingMode, LifeRaftScheduler, MetricParams, Scheduler};
use liferaft_sim::{RunReport, SimConfig, Simulation};
use liferaft_storage::SimDuration;
use liferaft_workload::TimedTrace;

use crate::config::{ExecMode, RuntimeConfig};
use crate::runtime::{RuntimeReport, ShardedRuntime};

/// Applies `f` to every item on up to `threads` worker threads, returning
/// results **in input order** regardless of thread count or completion
/// order. `f` receives `(index, item)`; with a pure `f` the output is a
/// pure function of the input — the sweep determinism contract.
///
/// `threads == 1` degenerates to a serial map on the calling thread (no
/// spawn), which is the reference the parallel path must match.
pub fn parallel_map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, f(i, &items[i])))
                    .expect("the driver outlives its workers");
            });
        }
    });
    drop(tx);
    collect_indexed(rx, n)
}

/// Drains an `(index, value)` channel into a dense, index-ordered vector —
/// the re-ordering tail shared by [`parallel_map`] and the threaded shard
/// executor. All senders must be dropped before calling (the drain runs to
/// channel disconnect).
///
/// # Panics
/// Panics if any of the `n` indices never arrives (a worker died without
/// reporting).
pub(crate) fn collect_indexed<T>(rx: mpsc::Receiver<(usize, T)>, n: usize) -> Vec<T> {
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, out) in rx {
        debug_assert!(slots[i].is_none(), "job {i} completed twice");
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("job {i} never completed")))
        .collect()
}

/// One sweep sample: a human label, the swept coordinate, and the run.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Row label (e.g. `α=0.50`, `cache=128`, `shards=4`).
    pub label: String,
    /// The swept coordinate as a number (for plotting).
    pub x: f64,
    /// The run's report (for sharded sweeps, the runtime's global summary).
    pub report: RunReport,
    /// The full runtime report for sharded sweeps — per-shard runs,
    /// decision logs, and the flight-recorder report when telemetry is on.
    /// `None` for single-engine sweeps ([`alpha_sweep`], [`cache_sweep`]).
    pub runtime: Option<RuntimeReport>,
}

impl SweepPoint {
    /// A single-engine sample (no runtime detail to keep).
    fn single(label: String, x: f64, report: RunReport) -> Self {
        SweepPoint {
            label,
            x,
            report,
            runtime: None,
        }
    }

    /// A sharded sample: keeps the whole runtime report, with `report` its
    /// global summary.
    fn sharded(label: String, x: f64, runtime: RuntimeReport) -> Self {
        SweepPoint {
            label,
            x,
            report: runtime.global.clone(),
            runtime: Some(runtime),
        }
    }

    /// p90 response time in seconds — the sweep's headline latency figure.
    pub fn p90_response_s(&self) -> f64 {
        self.report.response.percentile(90.0)
    }

    /// Completed-query throughput in queries/second.
    pub fn throughput_qps(&self) -> f64 {
        self.report.throughput_qps
    }

    /// `(frontier, fallback)` decision-path counters of the run.
    pub fn decision_split(&self) -> (u64, u64) {
        (self.report.frontier_picks, self.report.fallback_picks)
    }

    /// The point's flight-recorder report, when the swept run recorded one
    /// (sharded sweep + telemetry enabled in the base config).
    pub fn telemetry(&self) -> Option<&liferaft_telemetry::TelemetryReport> {
        self.runtime.as_ref().and_then(|r| r.telemetry.as_ref())
    }
}

/// Sweeps the age bias α across `alphas`, one `Simulation::run` per point
/// (the Figure 7/8 x-axis), fanned across `threads`.
pub fn alpha_sweep<C: Catalog + Sync + ?Sized>(
    catalog: &C,
    trace: &TimedTrace,
    config: SimConfig,
    params: MetricParams,
    alphas: &[f64],
    threads: usize,
) -> Vec<SweepPoint> {
    parallel_map(alphas, threads, |_, &alpha| {
        let mut s = LifeRaftScheduler::new(params, AgingMode::Normalized, alpha);
        let report = Simulation::new(catalog, config).run(trace, &mut s);
        SweepPoint::single(format!("α={alpha:.2}"), alpha, report)
    })
}

/// Sweeps the bucket-cache capacity across `sizes` under the greedy policy
/// (the cache-scaling experiment), fanned across `threads`.
pub fn cache_sweep<C: Catalog + Sync + ?Sized>(
    catalog: &C,
    trace: &TimedTrace,
    config: SimConfig,
    params: MetricParams,
    sizes: &[usize],
    threads: usize,
) -> Vec<SweepPoint> {
    parallel_map(sizes, threads, |_, &cache_buckets| {
        let mut config = config;
        config.cache_buckets = cache_buckets;
        let mut s = LifeRaftScheduler::greedy(params);
        let report = Simulation::new(catalog, config).run(trace, &mut s);
        SweepPoint::single(
            format!("cache={cache_buckets}"),
            cache_buckets as f64,
            report,
        )
    })
}

/// Sweeps the shard count across `counts`, one [`ShardedRuntime`] run per
/// point; each point's report is the runtime's global summary. The
/// per-point scheduler factory must be `Sync` (points run concurrently).
pub fn shard_sweep<C, F>(
    catalog: &C,
    trace: &TimedTrace,
    base: RuntimeConfig,
    counts: &[u32],
    mode: ExecMode,
    threads: usize,
    mk_scheduler: F,
) -> Vec<SweepPoint>
where
    C: Catalog + Sync + ?Sized,
    F: Fn(usize) -> Box<dyn Scheduler + Send> + Sync,
{
    parallel_map(counts, threads, |_, &n_shards| {
        let mut config = base.clone();
        config.n_shards = n_shards;
        let runtime = ShardedRuntime::new(catalog, config);
        let report = runtime.run(trace, &mut |i| mk_scheduler(i), mode);
        SweepPoint::sharded(format!("shards={n_shards}"), n_shards as f64, report)
    })
}

/// Sweeps the rebalance axis: one [`ShardedRuntime`] run per epoch length
/// in `epochs` (`None` = rebalancing off, the static baseline), holding
/// everything else in `base` fixed. Non-epoch rebalance knobs come from
/// `base.rebalance`, so callers can pre-tune the policy and sweep only the
/// cadence.
pub fn rebalance_sweep<C, F>(
    catalog: &C,
    trace: &TimedTrace,
    base: RuntimeConfig,
    epochs: &[Option<SimDuration>],
    mode: ExecMode,
    threads: usize,
    mk_scheduler: F,
) -> Vec<SweepPoint>
where
    C: Catalog + Sync + ?Sized,
    F: Fn(usize) -> Box<dyn Scheduler + Send> + Sync,
{
    parallel_map(epochs, threads, |_, &epoch| {
        let mut config = base.clone();
        match epoch {
            None => config.rebalance.enabled = false,
            Some(e) => {
                config.rebalance.enabled = true;
                config.rebalance.epoch = e;
            }
        }
        let runtime = ShardedRuntime::new(catalog, config);
        let report = runtime.run(trace, &mut |i| mk_scheduler(i), mode);
        let (label, x) = match epoch {
            None => ("epoch=off".to_string(), 0.0),
            Some(e) => (format!("epoch={}s", e.as_secs_f64()), e.as_secs_f64()),
        };
        SweepPoint::sharded(label, x, report)
    })
}

/// Fans replicated runs with per-run seeds across `threads`: `f(seed)`
/// builds and executes one replication (generate a trace from the seed, run
/// it, reduce). Output order matches `seeds` order whatever the thread
/// count.
pub fn seed_sweep<O: Send>(seeds: &[u64], threads: usize, f: impl Fn(u64) -> O + Sync) -> Vec<O> {
    parallel_map(seeds, threads, |_, &seed| f(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, threads, |i, &x| {
                assert_eq!(items[i], x);
                x * x + 1
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[9u32], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn seed_sweep_is_ordered() {
        let seeds = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let got = seed_sweep(&seeds, 4, |s| s.wrapping_mul(0x9E37_79B9));
        let expect: Vec<u64> = seeds.iter().map(|s| s.wrapping_mul(0x9E37_79B9)).collect();
        assert_eq!(got, expect);
    }
}
