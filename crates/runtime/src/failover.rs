//! Shard crash & failover: the outage decision log and its reports.
//!
//! [`crate::config::FaultPlan`] can declare full shard **outages**
//! ([`liferaft_sim::ShardOutage`] windows) on top of slowdown stalls. A dead
//! shard executes nothing and accepts nothing for the whole window; with
//! [`FailoverConfig::enabled`] the runtime reacts:
//!
//! - **Evacuation** — at the outage boundary the planner rips every
//!   non-empty bucket out of the dead shard (queue state at preserved
//!   arrival ages, cache residency snapshot) and re-homes each on the
//!   least-loaded survivor, charging the evacuation cost to the
//!   destination's clock. The dead shard's cache is lost either way — a
//!   crash wipes residency — but `warm_residency` lets destinations warm
//!   the adopted buckets from the snapshot.
//! - **Re-delivery** — a fragment *released* while its target shard is down
//!   is lost in flight. After `redelivery_timeout` of virtual time the
//!   router re-delivers the whole fragment to the least-loaded live shard
//!   (MapReduce-style re-execution); if no shard is live the attempt fails
//!   and backs off exponentially (`retry_backoff × 2^(attempt−1)`), up to
//!   `max_redeliveries` attempts before the query is **rejected** — a
//!   terminal outcome, so every query still ends exactly once and
//!   `completed + rejected == submitted` holds per class.
//! - **Rejoin** — at `up_at` the shard returns to the pool empty and cold;
//!   the elastic rebalancer may hand buckets back at later epoch
//!   boundaries.
//!
//! Every decision is made once, in the deterministic stepped merge, and
//! recorded into a [`FailoverLog`] the threaded executor replays verbatim —
//! the same plan/replay contract the `RebalanceLog` and `AdmissionLog`
//! already satisfy, which is what keeps stepped and threaded runs
//! bit-identical under injected crashes.

use liferaft_storage::{BucketId, SimDuration, SimTime};

use crate::admission::QueryClass;
use crate::retry::RetryPolicy;

/// Crash-recovery policy: what the runtime does when a [`FaultPlan`]
/// outage window begins.
///
/// [`FaultPlan`]: crate::config::FaultPlan
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverConfig {
    /// Master switch. Disabled (the default), an injected outage still
    /// freezes its shard — but nothing is evacuated or re-delivered, so the
    /// dead shard's work strands until the shard rejoins.
    pub enabled: bool,
    /// Warm evacuated buckets into the destination cache when they were
    /// resident at the source (the crashed cache itself is always lost).
    pub warm_residency: bool,
    /// Fixed virtual-time cost charged to the *destination* shard per
    /// evacuated bucket (control-plane handshake, residency handoff).
    pub evacuation_fixed: SimDuration,
    /// Additional destination cost per evacuated (object × bucket) entry.
    pub evacuation_per_entry: SimDuration,
    /// Virtual time after a lost fragment's release before its first
    /// re-delivery attempt (the failure-detection timeout).
    pub redelivery_timeout: SimDuration,
    /// Base backoff between re-delivery attempts; attempt `k + 1` fires
    /// `retry_backoff × 2^(k−1)` after attempt `k` fails.
    pub retry_backoff: SimDuration,
    /// Attempts before a lost fragment's query is rejected outright.
    pub max_redeliveries: u32,
}

impl FailoverConfig {
    /// Failover off — outages freeze shards but nothing recovers (and the
    /// `Default`).
    pub fn disabled() -> Self {
        FailoverConfig {
            enabled: false,
            warm_residency: true,
            evacuation_fixed: SimDuration::from_millis(20),
            evacuation_per_entry: SimDuration::from_micros(50),
            redelivery_timeout: SimDuration::from_secs(2),
            retry_backoff: SimDuration::from_secs(1),
            max_redeliveries: 5,
        }
    }

    /// Failover on with the default recovery knobs (2 s detection timeout,
    /// 1 s base backoff, 5 attempts, warm handoff).
    pub fn recovery() -> Self {
        FailoverConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// The re-delivery schedule as a [`RetryPolicy`]: detection at
    /// `redelivery_timeout`, escalation by `retry_backoff × 2^(k−1)`,
    /// budget `max_redeliveries`. The failover planner derives every
    /// attempt deadline from this shared policy (the same machinery the
    /// transport retransmitter uses).
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy::new(
            self.redelivery_timeout,
            self.retry_backoff,
            self.max_redeliveries,
        )
    }

    /// Validates invariants.
    pub fn validate(&self) {
        if self.enabled {
            assert!(
                self.redelivery_timeout > SimDuration::ZERO,
                "a zero redelivery timeout would re-deliver at the loss instant"
            );
            assert!(
                self.retry_backoff > SimDuration::ZERO,
                "a zero retry backoff would spin failed attempts at one instant"
            );
            assert!(
                self.max_redeliveries >= 1,
                "enabled failover must attempt at least one redelivery"
            );
        }
    }
}

impl Default for FailoverConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// One shard leaving or rejoining the pool (an outage window edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTransition {
    /// The shard.
    pub shard: u32,
    /// The boundary's virtual time (`down_at` or `up_at`).
    pub at: SimTime,
    /// `false` at `down_at`, `true` at `up_at`.
    pub up: bool,
    /// The shard's queued-entry backlog at the boundary — the backlog
    /// stranded by a crash (before evacuation), or left over at rejoin.
    pub queued: u64,
}

/// One bucket evacuated off a crashed shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evacuation {
    /// The outage boundary (`down_at`) this evacuation belongs to — the
    /// instant the threaded replay synchronizes the pool at.
    pub boundary: SimTime,
    /// The extract/absorb instant: the boundary, or the dead shard's clock
    /// when its final batch overran it (batches are atomic).
    pub at: SimTime,
    /// The evacuated bucket.
    pub bucket: BucketId,
    /// The crashed source shard.
    pub from: u32,
    /// The surviving destination shard (least loaded at the boundary).
    pub to: u32,
    /// Queued (object × bucket) entries that moved with the bucket.
    pub entries: u64,
    /// Whether the bucket was cache-resident at the source (destinations
    /// may warm it — the crashed cache itself is lost).
    pub was_resident: bool,
}

/// One re-delivery attempt for a fragment lost to a dead shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redelivery {
    /// The attempt's virtual time.
    pub at: SimTime,
    /// Global planning-order sequence number (unique per attempt; attempts
    /// replay in `(at, seq)` order).
    pub seq: u64,
    /// Trace index of the query whose fragment was lost.
    pub query_index: usize,
    /// The dead shard the fragment was originally routed to.
    pub from: u32,
    /// 1-based attempt number within this fragment's retry chain.
    pub attempt: u32,
    /// The live shard the fragment was re-delivered to, or `None` when the
    /// attempt failed because no shard was up.
    pub to: Option<u32>,
}

/// The failover decision log of one run: everything the stepped planner
/// decided, in planning order — the threaded executor replays it verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailoverLog {
    /// Outage window edges, in time order (downs before ups on ties).
    pub transitions: Vec<ShardTransition>,
    /// Bucket evacuations, grouped by boundary in bucket order.
    pub evacuations: Vec<Evacuation>,
    /// Re-delivery attempts, in `(at, seq)` order.
    pub redeliveries: Vec<Redelivery>,
}

impl FailoverLog {
    /// Total entries that moved in evacuations.
    pub fn evacuated_entries(&self) -> u64 {
        self.evacuations.iter().map(|e| e.entries).sum()
    }

    /// Re-delivery attempts that landed on a live shard.
    pub fn delivered_redeliveries(&self) -> usize {
        self.redeliveries.iter().filter(|r| r.to.is_some()).count()
    }

    /// The queries this log rejected (final attempt failed with no live
    /// shard), derivable from the log alone so stepped and threaded runs
    /// reconstruct identical rejection records. `assignments_of` and
    /// `arrivals` index by trace position.
    pub(crate) fn rejected_queries(
        &self,
        max_redeliveries: u32,
        arrivals: &[SimTime],
        assignments_of: &[u64],
    ) -> Vec<FailedQuery> {
        self.redeliveries
            .iter()
            .filter(|r| r.to.is_none() && r.attempt >= max_redeliveries)
            .map(|r| FailedQuery {
                index: r.query_index,
                arrival: arrivals[r.query_index],
                rejected_at: r.at,
                attempts: r.attempt,
                assignments: assignments_of[r.query_index],
            })
            .collect()
    }
}

/// A query rejected by the failover path: its lost fragment exhausted every
/// re-delivery attempt with no live shard to land on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailedQuery {
    /// Trace index of the query.
    pub index: usize,
    /// Its arrival instant.
    pub arrival: SimTime,
    /// When the final attempt gave up.
    pub rejected_at: SimTime,
    /// Re-delivery attempts spent.
    pub attempts: u32,
    /// The query's routed (object × bucket) assignments.
    pub assignments: u64,
}

/// Per-class terminal-outcome conservation under failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassConservation {
    /// The class (by routed workload size, front-door thresholds).
    pub class: QueryClass,
    /// Queries of this class in the trace.
    pub submitted: u64,
    /// Queries that completed (all assignments serviced somewhere).
    pub completed: u64,
    /// Queries rejected by exhausted re-delivery.
    pub rejected: u64,
}

/// What the failover path did and how the run ended: the replayable
/// decision log, the rejected remainder, per-class conservation, and the
/// recovery-lag headline.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverReport {
    /// The decision log the threaded executor replays.
    pub log: FailoverLog,
    /// Queries rejected by exhausted re-delivery, in rejection order.
    /// `global.outcomes.len() + rejected.len()` equals the trace length —
    /// accounting is conserved.
    pub rejected: Vec<FailedQuery>,
    /// Terminal-outcome conservation per class
    /// (`completed + rejected == submitted`, asserted at build time).
    pub per_class: [ClassConservation; 3],
    /// Gap between the last evacuation and the first batch a destination
    /// shard completed after it — how long the pool took to resume service
    /// on adopted work (`None` when nothing was evacuated).
    pub recovery_lag: Option<SimDuration>,
}

impl FailoverReport {
    /// Total queries rejected by failover.
    pub fn total_rejected(&self) -> usize {
        self.rejected.len()
    }

    /// Recovery lag in seconds (0 when nothing was evacuated).
    pub fn recovery_lag_s(&self) -> f64 {
        self.recovery_lag.map_or(0.0, |d| d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_recovery_enables() {
        assert!(!FailoverConfig::default().enabled);
        FailoverConfig::default().validate();
        let fo = FailoverConfig::recovery();
        assert!(fo.enabled);
        fo.validate();
    }

    #[test]
    #[should_panic(expected = "zero redelivery timeout")]
    fn zero_timeout_rejected() {
        let mut fo = FailoverConfig::recovery();
        fo.redelivery_timeout = SimDuration::ZERO;
        fo.validate();
    }

    #[test]
    #[should_panic(expected = "at least one redelivery")]
    fn zero_attempts_rejected() {
        let mut fo = FailoverConfig::recovery();
        fo.max_redeliveries = 0;
        fo.validate();
    }

    #[test]
    fn log_counters_and_rejection_derivation() {
        let t = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
        let log = FailoverLog {
            transitions: vec![],
            evacuations: vec![Evacuation {
                boundary: t(1),
                at: t(1),
                bucket: BucketId(3),
                from: 0,
                to: 1,
                entries: 40,
                was_resident: true,
            }],
            redeliveries: vec![
                Redelivery {
                    at: t(3),
                    seq: 0,
                    query_index: 2,
                    from: 0,
                    attempt: 1,
                    to: None,
                },
                Redelivery {
                    at: t(4),
                    seq: 1,
                    query_index: 2,
                    from: 0,
                    attempt: 2,
                    to: None,
                },
                Redelivery {
                    at: t(5),
                    seq: 2,
                    query_index: 4,
                    from: 0,
                    attempt: 1,
                    to: Some(1),
                },
            ],
        };
        assert_eq!(log.evacuated_entries(), 40);
        assert_eq!(log.delivered_redeliveries(), 1);
        let arrivals = vec![t(0); 5];
        let assignments = vec![10u64; 5];
        // With a 2-attempt budget, query 2's second failed attempt rejects.
        let rejected = log.rejected_queries(2, &arrivals, &assignments);
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].index, 2);
        assert_eq!(rejected[0].attempts, 2);
        assert_eq!(rejected[0].rejected_at, t(4));
        // A roomier budget rejects nothing: the chain would have retried.
        assert!(log.rejected_queries(3, &arrivals, &assignments).is_empty());
    }
}
