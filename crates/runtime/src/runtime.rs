//! The sharded serving runtime: route → execute (stepped or threaded) →
//! aggregate.
//!
//! # Determinism contract
//!
//! Both execution modes produce **bit-identical** [`RuntimeReport`]s for
//! the same (catalog, config, trace, scheduler factory):
//!
//! - Routing is a pure function of the shard map and the trace.
//! - Each shard's behaviour is a pure function of its own fragment stream
//!   (admission is shard-local), so workers never observe each other and
//!   any stepping order yields the same per-shard results.
//! - Aggregation merges per-shard completion streams in the canonical
//!   `(completion time, shard id, shard event order)` order, which is
//!   independent of how the shards were driven.
//!
//! The stepped mode is the reference: a single-threaded virtual-time merge
//! of the shard event queues (earliest next event first, ties by shard id),
//! pinnable by golden tests and steppable under a debugger. The threaded
//! mode runs one `std::thread` worker per shard and collects results over
//! an `mpsc` channel.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{mpsc, Barrier};

use liferaft_catalog::Catalog;
use liferaft_core::Scheduler;
use liferaft_metrics::Summary;
use liferaft_query::{tracker::QueryOutcome, QueryId, QueryPreProcessor, WorkItem};
use liferaft_sim::{LinkDirection, MigratedBucket, RunReport};
use liferaft_storage::{cache::CacheStats, IoStats, SimDuration, SimTime};
use liferaft_telemetry::{Event, EventKind, TelemetryReport, ROUTER_SHARD};
use liferaft_workload::TimedTrace;

use crate::admission::{
    AdmissionLog, ClassStats, Disposition, FrontDoor, FrontDoorConfig, FrontDoorReport, QueryClass,
    RejectedQuery,
};
use crate::config::{ExecMode, RuntimeConfig};
use crate::failover::{
    ClassConservation, Evacuation, FailedQuery, FailoverLog, FailoverReport, Redelivery,
    ShardTransition,
};
use crate::rebalance::{plan_moves, EpochRecord, RebalanceLog};
use crate::router::{
    route, route_admitted, route_elastic, route_failover, split_failover_arrival, split_query,
    Fragment,
};
use crate::shard::{ElasticShardMap, ShardId, ShardMap};
use crate::transport::{plan_delivery, plan_hedges, resolve_hedges, TransportLog, TransportReport};
use crate::worker::{ShardRun, ShardWorker};

/// The outcome of one sharded runtime execution.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// The query-level global summary, shaped exactly like a single-engine
    /// [`RunReport`]: counters are summed across shards, response statistics
    /// are computed over whole-query completions (a cross-shard query
    /// completes when its last fragment finishes), and `outcomes` are in the
    /// canonical merged completion order.
    pub global: RunReport,
    /// Per-shard runs, in shard order.
    pub shards: Vec<ShardRun>,
    /// Queries that split across more than one shard.
    pub cross_shard_queries: usize,
    /// Total fragments routed.
    pub total_fragments: usize,
    /// The epoch-indexed rebalance decision log (`None` when rebalancing is
    /// disabled). Not part of the fingerprinted surface — it records *why*
    /// the run evolved, not *what* it produced.
    pub rebalance: Option<RebalanceLog>,
    /// The front door's decision log, rejected queries, and per-class
    /// statistics (`None` when the front door is disabled). With the front
    /// door on, `global.outcomes` covers only *completed* queries; the
    /// rejected remainder lives here, so
    /// `global.outcomes.len() + front_door.rejected.len()` always equals
    /// the trace length — accounting is conserved.
    pub front_door: Option<FrontDoorReport>,
    /// The failover decision log, rejected queries, per-class conservation,
    /// and recovery-lag headline (`None` when no outages were injected and
    /// failover is disabled). With failover on, a query whose lost fragment
    /// exhausted re-delivery is terminally *rejected*:
    /// `global.outcomes.len() + failover.rejected.len()` equals the trace
    /// length — accounting is conserved.
    pub failover: Option<FailoverReport>,
    /// The transport decision log, rejected queries, per-class conservation,
    /// and hedge race outcome (`None` when the transport controller is
    /// disabled). With transport on, a query whose fragment exhausted its
    /// retransmission budget undelivered is terminally *rejected*:
    /// `global.outcomes.len() + transport.rejected.len()` equals the trace
    /// length — accounting is conserved.
    pub transport: Option<TransportReport>,
    /// The flight-recorder report (`None` when telemetry is off): per-shard
    /// time series plus the canonical merged event stream, exportable as
    /// JSONL or a Chrome/Perfetto trace. Like the decision logs, not part of
    /// the fingerprinted surface — recording never perturbs the run.
    pub telemetry: Option<TelemetryReport>,
}

impl RuntimeReport {
    /// Virtual-time load imbalance across shards: max over mean per-shard
    /// busy makespan (1.0 = perfectly balanced; 0 if no shard did work).
    pub fn shard_imbalance(&self) -> f64 {
        let spans: Vec<f64> = self.shards.iter().map(|s| s.report.makespan_s).collect();
        let max = spans.iter().copied().fold(0.0, f64::max);
        let mean = spans.iter().sum::<f64>() / spans.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            0.0
        }
    }
}

/// A sharded serving runtime over one catalog.
///
/// Reentrant like [`liferaft_sim::Simulation`]: every `run` replays a trace
/// from scratch with fresh per-shard state.
#[derive(Debug, Clone)]
pub struct ShardedRuntime<'a, C: Catalog + Sync + ?Sized> {
    catalog: &'a C,
    config: RuntimeConfig,
    map: ShardMap,
}

impl<'a, C: Catalog + Sync + ?Sized> ShardedRuntime<'a, C> {
    /// Creates a runtime over `catalog` with the given configuration.
    pub fn new(catalog: &'a C, config: RuntimeConfig) -> Self {
        config.validate();
        let map = ShardMap::new(
            catalog.partition().num_buckets(),
            config.n_shards,
            config.assignment,
        );
        ShardedRuntime {
            catalog,
            config,
            map,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The bucket → shard map in force.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Replays `trace`, scheduling shard `i` with `mk_scheduler(i)`.
    ///
    /// With [`RebalanceConfig::enabled`](crate::config::RebalanceConfig)
    /// the elastic path runs instead: a deterministic stepped planning pass
    /// computes the epoch decision log, and — in threaded mode — a parallel
    /// replay executes it verbatim (so the factory is invoked once per
    /// shard per pass; it must keep returning equivalent schedulers).
    ///
    /// # Panics
    /// Panics if any shard's scheduler violates its contract, or if the run
    /// ends with incomplete queries — both are bugs that must fail loudly.
    pub fn run(
        &self,
        trace: &TimedTrace,
        mk_scheduler: &mut dyn FnMut(usize) -> Box<dyn Scheduler + Send>,
        mode: ExecMode,
    ) -> RuntimeReport {
        if self.config.transport.enabled {
            return self.run_transport(trace, mk_scheduler, mode);
        }
        if self.config.failover.enabled || !self.config.faults.outages.is_empty() {
            let (fo_log, rb_log, stepped) = self.plan_failover(trace, mk_scheduler);
            return match mode {
                ExecMode::Stepped => stepped,
                ExecMode::Threaded => self.replay_failover(trace, mk_scheduler, fo_log, rb_log),
            };
        }
        if self.config.rebalance.enabled {
            let (log, stepped) = self.plan_elastic(trace, mk_scheduler);
            return match mode {
                ExecMode::Stepped => stepped,
                ExecMode::Threaded => self.replay_elastic(trace, mk_scheduler, log),
            };
        }
        if self.config.front_door.enabled {
            let (log, stepped) = self.plan_front_door(trace, mk_scheduler);
            return match mode {
                ExecMode::Stepped => stepped,
                ExecMode::Threaded => self.replay_front_door(trace, mk_scheduler, log),
            };
        }
        let routing = route(self.catalog.partition(), &self.map, trace);
        let total_fragments = routing.total_fragments();
        let assignments_of = routing.assignments_of;
        let cross_shard_queries = routing.cross_shard_queries;

        let workers: Vec<ShardWorker<'_, C>> = routing
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, fragments)| {
                ShardWorker::new(
                    ShardId(i as u32),
                    self.catalog,
                    self.config.sim,
                    self.config.admission,
                    self.config.faults.for_shard(i as u32),
                    self.config.faults.outages_for_shard(i as u32),
                    trace.entries(),
                    fragments,
                    mk_scheduler(i),
                    self.config.telemetry.make_sink(),
                )
            })
            .collect();

        let shard_runs = match mode {
            ExecMode::Stepped => run_stepped(workers),
            ExecMode::Threaded => run_threaded(workers),
        };

        let (global, _) = aggregate(trace, &assignments_of, &shard_runs, None, None, None);
        let telemetry = self.build_telemetry(trace, &shard_runs, None, None, None, None);
        RuntimeReport {
            global,
            shards: shard_runs,
            cross_shard_queries,
            total_fragments,
            rebalance: None,
            front_door: None,
            failover: None,
            transport: None,
            telemetry,
        }
    }

    /// The transport path: route normally, resolve every fragment's
    /// retransmit chain against the link-fault windows *up-front*
    /// ([`plan_delivery`] — a pure function of the routing, the windows, and
    /// the seed), then execute the adjusted routing in the requested mode.
    /// Because the whole delivery schedule (effective delivery instants,
    /// terminal rejections, hedge copies) is fixed before any shard runs,
    /// stepped and threaded execution consume identical fragment streams and
    /// stay bit-identical under arbitrary loss.
    ///
    /// With hedging enabled a *reference pass* (stepped, no hedges) runs
    /// first to observe per-class response distributions and per-shard load;
    /// [`plan_hedges`] derives the hedge plan from it, the hedge copies join
    /// the routing, and the final pass races each copy against its original —
    /// the first completion in the canonical merge order wins, the loser is
    /// suppressed from aggregation exactly like a network duplicate. The
    /// scheduler factory is therefore invoked once per shard per pass, like
    /// the other plan/replay paths; it must keep returning equivalent
    /// schedulers.
    fn run_transport(
        &self,
        trace: &TimedTrace,
        mk_scheduler: &mut dyn FnMut(usize) -> Box<dyn Scheduler + Send>,
        mode: ExecMode,
    ) -> RuntimeReport {
        let tp = self.config.transport;
        let entries = trace.entries();
        let mut routing = route(self.catalog.partition(), &self.map, trace);
        let cross_shard_queries = routing.cross_shard_queries;
        let mut plan = plan_delivery(&tp, &self.config.faults, &mut routing, entries.len());

        let index_of: HashMap<QueryId, usize> = entries
            .iter()
            .enumerate()
            .map(|(i, (_, q))| (q.id, i))
            .collect();

        if tp.hedge.enabled {
            let reference_workers: Vec<ShardWorker<'_, C>> = routing
                .shards
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, fragments)| {
                    ShardWorker::new(
                        ShardId(i as u32),
                        self.catalog,
                        self.config.sim,
                        self.config.admission,
                        self.config.faults.for_shard(i as u32),
                        self.config.faults.outages_for_shard(i as u32),
                        entries,
                        fragments,
                        mk_scheduler(i),
                        self.config.telemetry.make_sink(),
                    )
                })
                .collect();
            let reference = run_stepped(reference_workers);
            let classes = FrontDoorConfig::disabled();
            let class_of: Vec<QueryClass> = routing
                .assignments_of
                .iter()
                .map(|&a| classes.classify(a))
                .collect();
            let hedges = plan_hedges(
                &tp.hedge,
                &self.config.faults,
                &routing,
                &class_of,
                &plan.rejected_mask,
                &reference,
                &index_of,
            );
            for h in &hedges {
                let original = routing.shards[h.from as usize]
                    .iter()
                    .find(|f| f.query_index == h.query_index)
                    .expect("a hedged fragment is still routed")
                    .clone();
                routing.fragments_of[h.query_index] += 1;
                let stream = &mut routing.shards[h.to as usize];
                stream.push(Fragment {
                    release: h.delivered_at,
                    ..original
                });
                stream.sort_by_key(|f| f.release);
            }
            plan.log.hedges = hedges;
        }

        let total_fragments = routing.total_fragments();
        let assignments_of = routing.assignments_of;
        let workers: Vec<ShardWorker<'_, C>> = routing
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, fragments)| {
                ShardWorker::new(
                    ShardId(i as u32),
                    self.catalog,
                    self.config.sim,
                    self.config.admission,
                    self.config.faults.for_shard(i as u32),
                    self.config.faults.outages_for_shard(i as u32),
                    entries,
                    fragments,
                    mk_scheduler(i),
                    self.config.telemetry.make_sink(),
                )
            })
            .collect();
        let shard_runs = match mode {
            ExecMode::Stepped => run_stepped(workers),
            ExecMode::Threaded => run_threaded(workers),
        };

        let (hedge_wins, hedge_losses, skip) =
            resolve_hedges(&plan.log.hedges, &shard_runs, &index_of);
        let rejected: Vec<FailedQuery> = plan
            .rejected_mask
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(i, _)| FailedQuery {
                index: i,
                arrival: entries[i].0,
                rejected_at: plan.rejected_at[i],
                attempts: plan.attempts_of[i],
                assignments: assignments_of[i],
            })
            .collect();
        let (global, _) = aggregate(
            trace,
            &assignments_of,
            &shard_runs,
            None,
            Some(&plan.rejected_mask),
            Some(&skip),
        );
        let transport = build_transport_report(
            &plan.log,
            trace,
            &assignments_of,
            rejected,
            &global,
            hedge_wins,
            hedge_losses,
        );
        let telemetry = self.build_telemetry(trace, &shard_runs, None, None, None, Some(&plan.log));
        RuntimeReport {
            global,
            shards: shard_runs,
            cross_shard_queries,
            total_fragments,
            rebalance: None,
            front_door: None,
            failover: None,
            transport: Some(transport),
            telemetry,
        }
    }

    /// The elastic reference pass: a stepped virtual-time merge with a
    /// rebalance controller firing at every epoch boundary. Returns the
    /// decision log alongside the finished report.
    ///
    /// Between boundaries this is exactly [`run_stepped`]: the worker with
    /// the earliest next event advances one event — but only while that
    /// event is strictly before the next boundary `T`. When every live
    /// event sits at or beyond `T`, the controller samples per-shard load,
    /// plans migrations ([`plan_moves`]), applies them (extract at the
    /// sources, absorb at the destinations in bucket order, costs charged
    /// to destination clocks), records the epoch, and routes the next
    /// arrival window `[T, T + epoch)` under the updated map.
    fn plan_elastic(
        &self,
        trace: &TimedTrace,
        mk_scheduler: &mut dyn FnMut(usize) -> Box<dyn Scheduler + Send>,
    ) -> (RebalanceLog, RuntimeReport) {
        let rb = self.config.rebalance;
        let entries = trace.entries();
        let partition = self.catalog.partition();
        let pre = QueryPreProcessor::new(partition);
        let n = self.config.n_shards as usize;

        let mut workers: Vec<ShardWorker<'_, C>> = (0..n)
            .map(|i| {
                ShardWorker::new(
                    ShardId(i as u32),
                    self.catalog,
                    self.config.sim,
                    self.config.admission,
                    self.config.faults.for_shard(i as u32),
                    self.config.faults.outages_for_shard(i as u32),
                    entries,
                    Vec::new(),
                    mk_scheduler(i),
                    self.config.telemetry.make_sink(),
                )
            })
            .collect();

        let mut elastic = ElasticShardMap::new(self.map);
        let mut assignments_of = vec![0u64; entries.len()];
        let mut cross_shard_queries = 0usize;
        let mut total_fragments = 0usize;
        let mut split: Vec<Vec<WorkItem>> = vec![Vec::new(); n];
        let mut window: Vec<Vec<Fragment>> = vec![Vec::new(); n];
        let mut cursor = 0usize; // next unrouted trace entry
        let mut fired = 0u32;
        let mut records: Vec<EpochRecord> = Vec::new();

        // Routes arrivals strictly before `bound` under the current map and
        // hands the resulting window to the workers.
        let mut route_until = |bound: SimTime,
                               cursor: &mut usize,
                               elastic: &ElasticShardMap,
                               workers: &mut Vec<ShardWorker<'_, C>>,
                               assignments_of: &mut Vec<u64>,
                               cross_shard_queries: &mut usize,
                               total_fragments: &mut usize| {
            while let Some((arrival, query)) = entries.get(*cursor) {
                if *arrival >= bound {
                    break;
                }
                let (fragments, assignments) = split_query(
                    &pre,
                    *cursor,
                    *arrival,
                    *arrival,
                    QueryClass::Standard,
                    query,
                    &mut |b| elastic.shard_of(b),
                    &mut split,
                    &mut window,
                );
                if fragments > 1 {
                    *cross_shard_queries += 1;
                }
                assignments_of[*cursor] = assignments;
                *total_fragments += fragments as usize;
                *cursor += 1;
            }
            for (w, frags) in workers.iter_mut().zip(window.iter_mut()) {
                if !frags.is_empty() {
                    w.append_fragments(std::mem::take(frags));
                }
            }
        };

        // Initial window: [0, T_1).
        route_until(
            SimTime::ZERO + rb.epoch,
            &mut cursor,
            &elastic,
            &mut workers,
            &mut assignments_of,
            &mut cross_shard_queries,
            &mut total_fragments,
        );

        loop {
            let t = SimTime::ZERO + rb.epoch.times(fired as u64 + 1);
            let mut earliest: Option<(SimTime, usize)> = None;
            for (i, w) in workers.iter().enumerate() {
                if let Some(wt) = w.next_time() {
                    // Strict `<` keeps the lowest shard index on time ties.
                    if earliest.map_or(true, |(bt, _)| wt < bt) {
                        earliest = Some((wt, i));
                    }
                }
            }
            match earliest {
                Some((wt, i)) if wt < t => {
                    let advanced = workers[i].step();
                    debug_assert!(advanced, "a shard with a next event must advance");
                    continue;
                }
                None if cursor >= entries.len() => break, // fully drained
                _ => {} // every live event is at/after the boundary: fire it
            }

            fired += 1;
            let loads: Vec<u64> = workers.iter().map(ShardWorker::queued).collect();
            let depths: Vec<Vec<_>> = workers.iter().map(ShardWorker::bucket_depths).collect();
            let moves = plan_moves(&rb, &loads, &depths, &vec![true; n]);

            // Extract every payload first (sources are untouched by other
            // moves' absorptions), then absorb per destination in bucket
            // order — the canonical order the threaded replay reproduces.
            let mut payloads: Vec<(usize, MigratedBucket)> = moves
                .iter()
                .map(|m| {
                    let p = workers[m.from.index()].extract_bucket(m.bucket, t, rb.warm_residency);
                    debug_assert_eq!(p.len() as u64, m.entries, "plan drifted from state");
                    (m.to.index(), p)
                })
                .collect();
            payloads.sort_by_key(|(to, p)| (*to, p.bucket));
            for (to, p) in payloads {
                let cost = rb.migration_fixed + rb.migration_per_entry.times(p.len() as u64);
                workers[to].absorb_payload(p, t, cost, rb.warm_residency);
            }

            records.push(EpochRecord {
                epoch: fired,
                at: t,
                loads,
                serviced: workers.iter().map(ShardWorker::serviced).collect(),
                resident: workers.iter().map(|w| w.resident() as u32).collect(),
                moves: moves.clone(),
            });
            for m in &moves {
                elastic.reassign(m.bucket, m.to);
            }

            // Route the next arrival window under the updated map.
            route_until(
                t + rb.epoch,
                &mut cursor,
                &elastic,
                &mut workers,
                &mut assignments_of,
                &mut cross_shard_queries,
                &mut total_fragments,
            );
        }

        let shard_runs: Vec<ShardRun> = workers.into_iter().map(ShardWorker::into_run).collect();
        let log = RebalanceLog {
            epoch: rb.epoch,
            records,
        };
        let (global, _) = aggregate(trace, &assignments_of, &shard_runs, None, None, None);
        let telemetry = self.build_telemetry(trace, &shard_runs, Some(&log), None, None, None);
        let report = RuntimeReport {
            global,
            shards: shard_runs,
            cross_shard_queries,
            total_fragments,
            rebalance: Some(log.clone()),
            front_door: None,
            failover: None,
            transport: None,
            telemetry,
        };
        (log, report)
    }

    /// The elastic parallel executor: routes the whole trace up-front under
    /// the evolving map ([`route_elastic`]), then runs one thread per shard
    /// that replays the decision log verbatim — a double-barrier handshake
    /// per move-bearing boundary: step to the boundary, barrier, send the
    /// outgoing payloads, barrier, absorb the incoming ones (sorted by
    /// bucket id, the planning pass's canonical order).
    fn replay_elastic(
        &self,
        trace: &TimedTrace,
        mk_scheduler: &mut dyn FnMut(usize) -> Box<dyn Scheduler + Send>,
        log: RebalanceLog,
    ) -> RuntimeReport {
        let rb = self.config.rebalance;
        let routing = route_elastic(self.catalog.partition(), &self.map, &log, trace);
        let total_fragments = routing.total_fragments();
        let assignments_of = routing.assignments_of;
        let cross_shard_queries = routing.cross_shard_queries;
        let n = self.config.n_shards as usize;

        let workers: Vec<ShardWorker<'_, C>> = routing
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, fragments)| {
                ShardWorker::new(
                    ShardId(i as u32),
                    self.catalog,
                    self.config.sim,
                    self.config.admission,
                    self.config.faults.for_shard(i as u32),
                    self.config.faults.outages_for_shard(i as u32),
                    trace.entries(),
                    fragments,
                    mk_scheduler(i),
                    self.config.telemetry.make_sink(),
                )
            })
            .collect();

        // Only boundaries that actually moved buckets synchronize the pool;
        // a move-free boundary is behaviour-neutral by construction.
        let sync_records: Vec<&EpochRecord> =
            log.records.iter().filter(|r| !r.moves.is_empty()).collect();
        let barrier = Barrier::new(n);
        let mut senders: Vec<mpsc::Sender<MigratedBucket>> = Vec::with_capacity(n);
        let mut receivers: Vec<mpsc::Receiver<MigratedBucket>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let (tx_done, rx_done) = mpsc::channel::<(usize, ShardRun)>();
        std::thread::scope(|scope| {
            for ((i, mut worker), rx) in workers.into_iter().enumerate().zip(receivers) {
                let tx_done = tx_done.clone();
                let senders = senders.clone();
                let barrier = &barrier;
                let sync_records = &sync_records;
                scope.spawn(move || {
                    for rec in sync_records {
                        let t = rec.at;
                        while worker.next_time().is_some_and(|wt| wt < t) {
                            worker.step();
                        }
                        barrier.wait();
                        for m in &rec.moves {
                            if m.from.index() != i {
                                continue;
                            }
                            let p = worker.extract_bucket(m.bucket, t, rb.warm_residency);
                            assert_eq!(p.len() as u64, m.entries, "replay diverged from plan");
                            senders[m.to.index()]
                                .send(p)
                                .expect("peer outlives the handshake");
                        }
                        barrier.wait();
                        let mut incoming: Vec<MigratedBucket> = rx.try_iter().collect();
                        incoming.sort_by_key(|p| p.bucket);
                        for p in incoming {
                            let cost =
                                rb.migration_fixed + rb.migration_per_entry.times(p.len() as u64);
                            worker.absorb_payload(p, t, cost, rb.warm_residency);
                        }
                    }
                    while worker.step() {}
                    tx_done
                        .send((i, worker.into_run()))
                        .expect("the driver outlives its workers");
                });
            }
        });
        drop(tx_done);
        let shard_runs = crate::sweep::collect_indexed(rx_done, n);

        let (global, _) = aggregate(trace, &assignments_of, &shard_runs, None, None, None);
        let telemetry = self.build_telemetry(trace, &shard_runs, Some(&log), None, None, None);
        RuntimeReport {
            global,
            shards: shard_runs,
            cross_shard_queries,
            total_fragments,
            rebalance: Some(log),
            front_door: None,
            failover: None,
            transport: None,
            telemetry,
        }
    }

    /// The front-door reference pass: a stepped virtual-time merge with the
    /// global admission controller in the loop. Returns the decision log
    /// alongside the finished report.
    ///
    /// The driver interleaves three event sources — shard events, trace
    /// arrivals, and backoff wake-ups — in virtual-time order. At each
    /// event time it ingests every due arrival into the [`FrontDoor`],
    /// pumps the controller (which may admit queries, handing their
    /// pre-split fragments to the shards with `release = now`), and steps
    /// the earliest-event shard. Admission feedback is the per-shard
    /// cumulative serviced-entry counters — observable in both modes, which
    /// is why the recorded plan replays exactly.
    ///
    /// Liveness: if no shard has a pending event, every admitted assignment
    /// has been serviced, so the pool is empty and the controller's
    /// head-of-line waiter admits unconditionally — the loop can never
    /// stall with work outstanding.
    fn plan_front_door(
        &self,
        trace: &TimedTrace,
        mk_scheduler: &mut dyn FnMut(usize) -> Box<dyn Scheduler + Send>,
    ) -> (AdmissionLog, RuntimeReport) {
        let fd = self.config.front_door;
        let entries = trace.entries();
        let pre = QueryPreProcessor::new(self.catalog.partition());
        let n = self.config.n_shards as usize;

        let mut workers: Vec<ShardWorker<'_, C>> = (0..n)
            .map(|i| {
                ShardWorker::new(
                    ShardId(i as u32),
                    self.catalog,
                    self.config.sim,
                    self.config.admission,
                    self.config.faults.for_shard(i as u32),
                    self.config.faults.outages_for_shard(i as u32),
                    entries,
                    Vec::new(),
                    mk_scheduler(i),
                    self.config.telemetry.make_sink(),
                )
            })
            .collect();

        let mut door = FrontDoor::new(fd, entries.len(), n);
        let mut assignments_of = vec![0u64; entries.len()];
        let mut cross_shard_queries = 0usize;
        let mut total_fragments = 0usize;
        let mut cursor = 0usize; // next not-yet-ingested trace entry
        let mut now = SimTime::ZERO;

        loop {
            // Next event: earliest of (shard event, arrival, backoff wake).
            let mut t: Option<SimTime> = None;
            for w in &workers {
                if let Some(wt) = w.next_time() {
                    t = Some(t.map_or(wt, |b: SimTime| b.min(wt)));
                }
                // A worker's clock runs ahead of global time by whole batch
                // costs; each recorded batch *end* in that gap is a "capacity
                // frees here" event the door must observe at its own instant
                // (and never earlier — see `ShardWorker::serviced_at`).
                if let Some(ct) = w.next_completion_after(now) {
                    t = Some(t.map_or(ct, |b: SimTime| b.min(ct)));
                }
            }
            if let Some((arrival, _)) = entries.get(cursor) {
                t = Some(t.map_or(*arrival, |b| b.min(*arrival)));
            }
            if let Some(wake) = door.next_wakeup() {
                t = Some(t.map_or(wake, |b| b.min(wake)));
            }
            match t {
                Some(t) => now = now.max(t),
                // No events anywhere: done — unless waiters remain, in
                // which case the pool must be empty and pumping "now"
                // admits the head (see the liveness note above).
                None if door.has_active() => {}
                None => break,
            }

            // Ingest every arrival due by `now` (trace order).
            while let Some((arrival, query)) = entries.get(cursor) {
                if *arrival > now {
                    break;
                }
                let mut split: Vec<(usize, Vec<WorkItem>)> = Vec::new();
                let mut assignments = 0u64;
                for item in pre.preprocess(query) {
                    assignments += item.len() as u64;
                    let s = self.map.shard_of(item.bucket).index();
                    match split.iter_mut().find(|(shard, _)| *shard == s) {
                        Some((_, items)) => items.push(item),
                        None => split.push((s, vec![item])),
                    }
                }
                // Shard-index order = the order split_query emits fragments.
                split.sort_by_key(|(s, _)| *s);
                let class = fd.classify(assignments);
                assignments_of[cursor] = assignments;
                door.ingest(cursor, *arrival, class, assignments, split);
                cursor += 1;
            }

            // Pump the controller: wake backoffs, admit, shed, reject.
            let serviced: Vec<u64> = workers.iter().map(|w| w.serviced_at(now)).collect();
            door.pump(now, &serviced, |p, at| {
                let query_id = entries[p.index].1.id;
                let n_frags = p.split.len().max(1);
                total_fragments += n_frags;
                if n_frags > 1 {
                    cross_shard_queries += 1;
                }
                if p.split.is_empty() {
                    // Zero-work: ship the arrival itself to shard 0.
                    workers[0].append_fragments(vec![Fragment {
                        query_index: p.index,
                        query: query_id,
                        arrival: p.arrival,
                        release: at,
                        class: p.class,
                        items: Vec::new(),
                        assignments: 0,
                    }]);
                } else {
                    for (s, items) in p.split {
                        let assignments = items.iter().map(|i| i.len() as u64).sum();
                        workers[s].append_fragments(vec![Fragment {
                            query_index: p.index,
                            query: query_id,
                            arrival: p.arrival,
                            release: at,
                            class: p.class,
                            items,
                            assignments,
                        }]);
                    }
                }
            });

            // Step the earliest shard event due by `now` (ties by shard id).
            let mut earliest: Option<(SimTime, usize)> = None;
            for (i, w) in workers.iter().enumerate() {
                if let Some(wt) = w.next_time() {
                    // Strict `<` keeps the lowest shard index on time ties.
                    if earliest.map_or(true, |(bt, _)| wt < bt) {
                        earliest = Some((wt, i));
                    }
                }
            }
            if let Some((wt, i)) = earliest {
                if wt <= now {
                    let advanced = workers[i].step();
                    debug_assert!(advanced, "a shard with a next event must advance");
                }
            }
        }

        let shard_runs: Vec<ShardRun> = workers.into_iter().map(ShardWorker::into_run).collect();
        let log = door.into_log();
        let (global, front_door) =
            aggregate(trace, &assignments_of, &shard_runs, Some(&log), None, None);
        let telemetry = self.build_telemetry(trace, &shard_runs, None, Some(&log), None, None);
        let report = RuntimeReport {
            global,
            shards: shard_runs,
            cross_shard_queries,
            total_fragments,
            rebalance: None,
            front_door,
            failover: None,
            transport: None,
            telemetry,
        };
        (log, report)
    }

    /// The front-door parallel executor: routes the admitted subset of the
    /// trace up-front per the recorded log ([`route_admitted`] — fragments
    /// in admission order, released at their logged admission times) and
    /// runs the shards completely free-running. No barriers: the front door
    /// only ever *delays or drops* deliveries, so once the decisions are
    /// fixed, each shard's stream is fixed, and shard behaviour is a pure
    /// function of its stream.
    fn replay_front_door(
        &self,
        trace: &TimedTrace,
        mk_scheduler: &mut dyn FnMut(usize) -> Box<dyn Scheduler + Send>,
        log: AdmissionLog,
    ) -> RuntimeReport {
        let routing = route_admitted(self.catalog.partition(), &self.map, trace, &log);
        let total_fragments = routing.total_fragments();
        let assignments_of = routing.assignments_of;
        let cross_shard_queries = routing.cross_shard_queries;

        let workers: Vec<ShardWorker<'_, C>> = routing
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, fragments)| {
                ShardWorker::new(
                    ShardId(i as u32),
                    self.catalog,
                    self.config.sim,
                    self.config.admission,
                    self.config.faults.for_shard(i as u32),
                    self.config.faults.outages_for_shard(i as u32),
                    trace.entries(),
                    fragments,
                    mk_scheduler(i),
                    self.config.telemetry.make_sink(),
                )
            })
            .collect();

        let shard_runs = run_threaded(workers);
        let (global, front_door) =
            aggregate(trace, &assignments_of, &shard_runs, Some(&log), None, None);
        let telemetry = self.build_telemetry(trace, &shard_runs, None, Some(&log), None, None);
        RuntimeReport {
            global,
            shards: shard_runs,
            cross_shard_queries,
            total_fragments,
            rebalance: None,
            front_door,
            failover: None,
            transport: None,
            telemetry,
        }
    }

    /// The failover reference pass: a stepped virtual-time merge with the
    /// crash controller in the loop — taken whenever outage windows are
    /// injected or failover is enabled. Returns the failover decision log
    /// and the epoch log (when rebalancing also runs) alongside the
    /// finished report.
    ///
    /// Four controller event sources interleave with worker events in
    /// virtual-time order; at equal instants the priority is fault boundary
    /// → epoch boundary → arrival → re-delivery, and a worker only steps
    /// while its next event is *strictly* earlier than every controller
    /// event (worker ties break on the lowest shard id):
    ///
    /// - **fault boundaries** record a [`ShardTransition`]; a down edge
    ///   with failover enabled evacuates every non-empty bucket off the
    ///   dead shard to the least-loaded survivor (working loads update as
    ///   buckets are placed; costs charge to the destinations) and updates
    ///   the elastic map, while an up edge re-admits the — now empty and
    ///   cold — shard to the pool.
    /// - **epoch boundaries** (rebalancing enabled) run the elastic
    ///   planner with dead shards masked out of [`plan_moves`].
    /// - **arrivals** split under the live map; a fragment released into a
    ///   dead shard is lost in flight and queues its first re-delivery
    ///   attempt at `arrival + redelivery_timeout`.
    /// - **re-deliveries** land the whole lost fragment on the least-loaded
    ///   live shard, or — when nothing is up — fail and back off
    ///   exponentially until `max_redeliveries` attempts reject the query
    ///   (a terminal outcome: every query still ends exactly once).
    fn plan_failover(
        &self,
        trace: &TimedTrace,
        mk_scheduler: &mut dyn FnMut(usize) -> Box<dyn Scheduler + Send>,
    ) -> (FailoverLog, Option<RebalanceLog>, RuntimeReport) {
        let fo = self.config.failover;
        let retry = fo.retry_policy();
        let rb = self.config.rebalance;
        let entries = trace.entries();
        let pre = QueryPreProcessor::new(self.catalog.partition());
        let n = self.config.n_shards as usize;

        let mut workers: Vec<ShardWorker<'_, C>> = (0..n)
            .map(|i| {
                ShardWorker::new(
                    ShardId(i as u32),
                    self.catalog,
                    self.config.sim,
                    self.config.admission,
                    self.config.faults.for_shard(i as u32),
                    self.config.faults.outages_for_shard(i as u32),
                    entries,
                    Vec::new(),
                    mk_scheduler(i),
                    self.config.telemetry.make_sink(),
                )
            })
            .collect();

        // Outage edges in processing order: time, downs before ups, shard.
        let mut boundaries: Vec<(SimTime, bool, u32)> = Vec::new();
        for o in &self.config.faults.outages {
            boundaries.push((o.down_at, false, o.shard));
            boundaries.push((o.up_at, true, o.shard));
        }
        boundaries.sort_unstable();

        let mut elastic = ElasticShardMap::new(self.map);
        let mut up = vec![true; n];
        let mut assignments_of = vec![0u64; entries.len()];
        let mut cross_shard_queries = 0usize;
        let mut total_fragments = 0usize;
        let mut split: Vec<Vec<WorkItem>> = vec![Vec::new(); n];
        let mut window: Vec<Vec<Fragment>> = vec![Vec::new(); n];
        let mut lost_scratch: Vec<(u32, Fragment)> = Vec::new();

        // One retry chain per lost fragment, keyed by creation seq — the
        // heap orders pending attempts by `(instant, seq)`.
        struct Chain {
            query_index: usize,
            from: u32,
            attempt: u32,
            fragment: Fragment,
        }
        let mut chains: HashMap<u64, Chain> = HashMap::new();
        let mut retries: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        let mut next_seq = 0u64;
        let mut rejected_q = vec![false; entries.len()];

        let mut transitions: Vec<ShardTransition> = Vec::new();
        let mut evacuations: Vec<Evacuation> = Vec::new();
        let mut redeliveries: Vec<Redelivery> = Vec::new();
        let mut records: Vec<EpochRecord> = Vec::new();

        let mut bi = 0usize; // next outage edge
        let mut cursor = 0usize; // next unrouted trace entry
        let mut fired = 0u32; // epoch boundaries fired

        loop {
            let tb = boundaries.get(bi).map(|b| b.0);
            let te = rb
                .enabled
                .then(|| SimTime::ZERO + rb.epoch.times(fired as u64 + 1));
            let ta = entries.get(cursor).map(|e| e.0);
            let tr = retries.peek().map(|Reverse((t, _))| *t);
            let mut tw: Option<(SimTime, usize)> = None;
            for (i, w) in workers.iter().enumerate() {
                if let Some(wt) = w.next_time() {
                    // Strict `<` keeps the lowest shard index on time ties.
                    if tw.map_or(true, |(bt, _)| wt < bt) {
                        tw = Some((wt, i));
                    }
                }
            }
            // Termination mirrors `plan_elastic`: the epoch clock alone
            // (`te` ticks forever) never keeps the loop alive.
            if tb.is_none() && ta.is_none() && tr.is_none() && tw.is_none() {
                break;
            }
            let next_ctl = [tb, te, ta, tr].into_iter().flatten().min();
            if let Some((wt, i)) = tw {
                if next_ctl.map_or(true, |t| wt < t) {
                    let advanced = workers[i].step();
                    debug_assert!(advanced, "a shard with a next event must advance");
                    continue;
                }
            }
            let t = next_ctl.expect("a controller event must exist");

            if tb == Some(t) {
                let (bt, edge_up, shard) = boundaries[bi];
                bi += 1;
                let s = shard as usize;
                transitions.push(ShardTransition {
                    shard,
                    at: bt,
                    up: edge_up,
                    queued: workers[s].queued(),
                });
                up[s] = edge_up;
                if !edge_up && fo.enabled && up.iter().any(|&u| u) {
                    // Evacuate the dead shard: every non-empty bucket, in
                    // bucket order, to the least-loaded survivor (working
                    // loads update as buckets land; ties → lower shard id).
                    // The extract/absorb instant never predates the dead
                    // shard's final atomic batch.
                    let ev_at = workers[s].now().max(bt);
                    let mut working: Vec<u64> = workers.iter().map(ShardWorker::queued).collect();
                    let mut staged: Vec<(usize, MigratedBucket)> = Vec::new();
                    for (bucket, depth) in workers[s].bucket_depths() {
                        let dest = (0..n)
                            .filter(|&j| up[j])
                            .min_by_key(|&j| (working[j], j))
                            .expect("a live survivor exists");
                        working[dest] += depth;
                        let p = workers[s].extract_bucket(bucket, ev_at, true);
                        debug_assert_eq!(p.len() as u64, depth, "depth sample drifted");
                        evacuations.push(Evacuation {
                            boundary: bt,
                            at: ev_at,
                            bucket,
                            from: shard,
                            to: dest as u32,
                            entries: p.len() as u64,
                            was_resident: p.was_resident,
                        });
                        elastic.reassign(bucket, ShardId(dest as u32));
                        staged.push((dest, p));
                    }
                    // Absorb per destination in bucket order — the canonical
                    // order the threaded replay reproduces.
                    staged.sort_by_key(|(to, p)| (*to, p.bucket));
                    for (to, p) in staged {
                        let cost =
                            fo.evacuation_fixed + fo.evacuation_per_entry.times(p.len() as u64);
                        workers[to].absorb_payload(p, ev_at, cost, fo.warm_residency);
                    }
                }
                continue;
            }

            if te == Some(t) {
                // Epoch boundary, exactly `plan_elastic` with dead shards
                // masked out of the planner.
                fired += 1;
                let loads: Vec<u64> = workers.iter().map(ShardWorker::queued).collect();
                let depths: Vec<Vec<_>> = workers.iter().map(ShardWorker::bucket_depths).collect();
                let moves = plan_moves(&rb, &loads, &depths, &up);
                let mut payloads: Vec<(usize, MigratedBucket)> = moves
                    .iter()
                    .map(|m| {
                        let p =
                            workers[m.from.index()].extract_bucket(m.bucket, t, rb.warm_residency);
                        debug_assert_eq!(p.len() as u64, m.entries, "plan drifted from state");
                        (m.to.index(), p)
                    })
                    .collect();
                payloads.sort_by_key(|(to, p)| (*to, p.bucket));
                for (to, p) in payloads {
                    let cost = rb.migration_fixed + rb.migration_per_entry.times(p.len() as u64);
                    workers[to].absorb_payload(p, t, cost, rb.warm_residency);
                }
                records.push(EpochRecord {
                    epoch: fired,
                    at: t,
                    loads,
                    serviced: workers.iter().map(ShardWorker::serviced).collect(),
                    resident: workers.iter().map(|w| w.resident() as u32).collect(),
                    moves: moves.clone(),
                });
                for m in &moves {
                    elastic.reassign(m.bucket, m.to);
                }
                continue;
            }

            if ta == Some(t) {
                let (arrival, query) = &entries[cursor];
                let (delivered, fragments, assignments) = split_failover_arrival(
                    &pre,
                    cursor,
                    *arrival,
                    query,
                    fo.enabled,
                    &up,
                    &elastic,
                    &mut split,
                    &mut window,
                    &mut lost_scratch,
                );
                if fragments > 1 {
                    cross_shard_queries += 1;
                }
                assignments_of[cursor] = assignments;
                total_fragments += delivered as usize;
                for (from, f) in lost_scratch.drain(..) {
                    let seq = next_seq;
                    next_seq += 1;
                    chains.insert(
                        seq,
                        Chain {
                            query_index: cursor,
                            from,
                            attempt: 0,
                            fragment: f,
                        },
                    );
                    retries.push(Reverse((retry.deadline_after(*arrival, 0), seq)));
                }
                for (w, frags) in workers.iter_mut().zip(window.iter_mut()) {
                    if !frags.is_empty() {
                        w.append_fragments(std::mem::take(frags));
                    }
                }
                cursor += 1;
                continue;
            }

            // Re-delivery attempt.
            let Reverse((at, seq)) = retries.pop().expect("a retry event must exist");
            debug_assert_eq!(at, t);
            if rejected_q[chains[&seq].query_index] {
                // A sibling chain already rejected this query terminally —
                // the pending attempt is moot and goes unlogged.
                chains.remove(&seq);
                continue;
            }
            let chain = chains.get_mut(&seq).expect("a chain outlives its retries");
            chain.attempt += 1;
            let (query_index, attempt) = (chain.query_index, chain.attempt);
            let dest = (0..n)
                .filter(|&j| up[j])
                .min_by_key(|&j| (workers[j].queued(), j));
            redeliveries.push(Redelivery {
                at,
                seq,
                query_index,
                from: chain.from,
                attempt,
                to: dest.map(|d| d as u32),
            });
            match dest {
                Some(d) => {
                    // Landed: re-release the whole fragment on the survivor.
                    let c = chains.remove(&seq).expect("chain present");
                    total_fragments += 1;
                    workers[d].append_fragments(vec![Fragment {
                        release: at,
                        ..c.fragment
                    }]);
                }
                None if attempt >= fo.max_redeliveries => {
                    // Out of attempts with nothing up: terminal rejection.
                    rejected_q[query_index] = true;
                    chains.remove(&seq);
                }
                None => {
                    // Nothing up: exponential backoff, then try again.
                    retries.push(Reverse((retry.deadline_after(at, attempt), seq)));
                }
            }
        }

        let fo_log = FailoverLog {
            transitions,
            evacuations,
            redeliveries,
        };
        let arrivals: Vec<SimTime> = entries.iter().map(|(t, _)| *t).collect();
        let rejected = fo_log.rejected_queries(fo.max_redeliveries, &arrivals, &assignments_of);
        debug_assert_eq!(
            rejected.len(),
            rejected_q.iter().filter(|&&r| r).count(),
            "log-derived rejections must match the planner's"
        );
        let mut fo_rejected = vec![false; entries.len()];
        for r in &rejected {
            fo_rejected[r.index] = true;
        }
        let recovery_lag = recovery_lag_probe(&fo_log, |d, t| workers[d].next_completion_after(t));

        let shard_runs: Vec<ShardRun> = workers.into_iter().map(ShardWorker::into_run).collect();
        let rb_log = rb.enabled.then_some(RebalanceLog {
            epoch: rb.epoch,
            records,
        });
        let (global, _) = aggregate(
            trace,
            &assignments_of,
            &shard_runs,
            None,
            Some(&fo_rejected),
            None,
        );
        let failover = build_failover_report(
            &fo_log,
            trace,
            &assignments_of,
            rejected,
            &global,
            recovery_lag,
        );
        let telemetry = self.build_telemetry(
            trace,
            &shard_runs,
            rb_log.as_ref(),
            None,
            Some(&fo_log),
            None,
        );
        let report = RuntimeReport {
            global,
            shards: shard_runs,
            cross_shard_queries,
            total_fragments,
            rebalance: rb_log.clone(),
            front_door: None,
            failover: Some(failover),
            transport: None,
            telemetry,
        };
        (fo_log, rb_log, report)
    }

    /// The failover parallel executor: routes the whole trace up-front
    /// under the recorded logs ([`route_failover`]) and replays the plan
    /// verbatim — one thread per shard, with a double-barrier handshake per
    /// *sync round*. A sync round is a down boundary that evacuated buckets
    /// or a move-bearing epoch record, merged in the planner's processing
    /// order (downs before epochs at equal instants): step to the boundary,
    /// barrier, send outgoing payloads, barrier, absorb incoming ones in
    /// bucket order. Up edges, loss, and re-delivery need no coordination —
    /// they are already baked into the routed fragment streams.
    fn replay_failover(
        &self,
        trace: &TimedTrace,
        mk_scheduler: &mut dyn FnMut(usize) -> Box<dyn Scheduler + Send>,
        fo_log: FailoverLog,
        rb_log: Option<RebalanceLog>,
    ) -> RuntimeReport {
        let fo = self.config.failover;
        let rb = self.config.rebalance;
        let routing = route_failover(
            self.catalog.partition(),
            &self.map,
            fo.enabled,
            &fo_log,
            rb_log.as_ref(),
            trace,
        );
        let total_fragments = routing.total_fragments();
        let assignments_of = routing.assignments_of;
        let cross_shard_queries = routing.cross_shard_queries;
        let n = self.config.n_shards as usize;

        let workers: Vec<ShardWorker<'_, C>> = routing
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, fragments)| {
                ShardWorker::new(
                    ShardId(i as u32),
                    self.catalog,
                    self.config.sim,
                    self.config.admission,
                    self.config.faults.for_shard(i as u32),
                    self.config.faults.outages_for_shard(i as u32),
                    trace.entries(),
                    fragments,
                    mk_scheduler(i),
                    self.config.telemetry.make_sink(),
                )
            })
            .collect();

        // Sync rounds in planner order. Two down edges at one instant stay
        // *sequential* rounds (in transition order) — a bucket evacuated
        // onto a shard that dies at the same instant moves again in the
        // second round, exactly as the planner decided.
        enum Round<'l> {
            Evac {
                boundary: SimTime,
                evacs: Vec<&'l Evacuation>,
            },
            Epoch(&'l EpochRecord),
        }
        let down_rounds: Vec<(SimTime, Vec<&Evacuation>)> = fo_log
            .transitions
            .iter()
            .filter(|tr| !tr.up)
            .map(|tr| {
                let evacs: Vec<&Evacuation> = fo_log
                    .evacuations
                    .iter()
                    .filter(|e| e.boundary == tr.at && e.from == tr.shard)
                    .collect();
                (tr.at, evacs)
            })
            .filter(|(_, evacs)| !evacs.is_empty())
            .collect();
        let epoch_rounds: Vec<&EpochRecord> = rb_log.as_ref().map_or(Vec::new(), |l| {
            l.records.iter().filter(|r| !r.moves.is_empty()).collect()
        });
        let mut rounds: Vec<Round<'_>> = Vec::new();
        {
            let mut di = down_rounds.into_iter().peekable();
            let mut ei = epoch_rounds.into_iter().peekable();
            loop {
                let take_down = match (di.peek(), ei.peek()) {
                    (Some(d), Some(e)) => d.0 <= e.at,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_down {
                    let (boundary, evacs) = di.next().expect("peeked");
                    rounds.push(Round::Evac { boundary, evacs });
                } else {
                    rounds.push(Round::Epoch(ei.next().expect("peeked")));
                }
            }
        }

        let last_ev: Option<SimTime> = fo_log.evacuations.iter().map(|e| e.at).max();
        let barrier = Barrier::new(n);
        type Payload = (SimTime, SimDuration, bool, MigratedBucket);
        let mut senders: Vec<mpsc::Sender<Payload>> = Vec::with_capacity(n);
        let mut receivers: Vec<mpsc::Receiver<Payload>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let (tx_done, rx_done) = mpsc::channel::<(usize, (ShardRun, Option<SimTime>))>();
        std::thread::scope(|scope| {
            for ((i, mut worker), rx) in workers.into_iter().enumerate().zip(receivers) {
                let tx_done = tx_done.clone();
                let senders = senders.clone();
                let barrier = &barrier;
                let rounds = &rounds;
                scope.spawn(move || {
                    for round in rounds {
                        let t = match round {
                            Round::Evac { boundary, .. } => *boundary,
                            Round::Epoch(rec) => rec.at,
                        };
                        while worker.next_time().is_some_and(|wt| wt < t) {
                            worker.step();
                        }
                        barrier.wait();
                        match round {
                            Round::Evac { evacs, .. } => {
                                for e in evacs {
                                    if e.from as usize != i {
                                        continue;
                                    }
                                    let p = worker.extract_bucket(e.bucket, e.at, true);
                                    assert_eq!(
                                        p.len() as u64,
                                        e.entries,
                                        "replay diverged from plan"
                                    );
                                    let cost = fo.evacuation_fixed
                                        + fo.evacuation_per_entry.times(p.len() as u64);
                                    senders[e.to as usize]
                                        .send((e.at, cost, fo.warm_residency, p))
                                        .expect("peer outlives the handshake");
                                }
                            }
                            Round::Epoch(rec) => {
                                for m in &rec.moves {
                                    if m.from.index() != i {
                                        continue;
                                    }
                                    let p = worker.extract_bucket(m.bucket, t, rb.warm_residency);
                                    assert_eq!(
                                        p.len() as u64,
                                        m.entries,
                                        "replay diverged from plan"
                                    );
                                    let cost = rb.migration_fixed
                                        + rb.migration_per_entry.times(p.len() as u64);
                                    senders[m.to.index()]
                                        .send((t, cost, rb.warm_residency, p))
                                        .expect("peer outlives the handshake");
                                }
                            }
                        }
                        barrier.wait();
                        let mut incoming: Vec<Payload> = rx.try_iter().collect();
                        incoming.sort_by_key(|(_, _, _, p)| p.bucket);
                        for (at, cost, warm, p) in incoming {
                            worker.absorb_payload(p, at, cost, warm);
                        }
                    }
                    while worker.step() {}
                    let probe = last_ev.and_then(|t| worker.next_completion_after(t));
                    tx_done
                        .send((i, (worker.into_run(), probe)))
                        .expect("the driver outlives its workers");
                });
            }
        });
        drop(tx_done);
        let finished: Vec<(ShardRun, Option<SimTime>)> = crate::sweep::collect_indexed(rx_done, n);
        let probes: Vec<Option<SimTime>> = finished.iter().map(|(_, p)| *p).collect();
        let shard_runs: Vec<ShardRun> = finished.into_iter().map(|(r, _)| r).collect();
        let recovery_lag = recovery_lag_probe(&fo_log, |d, _| probes[d]);

        let entries = trace.entries();
        let arrivals: Vec<SimTime> = entries.iter().map(|(t, _)| *t).collect();
        let rejected = fo_log.rejected_queries(fo.max_redeliveries, &arrivals, &assignments_of);
        let mut fo_rejected = vec![false; entries.len()];
        for r in &rejected {
            fo_rejected[r.index] = true;
        }
        let (global, _) = aggregate(
            trace,
            &assignments_of,
            &shard_runs,
            None,
            Some(&fo_rejected),
            None,
        );
        let failover = build_failover_report(
            &fo_log,
            trace,
            &assignments_of,
            rejected,
            &global,
            recovery_lag,
        );
        let telemetry = self.build_telemetry(
            trace,
            &shard_runs,
            rb_log.as_ref(),
            None,
            Some(&fo_log),
            None,
        );
        RuntimeReport {
            global,
            shards: shard_runs,
            cross_shard_queries,
            total_fragments,
            rebalance: rb_log,
            front_door: None,
            failover: Some(failover),
            transport: None,
            telemetry,
        }
    }

    /// Folds the per-shard event streams plus controller events synthesized
    /// from the decision logs into the flight-recorder report. `None` when
    /// telemetry is off.
    ///
    /// The merge mirrors [`aggregate`]'s canonical completion order exactly:
    /// each shard's stream is keyed by its *running clock* (the prefix-max
    /// of event times over record order — a query arrival keeps its true
    /// arrival instant, which can precede the batch boundary it was recorded
    /// at), and streams interleave by `(clock, shard, seq)`. Controller
    /// events ride the [`ROUTER_SHARD`] pseudo-shard, which sorts after
    /// every real shard. Because each shard's stream is a pure function of
    /// its own fragment sequence and the logs replay verbatim, stepped and
    /// threaded executions produce byte-identical merged streams.
    fn build_telemetry(
        &self,
        trace: &TimedTrace,
        shard_runs: &[ShardRun],
        rebalance: Option<&RebalanceLog>,
        admission: Option<&AdmissionLog>,
        failover: Option<&FailoverLog>,
        transport: Option<&TransportLog>,
    ) -> Option<TelemetryReport> {
        if !self.config.telemetry.enabled() {
            return None;
        }
        let mut keyed: Vec<(SimTime, u32, u64, Event)> = Vec::new();
        for run in shard_runs {
            let mut clock = SimTime::ZERO;
            for e in &run.events {
                clock = clock.max(e.time);
                keyed.push((clock, e.shard, e.seq, e.clone()));
            }
        }

        let mut router: Vec<Event> = Vec::new();
        let stamp = |time: SimTime, kind: EventKind| Event {
            time,
            shard: ROUTER_SHARD,
            seq: 0, // densified below, after the time sort
            kind,
        };
        if let Some(log) = rebalance {
            let rb = &self.config.rebalance;
            for rec in &log.records {
                for m in &rec.moves {
                    router.push(stamp(
                        rec.at,
                        EventKind::MigrationPlanned {
                            epoch: rec.epoch,
                            bucket: m.bucket.0,
                            from: m.from.0,
                            to: m.to.0,
                            entries: m.entries,
                        },
                    ));
                }
                // Application order is the executors' canonical absorb
                // order: per destination, in bucket order.
                let mut applies: Vec<_> = rec.moves.iter().collect();
                applies.sort_by_key(|m| (m.to, m.bucket));
                for m in applies {
                    let cost = rb.migration_fixed + rb.migration_per_entry.times(m.entries);
                    router.push(stamp(
                        rec.at,
                        EventKind::MigrationApplied {
                            epoch: rec.epoch,
                            bucket: m.bucket.0,
                            to: m.to.0,
                            cost,
                        },
                    ));
                }
            }
        }
        if let Some(log) = admission {
            let entries = trace.entries();
            for (i, v) in log.verdicts.iter().enumerate() {
                let arrival = entries[i].0;
                match v.decision {
                    Disposition::Admitted { at, .. } => router.push(stamp(
                        at,
                        EventKind::Admitted {
                            query_index: i as u64,
                            class: v.class.rank() as u8,
                            assignments: v.assignments,
                            sheds: v.sheds,
                            waited: at.since(arrival),
                        },
                    )),
                    Disposition::Rejected { at } => router.push(stamp(
                        at,
                        EventKind::Rejected {
                            query_index: i as u64,
                            class: v.class.rank() as u8,
                            assignments: v.assignments,
                            sheds: v.sheds,
                        },
                    )),
                }
            }
            for s in &log.samples {
                router.push(stamp(
                    s.at,
                    EventKind::AdmissionSampled {
                        epoch: s.epoch,
                        inflight: s.inflight_assignments,
                        waiting: s.waiting_assignments,
                        backoff: s.backoff_queries as u64,
                        admitted: s.admitted,
                        shed_events: s.shed_events,
                        rejected: s.rejected,
                    },
                ));
            }
        }
        if let Some(log) = failover {
            for t in &log.transitions {
                router.push(stamp(
                    t.at,
                    if t.up {
                        EventKind::ShardUp { target: t.shard }
                    } else {
                        EventKind::ShardDown {
                            target: t.shard,
                            queued: t.queued,
                        }
                    },
                ));
            }
            for e in &log.evacuations {
                router.push(stamp(
                    e.at,
                    EventKind::BucketEvacuated {
                        bucket: e.bucket.0,
                        from: e.from,
                        to: e.to,
                        entries: e.entries,
                        resident: e.was_resident,
                    },
                ));
            }
            for r in &log.redeliveries {
                router.push(stamp(
                    r.at,
                    EventKind::FragmentRetried {
                        query: r.query_index as u64,
                        from: r.from,
                        attempt: r.attempt,
                        delivered: r.to.is_some(),
                        // Failed attempts had no live destination at all.
                        to: r.to.unwrap_or(u32::MAX),
                    },
                ));
            }
        }
        if let Some(log) = transport {
            for d in &log.drops {
                router.push(stamp(
                    d.at,
                    EventKind::FragmentDropped {
                        query: d.query_index as u64,
                        shard: d.shard,
                        to_shard: matches!(d.direction, LinkDirection::ToShard),
                        attempt: d.attempt,
                    },
                ));
            }
            for r in &log.retransmits {
                router.push(stamp(
                    r.at,
                    EventKind::FragmentRetransmitted {
                        query: r.query_index as u64,
                        shard: r.shard,
                        attempt: r.attempt,
                    },
                ));
            }
            for s in &log.suppressed {
                router.push(stamp(
                    s.at,
                    EventKind::DuplicateSuppressed {
                        query: s.query_index as u64,
                        shard: s.shard,
                        attempt: s.attempt,
                    },
                ));
            }
            for h in &log.hedges {
                router.push(stamp(
                    h.at,
                    EventKind::FragmentHedged {
                        query: h.query_index as u64,
                        from: h.from,
                        to: h.to,
                        entries: h.entries,
                    },
                ));
            }
        }
        // Stable by construction order within a time tie — all the logs are
        // deterministic, so the router stream is too.
        router.sort_by_key(|e| e.time);
        for (seq, mut e) in router.into_iter().enumerate() {
            e.seq = seq as u64;
            keyed.push((e.time, ROUTER_SHARD, seq as u64, e));
        }

        keyed.sort_unstable_by_key(|&(clock, shard, seq, _)| (clock, shard, seq));
        let events: Vec<Event> = keyed.into_iter().map(|(_, _, _, e)| e).collect();
        Some(TelemetryReport::build(
            events,
            self.config.n_shards,
            self.config.telemetry.window,
        ))
    }
}

/// The reference executor: a deterministic virtual-time merge. Repeatedly
/// advance the shard with the earliest next event (ties broken by shard id)
/// by exactly one event until every shard has drained.
fn run_stepped<C: Catalog + ?Sized>(mut workers: Vec<ShardWorker<'_, C>>) -> Vec<ShardRun> {
    loop {
        let mut earliest: Option<(SimTime, usize)> = None;
        for (i, w) in workers.iter().enumerate() {
            if let Some(t) = w.next_time() {
                // Strict `<` keeps the lowest shard index on time ties.
                if earliest.map_or(true, |(bt, _)| t < bt) {
                    earliest = Some((t, i));
                }
            }
        }
        let Some((_, i)) = earliest else { break };
        let advanced = workers[i].step();
        debug_assert!(advanced, "a shard with a next event must advance");
    }
    workers.into_iter().map(ShardWorker::into_run).collect()
}

/// The parallel executor: one OS thread per shard, fragment streams fixed
/// up-front, finished runs returned over an `mpsc` channel and re-ordered
/// by shard id.
fn run_threaded<C: Catalog + Sync + ?Sized>(workers: Vec<ShardWorker<'_, C>>) -> Vec<ShardRun> {
    let n = workers.len();
    let (tx, rx) = mpsc::channel::<(usize, ShardRun)>();
    std::thread::scope(|scope| {
        for (i, mut worker) in workers.into_iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                while worker.step() {}
                tx.send((i, worker.into_run()))
                    .expect("the driver outlives its workers");
            });
        }
    });
    drop(tx);
    crate::sweep::collect_indexed(rx, n)
}

/// Folds per-shard fragment runs into the query-level global report.
///
/// Fragment completions are merged in the canonical `(shard clock, shard,
/// shard event order)` order; a query completes at the merged event where
/// its serviced assignments reach the routed total, with completion *time*
/// the max over its per-shard completions (for a zero-work query's single
/// empty fragment: its arrival).
///
/// Counting **assignments** rather than fragments is what makes the fold
/// migration-proof: under rebalancing a query's work can leave a shard
/// mid-flight (the source records a partial outcome covering only what it
/// serviced locally) and even revisit a shard it already completed on (a
/// second outcome). Per-shard outcome assignments always sum to the routed
/// total — every assignment is serviced exactly once, somewhere — so the
/// fold is exact for static and elastic runs alike, and positionally
/// identical to fragment counting when no migration happens.
///
/// With a front-door `admission` log, rejected queries routed no fragments:
/// they are excluded from the completion fold (the conservation assert
/// becomes "every *admitted* query completes exactly once") and accounted
/// in the returned [`FrontDoorReport`] instead, alongside per-class
/// response/TTFB statistics.
///
/// With a `failover_rejected` mask, the marked queries lost a fragment to a
/// dead shard (or, on the transport path, exhausted the retransmission
/// budget) and were terminally rejected: unlike a door rejection they may
/// have been *partially* serviced (their surviving fragments completed on
/// live shards), so they are allowed service but must never fully complete —
/// the fold asserts they stay un-emitted and excludes them from the
/// conservation count. The two rejection sources are mutually exclusive
/// (config validation forbids front door × outages).
///
/// With a `hedge_losers` set, the marked `(query, shard)` completions are
/// hedge-race losers: the same fragment already completed on the winning
/// shard, so the loser's outcome is excluded from the fold entirely (its
/// serviced entries still count in the per-shard counters — duplicated work
/// is real work). Without the exclusion the winner + loser pair would
/// double-count the fragment's assignments and trip the over-service
/// assert.
fn aggregate(
    trace: &TimedTrace,
    assignments_of: &[u64],
    shard_runs: &[ShardRun],
    admission: Option<&AdmissionLog>,
    failover_rejected: Option<&[bool]>,
    hedge_losers: Option<&std::collections::HashSet<(QueryId, u32)>>,
) -> (RunReport, Option<FrontDoorReport>) {
    let entries = trace.entries();
    let index_of: HashMap<QueryId, usize> = entries
        .iter()
        .enumerate()
        .map(|(i, (_, q))| (q.id, i))
        .collect();
    let rejected_at: Vec<bool> = match admission {
        Some(log) => log.verdicts.iter().map(|v| !v.admitted()).collect(),
        None => vec![false; entries.len()],
    };
    let no_fo = vec![false; entries.len()];
    let fo_rejected: &[bool] = failover_rejected.unwrap_or(&no_fo);
    assert!(
        admission.is_none() || failover_rejected.is_none(),
        "front-door and failover rejections cannot coexist"
    );
    let n_rejected = rejected_at
        .iter()
        .zip(fo_rejected)
        .filter(|&(&d, &f)| d || f)
        .count();

    // Canonical merged completion stream. Every query has at least one
    // fragment (zero-work queries ship an empty fragment to shard 0), so
    // per-shard outcomes cover the whole trace. The merge key is the
    // shard's *running clock* (the prefix-max of completion times — the
    // shard-local virtual time at which each outcome was recorded), not the
    // raw completion: a zero-work fragment completes at its arrival but is
    // recorded at the following batch boundary, and keying on the clock
    // preserves each shard's record order — which is exactly the
    // single-engine push order, so a 1-shard runtime reproduces
    // `Simulation`'s outcome sequence bit-for-bit.
    let mut events: Vec<(SimTime, u32, u32, QueryId, SimTime, u64)> = Vec::new();
    for run in shard_runs {
        let mut clock = SimTime::ZERO;
        for (seq, o) in run.report.outcomes.iter().enumerate() {
            clock = clock.max(o.completion);
            events.push((
                clock,
                run.shard.0,
                seq as u32,
                o.query,
                o.completion,
                o.assignments,
            ));
        }
    }
    events.sort_unstable_by_key(|&(clock, shard, seq, _, _, _)| (clock, shard, seq));

    let mut remaining: Vec<u64> = assignments_of.to_vec();
    let mut emitted = vec![false; entries.len()];
    let mut last_done: Vec<SimTime> = vec![SimTime::ZERO; entries.len()];
    let mut first_done: Vec<Option<SimTime>> = vec![None; entries.len()];
    let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(entries.len() - n_rejected);
    for (_, shard, _, query, completion, assignments) in events {
        let i = index_of[&query];
        if hedge_losers.is_some_and(|l| l.contains(&(query, shard))) {
            continue; // the winning copy already covered these assignments
        }
        assert!(
            !rejected_at[i],
            "query {query} was rejected yet a shard serviced it"
        );
        assert!(
            remaining[i] >= assignments,
            "query {query} over-serviced across shards"
        );
        remaining[i] -= assignments;
        last_done[i] = last_done[i].max(completion);
        first_done[i] = Some(first_done[i].map_or(completion, |f| f.min(completion)));
        if remaining[i] > 0 || emitted[i] {
            continue; // more assignments outstanding elsewhere
        }
        assert!(
            !fo_rejected[i],
            "query {query} was rejected by failover yet fully serviced"
        );
        emitted[i] = true;
        outcomes.push(QueryOutcome {
            query,
            // A query completes when its last assignment is serviced; for
            // the zero-work single-fragment case this is its arrival.
            arrival: entries[i].0,
            completion: last_done[i],
            assignments: assignments_of[i],
        });
    }
    assert_eq!(
        outcomes.len(),
        entries.len() - n_rejected,
        "every admitted query must complete exactly once"
    );

    let response = Summary::from_samples(
        outcomes
            .iter()
            .map(|o| o.response_time().as_secs_f64())
            .collect(),
    );
    let makespan_s = outcomes
        .iter()
        .map(|o| o.completion.as_secs_f64())
        .fold(0.0, f64::max);
    let throughput_qps = if makespan_s > 0.0 {
        outcomes.len() as f64 / makespan_s
    } else {
        0.0
    };

    let mut cache = CacheStats::default();
    let mut io = IoStats::new();
    let (mut batches, mut scan_batches, mut indexed_batches) = (0u64, 0u64, 0u64);
    let (mut serviced_entries, mut cache_serviced_entries, mut total_matches) = (0u64, 0u64, 0u64);
    let (mut frontier_picks, mut fallback_picks) = (0u64, 0u64);
    let mut max_wait_ms = 0.0f64;
    for run in shard_runs {
        let r = &run.report;
        cache.merge(&r.cache);
        io.merge(&r.io);
        batches += r.batches;
        scan_batches += r.scan_batches;
        indexed_batches += r.indexed_batches;
        serviced_entries += r.serviced_entries;
        cache_serviced_entries += r.cache_serviced_entries;
        frontier_picks += r.frontier_picks;
        fallback_picks += r.fallback_picks;
        total_matches += r.total_matches;
        max_wait_ms = max_wait_ms.max(r.max_wait_ms);
    }

    let scheduler = format!(
        "Sharded[{}×{}]",
        shard_runs.len(),
        shard_runs
            .first()
            .map(|r| r.report.scheduler.as_str())
            .unwrap_or("∅")
    );
    let front_door = admission
        .map(|log| build_front_door_report(log, entries, &emitted, &last_done, &first_done));
    let global = RunReport {
        scheduler,
        queries: outcomes.len(),
        makespan_s,
        throughput_qps,
        response,
        cache,
        io,
        batches,
        scan_batches,
        indexed_batches,
        serviced_entries,
        cache_serviced_entries,
        frontier_picks,
        fallback_picks,
        total_matches,
        max_wait_ms,
        outcomes,
    };
    (global, front_door)
}

/// Folds the admission log and the per-query completion instants into the
/// [`FrontDoorReport`]: rejected-query records plus per-class counters and
/// response/TTFB summaries.
fn build_front_door_report(
    log: &AdmissionLog,
    entries: &[(SimTime, liferaft_query::CrossMatchQuery)],
    emitted: &[bool],
    last_done: &[SimTime],
    first_done: &[Option<SimTime>],
) -> FrontDoorReport {
    let mut rejected: Vec<RejectedQuery> = Vec::new();
    let mut per_class: [ClassStats; 3] = QueryClass::ALL.map(|class| ClassStats {
        class,
        submitted: 0,
        admitted: 0,
        deferred: 0,
        shed_events: 0,
        rejected: 0,
        max_retries: 0,
        response: Summary::from_samples(Vec::new()),
        ttfb: Summary::from_samples(Vec::new()),
    });
    let mut response: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut ttfb: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];

    for (i, v) in log.verdicts.iter().enumerate() {
        let arrival = entries[i].0;
        let c = v.class.rank();
        let stats = &mut per_class[c];
        stats.submitted += 1;
        stats.shed_events += v.sheds as u64;
        stats.max_retries = stats.max_retries.max(v.sheds);
        match v.decision {
            Disposition::Admitted { at, .. } => {
                stats.admitted += 1;
                if at > arrival {
                    stats.deferred += 1;
                }
                assert!(emitted[i], "admitted query {i} never completed");
                response[c].push(last_done[i].since(arrival).as_secs_f64());
                let first = first_done[i].expect("completed query has a first fragment");
                // A zero-work query's only event can be recorded at a later
                // batch boundary; its true first byte is its arrival.
                ttfb[c].push(first.max(arrival).since(arrival).as_secs_f64());
            }
            Disposition::Rejected { at } => {
                stats.rejected += 1;
                rejected.push(RejectedQuery {
                    index: i,
                    arrival,
                    rejected_at: at,
                    class: v.class,
                    assignments: v.assignments,
                    retries: v.sheds,
                });
            }
        }
    }
    for (c, (r, t)) in response.into_iter().zip(ttfb).enumerate() {
        per_class[c].response = Summary::from_samples(r);
        per_class[c].ttfb = Summary::from_samples(t);
    }
    FrontDoorReport {
        log: log.clone(),
        rejected,
        per_class,
    }
}

/// The recovery-lag headline: the gap between the last evacuation instant
/// and the earliest batch a *destination* shard completed after it (`None`
/// when nothing was evacuated, or no destination completed work afterward).
/// `probe(shard, t)` reads that shard's first recorded batch completion
/// strictly after `t`.
fn recovery_lag_probe(
    log: &FailoverLog,
    mut probe: impl FnMut(usize, SimTime) -> Option<SimTime>,
) -> Option<SimDuration> {
    let t = log.evacuations.iter().map(|e| e.at).max()?;
    log.evacuations
        .iter()
        .filter_map(|e| probe(e.to as usize, t))
        .min()
        .map(|ct| ct.since(t))
}

/// Folds the failover log, the rejection records, and the global outcomes
/// into the [`FailoverReport`], asserting terminal-outcome conservation per
/// class: every query either completed or was rejected, exactly once.
/// Classes come from the front-door thresholds applied to routed workload
/// (the door itself is off — validation forbids combining it with outages).
fn build_failover_report(
    log: &FailoverLog,
    trace: &TimedTrace,
    assignments_of: &[u64],
    rejected: Vec<FailedQuery>,
    global: &RunReport,
    recovery_lag: Option<SimDuration>,
) -> FailoverReport {
    let entries = trace.entries();
    let classes = FrontDoorConfig::disabled();
    let index_of: HashMap<QueryId, usize> = entries
        .iter()
        .enumerate()
        .map(|(i, (_, q))| (q.id, i))
        .collect();
    let mut per_class: [ClassConservation; 3] = QueryClass::ALL.map(|class| ClassConservation {
        class,
        submitted: 0,
        completed: 0,
        rejected: 0,
    });
    for assignments in assignments_of {
        per_class[classes.classify(*assignments).rank()].submitted += 1;
    }
    for o in &global.outcomes {
        per_class[classes.classify(assignments_of[index_of[&o.query]]).rank()].completed += 1;
    }
    for r in &rejected {
        per_class[classes.classify(r.assignments).rank()].rejected += 1;
    }
    for c in &per_class {
        assert_eq!(
            c.completed + c.rejected,
            c.submitted,
            "{:?} queries lost track of a terminal outcome",
            c.class
        );
    }
    FailoverReport {
        log: log.clone(),
        rejected,
        per_class,
        recovery_lag,
    }
}

/// Folds the transport log, the rejection records, and the global outcomes
/// into the [`TransportReport`], asserting terminal-outcome conservation per
/// class exactly like [`build_failover_report`]: every query either
/// completed or was rejected, exactly once, whatever the links dropped.
#[allow(clippy::too_many_arguments)]
fn build_transport_report(
    log: &TransportLog,
    trace: &TimedTrace,
    assignments_of: &[u64],
    rejected: Vec<FailedQuery>,
    global: &RunReport,
    hedge_wins: u64,
    hedge_losses: u64,
) -> TransportReport {
    let entries = trace.entries();
    let classes = FrontDoorConfig::disabled();
    let index_of: HashMap<QueryId, usize> = entries
        .iter()
        .enumerate()
        .map(|(i, (_, q))| (q.id, i))
        .collect();
    let mut per_class: [ClassConservation; 3] = QueryClass::ALL.map(|class| ClassConservation {
        class,
        submitted: 0,
        completed: 0,
        rejected: 0,
    });
    for assignments in assignments_of {
        per_class[classes.classify(*assignments).rank()].submitted += 1;
    }
    for o in &global.outcomes {
        per_class[classes.classify(assignments_of[index_of[&o.query]]).rank()].completed += 1;
    }
    for r in &rejected {
        per_class[classes.classify(r.assignments).rank()].rejected += 1;
    }
    for c in &per_class {
        assert_eq!(
            c.completed + c.rejected,
            c.submitted,
            "{:?} queries lost track of a terminal outcome in transit",
            c.class
        );
    }
    TransportReport {
        log: log.clone(),
        rejected,
        per_class,
        hedge_wins,
        hedge_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdmissionConfig;
    use crate::shard::ShardAssignment;
    use liferaft_catalog::{generate::uniform_sky, MaterializedCatalog};
    use liferaft_core::{LifeRaftScheduler, MetricParams, NoShareScheduler};
    use liferaft_query::{CrossMatchQuery, Predicate};
    use liferaft_sim::SimConfig;
    use liferaft_workload::arrivals::uniform_arrivals;
    use liferaft_workload::Trace;

    const LEVEL: u8 = 8;

    fn fixture(n_queries: usize, rate_qps: f64) -> (MaterializedCatalog, TimedTrace) {
        let sky = uniform_sky(2_000, LEVEL, 5);
        let cat = MaterializedCatalog::build(&sky, LEVEL, 100, 4096);
        // Queries anchor on objects of several scattered buckets so that
        // multi-shard maps split them into cross-shard fragments.
        let queries: Vec<CrossMatchQuery> = (0..n_queries)
            .map(|i| {
                let mut positions = Vec::new();
                for k in 0..4u32 {
                    let b = (i as u32 * 3 + k * 7) % 20;
                    let objs = cat.bucket_objects(liferaft_storage::BucketId(b));
                    positions.extend(objs.iter().step_by(20).map(|o| o.pos));
                }
                CrossMatchQuery::from_positions(
                    QueryId(i as u64),
                    &positions,
                    1e-4,
                    LEVEL,
                    Predicate::All,
                )
            })
            .collect();
        let trace = Trace::new(LEVEL, queries);
        let timed = trace.with_arrivals(uniform_arrivals(rate_qps, n_queries));
        (cat, timed)
    }

    fn greedy() -> Box<dyn Scheduler + Send> {
        Box::new(LifeRaftScheduler::greedy(MetricParams::paper()))
    }

    #[test]
    fn both_modes_complete_all_queries_and_agree() {
        let (cat, timed) = fixture(12, 0.5);
        for assignment in [
            ShardAssignment::Contiguous,
            ShardAssignment::Hashed { seed: 3 },
        ] {
            let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
            config.assignment = assignment;
            let rt = ShardedRuntime::new(&cat, config);
            let stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
            let threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
            assert_eq!(stepped.global.queries, 12);
            assert_eq!(stepped.global.outcomes.len(), 12);
            assert_eq!(stepped.global.outcomes, threaded.global.outcomes);
            assert_eq!(stepped.global.batches, threaded.global.batches);
            assert_eq!(stepped.global.io, threaded.global.io);
            assert_eq!(stepped.global.cache, threaded.global.cache);
            assert_eq!(stepped.shards.len(), 4);
            for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
                assert_eq!(a.report.outcomes, b.report.outcomes);
                assert_eq!(a.admission, b.admission);
            }
        }
    }

    #[test]
    fn cross_shard_queries_complete_at_their_last_fragment() {
        let (cat, timed) = fixture(10, 0.5);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.assignment = ShardAssignment::Hashed { seed: 1 };
        let rt = ShardedRuntime::new(&cat, config);
        let report = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        assert!(report.cross_shard_queries > 0, "fixture must split queries");
        // Each query's global completion is the max over its fragments.
        for o in &report.global.outcomes {
            let frag_max = report
                .shards
                .iter()
                .flat_map(|s| s.report.outcomes.iter())
                .filter(|f| f.query == o.query)
                .map(|f| f.completion)
                .max()
                .expect("query has fragments");
            assert_eq!(o.completion, frag_max, "query {}", o.query);
            assert!(o.completion >= o.arrival);
        }
        // Conservation: fragment assignments sum to query assignments.
        let frag_total: u64 = report
            .shards
            .iter()
            .map(|s| s.report.serviced_entries)
            .sum();
        assert_eq!(frag_total, report.global.serviced_entries);
    }

    #[test]
    fn admission_bound_defers_but_preserves_completion() {
        let (cat, timed) = fixture(20, 5.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 2);
        config.admission = AdmissionConfig::bounded(40);
        let rt = ShardedRuntime::new(&cat, config.clone());
        let bounded_stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let bounded_threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(
            bounded_stepped.global.outcomes, bounded_threaded.global.outcomes,
            "backpressure must stay deterministic across modes"
        );
        assert_eq!(bounded_stepped.global.outcomes.len(), 20);
        let deferred: u64 = bounded_stepped
            .shards
            .iter()
            .map(|s| s.admission.deferred_fragments)
            .sum();
        assert!(deferred > 0, "a tight bound must actually defer");
        for s in &bounded_stepped.shards {
            // Peak backlog may overshoot by at most one fragment's worth of
            // entries (the limit is checked before admission), but stays
            // near the bound rather than absorbing the whole trace.
            assert!(s.admission.peak_backlog >= 1);
        }
        // Unbounded admission never defers.
        let mut open = config.clone();
        open.admission = AdmissionConfig::unbounded();
        let rt = ShardedRuntime::new(&cat, open);
        let free = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        assert!(free
            .shards
            .iter()
            .all(|s| s.admission.deferred_fragments == 0));
    }

    #[test]
    fn noshare_runs_sharded() {
        let (cat, timed) = fixture(8, 0.5);
        let rt = ShardedRuntime::new(&cat, RuntimeConfig::contiguous(SimConfig::paper(), 2));
        let report = rt.run(
            &timed,
            &mut |_| Box::new(NoShareScheduler::new()),
            ExecMode::Threaded,
        );
        assert_eq!(report.global.outcomes.len(), 8);
        assert_eq!(report.global.scheduler, "Sharded[2×NoShare]");
        assert!(report.shard_imbalance() >= 1.0);
    }

    #[test]
    fn zero_work_queries_complete_at_arrival_in_both_modes() {
        let (cat, timed) = fixture(6, 0.5);
        // Splice a workless query into the trace.
        let mut queries: Vec<CrossMatchQuery> =
            timed.entries().iter().map(|(_, q)| q.clone()).collect();
        queries.insert(3, CrossMatchQuery::new(QueryId(99), vec![], Predicate::All));
        let timed = Trace::new(LEVEL, queries).with_arrivals(uniform_arrivals(0.5, 7));
        let rt = ShardedRuntime::new(&cat, RuntimeConfig::contiguous(SimConfig::paper(), 4));
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let report = rt.run(&timed, &mut |_| greedy(), mode);
            assert_eq!(report.global.outcomes.len(), 7);
            let o = report
                .global
                .outcomes
                .iter()
                .find(|o| o.query == QueryId(99))
                .expect("workless query completes");
            assert_eq!(o.completion, o.arrival);
            assert_eq!(o.assignments, 0);
        }
        // At 1 shard the runtime reproduces the single engine exactly —
        // including the zero-work corner: same outcome values in the same
        // (push) order, because the aggregation merges by shard clock.
        let mut s = LifeRaftScheduler::greedy(MetricParams::paper());
        let reference = liferaft_sim::Simulation::new(&cat, SimConfig::paper()).run(&timed, &mut s);
        let single = ShardedRuntime::new(&cat, RuntimeConfig::single(SimConfig::paper()));
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let sharded = single.run(&timed, &mut |_| greedy(), mode);
            assert_eq!(reference.outcomes, sharded.global.outcomes, "{mode:?}");
            assert_eq!(reference.batches, sharded.global.batches);
            assert_eq!(reference.io, sharded.global.io);
        }
    }

    #[test]
    fn elastic_modes_agree_and_disabled_matches_static() {
        use crate::config::RebalanceConfig;
        use liferaft_storage::SimDuration;
        let (cat, timed) = fixture(24, 2.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.rebalance = RebalanceConfig::every(SimDuration::from_secs(5));
        config.rebalance.min_imbalance = 1.05;
        let rt = ShardedRuntime::new(&cat, config.clone());
        let stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(stepped.global.outcomes, threaded.global.outcomes);
        assert_eq!(stepped.global.batches, threaded.global.batches);
        assert_eq!(stepped.global.io, threaded.global.io);
        assert_eq!(stepped.global.cache, threaded.global.cache);
        assert_eq!(stepped.rebalance, threaded.rebalance);
        for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
            assert_eq!(a.report.outcomes, b.report.outcomes);
            assert_eq!(a.admission, b.admission);
        }
        let log = stepped.rebalance.as_ref().expect("elastic runs keep a log");
        assert!(!log.records.is_empty(), "boundaries must have fired");
        // Disabled rebalancing reproduces the static runtime bit-for-bit.
        let mut off = config.clone();
        off.rebalance = RebalanceConfig::disabled();
        let rt_off = ShardedRuntime::new(&cat, off);
        let static_run = rt_off.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        assert!(static_run.rebalance.is_none());
        // And an enabled-but-never-triggering policy is behaviour-neutral.
        let mut never = config.clone();
        never.rebalance.min_imbalance = 1e12;
        let rt_never = ShardedRuntime::new(&cat, never);
        let neutral = rt_never.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        assert_eq!(neutral.global.outcomes, static_run.global.outcomes);
        assert_eq!(neutral.global.batches, static_run.global.batches);
        assert_eq!(neutral.global.io, static_run.global.io);
        assert_eq!(
            neutral.rebalance.as_ref().map(RebalanceLog::total_moves),
            Some(0)
        );
    }

    #[test]
    fn elastic_migrations_move_work_and_conserve_everything() {
        use crate::config::RebalanceConfig;
        use liferaft_storage::SimDuration;
        // A hot fixture: all queries anchor on shard 0's five buckets, so it
        // soaks up the whole load until rebalancing spreads it. Spreading the
        // anchors over several buckets matters: the planner refuses a move
        // that would relocate the entire backlog (it must narrow the gap),
        // so a single-bucket hotspot is deliberately immovable.
        let sky = liferaft_catalog::generate::uniform_sky(2_000, LEVEL, 5);
        let cat = MaterializedCatalog::build(&sky, LEVEL, 100, 4096);
        let queries: Vec<CrossMatchQuery> = (0..30)
            .map(|i| {
                let objs = cat.bucket_objects(liferaft_storage::BucketId((i % 5) as u32));
                let positions: Vec<_> = objs.iter().step_by(4).map(|o| o.pos).collect();
                CrossMatchQuery::from_positions(
                    QueryId(i as u64),
                    &positions,
                    1e-4,
                    LEVEL,
                    Predicate::All,
                )
            })
            .collect();
        let timed = Trace::new(LEVEL, queries).with_arrivals(uniform_arrivals(20.0, 30));
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.rebalance = RebalanceConfig::every(SimDuration::from_millis(500));
        config.rebalance.min_imbalance = 1.1;
        let rt = ShardedRuntime::new(&cat, config);
        let stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        let log = stepped.rebalance.as_ref().unwrap();
        assert!(log.total_moves() > 0, "hotspot must trigger migrations");
        assert!(log.moved_entries() > 0);
        assert_eq!(stepped.global.outcomes, threaded.global.outcomes);
        assert_eq!(stepped.rebalance, threaded.rebalance);
        // Conservation survives migration: every assignment serviced once.
        assert_eq!(stepped.global.outcomes.len(), 30);
        let serviced: u64 = stepped
            .shards
            .iter()
            .map(|s| s.report.serviced_entries)
            .sum();
        assert_eq!(serviced, stepped.global.serviced_entries);
        // Work actually left the hot shard: more than one shard serviced.
        let busy = stepped
            .shards
            .iter()
            .filter(|s| s.report.serviced_entries > 0)
            .count();
        assert!(busy > 1, "migration must spread service across shards");
    }

    #[test]
    fn front_door_modes_agree_and_conserve_accounting() {
        use crate::admission::FrontDoorConfig;
        let (cat, timed) = fixture(20, 5.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        // Fixture queries route to ~20 assignments each; a 60-assignment
        // global bound holds at most three in flight, and the 20/21 class
        // split exercises priority ordering between two classes.
        let mut fd = FrontDoorConfig::bounded(60);
        fd.interactive_max_assignments = 20;
        fd.batch_min_assignments = 300;
        fd.max_waiting_assignments = Some(1_500);
        config.front_door = fd;
        let rt = ShardedRuntime::new(&cat, config);
        let stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(stepped.global.outcomes, threaded.global.outcomes);
        assert_eq!(stepped.global.batches, threaded.global.batches);
        assert_eq!(stepped.global.io, threaded.global.io);
        assert_eq!(stepped.global.cache, threaded.global.cache);
        assert_eq!(stepped.front_door, threaded.front_door);
        for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
            assert_eq!(a.report.outcomes, b.report.outcomes);
            assert_eq!(a.admission, b.admission);
        }
        let fd_report = stepped.front_door.as_ref().expect("front-door runs report");
        // Exactly-once terminal accounting: completed + rejected = trace.
        assert_eq!(
            stepped.global.outcomes.len() + fd_report.rejected.len(),
            timed.len()
        );
        let submitted: u64 = fd_report.per_class.iter().map(|c| c.submitted).sum();
        assert_eq!(submitted, timed.len() as u64);
        // A tight global bound on a 5 qps burst must actually defer work.
        let deferred: u64 = fd_report.per_class.iter().map(|c| c.deferred).sum();
        assert!(deferred > 0, "a tight bound must defer some queries");
    }

    #[test]
    fn unbounded_front_door_is_behaviour_neutral() {
        use crate::admission::FrontDoorConfig;
        let (cat, timed) = fixture(12, 2.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        let off = ShardedRuntime::new(&cat, config.clone());
        let baseline = off.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        // Enabled but with no binding limit: every query admits at its
        // arrival instant, reproducing the static runtime bit-for-bit.
        config.front_door = FrontDoorConfig::bounded(u64::MAX);
        let on = ShardedRuntime::new(&cat, config);
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let report = on.run(&timed, &mut |_| greedy(), mode);
            assert_eq!(report.global.outcomes, baseline.global.outcomes, "{mode:?}");
            assert_eq!(report.global.batches, baseline.global.batches);
            assert_eq!(report.global.io, baseline.global.io);
            let fd = report.front_door.expect("enabled door reports");
            assert!(fd.rejected.is_empty());
            assert_eq!(fd.log.total_shed_events(), 0);
        }
    }

    #[test]
    fn injected_stall_slows_its_shard_deterministically() {
        use liferaft_sim::ShardSlowdown;
        use liferaft_storage::SimDuration;
        let (cat, timed) = fixture(16, 2.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 2);
        let baseline_rt = ShardedRuntime::new(&cat, config.clone());
        let baseline = baseline_rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        config.faults.stalls.push(ShardSlowdown {
            shard: 0,
            from: SimTime::ZERO,
            until: SimTime::ZERO + SimDuration::from_secs(1_000_000),
            factor: 8.0,
        });
        let rt = ShardedRuntime::new(&cat, config);
        let stalled = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let stalled_threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(stalled.global.outcomes, stalled_threaded.global.outcomes);
        assert_eq!(stalled.global.batches, stalled_threaded.global.batches);
        // The stalled shard finishes strictly later than before; the other
        // shard's behaviour is untouched (faults are pure per-shard state).
        assert!(
            stalled.shards[0].report.makespan_s > baseline.shards[0].report.makespan_s,
            "an 8× stall must stretch the afflicted shard's makespan"
        );
        assert_eq!(
            stalled.shards[1].report.outcomes,
            baseline.shards[1].report.outcomes
        );
    }

    #[test]
    fn crash_failover_modes_agree_and_conserve_everything() {
        use crate::failover::FailoverConfig;
        use liferaft_sim::ShardOutage;
        use liferaft_storage::SimDuration;
        // A fast trace so every shard carries a backlog when shard 0 dies.
        let (cat, timed) = fixture(24, 8.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.failover = FailoverConfig::recovery();
        config.faults.outages.push(ShardOutage {
            shard: 0,
            down_at: SimTime::ZERO + SimDuration::from_secs(1),
            up_at: SimTime::ZERO + SimDuration::from_secs(6),
        });
        let rt = ShardedRuntime::new(&cat, config);
        let stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(stepped.global.outcomes, threaded.global.outcomes);
        assert_eq!(stepped.global.batches, threaded.global.batches);
        assert_eq!(stepped.global.io, threaded.global.io);
        assert_eq!(stepped.global.cache, threaded.global.cache);
        assert_eq!(stepped.failover, threaded.failover);
        assert_eq!(stepped.rebalance, threaded.rebalance);
        for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
            assert_eq!(a.report.outcomes, b.report.outcomes);
            assert_eq!(a.admission, b.admission);
        }
        // The crash moved real work and every query stayed terminal.
        let fo = stepped.failover.as_ref().expect("failover runs report");
        assert_eq!(fo.log.transitions.len(), 2);
        assert!(
            fo.log.evacuated_entries() > 0,
            "the dead shard's backlog must evacuate"
        );
        assert!(
            fo.log.delivered_redeliveries() > 0,
            "fragments lost in flight must be re-delivered"
        );
        assert!(fo.recovery_lag.is_some());
        assert_eq!(
            stepped.global.outcomes.len() + fo.rejected.len(),
            timed.len(),
            "completed + rejected must equal submitted"
        );
        for c in &fo.per_class {
            assert_eq!(c.completed + c.rejected, c.submitted, "{:?}", c.class);
        }
        // Conservation of service across the evacuation.
        let serviced: u64 = stepped
            .shards
            .iter()
            .map(|s| s.report.serviced_entries)
            .sum();
        assert_eq!(serviced, stepped.global.serviced_entries);
    }

    #[test]
    fn enabled_failover_without_outages_is_behaviour_neutral() {
        use crate::failover::FailoverConfig;
        let (cat, timed) = fixture(16, 2.0);
        let base_cfg = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        let baseline_rt = ShardedRuntime::new(&cat, base_cfg.clone());
        let baseline = baseline_rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let mut config = base_cfg;
        config.failover = FailoverConfig::recovery();
        let rt = ShardedRuntime::new(&cat, config);
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let report = rt.run(&timed, &mut |_| greedy(), mode);
            assert_eq!(report.global.outcomes, baseline.global.outcomes, "{mode:?}");
            assert_eq!(report.global.batches, baseline.global.batches);
            assert_eq!(report.global.io, baseline.global.io);
            assert_eq!(report.global.cache, baseline.global.cache);
            let fo = report.failover.expect("enabled failover reports");
            assert!(fo.log.transitions.is_empty());
            assert!(fo.log.evacuations.is_empty());
            assert!(fo.log.redeliveries.is_empty());
            assert!(fo.rejected.is_empty());
        }
    }

    #[test]
    fn disabled_failover_strands_the_dead_shards_work() {
        use crate::failover::FailoverConfig;
        use liferaft_sim::ShardOutage;
        use liferaft_storage::SimDuration;
        let (cat, timed) = fixture(24, 8.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.faults.outages.push(ShardOutage {
            shard: 0,
            down_at: SimTime::ZERO + SimDuration::from_secs(1),
            up_at: SimTime::ZERO + SimDuration::from_secs(40),
        });
        let off_rt = ShardedRuntime::new(&cat, config.clone());
        let off_stepped = off_rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let off_threaded = off_rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(off_stepped.global.outcomes, off_threaded.global.outcomes);
        assert_eq!(off_stepped.failover, off_threaded.failover);
        // Nothing recovers: no evacuations, no re-deliveries — the stranded
        // work waits for the rejoin, so every query still completes, late.
        let fo = off_stepped.failover.as_ref().expect("outages report");
        assert!(fo.log.evacuations.is_empty());
        assert!(fo.log.redeliveries.is_empty());
        assert_eq!(off_stepped.global.outcomes.len(), timed.len());
        assert!(
            off_stepped.shards[0].report.makespan_s > 39.0,
            "stranded work must wait out the 39 s outage"
        );
        // Recovery beats riding it out: the failover run finishes far
        // earlier than the stranded one.
        let mut on_cfg = config;
        on_cfg.failover = FailoverConfig::recovery();
        let on_rt = ShardedRuntime::new(&cat, on_cfg);
        let on = on_rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        assert!(
            on.global.makespan_s < off_stepped.global.makespan_s,
            "failover must beat stranding (on: {:.2}s, off: {:.2}s)",
            on.global.makespan_s,
            off_stepped.global.makespan_s
        );
    }

    #[test]
    fn failover_composes_with_rebalancing() {
        use crate::config::RebalanceConfig;
        use crate::failover::FailoverConfig;
        use liferaft_sim::ShardOutage;
        use liferaft_storage::SimDuration;
        let (cat, timed) = fixture(24, 8.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.failover = FailoverConfig::recovery();
        config.rebalance = RebalanceConfig::every(SimDuration::from_secs(2));
        config.rebalance.min_imbalance = 1.05;
        config.faults.outages.push(ShardOutage {
            shard: 1,
            down_at: SimTime::ZERO + SimDuration::from_secs(1),
            up_at: SimTime::ZERO + SimDuration::from_secs(5),
        });
        let rt = ShardedRuntime::new(&cat, config);
        let stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(stepped.global.outcomes, threaded.global.outcomes);
        assert_eq!(stepped.global.batches, threaded.global.batches);
        assert_eq!(stepped.global.io, threaded.global.io);
        assert_eq!(stepped.failover, threaded.failover);
        assert_eq!(stepped.rebalance, threaded.rebalance);
        let fo = stepped.failover.as_ref().expect("failover reports");
        let rb = stepped.rebalance.as_ref().expect("elastic runs keep a log");
        assert!(!rb.records.is_empty(), "epoch boundaries must have fired");
        assert_eq!(
            stepped.global.outcomes.len() + fo.rejected.len(),
            timed.len()
        );
    }

    fn flaky_links() -> Vec<liferaft_sim::LinkFault> {
        use liferaft_sim::{LinkDirection, LinkFault};
        use liferaft_storage::SimDuration;
        let horizon = SimTime::ZERO + SimDuration::from_secs(1_000_000);
        let base = LinkFault {
            shard: 0,
            direction: LinkDirection::ToShard,
            from: SimTime::ZERO,
            until: horizon,
            drop_prob: 0.25,
            delay: SimDuration::from_millis(80),
            delay_per_entry: SimDuration::from_micros(15),
            dup_prob: 0.10,
            reorder_prob: 0.15,
            reorder_delay: SimDuration::from_millis(300),
        };
        vec![
            base,
            LinkFault {
                direction: LinkDirection::ToRouter,
                dup_prob: 0.0,
                reorder_prob: 0.0,
                ..base
            },
            LinkFault {
                shard: 1,
                drop_prob: 0.10,
                ..base
            },
        ]
    }

    #[test]
    fn enabled_transport_without_link_faults_is_behaviour_neutral() {
        use crate::transport::TransportConfig;
        use liferaft_telemetry::TelemetryConfig;
        let (cat, timed) = fixture(16, 2.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.telemetry = TelemetryConfig::jsonl();
        let baseline_rt = ShardedRuntime::new(&cat, config.clone());
        let baseline = baseline_rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        config.transport = TransportConfig::reliable();
        let rt = ShardedRuntime::new(&cat, config);
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let report = rt.run(&timed, &mut |_| greedy(), mode);
            assert_eq!(report.global.outcomes, baseline.global.outcomes, "{mode:?}");
            assert_eq!(report.global.batches, baseline.global.batches);
            assert_eq!(report.global.io, baseline.global.io);
            assert_eq!(report.global.cache, baseline.global.cache);
            // The telemetry stream is the same *bytes*: an empty transport
            // log synthesizes no events.
            assert_eq!(
                report.telemetry.as_ref().unwrap().to_jsonl(),
                baseline.telemetry.as_ref().unwrap().to_jsonl(),
                "{mode:?}: fault-free transport must not perturb telemetry"
            );
            let tp = report.transport.expect("enabled transport reports");
            assert!(tp.log.is_empty());
            assert!(tp.rejected.is_empty());
            assert_eq!(tp.hedge_wins + tp.hedge_losses, 0);
        }
    }

    #[test]
    fn lossy_links_stay_deterministic_across_modes() {
        use crate::transport::TransportConfig;
        let (cat, timed) = fixture(24, 4.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.transport = TransportConfig::reliable();
        config.faults.links = flaky_links();
        let rt = ShardedRuntime::new(&cat, config);
        let stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(stepped.global.outcomes, threaded.global.outcomes);
        assert_eq!(stepped.global.batches, threaded.global.batches);
        assert_eq!(stepped.global.io, threaded.global.io);
        assert_eq!(stepped.global.cache, threaded.global.cache);
        assert_eq!(stepped.transport, threaded.transport);
        for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
            assert_eq!(a.report.outcomes, b.report.outcomes);
        }
        // The links actually bit, and the transport reacted.
        let tp = stepped.transport.as_ref().expect("transport reports");
        assert!(!tp.log.drops.is_empty(), "lossy windows must drop messages");
        assert!(
            !tp.log.retransmits.is_empty(),
            "unacked sends must retransmit"
        );
        assert!(
            !tp.log.suppressed.is_empty(),
            "duplicates and late retransmissions must be deduped"
        );
        // Exactly-once terminal outcomes, conserved per class.
        assert_eq!(
            stepped.global.outcomes.len() + tp.rejected.len(),
            timed.len(),
            "completed + rejected must equal submitted"
        );
        for c in &tp.per_class {
            assert_eq!(c.completed + c.rejected, c.submitted, "{:?}", c.class);
        }
    }

    #[test]
    fn certain_loss_rejects_with_conserved_accounting() {
        use crate::transport::TransportConfig;
        use liferaft_sim::{LinkDirection, LinkFault};
        use liferaft_storage::SimDuration;
        let (cat, timed) = fixture(12, 2.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.transport = TransportConfig::reliable();
        // Shard 0's inbound link eats everything, forever: every query with
        // a shard-0 fragment must end in a terminal rejection.
        config.faults.links.push(LinkFault {
            shard: 0,
            direction: LinkDirection::ToShard,
            from: SimTime::ZERO,
            until: SimTime::ZERO + SimDuration::from_secs(1_000_000),
            drop_prob: 1.0,
            delay: SimDuration::ZERO,
            delay_per_entry: SimDuration::ZERO,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
        });
        let rt = ShardedRuntime::new(&cat, config);
        let stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(stepped.global.outcomes, threaded.global.outcomes);
        assert_eq!(stepped.transport, threaded.transport);
        let tp = stepped.transport.as_ref().expect("transport reports");
        assert!(!tp.rejected.is_empty(), "a black-hole link must reject");
        assert_eq!(
            stepped.global.outcomes.len() + tp.rejected.len(),
            timed.len()
        );
        for r in &tp.rejected {
            assert!(r.rejected_at > r.arrival, "rejection follows the budget");
        }
        // Shard 0 serviced nothing — every copy died on the wire.
        assert_eq!(stepped.shards[0].report.serviced_entries, 0);
    }

    #[test]
    fn hedging_races_stragglers_and_stays_deterministic() {
        use crate::transport::TransportConfig;
        use liferaft_sim::ShardSlowdown;
        use liferaft_storage::SimDuration;
        let (cat, timed) = fixture(24, 4.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.transport = TransportConfig::hedged();
        config.transport.hedge.min_samples = 4;
        config.transport.hedge.latency_multiplier = 1.3;
        config.transport.hedge.min_age = SimDuration::from_millis(100);
        // An 8× stall makes shard 0's fragments structural stragglers.
        config.faults.stalls.push(ShardSlowdown {
            shard: 0,
            from: SimTime::ZERO,
            until: SimTime::ZERO + SimDuration::from_secs(1_000_000),
            factor: 8.0,
        });
        let rt = ShardedRuntime::new(&cat, config);
        let stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(stepped.global.outcomes, threaded.global.outcomes);
        assert_eq!(stepped.global.batches, threaded.global.batches);
        assert_eq!(stepped.transport, threaded.transport);
        let tp = stepped.transport.as_ref().expect("transport reports");
        assert!(
            !tp.log.hedges.is_empty(),
            "stalled-shard stragglers must hedge"
        );
        assert_eq!(
            tp.hedge_wins + tp.hedge_losses,
            tp.log.hedges.len() as u64,
            "every hedge race resolves exactly once"
        );
        // Hedge copies never land on a shard already hosting the query.
        for h in &tp.log.hedges {
            assert_ne!(h.from, h.to);
        }
        // Exactly-once completion despite duplicated work.
        assert_eq!(stepped.global.outcomes.len(), timed.len());
        for c in &tp.per_class {
            assert_eq!(c.completed + c.rejected, c.submitted, "{:?}", c.class);
        }
    }

    #[test]
    fn empty_trace_is_trivial() {
        let (cat, _) = fixture(1, 1.0);
        let timed = Trace::new(LEVEL, vec![]).with_arrivals(vec![]);
        let rt = ShardedRuntime::new(&cat, RuntimeConfig::contiguous(SimConfig::paper(), 4));
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let report = rt.run(&timed, &mut |_| greedy(), mode);
            assert_eq!(report.global.queries, 0);
            assert_eq!(report.global.batches, 0);
            assert_eq!(report.total_fragments, 0);
        }
    }
}
