//! The sharded serving runtime: route → execute (stepped or threaded) →
//! aggregate.
//!
//! # Determinism contract
//!
//! Both execution modes produce **bit-identical** [`RuntimeReport`]s for
//! the same (catalog, config, trace, scheduler factory):
//!
//! - Routing is a pure function of the shard map and the trace.
//! - Each shard's behaviour is a pure function of its own fragment stream
//!   (admission is shard-local), so workers never observe each other and
//!   any stepping order yields the same per-shard results.
//! - Aggregation merges per-shard completion streams in the canonical
//!   `(completion time, shard id, shard event order)` order, which is
//!   independent of how the shards were driven.
//!
//! The stepped mode is the reference: a single-threaded virtual-time merge
//! of the shard event queues (earliest next event first, ties by shard id),
//! pinnable by golden tests and steppable under a debugger. The threaded
//! mode runs one `std::thread` worker per shard and collects results over
//! an `mpsc` channel.

use std::collections::HashMap;
use std::sync::mpsc;

use liferaft_catalog::Catalog;
use liferaft_core::Scheduler;
use liferaft_metrics::Summary;
use liferaft_query::{tracker::QueryOutcome, QueryId};
use liferaft_sim::RunReport;
use liferaft_storage::{cache::CacheStats, IoStats, SimTime};
use liferaft_workload::TimedTrace;

use crate::config::{ExecMode, RuntimeConfig};
use crate::router::route;
use crate::shard::{ShardId, ShardMap};
use crate::worker::{ShardRun, ShardWorker};

/// The outcome of one sharded runtime execution.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// The query-level global summary, shaped exactly like a single-engine
    /// [`RunReport`]: counters are summed across shards, response statistics
    /// are computed over whole-query completions (a cross-shard query
    /// completes when its last fragment finishes), and `outcomes` are in the
    /// canonical merged completion order.
    pub global: RunReport,
    /// Per-shard runs, in shard order.
    pub shards: Vec<ShardRun>,
    /// Queries that split across more than one shard.
    pub cross_shard_queries: usize,
    /// Total fragments routed.
    pub total_fragments: usize,
}

impl RuntimeReport {
    /// Virtual-time load imbalance across shards: max over mean per-shard
    /// busy makespan (1.0 = perfectly balanced; 0 if no shard did work).
    pub fn shard_imbalance(&self) -> f64 {
        let spans: Vec<f64> = self.shards.iter().map(|s| s.report.makespan_s).collect();
        let max = spans.iter().copied().fold(0.0, f64::max);
        let mean = spans.iter().sum::<f64>() / spans.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            0.0
        }
    }
}

/// A sharded serving runtime over one catalog.
///
/// Reentrant like [`liferaft_sim::Simulation`]: every `run` replays a trace
/// from scratch with fresh per-shard state.
#[derive(Debug, Clone)]
pub struct ShardedRuntime<'a, C: Catalog + Sync + ?Sized> {
    catalog: &'a C,
    config: RuntimeConfig,
    map: ShardMap,
}

impl<'a, C: Catalog + Sync + ?Sized> ShardedRuntime<'a, C> {
    /// Creates a runtime over `catalog` with the given configuration.
    pub fn new(catalog: &'a C, config: RuntimeConfig) -> Self {
        config.validate();
        let map = ShardMap::new(
            catalog.partition().num_buckets(),
            config.n_shards,
            config.assignment,
        );
        ShardedRuntime {
            catalog,
            config,
            map,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The bucket → shard map in force.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Replays `trace`, scheduling shard `i` with `mk_scheduler(i)`.
    ///
    /// # Panics
    /// Panics if any shard's scheduler violates its contract, or if the run
    /// ends with incomplete queries — both are bugs that must fail loudly.
    pub fn run(
        &self,
        trace: &TimedTrace,
        mk_scheduler: &mut dyn FnMut(usize) -> Box<dyn Scheduler + Send>,
        mode: ExecMode,
    ) -> RuntimeReport {
        let routing = route(self.catalog.partition(), &self.map, trace);
        let total_fragments = routing.total_fragments();
        let fragments_of = routing.fragments_of;
        let assignments_of = routing.assignments_of;
        let cross_shard_queries = routing.cross_shard_queries;

        let workers: Vec<ShardWorker<'_, C>> = routing
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, fragments)| {
                ShardWorker::new(
                    ShardId(i as u32),
                    self.catalog,
                    self.config.sim,
                    self.config.admission,
                    trace.entries(),
                    fragments,
                    mk_scheduler(i),
                )
            })
            .collect();

        let shard_runs = match mode {
            ExecMode::Stepped => run_stepped(workers),
            ExecMode::Threaded => run_threaded(workers),
        };

        let global = aggregate(trace, &fragments_of, &assignments_of, &shard_runs);
        RuntimeReport {
            global,
            shards: shard_runs,
            cross_shard_queries,
            total_fragments,
        }
    }
}

/// The reference executor: a deterministic virtual-time merge. Repeatedly
/// advance the shard with the earliest next event (ties broken by shard id)
/// by exactly one event until every shard has drained.
fn run_stepped<C: Catalog + ?Sized>(mut workers: Vec<ShardWorker<'_, C>>) -> Vec<ShardRun> {
    loop {
        let mut earliest: Option<(SimTime, usize)> = None;
        for (i, w) in workers.iter().enumerate() {
            if let Some(t) = w.next_time() {
                // Strict `<` keeps the lowest shard index on time ties.
                if earliest.map_or(true, |(bt, _)| t < bt) {
                    earliest = Some((t, i));
                }
            }
        }
        let Some((_, i)) = earliest else { break };
        let advanced = workers[i].step();
        debug_assert!(advanced, "a shard with a next event must advance");
    }
    workers.into_iter().map(ShardWorker::into_run).collect()
}

/// The parallel executor: one OS thread per shard, fragment streams fixed
/// up-front, finished runs returned over an `mpsc` channel and re-ordered
/// by shard id.
fn run_threaded<C: Catalog + Sync + ?Sized>(workers: Vec<ShardWorker<'_, C>>) -> Vec<ShardRun> {
    let n = workers.len();
    let (tx, rx) = mpsc::channel::<(usize, ShardRun)>();
    std::thread::scope(|scope| {
        for (i, mut worker) in workers.into_iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                while worker.step() {}
                tx.send((i, worker.into_run()))
                    .expect("the driver outlives its workers");
            });
        }
    });
    drop(tx);
    crate::sweep::collect_indexed(rx, n)
}

/// Folds per-shard fragment runs into the query-level global report.
///
/// Fragment completions are merged in the canonical `(shard clock, shard,
/// shard event order)` order; a query completes at the merged position of
/// its last fragment, with completion *time* the max over its fragments
/// (for a zero-work query's single empty fragment: its arrival).
fn aggregate(
    trace: &TimedTrace,
    fragments_of: &[u32],
    assignments_of: &[u64],
    shard_runs: &[ShardRun],
) -> RunReport {
    let entries = trace.entries();
    let index_of: HashMap<QueryId, usize> = entries
        .iter()
        .enumerate()
        .map(|(i, (_, q))| (q.id, i))
        .collect();

    // Canonical merged completion stream. Every query has at least one
    // fragment (zero-work queries ship an empty fragment to shard 0), so
    // per-shard outcomes cover the whole trace. The merge key is the
    // shard's *running clock* (the prefix-max of completion times — the
    // shard-local virtual time at which each outcome was recorded), not the
    // raw completion: a zero-work fragment completes at its arrival but is
    // recorded at the following batch boundary, and keying on the clock
    // preserves each shard's record order — which is exactly the
    // single-engine push order, so a 1-shard runtime reproduces
    // `Simulation`'s outcome sequence bit-for-bit.
    let mut events: Vec<(SimTime, u32, u32, QueryId, SimTime)> = Vec::new();
    for run in shard_runs {
        let mut clock = SimTime::ZERO;
        for (seq, o) in run.report.outcomes.iter().enumerate() {
            clock = clock.max(o.completion);
            events.push((clock, run.shard.0, seq as u32, o.query, o.completion));
        }
    }
    events.sort_unstable_by_key(|&(clock, shard, seq, _, _)| (clock, shard, seq));

    let mut remaining: Vec<u32> = fragments_of.to_vec();
    let mut last_done: Vec<SimTime> = vec![SimTime::ZERO; entries.len()];
    let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(entries.len());
    for (_, _, _, query, completion) in events {
        let i = index_of[&query];
        remaining[i] -= 1;
        last_done[i] = last_done[i].max(completion);
        if remaining[i] > 0 {
            continue; // more fragments outstanding elsewhere
        }
        outcomes.push(QueryOutcome {
            query,
            // A query completes when its last fragment finishes; for the
            // zero-work single-fragment case this is its arrival.
            arrival: entries[i].0,
            completion: last_done[i],
            assignments: assignments_of[i],
        });
    }
    assert_eq!(
        outcomes.len(),
        entries.len(),
        "every routed query must complete exactly once"
    );

    let response = Summary::from_samples(
        outcomes
            .iter()
            .map(|o| o.response_time().as_secs_f64())
            .collect(),
    );
    let makespan_s = outcomes
        .iter()
        .map(|o| o.completion.as_secs_f64())
        .fold(0.0, f64::max);
    let throughput_qps = if makespan_s > 0.0 {
        entries.len() as f64 / makespan_s
    } else {
        0.0
    };

    let mut cache = CacheStats::default();
    let mut io = IoStats::new();
    let (mut batches, mut scan_batches, mut indexed_batches) = (0u64, 0u64, 0u64);
    let (mut serviced_entries, mut cache_serviced_entries, mut total_matches) = (0u64, 0u64, 0u64);
    let (mut frontier_picks, mut fallback_picks) = (0u64, 0u64);
    let mut max_wait_ms = 0.0f64;
    for run in shard_runs {
        let r = &run.report;
        cache.merge(&r.cache);
        io.merge(&r.io);
        batches += r.batches;
        scan_batches += r.scan_batches;
        indexed_batches += r.indexed_batches;
        serviced_entries += r.serviced_entries;
        cache_serviced_entries += r.cache_serviced_entries;
        frontier_picks += r.frontier_picks;
        fallback_picks += r.fallback_picks;
        total_matches += r.total_matches;
        max_wait_ms = max_wait_ms.max(r.max_wait_ms);
    }

    let scheduler = format!(
        "Sharded[{}×{}]",
        shard_runs.len(),
        shard_runs
            .first()
            .map(|r| r.report.scheduler.as_str())
            .unwrap_or("∅")
    );
    RunReport {
        scheduler,
        queries: entries.len(),
        makespan_s,
        throughput_qps,
        response,
        cache,
        io,
        batches,
        scan_batches,
        indexed_batches,
        serviced_entries,
        cache_serviced_entries,
        frontier_picks,
        fallback_picks,
        total_matches,
        max_wait_ms,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdmissionConfig;
    use crate::shard::ShardAssignment;
    use liferaft_catalog::{generate::uniform_sky, MaterializedCatalog};
    use liferaft_core::{LifeRaftScheduler, MetricParams, NoShareScheduler};
    use liferaft_query::{CrossMatchQuery, Predicate};
    use liferaft_sim::SimConfig;
    use liferaft_workload::arrivals::uniform_arrivals;
    use liferaft_workload::Trace;

    const LEVEL: u8 = 8;

    fn fixture(n_queries: usize, rate_qps: f64) -> (MaterializedCatalog, TimedTrace) {
        let sky = uniform_sky(2_000, LEVEL, 5);
        let cat = MaterializedCatalog::build(&sky, LEVEL, 100, 4096);
        // Queries anchor on objects of several scattered buckets so that
        // multi-shard maps split them into cross-shard fragments.
        let queries: Vec<CrossMatchQuery> = (0..n_queries)
            .map(|i| {
                let mut positions = Vec::new();
                for k in 0..4u32 {
                    let b = (i as u32 * 3 + k * 7) % 20;
                    let objs = cat.bucket_objects(liferaft_storage::BucketId(b));
                    positions.extend(objs.iter().step_by(20).map(|o| o.pos));
                }
                CrossMatchQuery::from_positions(
                    QueryId(i as u64),
                    &positions,
                    1e-4,
                    LEVEL,
                    Predicate::All,
                )
            })
            .collect();
        let trace = Trace::new(LEVEL, queries);
        let timed = trace.with_arrivals(uniform_arrivals(rate_qps, n_queries));
        (cat, timed)
    }

    fn greedy() -> Box<dyn Scheduler + Send> {
        Box::new(LifeRaftScheduler::greedy(MetricParams::paper()))
    }

    #[test]
    fn both_modes_complete_all_queries_and_agree() {
        let (cat, timed) = fixture(12, 0.5);
        for assignment in [
            ShardAssignment::Contiguous,
            ShardAssignment::Hashed { seed: 3 },
        ] {
            let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
            config.assignment = assignment;
            let rt = ShardedRuntime::new(&cat, config);
            let stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
            let threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
            assert_eq!(stepped.global.queries, 12);
            assert_eq!(stepped.global.outcomes.len(), 12);
            assert_eq!(stepped.global.outcomes, threaded.global.outcomes);
            assert_eq!(stepped.global.batches, threaded.global.batches);
            assert_eq!(stepped.global.io, threaded.global.io);
            assert_eq!(stepped.global.cache, threaded.global.cache);
            assert_eq!(stepped.shards.len(), 4);
            for (a, b) in stepped.shards.iter().zip(&threaded.shards) {
                assert_eq!(a.report.outcomes, b.report.outcomes);
                assert_eq!(a.admission, b.admission);
            }
        }
    }

    #[test]
    fn cross_shard_queries_complete_at_their_last_fragment() {
        let (cat, timed) = fixture(10, 0.5);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        config.assignment = ShardAssignment::Hashed { seed: 1 };
        let rt = ShardedRuntime::new(&cat, config);
        let report = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        assert!(report.cross_shard_queries > 0, "fixture must split queries");
        // Each query's global completion is the max over its fragments.
        for o in &report.global.outcomes {
            let frag_max = report
                .shards
                .iter()
                .flat_map(|s| s.report.outcomes.iter())
                .filter(|f| f.query == o.query)
                .map(|f| f.completion)
                .max()
                .expect("query has fragments");
            assert_eq!(o.completion, frag_max, "query {}", o.query);
            assert!(o.completion >= o.arrival);
        }
        // Conservation: fragment assignments sum to query assignments.
        let frag_total: u64 = report
            .shards
            .iter()
            .map(|s| s.report.serviced_entries)
            .sum();
        assert_eq!(frag_total, report.global.serviced_entries);
    }

    #[test]
    fn admission_bound_defers_but_preserves_completion() {
        let (cat, timed) = fixture(20, 5.0);
        let mut config = RuntimeConfig::contiguous(SimConfig::paper(), 2);
        config.admission = AdmissionConfig::bounded(40);
        let rt = ShardedRuntime::new(&cat, config);
        let bounded_stepped = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        let bounded_threaded = rt.run(&timed, &mut |_| greedy(), ExecMode::Threaded);
        assert_eq!(
            bounded_stepped.global.outcomes, bounded_threaded.global.outcomes,
            "backpressure must stay deterministic across modes"
        );
        assert_eq!(bounded_stepped.global.outcomes.len(), 20);
        let deferred: u64 = bounded_stepped
            .shards
            .iter()
            .map(|s| s.admission.deferred_fragments)
            .sum();
        assert!(deferred > 0, "a tight bound must actually defer");
        for s in &bounded_stepped.shards {
            // Peak backlog may overshoot by at most one fragment's worth of
            // entries (the limit is checked before admission), but stays
            // near the bound rather than absorbing the whole trace.
            assert!(s.admission.peak_backlog >= 1);
        }
        // Unbounded admission never defers.
        let mut open = config;
        open.admission = AdmissionConfig::unbounded();
        let rt = ShardedRuntime::new(&cat, open);
        let free = rt.run(&timed, &mut |_| greedy(), ExecMode::Stepped);
        assert!(free
            .shards
            .iter()
            .all(|s| s.admission.deferred_fragments == 0));
    }

    #[test]
    fn noshare_runs_sharded() {
        let (cat, timed) = fixture(8, 0.5);
        let rt = ShardedRuntime::new(&cat, RuntimeConfig::contiguous(SimConfig::paper(), 2));
        let report = rt.run(
            &timed,
            &mut |_| Box::new(NoShareScheduler::new()),
            ExecMode::Threaded,
        );
        assert_eq!(report.global.outcomes.len(), 8);
        assert_eq!(report.global.scheduler, "Sharded[2×NoShare]");
        assert!(report.shard_imbalance() >= 1.0);
    }

    #[test]
    fn zero_work_queries_complete_at_arrival_in_both_modes() {
        let (cat, timed) = fixture(6, 0.5);
        // Splice a workless query into the trace.
        let mut queries: Vec<CrossMatchQuery> =
            timed.entries().iter().map(|(_, q)| q.clone()).collect();
        queries.insert(3, CrossMatchQuery::new(QueryId(99), vec![], Predicate::All));
        let timed = Trace::new(LEVEL, queries).with_arrivals(uniform_arrivals(0.5, 7));
        let rt = ShardedRuntime::new(&cat, RuntimeConfig::contiguous(SimConfig::paper(), 4));
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let report = rt.run(&timed, &mut |_| greedy(), mode);
            assert_eq!(report.global.outcomes.len(), 7);
            let o = report
                .global
                .outcomes
                .iter()
                .find(|o| o.query == QueryId(99))
                .expect("workless query completes");
            assert_eq!(o.completion, o.arrival);
            assert_eq!(o.assignments, 0);
        }
        // At 1 shard the runtime reproduces the single engine exactly —
        // including the zero-work corner: same outcome values in the same
        // (push) order, because the aggregation merges by shard clock.
        let mut s = LifeRaftScheduler::greedy(MetricParams::paper());
        let reference = liferaft_sim::Simulation::new(&cat, SimConfig::paper()).run(&timed, &mut s);
        let single = ShardedRuntime::new(&cat, RuntimeConfig::single(SimConfig::paper()));
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let sharded = single.run(&timed, &mut |_| greedy(), mode);
            assert_eq!(reference.outcomes, sharded.global.outcomes, "{mode:?}");
            assert_eq!(reference.batches, sharded.global.batches);
            assert_eq!(reference.io, sharded.global.io);
        }
    }

    #[test]
    fn empty_trace_is_trivial() {
        let (cat, _) = fixture(1, 1.0);
        let timed = Trace::new(LEVEL, vec![]).with_arrivals(vec![]);
        let rt = ShardedRuntime::new(&cat, RuntimeConfig::contiguous(SimConfig::paper(), 4));
        for mode in [ExecMode::Stepped, ExecMode::Threaded] {
            let report = rt.run(&timed, &mut |_| greedy(), mode);
            assert_eq!(report.global.queries, 0);
            assert_eq!(report.global.batches, 0);
            assert_eq!(report.total_fragments, 0);
        }
    }
}
