//! Runtime configuration: shard layout, admission control, execution mode.

use liferaft_sim::SimConfig;

use crate::shard::ShardAssignment;

/// Per-shard admission control (backpressure) policy.
///
/// Each shard owns a bounded ingress: once its queued (object × bucket)
/// backlog reaches `max_backlog_entries`, newly arriving fragments park in
/// the shard's ingress queue and are admitted — in arrival order — as batch
/// executions drain the backlog below the limit. Ages still reference the
/// *true* arrival instants, so deferral shows up as response time, exactly
/// like queueing at a loaded server. Admission is a pure function of the
/// shard's own input stream, which is what keeps threaded execution
/// bit-identical to the stepped merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionConfig {
    /// Queued-entry backlog at which a shard stops admitting fragments
    /// (`None` = unbounded). The check runs *before* each admission, so a
    /// fragment larger than the limit still admits once the backlog drains
    /// to zero — bounded admission can never deadlock.
    pub max_backlog_entries: Option<u64>,
}

impl AdmissionConfig {
    /// Unbounded admission (the default).
    pub fn unbounded() -> Self {
        AdmissionConfig::default()
    }

    /// Backpressure at `entries` queued (object × bucket) entries per shard.
    pub fn bounded(entries: u64) -> Self {
        AdmissionConfig {
            max_backlog_entries: Some(entries),
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        if let Some(limit) = self.max_backlog_entries {
            assert!(limit > 0, "a zero backlog limit would admit nothing");
        }
    }
}

/// Knobs of one sharded runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Per-shard simulation configuration (cost model, cache size, joins).
    /// Each shard owns its *own* bucket cache of `sim.cache_buckets`.
    pub sim: SimConfig,
    /// Number of shards the bucket space is partitioned across.
    pub n_shards: u32,
    /// Bucket → shard assignment policy.
    pub assignment: ShardAssignment,
    /// Per-shard admission control.
    pub admission: AdmissionConfig,
}

impl RuntimeConfig {
    /// A single-shard runtime — behaviourally identical to [`liferaft_sim::Simulation`].
    pub fn single(sim: SimConfig) -> Self {
        RuntimeConfig {
            sim,
            n_shards: 1,
            assignment: ShardAssignment::Contiguous,
            admission: AdmissionConfig::unbounded(),
        }
    }

    /// `n` contiguous shards with unbounded admission.
    pub fn contiguous(sim: SimConfig, n_shards: u32) -> Self {
        RuntimeConfig {
            sim,
            n_shards,
            assignment: ShardAssignment::Contiguous,
            admission: AdmissionConfig::unbounded(),
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        self.sim.validate();
        self.admission.validate();
        assert!(self.n_shards > 0, "need at least one shard");
    }
}

/// How the shard pool executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Deterministic single-threaded virtual-time merge of the shard event
    /// queues: at each step the shard with the earliest next event (ties by
    /// shard id) advances one event. Pinnable by golden tests; the
    /// reference semantics.
    Stepped,
    /// One `std::thread` worker per shard, results returned over `mpsc`.
    /// Bit-identical to [`Stepped`](Self::Stepped): shards interact only
    /// through the up-front routing and the post-hoc aggregation, both of
    /// which are independent of interleaving.
    Threaded,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        RuntimeConfig::single(SimConfig::paper()).validate();
        RuntimeConfig::contiguous(SimConfig::paper(), 8).validate();
        let mut c = RuntimeConfig::single(SimConfig::paper());
        c.admission = AdmissionConfig::bounded(1_000);
        c.validate();
        assert_eq!(AdmissionConfig::unbounded().max_backlog_entries, None);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let mut c = RuntimeConfig::single(SimConfig::paper());
        c.n_shards = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "zero backlog")]
    fn zero_backlog_rejected() {
        AdmissionConfig::bounded(0).validate();
    }
}
