//! Runtime configuration: shard layout, admission control, rebalancing,
//! fault injection, execution mode.

use liferaft_sim::{LinkDirection, LinkFault, ShardOutage, ShardSlowdown, SimConfig};
use liferaft_storage::{SimDuration, SimTime};
use liferaft_telemetry::TelemetryConfig;

use crate::admission::FrontDoorConfig;
use crate::failover::FailoverConfig;
use crate::shard::ShardAssignment;
use crate::transport::TransportConfig;

/// Per-shard admission control (backpressure) policy.
///
/// Each shard owns a bounded ingress: once its queued (object × bucket)
/// backlog reaches `max_backlog_entries`, newly arriving fragments park in
/// the shard's ingress queue and are admitted — in arrival order — as batch
/// executions drain the backlog below the limit. Ages still reference the
/// *true* arrival instants, so deferral shows up as response time, exactly
/// like queueing at a loaded server. Admission is a pure function of the
/// shard's own input stream, which is what keeps threaded execution
/// bit-identical to the stepped merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionConfig {
    /// Queued-entry backlog at which a shard stops admitting fragments
    /// (`None` = unbounded). The check runs *before* each admission, so a
    /// fragment larger than the limit still admits once the backlog drains
    /// to zero — bounded admission can never deadlock.
    pub max_backlog_entries: Option<u64>,
}

impl AdmissionConfig {
    /// Unbounded admission (the default).
    pub fn unbounded() -> Self {
        AdmissionConfig::default()
    }

    /// Backpressure at `entries` queued (object × bucket) entries per shard.
    pub fn bounded(entries: u64) -> Self {
        AdmissionConfig {
            max_backlog_entries: Some(entries),
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        if let Some(limit) = self.max_backlog_entries {
            assert!(limit > 0, "a zero backlog limit would admit nothing");
        }
    }
}

/// Elastic-rebalancing policy: at every `epoch` of virtual time, a
/// controller inspects per-shard load and lets underloaded shards adopt hot
/// buckets from overloaded ones.
///
/// Decisions are computed once, in the deterministic stepped merge, and
/// recorded as an epoch-indexed [`RebalanceLog`](crate::rebalance::RebalanceLog)
/// that the threaded executor replays verbatim — so elastic runs stay
/// bit-identical across execution modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Master switch. Disabled (the default) leaves the static shard map in
    /// force and reproduces the non-elastic runtime bit-for-bit.
    pub enabled: bool,
    /// Virtual-time cadence of rebalance decisions (boundaries at
    /// `k × epoch`, k = 1, 2, …).
    pub epoch: SimDuration,
    /// Trigger threshold: rebalance only when the most-loaded shard's queued
    /// backlog exceeds `min_imbalance ×` the mean backlog (≥ 1.0).
    pub min_imbalance: f64,
    /// Upper bound on bucket moves per epoch boundary.
    pub max_moves_per_epoch: u32,
    /// Fixed virtual-time cost charged to the *destination* shard per
    /// migrated bucket (control-plane handshake, residency handoff).
    pub migration_fixed: SimDuration,
    /// Additional destination cost per migrated (object × bucket) entry
    /// (queue-state transfer is not free).
    pub migration_per_entry: SimDuration,
    /// Carry cache residency with the bucket: evict it at the source and
    /// warm it into the destination's cache on arrival.
    pub warm_residency: bool,
}

impl RebalanceConfig {
    /// Rebalancing off — the static-map behaviour (and the `Default`).
    pub fn disabled() -> Self {
        RebalanceConfig {
            enabled: false,
            epoch: SimDuration::ZERO,
            min_imbalance: 1.5,
            max_moves_per_epoch: 4,
            migration_fixed: SimDuration::from_millis(20),
            migration_per_entry: SimDuration::from_micros(50),
            warm_residency: true,
        }
    }

    /// Rebalancing on with boundaries every `epoch` and default policy
    /// knobs (1.5× imbalance trigger, ≤ 4 moves per epoch, warm handoff).
    ///
    /// ```
    /// use liferaft_runtime::RebalanceConfig;
    /// use liferaft_storage::SimDuration;
    ///
    /// let mut rb = RebalanceConfig::every(SimDuration::from_secs(5));
    /// assert!(rb.enabled);
    /// // Tighten the trigger so milder hotspots still shed buckets.
    /// rb.min_imbalance = 1.4;
    /// assert!(!RebalanceConfig::disabled().enabled);
    /// ```
    pub fn every(epoch: SimDuration) -> Self {
        RebalanceConfig {
            enabled: true,
            epoch,
            ..Self::disabled()
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        if self.enabled {
            assert!(
                self.epoch > SimDuration::ZERO,
                "a zero rebalance epoch would fire boundaries forever"
            );
            assert!(
                self.min_imbalance >= 1.0,
                "an imbalance trigger below 1.0 is always on"
            );
            assert!(
                self.max_moves_per_epoch > 0,
                "enabled rebalancing must allow at least one move"
            );
        }
    }
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Injected faults: shard slowdown, outage, and link-fault windows the
/// runtime applies during execution (the delivery mechanism of the
/// [`ShardStall`](liferaft_sim::ScenarioKind::ShardStall),
/// [`ShardCrash`](liferaft_sim::ScenarioKind::ShardCrash), and
/// [`LossyLink`](liferaft_sim::ScenarioKind::LossyLink) scenarios).
///
/// Slowdowns and outages are *pure per-shard state*: a slowdown scales the
/// virtual-time cost of every batch the afflicted shard **starts** inside
/// the window, and an outage freezes the shard's clock until `up_at` (and
/// wipes its cache — a crash loses residency), so the injected run stays a
/// pure function of each shard's own fragment stream and threaded
/// execution remains bit-identical to the stepped merge. Link faults
/// degrade the router↔shard hop itself and are consumed by the transport
/// planner ([`RuntimeConfig::transport`]), which resolves every drop,
/// delay, duplication, and reordering draw *before* execution.
///
/// # Which fault combinations compose
///
/// - **Stalls × stalls / outages × outages / stalls × outages** on the
///   same shard: compose as long as windows are pairwise disjoint — each
///   instant has one well-defined fault state.
/// - **Stalls × link faults**: compose freely, including on the same shard
///   over overlapping windows — a slow shard behind a flaky link is exactly
///   the straggler regime hedging exists for. (Link windows constrain the
///   *hop*, stall windows the *shard*; they are different resources.)
/// - **Outages × link faults**: windows on the same shard may overlap
///   partially (a link can flap while a shard bounces), but a link fault
///   lying *entirely* inside an outage window is rejected — no message
///   crosses a dead shard's link, so the window could never fire and is
///   almost certainly a plan bug. Note the *transport* controller itself
///   currently requires an outage-free plan
///   ([`RuntimeConfig::validate`]); the composition rule keeps
///   [`FaultPlan`] forward-compatible.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Injected shard slowdown windows.
    pub stalls: Vec<ShardSlowdown>,
    /// Injected shard outage windows; recovery behaviour is governed by
    /// [`RuntimeConfig::failover`].
    pub outages: Vec<ShardOutage>,
    /// Injected router↔shard link-fault windows; delivery guarantees on
    /// top of them are governed by [`RuntimeConfig::transport`].
    pub links: Vec<LinkFault>,
}

impl FaultPlan {
    /// No injected faults (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Slowdown windows afflicting shard `shard`, as
    /// `(from, until, factor)` triples.
    pub fn for_shard(&self, shard: u32) -> Vec<(SimTime, SimTime, f64)> {
        self.stalls
            .iter()
            .filter(|s| s.shard == shard)
            .map(|s| (s.from, s.until, s.factor))
            .collect()
    }

    /// Outage windows afflicting shard `shard`, as `(down_at, up_at)`
    /// pairs sorted by start.
    pub fn outages_for_shard(&self, shard: u32) -> Vec<(SimTime, SimTime)> {
        let mut windows: Vec<(SimTime, SimTime)> = self
            .outages
            .iter()
            .filter(|o| o.shard == shard)
            .map(|o| (o.down_at, o.up_at))
            .collect();
        windows.sort_unstable();
        windows
    }

    /// The link-fault window (if any) covering instant `at` on shard
    /// `shard` in `direction`. Windows per (shard, direction) are disjoint
    /// by [`validate`](Self::validate), so the match is unique.
    pub fn link_at(&self, shard: u32, direction: LinkDirection, at: SimTime) -> Option<&LinkFault> {
        self.links
            .iter()
            .find(|l| l.shard == shard && l.direction == direction && l.from <= at && at < l.until)
    }

    /// Validates invariants against the pool size: every window must be
    /// non-empty (`end > start`), target an existing shard, and fault
    /// windows on the same shard — stalls and outages alike — must be
    /// pairwise disjoint. Link-fault windows are validated per
    /// (shard, direction): probabilities in `[0, 1]`, disjoint spans, and
    /// no window lying entirely inside an outage of the same shard (see
    /// the composition rules on [`FaultPlan`]).
    pub fn validate(&self, n_shards: u32) {
        for l in &self.links {
            assert!(
                l.shard < n_shards,
                "link fault targets shard {} of {n_shards}",
                l.shard
            );
            assert!(l.until > l.from, "link fault window must be non-empty");
            for (p, what) in [
                (l.drop_prob, "drop"),
                (l.dup_prob, "duplication"),
                (l.reorder_prob, "reorder"),
            ] {
                assert!(
                    p.is_finite() && (0.0..=1.0).contains(&p),
                    "link {what} probability {p} outside [0, 1] on shard {}",
                    l.shard
                );
            }
            // A link fault swallowed whole by an outage could never fire:
            // no message crosses a dead shard's link. Partial overlap is
            // fine — links can flap while a shard bounces.
            for o in self.outages.iter().filter(|o| o.shard == l.shard) {
                assert!(
                    !(o.down_at <= l.from && l.until <= o.up_at),
                    "link fault on shard {} lies entirely within an outage \
                     window — it could never fire",
                    l.shard
                );
            }
        }
        // One link state per (shard, direction, instant).
        for shard in 0..n_shards {
            for direction in [LinkDirection::ToShard, LinkDirection::ToRouter] {
                let mut windows: Vec<(SimTime, SimTime)> = self
                    .links
                    .iter()
                    .filter(|l| l.shard == shard && l.direction == direction)
                    .map(|l| (l.from, l.until))
                    .collect();
                windows.sort_unstable();
                for pair in windows.windows(2) {
                    assert!(
                        pair[1].0 >= pair[0].1,
                        "overlapping link fault windows on shard {shard} \
                         ({direction:?})"
                    );
                }
            }
        }
        for s in &self.stalls {
            assert!(
                s.shard < n_shards,
                "stall targets shard {} of {n_shards}",
                s.shard
            );
            assert!(s.until > s.from, "stall window must be non-empty");
            assert!(
                s.factor.is_finite() && s.factor >= 1.0,
                "a slowdown factor below 1.0 would speed the shard up"
            );
        }
        for o in &self.outages {
            assert!(
                o.shard < n_shards,
                "outage targets shard {} of {n_shards}",
                o.shard
            );
            assert!(o.up_at > o.down_at, "outage window must be non-empty");
        }
        // One fault state per (shard, instant): windows of either kind on
        // the same shard must not overlap.
        for shard in 0..n_shards {
            let mut windows: Vec<(SimTime, SimTime, &str)> = Vec::new();
            windows.extend(
                self.stalls
                    .iter()
                    .filter(|s| s.shard == shard)
                    .map(|s| (s.from, s.until, "stall")),
            );
            windows.extend(
                self.outages
                    .iter()
                    .filter(|o| o.shard == shard)
                    .map(|o| (o.down_at, o.up_at, "outage")),
            );
            windows.sort_unstable_by_key(|&(from, until, _)| (from, until));
            for pair in windows.windows(2) {
                let (_, until, ka) = pair[0];
                let (from, _, kb) = pair[1];
                assert!(
                    from >= until,
                    "overlapping {ka}/{kb} fault windows on shard {shard}"
                );
            }
        }
    }
}

/// Knobs of one sharded runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Per-shard simulation configuration (cost model, cache size, joins).
    /// Each shard owns its *own* bucket cache of `sim.cache_buckets`.
    pub sim: SimConfig,
    /// Number of shards the bucket space is partitioned across.
    pub n_shards: u32,
    /// Bucket → shard assignment policy (the *base* map when rebalancing).
    pub assignment: ShardAssignment,
    /// Per-shard admission control.
    pub admission: AdmissionConfig,
    /// Epoch-boundary elastic rebalancing (off by default).
    pub rebalance: RebalanceConfig,
    /// Router-level global admission (off by default).
    pub front_door: FrontDoorConfig,
    /// Injected shard faults (none by default).
    pub faults: FaultPlan,
    /// Crash-recovery policy for injected outages (off by default: a dead
    /// shard's work strands until it rejoins).
    pub failover: FailoverConfig,
    /// Modeled router↔shard transport: retransmit/dedup delivery over the
    /// injected [`FaultPlan::links`] plus optional straggler hedging (off
    /// by default: the hop is a perfect lossless teleport).
    pub transport: TransportConfig,
    /// Flight-recorder configuration (off by default — and behaviour-neutral
    /// when on: recording never perturbs scheduling, costs, or reports).
    pub telemetry: TelemetryConfig,
}

impl RuntimeConfig {
    /// A single-shard runtime — behaviourally identical to [`liferaft_sim::Simulation`].
    pub fn single(sim: SimConfig) -> Self {
        RuntimeConfig {
            sim,
            n_shards: 1,
            assignment: ShardAssignment::Contiguous,
            admission: AdmissionConfig::unbounded(),
            rebalance: RebalanceConfig::disabled(),
            front_door: FrontDoorConfig::disabled(),
            faults: FaultPlan::none(),
            failover: FailoverConfig::disabled(),
            transport: TransportConfig::disabled(),
            telemetry: TelemetryConfig::off(),
        }
    }

    /// `n` contiguous shards with unbounded admission.
    pub fn contiguous(sim: SimConfig, n_shards: u32) -> Self {
        RuntimeConfig {
            sim,
            n_shards,
            assignment: ShardAssignment::Contiguous,
            admission: AdmissionConfig::unbounded(),
            rebalance: RebalanceConfig::disabled(),
            front_door: FrontDoorConfig::disabled(),
            faults: FaultPlan::none(),
            failover: FailoverConfig::disabled(),
            transport: TransportConfig::disabled(),
            telemetry: TelemetryConfig::off(),
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        self.sim.validate();
        self.admission.validate();
        self.rebalance.validate();
        self.front_door.validate();
        self.faults.validate(self.n_shards);
        self.failover.validate();
        self.transport.validate();
        self.telemetry.validate();
        assert!(self.n_shards > 0, "need at least one shard");
        assert!(
            !(self.front_door.enabled && self.rebalance.enabled),
            "front door and elastic rebalancing cannot be combined yet: \
             the admission plan assumes the static shard map"
        );
        assert!(
            !(self.front_door.enabled
                && (self.failover.enabled || !self.faults.outages.is_empty())),
            "front door and shard outages cannot be combined yet: \
             the admission plan assumes every shard stays up"
        );
        assert!(
            !(self.transport.enabled
                && (self.front_door.enabled
                    || self.rebalance.enabled
                    || self.failover.enabled
                    || !self.faults.outages.is_empty())),
            "the transport controller cannot be combined with the front \
             door, rebalancing, or outage failover yet: its delivery plan \
             assumes the static shard map with every shard up (stalls \
             compose; see FaultPlan)"
        );
        assert!(
            self.faults.links.is_empty() || self.transport.enabled,
            "link faults require the transport controller: without it the \
             router\u{2194}shard hop is a lossless teleport and the windows \
             would silently inject nothing"
        );
    }
}

/// How the shard pool executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Deterministic single-threaded virtual-time merge of the shard event
    /// queues: at each step the shard with the earliest next event (ties by
    /// shard id) advances one event. Pinnable by golden tests; the
    /// reference semantics.
    Stepped,
    /// One `std::thread` worker per shard, results returned over `mpsc`.
    /// Bit-identical to [`Stepped`](Self::Stepped): shards interact only
    /// through the up-front routing and the post-hoc aggregation, both of
    /// which are independent of interleaving.
    Threaded,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        RuntimeConfig::single(SimConfig::paper()).validate();
        RuntimeConfig::contiguous(SimConfig::paper(), 8).validate();
        let mut c = RuntimeConfig::single(SimConfig::paper());
        c.admission = AdmissionConfig::bounded(1_000);
        c.validate();
        assert_eq!(AdmissionConfig::unbounded().max_backlog_entries, None);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let mut c = RuntimeConfig::single(SimConfig::paper());
        c.n_shards = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "zero backlog")]
    fn zero_backlog_rejected() {
        AdmissionConfig::bounded(0).validate();
    }

    #[test]
    fn rebalance_defaults_validate() {
        assert!(!RebalanceConfig::default().enabled);
        RebalanceConfig::default().validate();
        let rb = RebalanceConfig::every(SimDuration::from_secs(30));
        assert!(rb.enabled);
        rb.validate();
        let mut c = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        c.rebalance = rb;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "zero rebalance epoch")]
    fn zero_epoch_rejected() {
        RebalanceConfig::every(SimDuration::ZERO).validate();
    }

    #[test]
    fn front_door_and_faults_validate() {
        let mut c = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        c.front_door = FrontDoorConfig::bounded(10_000);
        c.faults.stalls.push(ShardSlowdown {
            shard: 2,
            from: SimTime::ZERO,
            until: SimTime::ZERO + SimDuration::from_secs(10),
            factor: 4.0,
        });
        c.validate();
        assert_eq!(c.faults.for_shard(2).len(), 1);
        assert!(c.faults.for_shard(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot be combined")]
    fn front_door_excludes_rebalancing() {
        let mut c = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        c.front_door = FrontDoorConfig::bounded(10_000);
        c.rebalance = RebalanceConfig::every(SimDuration::from_secs(5));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "targets shard")]
    fn out_of_range_stall_rejected() {
        let mut c = RuntimeConfig::contiguous(SimConfig::paper(), 2);
        c.faults.stalls.push(ShardSlowdown {
            shard: 2,
            from: SimTime::ZERO,
            until: SimTime::ZERO + SimDuration::from_secs(1),
            factor: 2.0,
        });
        c.validate();
    }

    fn outage(shard: u32, down_s: u64, up_s: u64) -> ShardOutage {
        ShardOutage {
            shard,
            down_at: SimTime::ZERO + SimDuration::from_secs(down_s),
            up_at: SimTime::ZERO + SimDuration::from_secs(up_s),
        }
    }

    #[test]
    fn outages_validate_and_sort_per_shard() {
        let mut c = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        c.faults.outages.push(outage(1, 20, 30));
        c.faults.outages.push(outage(1, 5, 10));
        c.faults.outages.push(outage(2, 5, 10));
        c.failover = FailoverConfig::recovery();
        c.validate();
        let windows = c.faults.outages_for_shard(1);
        assert_eq!(windows.len(), 2);
        assert!(windows[0].0 < windows[1].0, "windows come back sorted");
        assert!(c.faults.outages_for_shard(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "outage window must be non-empty")]
    fn empty_outage_window_rejected() {
        FaultPlan {
            stalls: vec![],
            outages: vec![outage(0, 10, 10)],
            links: vec![],
        }
        .validate(2);
    }

    #[test]
    #[should_panic(expected = "outage targets shard")]
    fn out_of_range_outage_rejected() {
        FaultPlan {
            stalls: vec![],
            outages: vec![outage(2, 1, 5)],
            links: vec![],
        }
        .validate(2);
    }

    #[test]
    #[should_panic(expected = "overlapping outage/outage fault windows on shard 0")]
    fn overlapping_outages_rejected() {
        FaultPlan {
            stalls: vec![],
            outages: vec![outage(0, 1, 10), outage(0, 5, 15)],
            links: vec![],
        }
        .validate(2);
    }

    #[test]
    #[should_panic(expected = "overlapping stall/outage fault windows on shard 1")]
    fn stall_overlapping_outage_rejected() {
        FaultPlan {
            stalls: vec![ShardSlowdown {
                shard: 1,
                from: SimTime::ZERO + SimDuration::from_secs(2),
                until: SimTime::ZERO + SimDuration::from_secs(8),
                factor: 3.0,
            }],
            outages: vec![outage(1, 6, 12)],
            links: vec![],
        }
        .validate(2);
    }

    #[test]
    fn adjacent_fault_windows_are_fine() {
        // Back-to-back windows share only the boundary instant, which
        // belongs to the later window (starts are inclusive, ends
        // exclusive).
        FaultPlan {
            stalls: vec![ShardSlowdown {
                shard: 0,
                from: SimTime::ZERO,
                until: SimTime::ZERO + SimDuration::from_secs(5),
                factor: 2.0,
            }],
            outages: vec![outage(0, 5, 9), outage(0, 9, 12)],
            links: vec![],
        }
        .validate(1);
    }

    #[test]
    #[should_panic(expected = "front door and shard outages cannot be combined")]
    fn front_door_excludes_outages() {
        let mut c = RuntimeConfig::contiguous(SimConfig::paper(), 4);
        c.front_door = FrontDoorConfig::bounded(10_000);
        c.faults.outages.push(outage(0, 1, 5));
        c.validate();
    }
}
