//! The modeled router↔shard transport: lossy links, deterministic
//! retransmit with dedup, and straggler hedging.
//!
//! Without this controller the router→shard hop is a perfect lossless
//! teleport: a fragment becomes deliverable at its `release` instant and
//! the shard simply sees it. With [`TransportConfig::enabled`] the hop is
//! a *modeled datagram link* degraded by the [`FaultPlan::links`] windows:
//! every send can be dropped, delayed (fixed plus per-entry serialization),
//! duplicated, or reordered, and the router reacts the way a real RPC layer
//! does — retransmit on an unacknowledged timeout with exponential backoff
//! (the shared [`RetryPolicy`]), bounded attempts, and receiver-side dedup
//! by attempt identity so retransmissions are **exactly-once in effect**.
//!
//! # Determinism contract
//!
//! Every random decision is a pure function of
//! `(seed, query_index, shard, attempt, stream)` through SplitMix64 — no
//! RNG state threads through execution. The whole delivery schedule is
//! *planned once*, before any shard executes, into a [`TransportLog`]:
//! per-fragment retransmit chains resolve to either an effective delivery
//! instant (the earliest surviving copy) or a terminal rejection, and the
//! executed routing simply carries the adjusted release times. Stepped and
//! threaded execution consume the identical routing and log, so they stay
//! bit-identical by construction; with no link windows the chains are the
//! identity function and the run is bit-identical to the transport-disabled
//! runtime.
//!
//! # The ack model
//!
//! A chain sends attempt 0 at the fragment's release and escalates on the
//! [`RetryPolicy`] schedule while no acknowledgement has arrived by the
//! next send instant. Each attempt's *data* leg crosses the `ToShard` link
//! (drop / delay / duplicate / reorder draws); each received attempt is
//! acknowledged over the `ToRouter` link (drop and fixed-delay only — acks
//! carry no entries and are too small to meaningfully reorder). The
//! receiver's effect happens at the **earliest** data arrival; every other
//! arrival — later retransmissions and network duplicates alike — is
//! suppressed by attempt-identity dedup. A dropped *ack* therefore costs
//! spurious retransmissions but never duplicated work, and a chain is
//! rejected only when **no** attempt's data ever arrived.
//!
//! # Straggler hedging
//!
//! With [`HedgeConfig::enabled`] the planner additionally re-issues
//! fragments that lag the observed per-class fragment response quantile by
//! a configurable multiple: it simulates the no-hedge plan once (a stepped
//! reference pass), measures per-class response distributions, and plans a
//! hedge copy — to the least-loaded shard *not already hosting the query* —
//! for every fragment whose response exceeded its class threshold. The
//! copy races the original; the first completion wins and the loser is
//! suppressed exactly like a network duplicate, so hedging trades duplicate
//! *work* for tail latency without ever double-counting a query.

use std::collections::HashMap;

use liferaft_catalog::hash::{hash4, unit_f64};
use liferaft_query::QueryId;
use liferaft_sim::LinkDirection;
use liferaft_storage::{SimDuration, SimTime};

use crate::admission::QueryClass;
use crate::config::FaultPlan;
use crate::retry::RetryPolicy;
use crate::router::Routing;
use crate::worker::ShardRun;

/// Draw-stream tags: one independent SplitMix64 stream per decision kind,
/// all keyed by `(seed, query_index, shard·attempt)`.
const STREAM_DATA_DROP: u64 = 0x7d01;
const STREAM_DATA_REORDER: u64 = 0x7d02;
const STREAM_DATA_DUP: u64 = 0x7d03;
const STREAM_ACK_DROP: u64 = 0x7d04;

/// Straggler-hedging policy: when a fragment's outstanding age exceeds a
/// multiple of its class's observed response quantile, issue a duplicate to
/// another shard and let the first completion win.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Master switch.
    pub enabled: bool,
    /// A fragment hedges once its age exceeds `latency_multiplier ×` the
    /// observed class quantile (≥ 1.0).
    pub latency_multiplier: f64,
    /// Which response quantile anchors the threshold (in `(0, 1)`).
    pub quantile: f64,
    /// Observed responses a class needs before its quantile is trusted.
    pub min_samples: usize,
    /// Floor on the hedge threshold — never hedge a fragment younger than
    /// this, however fast its class looks.
    pub min_age: SimDuration,
    /// Budget on hedge copies per run.
    pub max_hedges: usize,
}

impl HedgeConfig {
    /// Hedging off (the duplicate-free default).
    pub fn off() -> Self {
        HedgeConfig {
            enabled: false,
            latency_multiplier: 2.0,
            quantile: 0.9,
            min_samples: 10,
            min_age: SimDuration::from_millis(500),
            max_hedges: 256,
        }
    }

    /// Hedge fragments lagging 2× the observed p90 of their class.
    pub fn p90() -> Self {
        HedgeConfig {
            enabled: true,
            ..Self::off()
        }
    }

    /// Validates invariants (only binding when enabled).
    pub fn validate(&self) {
        if !self.enabled {
            return;
        }
        assert!(
            self.latency_multiplier.is_finite() && self.latency_multiplier >= 1.0,
            "a hedge multiplier below 1.0 would hedge faster-than-typical fragments"
        );
        assert!(
            self.quantile > 0.0 && self.quantile < 1.0,
            "hedge quantile {} outside (0, 1)",
            self.quantile
        );
        assert!(
            self.min_samples >= 1,
            "hedging needs at least one observed response"
        );
        assert!(
            self.min_age > SimDuration::ZERO,
            "a zero hedge age floor would hedge at the arrival instant"
        );
        assert!(
            self.max_hedges >= 1,
            "enabled hedging must allow at least one hedge"
        );
    }
}

/// The transport controller's knobs: retransmission schedule, hedging
/// policy, and the seed of the per-message SplitMix64 draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportConfig {
    /// Master switch. Disabled (the default) keeps the lossless-teleport
    /// hop and reproduces the static runtime bit-for-bit.
    pub enabled: bool,
    /// Retransmit schedule: detection timeout, exponential backoff, and the
    /// retransmission budget (shared shape with failover re-delivery).
    pub retry: RetryPolicy,
    /// Straggler hedging (off by default).
    pub hedge: HedgeConfig,
    /// Seed of the per-message draws; every decision is keyed by
    /// `(seed, query_index, shard, attempt)`.
    pub seed: u64,
}

impl TransportConfig {
    /// Transport modeling off — the lossless-teleport hop (the default).
    pub fn disabled() -> Self {
        TransportConfig {
            enabled: false,
            retry: RetryPolicy::new(SimDuration::from_secs(1), SimDuration::from_millis(500), 4),
            hedge: HedgeConfig::off(),
            seed: 0x11fe_4af7,
        }
    }

    /// Reliable delivery over lossy links: retransmit + dedup, no hedging.
    pub fn reliable() -> Self {
        TransportConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Reliable delivery plus p90 straggler hedging.
    pub fn hedged() -> Self {
        TransportConfig {
            enabled: true,
            hedge: HedgeConfig::p90(),
            ..Self::disabled()
        }
    }

    /// Validates invariants (only binding when enabled).
    pub fn validate(&self) {
        if self.enabled {
            self.retry.validate("transport");
            self.hedge.validate();
        }
    }
}

/// One dropped message: a data send that never reached its shard
/// (`ToShard`) or an acknowledgement that never reached the router
/// (`ToRouter`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDrop {
    /// When the message was lost (send instant for data, delivery instant
    /// of the acked data for acks).
    pub at: SimTime,
    /// Trace index of the fragment's query.
    pub query_index: usize,
    /// The shard whose link ate the message.
    pub shard: u32,
    /// Which direction of the hop dropped it.
    pub direction: LinkDirection,
    /// 0-based attempt the message belonged to.
    pub attempt: u32,
}

/// One retransmission: the router re-sent a fragment because no ack had
/// arrived by the attempt's deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retransmit {
    /// Send instant.
    pub at: SimTime,
    /// Trace index of the fragment's query.
    pub query_index: usize,
    /// Destination shard.
    pub shard: u32,
    /// 1-based retransmission attempt (attempt 0 is the original send).
    pub attempt: u32,
}

/// One receiver-side dedup: a data copy (late retransmission or network
/// duplicate) arrived after the fragment had already been delivered and was
/// discarded by attempt identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuppressedDuplicate {
    /// Arrival instant of the discarded copy.
    pub at: SimTime,
    /// Trace index of the fragment's query.
    pub query_index: usize,
    /// The receiving shard.
    pub shard: u32,
    /// Attempt the discarded copy carried.
    pub attempt: u32,
}

/// One planned hedge: a straggling fragment re-issued to another shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeDecision {
    /// When the router decided to hedge (arrival + class threshold).
    pub at: SimTime,
    /// Trace index of the straggling query.
    pub query_index: usize,
    /// The shard the original fragment is lagging on.
    pub from: u32,
    /// The least-loaded shard not hosting the query, which receives the
    /// copy.
    pub to: u32,
    /// (object × bucket) assignments the copy carries.
    pub entries: u64,
    /// When the copy reaches `to` (hedge instant plus the target link's
    /// delivery latency).
    pub delivered_at: SimTime,
}

/// The transport decision log of one run: every drop, retransmission,
/// suppression, and hedge the planner resolved — computed once, before any
/// shard executes, and identical across execution modes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransportLog {
    /// Lost messages, in `(at, query, shard)` order.
    pub drops: Vec<LinkDrop>,
    /// Retransmissions, in `(at, query, shard)` order.
    pub retransmits: Vec<Retransmit>,
    /// Receiver-side dedups, in `(at, query, shard)` order.
    pub suppressed: Vec<SuppressedDuplicate>,
    /// Hedge decisions, in decision order.
    pub hedges: Vec<HedgeDecision>,
}

impl TransportLog {
    /// True when the transport changed nothing: no message was dropped,
    /// re-sent, suppressed, or hedged.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty()
            && self.retransmits.is_empty()
            && self.suppressed.is_empty()
            && self.hedges.is_empty()
    }
}

/// What the transport path did and how the run ended: the replayable
/// decision log, the rejected remainder, per-class conservation, and the
/// hedge race outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportReport {
    /// The decision log both executors consumed.
    pub log: TransportLog,
    /// Queries rejected because a fragment exhausted its retransmission
    /// budget with no copy delivered, in trace order.
    /// `global.outcomes.len() + rejected.len()` equals the trace length —
    /// accounting is conserved.
    pub rejected: Vec<crate::failover::FailedQuery>,
    /// Terminal-outcome conservation per class
    /// (`completed + rejected == submitted`, asserted at build time).
    pub per_class: [crate::failover::ClassConservation; 3],
    /// Hedge copies that beat their original fragment.
    pub hedge_wins: u64,
    /// Hedge copies that lost the race (the duplicate work was wasted).
    pub hedge_losses: u64,
}

impl TransportReport {
    /// Total queries the transport rejected.
    pub fn total_rejected(&self) -> usize {
        self.rejected.len()
    }
}

/// The resolved delivery plan: the decision log (hedges still empty), the
/// per-query rejection mask, and rejection metadata for report building.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeliveryPlan {
    /// Drops / retransmits / suppressions (hedges are planned separately).
    pub log: TransportLog,
    /// Per trace index: true when a fragment of the query exhausted its
    /// budget undelivered.
    pub rejected_mask: Vec<bool>,
    /// Per trace index: when the last losing chain gave up (meaningful only
    /// where `rejected_mask` is set).
    pub rejected_at: Vec<SimTime>,
    /// Per trace index: retransmissions spent by the worst losing chain.
    pub attempts_of: Vec<u32>,
}

/// One chain's resolution: the effective delivery instant (earliest
/// surviving copy), or `None` with the give-up instant when every attempt's
/// data was lost.
struct ChainOutcome {
    delivered_at: Option<SimTime>,
    gave_up_at: SimTime,
    retransmits: u32,
}

/// Resolves one fragment's retransmit chain against the link windows —
/// a pure function of `(config, faults, query_index, shard, release,
/// entries)`.
fn plan_chain(
    cfg: &TransportConfig,
    faults: &FaultPlan,
    query_index: usize,
    shard: u32,
    release: SimTime,
    entries: u64,
    log: &mut TransportLog,
) -> ChainOutcome {
    let draw = |attempt: u32, stream: u64| -> f64 {
        unit_f64(hash4(
            cfg.seed,
            query_index as u64,
            ((shard as u64) << 32) | attempt as u64,
            stream,
        ))
    };
    // All data arrivals (including network duplicates), then dedup below.
    let mut arrivals: Vec<(SimTime, u32)> = Vec::new();
    let mut first_ack: Option<SimTime> = None;
    let mut send_at = release;
    let mut attempt = 0u32;
    let gave_up_at = loop {
        if first_ack.is_some_and(|a| a <= send_at) {
            break send_at; // acked in time: the chain closed cleanly
        }
        if attempt > cfg.retry.max_attempts {
            break send_at; // budget exhausted at this expired deadline
        }
        if attempt > 0 {
            log.retransmits.push(Retransmit {
                at: send_at,
                query_index,
                shard,
                attempt,
            });
        }
        // Data leg: router → shard at the send instant's window.
        let data = faults.link_at(shard, LinkDirection::ToShard, send_at);
        let dropped = data.is_some_and(|w| draw(attempt, STREAM_DATA_DROP) < w.drop_prob);
        if dropped {
            log.drops.push(LinkDrop {
                at: send_at,
                query_index,
                shard,
                direction: LinkDirection::ToShard,
                attempt,
            });
        } else {
            let mut arrive = send_at;
            if let Some(w) = data {
                arrive = arrive + w.delay + w.delay_per_entry.times(entries);
                if draw(attempt, STREAM_DATA_REORDER) < w.reorder_prob {
                    arrive += w.reorder_delay;
                }
                if draw(attempt, STREAM_DATA_DUP) < w.dup_prob {
                    // The network minted an extra copy: same identity, same
                    // path latency — always discarded by dedup.
                    arrivals.push((arrive, attempt));
                }
            }
            arrivals.push((arrive, attempt));
            // Ack leg: shard → router at the delivery instant's window. One
            // ack per received attempt identity (duplicates share it).
            let ack = faults.link_at(shard, LinkDirection::ToRouter, arrive);
            let ack_dropped = ack.is_some_and(|w| draw(attempt, STREAM_ACK_DROP) < w.drop_prob);
            if ack_dropped {
                log.drops.push(LinkDrop {
                    at: arrive,
                    query_index,
                    shard,
                    direction: LinkDirection::ToRouter,
                    attempt,
                });
            } else {
                let ack_at = arrive + ack.map_or(SimDuration::ZERO, |w| w.delay);
                first_ack = Some(first_ack.map_or(ack_at, |a| a.min(ack_at)));
            }
        }
        send_at = cfg.retry.deadline_after(send_at, attempt);
        attempt += 1;
    };
    // Receiver dedup: the earliest arrival (ties to the lowest attempt) is
    // the effect; every other copy is suppressed by attempt identity.
    arrivals.sort_unstable();
    let delivered_at = arrivals.first().map(|&(t, _)| t);
    for &(at, dup_attempt) in arrivals.iter().skip(1) {
        log.suppressed.push(SuppressedDuplicate {
            at,
            query_index,
            shard,
            attempt: dup_attempt,
        });
    }
    ChainOutcome {
        delivered_at,
        gave_up_at,
        retransmits: attempt.saturating_sub(1).min(cfg.retry.max_attempts),
    }
}

/// Resolves every fragment's retransmit chain and rewrites `routing` into
/// the *delivered* plan: surviving fragments carry their effective delivery
/// instant as `release` (per-shard streams re-sorted by release, stable),
/// lost fragments leave the stream and mark their query rejected.
///
/// With no link-fault windows every chain is the identity — the routing is
/// returned untouched and the log comes back empty, which is what makes the
/// enabled-but-fault-free transport bit-identical to the static runtime.
pub(crate) fn plan_delivery(
    cfg: &TransportConfig,
    faults: &FaultPlan,
    routing: &mut Routing,
    trace_len: usize,
) -> DeliveryPlan {
    let mut plan = DeliveryPlan {
        log: TransportLog::default(),
        rejected_mask: vec![false; trace_len],
        rejected_at: vec![SimTime::ZERO; trace_len],
        attempts_of: vec![0; trace_len],
    };
    for (shard, fragments) in routing.shards.iter_mut().enumerate() {
        let mut any_adjusted = false;
        fragments.retain_mut(|f| {
            let outcome = plan_chain(
                cfg,
                faults,
                f.query_index,
                shard as u32,
                f.release,
                f.assignments,
                &mut plan.log,
            );
            match outcome.delivered_at {
                Some(at) => {
                    any_adjusted |= at != f.release;
                    f.release = at;
                    true
                }
                None => {
                    let q = f.query_index;
                    plan.rejected_mask[q] = true;
                    plan.rejected_at[q] = plan.rejected_at[q].max(outcome.gave_up_at);
                    plan.attempts_of[q] = plan.attempts_of[q].max(outcome.retransmits);
                    routing.fragments_of[q] -= 1;
                    false
                }
            }
        });
        if any_adjusted {
            // Delays can reorder deliveries; the worker consumes its stream
            // in release order. Stable, so equal releases keep arrival
            // order — and a delay-free plan keeps the routing bit-identical.
            fragments.sort_by_key(|f| f.release);
        }
    }
    // Canonical log order for pinning: time, then fragment identity.
    plan.log
        .drops
        .sort_unstable_by_key(|d| (d.at, d.query_index, d.shard, d.direction as u8, d.attempt));
    plan.log
        .retransmits
        .sort_unstable_by_key(|r| (r.at, r.query_index, r.shard, r.attempt));
    plan.log
        .suppressed
        .sort_unstable_by_key(|s| (s.at, s.query_index, s.shard, s.attempt));
    plan
}

/// Plans straggler hedges from the no-hedge reference pass: walks the
/// observed per-fragment responses, derives per-class thresholds
/// (`latency_multiplier ×` the class response quantile, floored at
/// `min_age`), and re-issues every delivered fragment that exceeded its
/// threshold to the least-loaded shard not hosting its query at the hedge
/// instant. Pure function of the adjusted routing and the reference pass,
/// so both executors see the identical hedge plan.
pub(crate) fn plan_hedges(
    hedge: &HedgeConfig,
    faults: &FaultPlan,
    routing: &Routing,
    class_of: &[QueryClass],
    rejected: &[bool],
    reference: &[ShardRun],
    index_of: &HashMap<QueryId, usize>,
) -> Vec<HedgeDecision> {
    let n = routing.shards.len();
    // Per-fragment completion instants from the reference pass, keyed by
    // (query, shard) — unique under the static map (no migration).
    let mut completion: HashMap<(usize, u32), SimTime> = HashMap::new();
    // Per-shard load timeline: +assignments at delivery, −assignments at
    // completion (shard clock), prefix-summed for point queries.
    let mut timeline: Vec<Vec<(SimTime, i64)>> = vec![Vec::new(); n];
    for (shard, fragments) in routing.shards.iter().enumerate() {
        for f in fragments {
            timeline[shard].push((f.release, f.assignments as i64));
        }
    }
    for run in reference {
        let mut clock = SimTime::ZERO;
        for o in &run.report.outcomes {
            clock = clock.max(o.completion);
            let q = index_of[&o.query];
            completion.insert((q, run.shard.0), clock);
            timeline[run.shard.0 as usize].push((clock, -(o.assignments as i64)));
        }
    }
    for t in &mut timeline {
        t.sort_unstable_by_key(|&(at, delta)| (at, delta));
        let mut acc = 0i64;
        for e in t.iter_mut() {
            acc += e.1;
            e.1 = acc;
        }
    }
    let load_at = |shard: usize, at: SimTime| -> i64 {
        let t = &timeline[shard];
        let k = t.partition_point(|&(time, _)| time <= at);
        if k == 0 {
            0
        } else {
            t[k - 1].1
        }
    };

    // Per-class observed fragment responses (work-bearing fragments only:
    // a zero-work marker completes at its arrival and would drag the
    // quantile toward zero).
    let mut samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (shard, fragments) in routing.shards.iter().enumerate() {
        for f in fragments {
            if f.assignments == 0 {
                continue;
            }
            let done = completion[&(f.query_index, shard as u32)];
            samples[class_of[f.query_index].rank()].push(done.since(f.arrival).as_secs_f64());
        }
    }
    for s in &mut samples {
        s.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite responses"));
    }
    let threshold_s = |class: QueryClass| -> Option<f64> {
        let s = &samples[class.rank()];
        if s.len() < hedge.min_samples {
            return None;
        }
        let idx = (((s.len() - 1) as f64) * hedge.quantile).round() as usize;
        let t = hedge.latency_multiplier * s[idx];
        Some(t.max(hedge.min_age.as_secs_f64()))
    };

    // Candidates: delivered work-bearing fragments of non-rejected queries
    // whose observed response exceeded their class threshold. The hedge
    // fires at `arrival + threshold` — the earliest instant the router can
    // *know* the fragment is lagging its class.
    let mut candidates: Vec<(SimTime, u32, usize, u64)> = Vec::new();
    for (shard, fragments) in routing.shards.iter().enumerate() {
        for f in fragments {
            if f.assignments == 0 || rejected[f.query_index] {
                continue;
            }
            let Some(th) = threshold_s(class_of[f.query_index]) else {
                continue;
            };
            let fire = f.arrival + SimDuration::from_secs_f64(th);
            if completion[&(f.query_index, shard as u32)] > fire {
                candidates.push((fire, shard as u32, f.query_index, f.assignments));
            }
        }
    }
    candidates.sort_unstable_by_key(|&(fire, shard, q, _)| (fire, shard, q));

    // Which shards already host each query (a copy must not land where the
    // tracker would conflate it with another fragment of the same query).
    let mut hosts: HashMap<usize, Vec<u32>> = HashMap::new();
    for (shard, fragments) in routing.shards.iter().enumerate() {
        for f in fragments {
            hosts.entry(f.query_index).or_default().push(shard as u32);
        }
    }

    let mut hedges: Vec<HedgeDecision> = Vec::new();
    for (fire, from, q, entries) in candidates {
        if hedges.len() >= hedge.max_hedges {
            break;
        }
        let occupied = hosts.entry(q).or_default();
        let target = (0..n as u32)
            .filter(|s| !occupied.contains(s))
            .min_by_key(|&s| (load_at(s as usize, fire), s));
        let Some(to) = target else {
            continue; // the query spans every shard: nowhere to hedge
        };
        occupied.push(to);
        // The copy crosses the target's ToShard link: delay applies, but
        // hedge copies skip the drop/duplicate/reorder draws — the model
        // treats the hedge path as a fresh, clean connection (documented
        // simplification; the race and dedup are the point here).
        let delivered_at = match faults.link_at(to, LinkDirection::ToShard, fire) {
            Some(w) => fire + w.delay + w.delay_per_entry.times(entries),
            None => fire,
        };
        hedges.push(HedgeDecision {
            at: fire,
            query_index: q,
            from,
            to,
            entries,
            delivered_at,
        });
    }
    hedges
}

/// Resolves every hedge race from the executed shard runs: the first
/// completion in the canonical `(shard clock, shard, seq)` merge order wins
/// and the loser's outcome is suppressed (returned as the aggregation skip
/// set). Both executors produce identical per-shard runs, so the resolution
/// is mode-independent.
pub(crate) fn resolve_hedges(
    hedges: &[HedgeDecision],
    shard_runs: &[ShardRun],
    index_of: &HashMap<QueryId, usize>,
) -> (u64, u64, std::collections::HashSet<(QueryId, u32)>) {
    let mut skip = std::collections::HashSet::new();
    let (mut wins, mut losses) = (0u64, 0u64);
    if hedges.is_empty() {
        return (wins, losses, skip);
    }
    // Merged completion order, restricted to the raced (query, shard)
    // pairs.
    let mut raced: HashMap<(usize, u32), usize> = HashMap::new();
    for (i, h) in hedges.iter().enumerate() {
        raced.insert((h.query_index, h.from), i);
        raced.insert((h.query_index, h.to), i);
    }
    let mut events: Vec<(SimTime, u32, u32, usize, QueryId)> = Vec::new();
    for run in shard_runs {
        let mut clock = SimTime::ZERO;
        for (seq, o) in run.report.outcomes.iter().enumerate() {
            clock = clock.max(o.completion);
            let q = index_of[&o.query];
            if raced.contains_key(&(q, run.shard.0)) {
                events.push((clock, run.shard.0, seq as u32, q, o.query));
            }
        }
    }
    events.sort_unstable_by_key(|&(clock, shard, seq, _, _)| (clock, shard, seq));
    let mut settled = vec![false; hedges.len()];
    for (_, shard, _, q, query) in events {
        let i = raced[&(q, shard)];
        if settled[i] {
            // The race is decided: this is the loser's completion.
            skip.insert((query, shard));
            continue;
        }
        settled[i] = true;
        if shard == hedges[i].to {
            wins += 1;
        } else {
            losses += 1;
        }
    }
    assert!(
        settled.iter().all(|&s| s),
        "every hedge race must produce at least one completion"
    );
    (wins, losses, skip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Fragment;
    use liferaft_sim::LinkFault;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn fragment(query_index: usize, release_ms: u64, assignments: u64) -> Fragment {
        Fragment {
            query_index,
            query: QueryId(query_index as u64),
            arrival: t(release_ms),
            release: t(release_ms),
            class: QueryClass::Standard,
            items: Vec::new(),
            assignments,
        }
    }

    fn routing(shards: Vec<Vec<Fragment>>, trace_len: usize) -> Routing {
        let mut fragments_of = vec![0u32; trace_len];
        let mut assignments_of = vec![0u64; trace_len];
        for f in shards.iter().flatten() {
            fragments_of[f.query_index] += 1;
            assignments_of[f.query_index] += f.assignments;
        }
        let total_assignments = assignments_of.iter().sum();
        Routing {
            shards,
            fragments_of,
            assignments_of,
            cross_shard_queries: 0,
            total_assignments,
        }
    }

    fn window(shard: u32, direction: LinkDirection, drop_prob: f64) -> LinkFault {
        LinkFault {
            shard,
            direction,
            from: SimTime::ZERO,
            until: t(3_600_000),
            drop_prob,
            delay: SimDuration::from_millis(100),
            delay_per_entry: SimDuration::from_micros(10),
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
        }
    }

    #[test]
    fn no_windows_is_the_identity() {
        let cfg = TransportConfig::reliable();
        let faults = FaultPlan::none();
        let mut r = routing(vec![vec![fragment(0, 10, 5), fragment(1, 20, 3)]], 2);
        let before = r.shards.clone();
        let plan = plan_delivery(&cfg, &faults, &mut r, 2);
        assert!(plan.log.is_empty());
        assert!(!plan.rejected_mask.iter().any(|&m| m));
        assert_eq!(r.shards, before, "fault-free transport must be a no-op");
    }

    #[test]
    fn clean_links_delay_by_fixed_plus_per_entry() {
        let cfg = TransportConfig::reliable();
        let mut faults = FaultPlan::none();
        faults.links.push(window(0, LinkDirection::ToShard, 0.0));
        let mut r = routing(vec![vec![fragment(0, 10, 5)]], 1);
        let plan = plan_delivery(&cfg, &faults, &mut r, 1);
        assert!(plan.log.is_empty(), "a lossless window logs nothing");
        // 10 ms release + 100 ms fixed + 5 × 10 µs serialization.
        assert_eq!(
            r.shards[0][0].release,
            t(110) + SimDuration::from_micros(50)
        );
    }

    #[test]
    fn certain_drop_rejects_after_the_budget() {
        let cfg = TransportConfig::reliable();
        let mut faults = FaultPlan::none();
        faults.links.push(window(0, LinkDirection::ToShard, 1.0));
        let mut r = routing(vec![vec![fragment(0, 0, 5), fragment(1, 0, 2)]], 2);
        let plan = plan_delivery(&cfg, &faults, &mut r, 2);
        assert!(plan.rejected_mask.iter().all(|&m| m));
        assert!(r.shards[0].is_empty(), "lost fragments leave the stream");
        assert_eq!(r.fragments_of, vec![0, 0]);
        // Original + max_attempts retransmits, every one dropped.
        let per_chain = 1 + cfg.retry.max_attempts as usize;
        assert_eq!(plan.log.drops.len(), 2 * per_chain);
        assert_eq!(
            plan.log.retransmits.len(),
            2 * cfg.retry.max_attempts as usize
        );
        assert!(plan.log.suppressed.is_empty());
        assert_eq!(plan.attempts_of, vec![cfg.retry.max_attempts; 2]);
        // The chain gives up when the final attempt's deadline expires:
        // send 0 at 0 s, retransmits at 1 s, 1.5 s, 2.5 s, 4.5 s, expiry
        // 4.5 s + 4 s = 8.5 s.
        let expiry = cfg.retry.deadline_after(
            cfg.retry.attempt_time(t(0), cfg.retry.max_attempts),
            cfg.retry.max_attempts,
        );
        assert_eq!(plan.rejected_at[0], expiry);
    }

    #[test]
    fn dropped_acks_retransmit_but_deliver_exactly_once() {
        let cfg = TransportConfig::reliable();
        let mut faults = FaultPlan::none();
        // Data always lands; every ack dies.
        faults.links.push(window(0, LinkDirection::ToRouter, 1.0));
        let mut r = routing(vec![vec![fragment(0, 0, 1)]], 1);
        let plan = plan_delivery(&cfg, &faults, &mut r, 1);
        assert!(!plan.rejected_mask[0], "delivered data never rejects");
        assert_eq!(r.shards[0].len(), 1);
        // No ToShard window: the effect happens at the original send.
        assert_eq!(r.shards[0][0].release, t(0));
        let n = cfg.retry.max_attempts as usize;
        assert_eq!(plan.log.retransmits.len(), n);
        // Every retransmitted copy reached the shard and was deduped.
        assert_eq!(plan.log.suppressed.len(), n);
        assert_eq!(
            plan.log
                .drops
                .iter()
                .filter(|d| d.direction == LinkDirection::ToRouter)
                .count(),
            n + 1
        );
    }

    #[test]
    fn network_duplicates_are_suppressed() {
        let cfg = TransportConfig::reliable();
        let mut faults = FaultPlan::none();
        let mut w = window(0, LinkDirection::ToShard, 0.0);
        w.dup_prob = 1.0;
        faults.links.push(w);
        let mut r = routing(vec![vec![fragment(0, 0, 1)]], 1);
        let plan = plan_delivery(&cfg, &faults, &mut r, 1);
        assert!(!plan.rejected_mask[0]);
        assert_eq!(plan.log.suppressed.len(), 1, "the minted copy is deduped");
        assert!(
            plan.log.retransmits.is_empty(),
            "the clean ack stops the chain"
        );
    }

    #[test]
    fn reordering_holds_a_delivery_back() {
        let cfg = TransportConfig::reliable();
        let mut faults = FaultPlan::none();
        let mut w = window(0, LinkDirection::ToShard, 0.0);
        w.reorder_prob = 1.0;
        w.reorder_delay = SimDuration::from_millis(400);
        faults.links.push(w);
        let mut r = routing(vec![vec![fragment(0, 0, 0)]], 1);
        let plan = plan_delivery(&cfg, &faults, &mut r, 1);
        assert!(plan.log.is_empty());
        assert_eq!(
            r.shards[0][0].release,
            t(500),
            "100 ms delay + 400 ms hold-back"
        );
    }

    #[test]
    fn delayed_streams_stay_release_sorted() {
        let cfg = TransportConfig::reliable();
        let mut faults = FaultPlan::none();
        // A delay window that ends between the two releases: the first
        // fragment is delayed past the second's untouched release.
        let mut w = window(0, LinkDirection::ToShard, 0.0);
        w.until = t(15);
        w.delay = SimDuration::from_millis(200);
        faults.links.push(w);
        let mut r = routing(vec![vec![fragment(0, 10, 1), fragment(1, 20, 1)]], 2);
        let plan = plan_delivery(&cfg, &faults, &mut r, 2);
        assert!(plan.log.is_empty());
        let releases: Vec<SimTime> = r.shards[0].iter().map(|f| f.release).collect();
        assert_eq!(releases, vec![t(20), t(210) + SimDuration::from_micros(10)]);
        assert_eq!(
            r.shards[0][0].query_index, 1,
            "the stream re-sorts by delivery"
        );
    }

    #[test]
    fn chains_are_reproducible_and_seed_sensitive() {
        let mut faults = FaultPlan::none();
        let mut w = window(0, LinkDirection::ToShard, 0.35);
        w.dup_prob = 0.2;
        w.reorder_prob = 0.25;
        w.reorder_delay = SimDuration::from_millis(50);
        faults.links.push(w);
        faults.links.push(window(0, LinkDirection::ToRouter, 0.35));
        let shards = || {
            vec![(0..40)
                .map(|q| fragment(q, 100 * q as u64, 3))
                .collect::<Vec<_>>()]
        };
        let cfg = TransportConfig::reliable();
        let mut a = routing(shards(), 40);
        let mut b = routing(shards(), 40);
        let pa = plan_delivery(&cfg, &faults, &mut a, 40);
        let pb = plan_delivery(&cfg, &faults, &mut b, 40);
        assert_eq!(pa.log, pb.log, "same seed, same plan");
        assert_eq!(a.shards, b.shards);
        let mut other = cfg;
        other.seed ^= 0xdead_beef;
        let mut c = routing(shards(), 40);
        let pc = plan_delivery(&other, &faults, &mut c, 40);
        assert_ne!(pa.log, pc.log, "the seed must steer the draws");
    }

    #[test]
    #[should_panic(expected = "hedge quantile")]
    fn out_of_range_quantile_rejected() {
        let mut cfg = TransportConfig::hedged();
        cfg.hedge.quantile = 1.5;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "hedge multiplier")]
    fn sub_unit_multiplier_rejected() {
        let mut cfg = TransportConfig::hedged();
        cfg.hedge.latency_multiplier = 0.5;
        cfg.validate();
    }

    #[test]
    fn disabled_config_validates_without_constraints() {
        let mut cfg = TransportConfig::disabled();
        cfg.hedge.quantile = 7.0; // ignored while disabled
        cfg.validate();
    }
}
