//! The global front door: admission control, priority classes, load
//! shedding, and rejection — planned once, replayed verbatim.
//!
//! Shard-local backpressure ([`AdmissionConfig`](crate::config::AdmissionConfig))
//! protects one shard's memory; it cannot see aggregate overload, priority,
//! or a struggling peer. The front door is the router-level complement: a
//! single controller that bounds total in-flight work across the pool,
//! classifies every arriving query into a [`QueryClass`], and under
//! pressure degrades in a fixed order —
//!
//! 1. **queue**: hold arrivals in a priority queue ordered by
//!    `(class, true arrival, trace index)` — FIFO at true arrival age
//!    within a class, strict priority across classes;
//! 2. **shed**: past the soft waiting cap, batch-class queries are shed
//!    youngest-first and re-enqueued with bounded retries under an
//!    exponential virtual-time backoff;
//! 3. **reject**: a query that exhausts its retries — or, past the hard
//!    waiting cap, the youngest lowest-class waiter — terminates with a
//!    recorded `Rejected` verdict that conserves accounting (every query is
//!    exactly-once terminal: completed or rejected, never lost).
//!
//! # Determinism
//!
//! Decisions are made **once**, by the stepped reference merge
//! (`plan_front_door` in `runtime`), and recorded as an [`AdmissionLog`]:
//! one [`QueryVerdict`] per trace entry plus epoch-indexed
//! [`AdmissionSample`]s. The threaded executor never decides anything — it
//! routes the admitted queries in logged admission (`seq`) order with their
//! logged release times and runs shards free of any cross-thread
//! coordination, which reproduces the stepped run bit-for-bit: a shard's
//! behaviour is a pure function of its release-ordered fragment stream.

use std::collections::BTreeSet;

use liferaft_metrics::Summary;
use liferaft_query::WorkItem;
use liferaft_storage::{SimDuration, SimTime};

/// Priority class of a query at the front door, derived from its routed
/// workload size (total object × bucket assignments): small exploratory
/// probes are interactive, exhaustive scans are batch, the rest standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryClass {
    /// Small, latency-sensitive probes — admitted first, never shed.
    Interactive,
    /// The default class.
    Standard,
    /// Large exhaustive scans — first to wait, the only class that sheds.
    Batch,
}

impl QueryClass {
    /// Every class, in priority order (highest first).
    pub const ALL: [QueryClass; 3] = [
        QueryClass::Interactive,
        QueryClass::Standard,
        QueryClass::Batch,
    ];

    /// Priority rank: 0 = most urgent. Also the index into per-class
    /// stat arrays.
    pub fn rank(self) -> usize {
        match self {
            QueryClass::Interactive => 0,
            QueryClass::Standard => 1,
            QueryClass::Batch => 2,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::Interactive => "interactive",
            QueryClass::Standard => "standard",
            QueryClass::Batch => "batch",
        }
    }

    fn rank_u8(self) -> u8 {
        self.rank() as u8
    }
}

/// Front-door configuration.
///
/// All bounds are in (object × bucket) **assignments** — the same unit the
/// cost model and the shard-local backpressure use — so "in-flight work" is
/// proportional to actual service demand, not query count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontDoorConfig {
    /// Master switch. Disabled (the default) bypasses the controller
    /// entirely and reproduces the static runtime bit-for-bit.
    pub enabled: bool,
    /// Global bound on admitted-but-not-yet-serviced assignments across the
    /// pool. Checked *head-of-line*: if the highest-priority waiter does
    /// not fit, nothing lower admits either. A waiter larger than the whole
    /// bound still admits once the pool drains empty, so the bound can
    /// never deadlock.
    pub max_inflight_assignments: u64,
    /// Optional per-shard in-flight bound. Unlike the global bound this one
    /// *bypasses* head-of-line blocking: a query whose target shard is
    /// saturated is skipped and later, smaller-footprint queries that avoid
    /// the backlog admit past it — this is how the controller routes around
    /// a stalled shard.
    pub max_shard_inflight_assignments: Option<u64>,
    /// Soft cap on actively-waiting assignments: above it, batch-class
    /// waiters shed (youngest first) into backoff.
    pub max_waiting_assignments: Option<u64>,
    /// Hard cap on actively-waiting assignments: above it, the youngest
    /// waiter of the lowest-priority waiting class is rejected outright.
    pub hard_waiting_assignments: Option<u64>,
    /// A query with at most this many assignments is [`QueryClass::Interactive`].
    pub interactive_max_assignments: u64,
    /// A query with at least this many assignments is [`QueryClass::Batch`].
    pub batch_min_assignments: u64,
    /// Base virtual-time backoff of a shed query; the k-th shed waits
    /// `shed_backoff × 2^(k−1)`.
    pub shed_backoff: SimDuration,
    /// Sheds a query survives before the next shed rejects it.
    pub max_retries: u32,
    /// Cadence of the observability [`AdmissionSample`]s in the log.
    pub sample_epoch: SimDuration,
}

impl FrontDoorConfig {
    /// Controller off — the static-runtime behaviour (and the `Default`).
    pub fn disabled() -> Self {
        FrontDoorConfig {
            enabled: false,
            max_inflight_assignments: u64::MAX,
            max_shard_inflight_assignments: None,
            max_waiting_assignments: None,
            hard_waiting_assignments: None,
            interactive_max_assignments: 200,
            batch_min_assignments: 1_500,
            shed_backoff: SimDuration::from_secs(5),
            max_retries: 3,
            sample_epoch: SimDuration::from_secs(30),
        }
    }

    /// Controller on with a global in-flight bound and default class
    /// thresholds; shedding and rejection stay off until the waiting caps
    /// are set.
    ///
    /// ```
    /// use liferaft_runtime::FrontDoorConfig;
    ///
    /// let mut fd = FrontDoorConfig::bounded(10_000);
    /// assert!(fd.enabled);
    /// // Turn on batch shedding past 50k waiting assignments.
    /// fd.max_waiting_assignments = Some(50_000);
    /// assert!(!FrontDoorConfig::disabled().enabled);
    /// ```
    pub fn bounded(max_inflight_assignments: u64) -> Self {
        FrontDoorConfig {
            enabled: true,
            max_inflight_assignments,
            ..Self::disabled()
        }
    }

    /// Classifies a query by its routed workload size.
    pub fn classify(&self, assignments: u64) -> QueryClass {
        if assignments <= self.interactive_max_assignments {
            QueryClass::Interactive
        } else if assignments >= self.batch_min_assignments {
            QueryClass::Batch
        } else {
            QueryClass::Standard
        }
    }

    /// Validates invariants.
    pub fn validate(&self) {
        if !self.enabled {
            return;
        }
        assert!(
            self.max_inflight_assignments > 0,
            "a zero in-flight bound would admit nothing"
        );
        assert!(
            self.interactive_max_assignments < self.batch_min_assignments,
            "class thresholds must leave room for the standard class"
        );
        if self.max_waiting_assignments.is_some() {
            assert!(
                self.shed_backoff > SimDuration::ZERO,
                "shedding requires a positive backoff"
            );
        }
        if let (Some(soft), Some(hard)) =
            (self.max_waiting_assignments, self.hard_waiting_assignments)
        {
            assert!(
                soft <= hard,
                "the soft waiting cap must not exceed the hard cap"
            );
        }
        assert!(
            self.sample_epoch > SimDuration::ZERO,
            "a zero sample epoch would record samples forever"
        );
    }
}

impl Default for FrontDoorConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The terminal decision of one query at the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Admitted: fragments released to the shards at `at`, as the `seq`-th
    /// admission overall (the replay's append order).
    Admitted {
        /// Virtual release time.
        at: SimTime,
        /// Global admission sequence number.
        seq: u64,
    },
    /// Rejected at `at` — no fragments were ever routed.
    Rejected {
        /// Virtual rejection time.
        at: SimTime,
    },
}

/// One trace entry's recorded front-door outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryVerdict {
    /// The assigned priority class.
    pub class: QueryClass,
    /// Routed workload size (assignments across all shards).
    pub assignments: u64,
    /// How many times the query was shed into backoff before its terminal
    /// decision.
    pub sheds: u32,
    /// The terminal decision.
    pub decision: Disposition,
}

impl QueryVerdict {
    /// True if the query was admitted.
    pub fn admitted(&self) -> bool {
        matches!(self.decision, Disposition::Admitted { .. })
    }
}

/// One epoch-boundary observability sample of controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSample {
    /// 1-based epoch index (boundary k sits at `k × sample_epoch`).
    pub epoch: u32,
    /// The boundary's virtual time.
    pub at: SimTime,
    /// Admitted-but-unserviced assignments at the sample.
    pub inflight_assignments: u64,
    /// Actively-waiting assignments at the sample.
    pub waiting_assignments: u64,
    /// Queries sitting in shed backoff at the sample.
    pub backoff_queries: u32,
    /// Cumulative admitted queries.
    pub admitted: u64,
    /// Cumulative shed events.
    pub shed_events: u64,
    /// Cumulative rejected queries.
    pub rejected: u64,
}

/// The front door's epoch-indexed decision log: the replay contract.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdmissionLog {
    /// One verdict per trace entry, by trace index.
    pub verdicts: Vec<QueryVerdict>,
    /// Controller-state samples at `sample_epoch` boundaries.
    pub samples: Vec<AdmissionSample>,
}

impl AdmissionLog {
    /// Admitted trace indices with release times, in admission (`seq`)
    /// order — exactly the order the threaded replay appends fragments.
    pub fn admissions_in_seq_order(&self) -> Vec<(usize, SimTime)> {
        let mut order: Vec<(u64, usize, SimTime)> = self
            .verdicts
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match v.decision {
                Disposition::Admitted { at, seq } => Some((seq, i, at)),
                Disposition::Rejected { .. } => None,
            })
            .collect();
        order.sort_unstable_by_key(|&(seq, _, _)| seq);
        order.into_iter().map(|(_, i, at)| (i, at)).collect()
    }

    /// Total rejected queries.
    pub fn total_rejected(&self) -> u64 {
        self.verdicts.iter().filter(|v| !v.admitted()).count() as u64
    }

    /// Total shed (backoff) events across all queries.
    pub fn total_shed_events(&self) -> u64 {
        self.verdicts.iter().map(|v| v.sheds as u64).sum()
    }
}

/// One rejected query's terminal record (surfaced in the runtime report so
/// accounting stays conserved: completed + rejected = trace length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectedQuery {
    /// Trace index of the query.
    pub index: usize,
    /// True arrival time.
    pub arrival: SimTime,
    /// When the front door gave up on it.
    pub rejected_at: SimTime,
    /// Its priority class.
    pub class: QueryClass,
    /// The workload it would have run.
    pub assignments: u64,
    /// Sheds it survived before rejection.
    pub retries: u32,
}

/// Aggregated front-door outcomes of one priority class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// The class.
    pub class: QueryClass,
    /// Queries of this class that arrived.
    pub submitted: u64,
    /// Queries that were (eventually) admitted.
    pub admitted: u64,
    /// Admitted queries whose release came after their arrival — they
    /// waited at the front door at least once.
    pub deferred: u64,
    /// Total shed-into-backoff events.
    pub shed_events: u64,
    /// Queries rejected outright.
    pub rejected: u64,
    /// Largest shed count any single query survived.
    pub max_retries: u32,
    /// Response times of the class's *completed* queries (arrival → last
    /// assignment serviced), in seconds.
    pub response: Summary,
    /// Time-to-first-byte of the class's completed queries (arrival →
    /// first fragment completion anywhere), in seconds.
    pub ttfb: Summary,
}

/// The front door's contribution to the runtime report: the decision log,
/// the rejected-query records, and per-class statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontDoorReport {
    /// The replayable decision log.
    pub log: AdmissionLog,
    /// Every rejected query's terminal record, by trace order.
    pub rejected: Vec<RejectedQuery>,
    /// Per-class statistics, indexed by [`QueryClass::rank`].
    pub per_class: [ClassStats; 3],
}

impl FrontDoorReport {
    /// The stats of one class.
    pub fn class(&self, class: QueryClass) -> &ClassStats {
        &self.per_class[class.rank()]
    }
}

/// A query pending at the front door (planning pass only).
#[derive(Debug, Clone)]
pub(crate) struct PendingQuery {
    /// Trace index.
    pub(crate) index: usize,
    /// True arrival time (ages and FIFO order reference this).
    pub(crate) arrival: SimTime,
    /// Priority class.
    pub(crate) class: QueryClass,
    /// Total assignments across all shards.
    pub(crate) assignments: u64,
    /// Pre-split per-shard work: `(shard index, items)`, non-empty shards
    /// only (empty for a zero-work query).
    pub(crate) split: Vec<(usize, Vec<WorkItem>)>,
    retries: u32,
    eligible_at: SimTime,
}

/// The controller state machine. Driven only by the stepped planning pass;
/// everything it decides lands in the [`AdmissionLog`].
pub(crate) struct FrontDoor {
    cfg: FrontDoorConfig,
    now: SimTime,
    /// Pending queries by trace index (`None` once terminal).
    slots: Vec<Option<PendingQuery>>,
    /// Actively-waiting queries, keyed by `(class rank, arrival, index)` —
    /// iteration order is admission priority order.
    active: BTreeSet<(u8, SimTime, usize)>,
    /// Shed queries keyed by `(eligible_at, index)`.
    backoff: BTreeSet<(SimTime, usize)>,
    active_assignments: u64,
    verdicts: Vec<Option<QueryVerdict>>,
    admitted_assignments: u64,
    admitted_per_shard: Vec<u64>,
    seq: u64,
    admitted_queries: u64,
    shed_events: u64,
    rejected_queries: u64,
    samples: Vec<AdmissionSample>,
    sampled: u32,
}

impl FrontDoor {
    pub(crate) fn new(cfg: FrontDoorConfig, n_queries: usize, n_shards: usize) -> Self {
        cfg.validate();
        FrontDoor {
            cfg,
            now: SimTime::ZERO,
            slots: (0..n_queries).map(|_| None).collect(),
            active: BTreeSet::new(),
            backoff: BTreeSet::new(),
            active_assignments: 0,
            verdicts: vec![None; n_queries],
            admitted_assignments: 0,
            admitted_per_shard: vec![0; n_shards],
            seq: 0,
            admitted_queries: 0,
            shed_events: 0,
            rejected_queries: 0,
            samples: Vec::new(),
            sampled: 0,
        }
    }

    /// Registers an arrival (trace order; at most once per index).
    pub(crate) fn ingest(
        &mut self,
        index: usize,
        arrival: SimTime,
        class: QueryClass,
        assignments: u64,
        split: Vec<(usize, Vec<WorkItem>)>,
    ) {
        debug_assert!(
            self.verdicts[index].is_none(),
            "query {index} ingested twice"
        );
        debug_assert!(self.slots[index].is_none());
        self.active.insert((class.rank_u8(), arrival, index));
        self.active_assignments += assignments;
        self.slots[index] = Some(PendingQuery {
            index,
            arrival,
            class,
            assignments,
            split,
            retries: 0,
            eligible_at: arrival,
        });
    }

    /// The earliest future backoff wake-up, if any — a driver event source.
    pub(crate) fn next_wakeup(&self) -> Option<SimTime> {
        self.backoff.iter().next().map(|&(at, _)| at)
    }

    /// True while any query is actively waiting for admission.
    pub(crate) fn has_active(&self) -> bool {
        !self.active.is_empty()
    }

    /// One controller pass at virtual time `t`: wake due backoffs, admit
    /// while the bounds allow (handing each admitted query to `on_admit`),
    /// then shed and reject per the waiting caps, then record any crossed
    /// sample boundaries. `shard_serviced[s]` is shard `s`'s cumulative
    /// serviced-entry counter — the controller's only feedback signal.
    pub(crate) fn pump(
        &mut self,
        t: SimTime,
        shard_serviced: &[u64],
        mut on_admit: impl FnMut(PendingQuery, SimTime),
    ) {
        self.now = self.now.max(t);
        // Wake every backoff entry that has become eligible.
        while let Some(&(at, idx)) = self.backoff.iter().next() {
            if at > self.now {
                break;
            }
            self.backoff.remove(&(at, idx));
            let p = self.slots[idx].as_ref().expect("backoff entry is pending");
            self.active.insert((p.class.rank_u8(), p.arrival, idx));
            self.active_assignments += p.assignments;
        }

        // Admit in (class, arrival, index) order. The global bound blocks
        // head-of-line (strict priority); the per-shard bound is bypassable
        // so traffic can route around one saturated shard.
        let serviced_total: u64 = shard_serviced.iter().sum();
        debug_assert!(serviced_total <= self.admitted_assignments);
        let mut inflight = self.admitted_assignments - serviced_total;
        loop {
            let mut chosen: Option<usize> = None;
            for &(_, _, idx) in self.active.iter() {
                let p = self.slots[idx].as_ref().expect("active entry is pending");
                let fits_global = inflight == 0
                    || inflight.saturating_add(p.assignments) <= self.cfg.max_inflight_assignments;
                if !fits_global {
                    if p.assignments == 0 {
                        // Zero-work queries consume nothing; never block them.
                        chosen = Some(idx);
                    }
                    break; // head-of-line: nothing lower-priority admits
                }
                let fits_shards = match self.cfg.max_shard_inflight_assignments {
                    None => true,
                    Some(cap) => {
                        inflight == 0
                            || p.split.iter().all(|(s, items)| {
                                let a: u64 = items.iter().map(|i| i.len() as u64).sum();
                                let cur = self.admitted_per_shard[*s] - shard_serviced[*s];
                                cur == 0 || cur.saturating_add(a) <= cap
                            })
                    }
                };
                if fits_shards {
                    chosen = Some(idx);
                    break;
                }
                // Shard-blocked: bypass and consider the next waiter.
            }
            let Some(idx) = chosen else { break };
            let p = self.slots[idx].take().expect("chosen entry is pending");
            self.active.remove(&(p.class.rank_u8(), p.arrival, idx));
            self.active_assignments -= p.assignments;
            inflight += p.assignments;
            self.admitted_assignments += p.assignments;
            for (s, items) in &p.split {
                self.admitted_per_shard[*s] += items.iter().map(|i| i.len() as u64).sum::<u64>();
            }
            self.verdicts[idx] = Some(QueryVerdict {
                class: p.class,
                assignments: p.assignments,
                sheds: p.retries,
                decision: Disposition::Admitted {
                    at: self.now,
                    seq: self.seq,
                },
            });
            self.seq += 1;
            self.admitted_queries += 1;
            on_admit(p, self.now);
        }

        // Soft cap: shed batch-class waiters, youngest first, into backoff;
        // a query out of retries rejects instead.
        if let Some(soft) = self.cfg.max_waiting_assignments {
            while self.active_assignments > soft {
                let victim = self
                    .active
                    .range((QueryClass::Batch.rank_u8(), SimTime::ZERO, 0)..)
                    .next_back()
                    .copied();
                let Some((rank, arrival, idx)) = victim else {
                    break;
                };
                debug_assert_eq!(rank, QueryClass::Batch.rank_u8());
                self.active.remove(&(rank, arrival, idx));
                let p = self.slots[idx].as_mut().expect("victim is pending");
                self.active_assignments -= p.assignments;
                if p.retries >= self.cfg.max_retries {
                    let p = self.slots[idx].take().expect("victim is pending");
                    self.reject(p);
                } else {
                    p.retries += 1;
                    let exp = (p.retries - 1).min(20);
                    p.eligible_at = self.now + self.cfg.shed_backoff.times(1u64 << exp);
                    self.backoff.insert((p.eligible_at, idx));
                    self.shed_events += 1;
                }
            }
        }

        // Hard cap: reject the youngest waiter of the lowest waiting class.
        if let Some(hard) = self.cfg.hard_waiting_assignments {
            while self.active_assignments > hard {
                let Some(&(rank, arrival, idx)) = self.active.iter().next_back() else {
                    break;
                };
                self.active.remove(&(rank, arrival, idx));
                let p = self.slots[idx].take().expect("victim is pending");
                self.active_assignments -= p.assignments;
                self.reject(p);
            }
        }

        // Observability samples at every crossed epoch boundary.
        while SimTime::ZERO + self.cfg.sample_epoch.times(self.sampled as u64 + 1) <= self.now {
            self.sampled += 1;
            self.samples.push(AdmissionSample {
                epoch: self.sampled,
                at: SimTime::ZERO + self.cfg.sample_epoch.times(self.sampled as u64),
                inflight_assignments: inflight,
                waiting_assignments: self.active_assignments,
                backoff_queries: self.backoff.len() as u32,
                admitted: self.admitted_queries,
                shed_events: self.shed_events,
                rejected: self.rejected_queries,
            });
        }
    }

    fn reject(&mut self, p: PendingQuery) {
        self.verdicts[p.index] = Some(QueryVerdict {
            class: p.class,
            assignments: p.assignments,
            sheds: p.retries,
            decision: Disposition::Rejected { at: self.now },
        });
        self.rejected_queries += 1;
    }

    /// Finishes the planning pass into the log.
    ///
    /// # Panics
    /// Panics if any query never reached a terminal verdict — a liveness
    /// bug in the driver.
    pub(crate) fn into_log(self) -> AdmissionLog {
        let verdicts: Vec<QueryVerdict> = self
            .verdicts
            .into_iter()
            .enumerate()
            .map(|(i, v)| v.unwrap_or_else(|| panic!("query {i} left without a verdict")))
            .collect();
        AdmissionLog {
            verdicts,
            samples: self.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_query::QueryId;
    use liferaft_storage::BucketId;

    fn item(objects: usize) -> WorkItem {
        WorkItem {
            query: QueryId(0),
            bucket: BucketId(0),
            object_indices: (0..objects as u32).collect(),
        }
    }

    fn split_one(shard: usize, objects: usize) -> Vec<(usize, Vec<WorkItem>)> {
        vec![(shard, vec![item(objects)])]
    }

    fn at(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn cfg(max_inflight: u64) -> FrontDoorConfig {
        let mut c = FrontDoorConfig::bounded(max_inflight);
        c.interactive_max_assignments = 10;
        c.batch_min_assignments = 100;
        c.shed_backoff = SimDuration::from_secs(2);
        c.max_retries = 2;
        c
    }

    #[test]
    fn classification_uses_the_thresholds() {
        let c = cfg(1_000);
        assert_eq!(c.classify(0), QueryClass::Interactive);
        assert_eq!(c.classify(10), QueryClass::Interactive);
        assert_eq!(c.classify(11), QueryClass::Standard);
        assert_eq!(c.classify(99), QueryClass::Standard);
        assert_eq!(c.classify(100), QueryClass::Batch);
    }

    #[test]
    fn admission_is_priority_then_fifo() {
        // Capacity 50; three waiters of 30 each: batch (oldest), standard,
        // interactive (youngest). Priority admits interactive first, and the
        // global head-of-line rule then blocks everything else.
        let mut door = FrontDoor::new(cfg(50), 3, 1);
        door.ingest(0, at(1), QueryClass::Batch, 30, split_one(0, 30));
        door.ingest(1, at(2), QueryClass::Standard, 30, split_one(0, 30));
        door.ingest(2, at(3), QueryClass::Interactive, 30, split_one(0, 30));
        let mut admitted = Vec::new();
        door.pump(at(3), &[0], |p, _| admitted.push(p.index));
        assert_eq!(admitted, vec![2], "interactive admits first, rest blocked");
        // Draining the pool admits the standard waiter next (priority),
        // then head-of-line blocks the batch one.
        door.pump(at(10), &[30], |p, _| admitted.push(p.index));
        assert_eq!(admitted, vec![2, 1]);
        door.pump(at(20), &[60], |p, _| admitted.push(p.index));
        assert_eq!(admitted, vec![2, 1, 0]);
        let log = door.into_log();
        assert_eq!(log.total_rejected(), 0);
        let seq: Vec<(usize, SimTime)> = log.admissions_in_seq_order();
        assert_eq!(
            seq,
            vec![(2, at(3)), (1, at(10)), (0, at(20))],
            "log records admission order and release times"
        );
    }

    #[test]
    fn oversized_queries_admit_from_an_empty_pool() {
        let mut door = FrontDoor::new(cfg(10), 1, 1);
        door.ingest(0, at(1), QueryClass::Batch, 500, split_one(0, 500));
        let mut admitted = Vec::new();
        door.pump(at(1), &[0], |p, _| admitted.push(p.index));
        assert_eq!(admitted, vec![0], "empty pool admits anything");
    }

    #[test]
    fn zero_work_queries_never_block() {
        let mut door = FrontDoor::new(cfg(10), 2, 1);
        door.ingest(0, at(1), QueryClass::Batch, 500, split_one(0, 500));
        let mut admitted = Vec::new();
        door.pump(at(1), &[0], |p, _| admitted.push(p.index));
        assert_eq!(admitted, vec![0]);
        // Pool saturated (500 in flight against a bound of 10) — yet a
        // zero-work arrival still admits immediately.
        door.ingest(1, at(2), QueryClass::Interactive, 0, Vec::new());
        door.pump(at(2), &[0], |p, _| admitted.push(p.index));
        assert_eq!(admitted, vec![0, 1]);
    }

    #[test]
    fn shedding_backs_off_and_eventually_rejects() {
        let mut c = cfg(10);
        c.max_waiting_assignments = Some(200);
        let mut door = FrontDoor::new(c, 3, 1);
        // Saturate the pool so nothing admits.
        door.ingest(0, at(1), QueryClass::Batch, 400, split_one(0, 400));
        door.pump(at(1), &[0], |_, _| {});
        // Two batch waiters push the queue over the soft cap (240 > 200):
        // shedding the *youngest* brings it back under, so the older stays.
        door.ingest(1, at(2), QueryClass::Batch, 120, split_one(0, 120));
        door.ingest(2, at(3), QueryClass::Batch, 120, split_one(0, 120));
        door.pump(at(3), &[0], |_, _| panic!("nothing admits"));
        assert!(door.has_active(), "the older batch waiter stays");
        let wake = door.next_wakeup().expect("youngest is in backoff");
        assert_eq!(
            wake,
            at(3) + SimDuration::from_secs(2),
            "first backoff = base"
        );
        // Wake it; still over the cap → shed again with a doubled backoff.
        door.pump(wake, &[0], |_, _| panic!("nothing admits"));
        let wake2 = door.next_wakeup().expect("still in backoff");
        assert_eq!(wake2, wake + SimDuration::from_secs(4), "backoff doubles");
        // Third time over the cap exceeds max_retries = 2 → rejected.
        door.pump(wake2, &[0], |_, _| panic!("nothing admits"));
        assert_eq!(door.next_wakeup(), None);
        // Drain the pool so the survivors admit and the log closes.
        door.pump(at(100), &[400], |_, _| {});
        door.pump(at(200), &[520], |_, _| {});
        let log = door.into_log();
        assert_eq!(log.total_rejected(), 1);
        assert_eq!(log.verdicts[2].sheds, 2, "two sheds before rejection");
        assert!(matches!(
            log.verdicts[2].decision,
            Disposition::Rejected { .. }
        ));
        assert!(log.verdicts[0].admitted() && log.verdicts[1].admitted());
        assert_eq!(log.total_shed_events(), 2);
    }

    #[test]
    fn hard_cap_rejects_youngest_lowest_class() {
        let mut c = cfg(10);
        c.hard_waiting_assignments = Some(100);
        let mut door = FrontDoor::new(c, 4, 1);
        door.ingest(0, at(1), QueryClass::Batch, 400, split_one(0, 400));
        door.pump(at(1), &[0], |_, _| {});
        // Three standard waiters (60 each): the hard cap evicts the two
        // youngest, never the oldest.
        door.ingest(1, at(2), QueryClass::Standard, 60, split_one(0, 60));
        door.ingest(2, at(3), QueryClass::Standard, 60, split_one(0, 60));
        door.ingest(3, at(4), QueryClass::Standard, 60, split_one(0, 60));
        door.pump(at(4), &[0], |_, _| {});
        door.pump(at(100), &[400], |_, _| {});
        door.pump(at(200), &[460], |_, _| {});
        let log = door.into_log();
        assert!(log.verdicts[1].admitted(), "oldest waiter survives");
        assert!(!log.verdicts[2].admitted());
        assert!(!log.verdicts[3].admitted());
    }

    #[test]
    fn per_shard_bound_lets_traffic_route_around_a_backlog() {
        let mut c = cfg(1_000);
        c.max_shard_inflight_assignments = Some(100);
        let mut door = FrontDoor::new(c, 3, 2);
        // Shard 0 saturated by an older standard query; an even older
        // standard query targeting it again is shard-blocked, but a younger
        // one for shard 1 bypasses the head of the line.
        door.ingest(0, at(1), QueryClass::Standard, 90, split_one(0, 90));
        door.pump(at(1), &[0, 0], |_, _| {});
        door.ingest(1, at(2), QueryClass::Standard, 90, split_one(0, 90));
        door.ingest(2, at(3), QueryClass::Standard, 90, split_one(1, 90));
        let mut admitted = Vec::new();
        door.pump(at(3), &[0, 0], |p, _| admitted.push(p.index));
        assert_eq!(admitted, vec![2], "the healthy shard's query bypasses");
        // Shard 0 drains → the blocked waiter admits.
        door.pump(at(10), &[90, 0], |p, _| admitted.push(p.index));
        assert_eq!(admitted, vec![2, 1]);
        door.pump(at(20), &[180, 90], |_, _| {});
        door.into_log();
    }

    #[test]
    fn samples_record_crossed_boundaries() {
        let mut c = cfg(1_000);
        c.sample_epoch = SimDuration::from_secs(10);
        let mut door = FrontDoor::new(c, 1, 1);
        door.ingest(0, at(5), QueryClass::Standard, 50, split_one(0, 50));
        door.pump(at(5), &[0], |_, _| {});
        door.pump(at(35), &[50], |_, _| {});
        let log = door.into_log();
        assert_eq!(log.samples.len(), 3, "boundaries 10/20/30 crossed");
        assert_eq!(log.samples[0].epoch, 1);
        assert_eq!(log.samples[0].at, at(10));
        assert_eq!(log.samples[2].at, at(30));
        assert_eq!(log.samples[2].admitted, 1);
    }

    #[test]
    #[should_panic(expected = "without a verdict")]
    fn unresolved_queries_fail_loudly() {
        // Closing the log with a query still waiting is a driver liveness
        // bug; the planner must refuse to paper over it.
        let mut door = FrontDoor::new(cfg(10), 2, 1);
        door.ingest(0, at(1), QueryClass::Batch, 400, split_one(0, 400));
        door.pump(at(1), &[0], |_, _| {});
        door.ingest(1, at(2), QueryClass::Batch, 120, split_one(0, 120));
        let _ = door.into_log();
    }

    #[test]
    #[should_panic(expected = "zero in-flight bound")]
    fn zero_bound_rejected() {
        FrontDoorConfig::bounded(0).validate();
    }
}
