//! Traces and their plain-text codec.
//!
//! A [`Trace`] is the logical query sequence; a [`TimedTrace`] attaches
//! arrival instants (the same trace is replayed at several saturations in
//! Figure 8, so timing is deliberately separate). The codec is a simple
//! line-oriented text format — versioned, diff-able, and dependency-free.

use std::fmt;
use std::io::{self, BufRead, Write};

use liferaft_query::{CrossMatchQuery, MatchObject, Predicate, QueryId};
use liferaft_storage::SimTime;

/// The logical query sequence of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    level: u8,
    queries: Vec<CrossMatchQuery>,
}

impl Trace {
    /// Creates a trace of queries whose bounding boxes live at `level`.
    pub fn new(level: u8, queries: Vec<CrossMatchQuery>) -> Self {
        Trace { level, queries }
    }

    /// The HTM level of object bounding boxes.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The queries in trace order.
    pub fn queries(&self) -> &[CrossMatchQuery] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the trace has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Total cross-match objects across all queries.
    pub fn total_objects(&self) -> u64 {
        self.queries.iter().map(|q| q.len() as u64).sum()
    }

    /// Attaches arrival times (must be sorted, one per query).
    ///
    /// # Panics
    /// Panics on length mismatch or unsorted arrivals.
    pub fn with_arrivals(&self, arrivals: Vec<SimTime>) -> TimedTrace {
        assert_eq!(
            arrivals.len(),
            self.queries.len(),
            "need exactly one arrival per query"
        );
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrivals must be sorted"
        );
        TimedTrace {
            entries: arrivals
                .into_iter()
                .zip(self.queries.iter().cloned())
                .collect(),
        }
    }

    /// Like [`with_arrivals`](Self::with_arrivals) but consumes the trace,
    /// *moving* the queries instead of deep-cloning millions of match
    /// objects — the cheap path for fixture builders that no longer need
    /// the untimed trace.
    ///
    /// # Panics
    /// Panics if `arrivals` and queries differ in length, or arrivals are
    /// unsorted.
    pub fn into_timed(self, arrivals: Vec<SimTime>) -> TimedTrace {
        assert_eq!(
            arrivals.len(),
            self.queries.len(),
            "need exactly one arrival per query"
        );
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrivals must be sorted"
        );
        TimedTrace {
            entries: arrivals.into_iter().zip(self.queries).collect(),
        }
    }

    /// Serializes the trace to a writer in the v1 text format.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "liferaft-trace v1")?;
        writeln!(w, "level {}", self.level)?;
        writeln!(w, "queries {}", self.queries.len())?;
        for q in &self.queries {
            let pred = match q.predicate {
                Predicate::All => "all".to_string(),
                Predicate::MagRange { min, max } => format!("magrange {min} {max}"),
                Predicate::BrighterThan(b) => format!("brighter {b}"),
            };
            writeln!(w, "query {} {} {}", q.id.0, q.len(), pred)?;
            for o in &q.objects {
                let (ra, dec) = o.pos.to_radec();
                // 17 significant digits round-trip f64 exactly.
                writeln!(w, "o {ra:.17e} {dec:.17e} {:.17e}", o.radius)?;
            }
        }
        Ok(())
    }

    /// Parses a trace from a reader (recomputing object bounding boxes at
    /// the recorded level).
    pub fn read_from<R: BufRead>(r: R) -> Result<Self, TraceReadError> {
        let mut lines = r.lines().enumerate();
        let mut next = |expect: &str| -> Result<(usize, String), TraceReadError> {
            match lines.next() {
                Some((n, Ok(line))) => Ok((n + 1, line)),
                Some((n, Err(e))) => Err(TraceReadError::Io(n + 1, e)),
                None => Err(TraceReadError::UnexpectedEof(expect.to_string())),
            }
        };

        let (n, header) = next("header")?;
        if header.trim() != "liferaft-trace v1" {
            return Err(TraceReadError::Malformed(
                n,
                format!("bad header {header:?}"),
            ));
        }
        let (n, level_line) = next("level")?;
        let level: u8 = parse_kv(&level_line, "level", n)?;
        let (n, count_line) = next("queries")?;
        let count: usize = parse_kv(&count_line, "queries", n)?;

        let mut queries = Vec::with_capacity(count);
        for _ in 0..count {
            let (n, qline) = next("query")?;
            let mut parts = qline.split_whitespace();
            if parts.next() != Some("query") {
                return Err(TraceReadError::Malformed(
                    n,
                    format!("expected query line, got {qline:?}"),
                ));
            }
            let id: u64 = parse_field(parts.next(), "query id", n)?;
            let n_objects: usize = parse_field(parts.next(), "object count", n)?;
            let predicate = match parts.next() {
                Some("all") => Predicate::All,
                Some("magrange") => Predicate::MagRange {
                    min: parse_field(parts.next(), "magrange min", n)?,
                    max: parse_field(parts.next(), "magrange max", n)?,
                },
                Some("brighter") => {
                    Predicate::BrighterThan(parse_field(parts.next(), "brighter bound", n)?)
                }
                other => {
                    return Err(TraceReadError::Malformed(
                        n,
                        format!("unknown predicate {other:?}"),
                    ))
                }
            };
            let mut objects = Vec::with_capacity(n_objects);
            for _ in 0..n_objects {
                let (n, oline) = next("object")?;
                let mut parts = oline.split_whitespace();
                if parts.next() != Some("o") {
                    return Err(TraceReadError::Malformed(
                        n,
                        format!("expected object line, got {oline:?}"),
                    ));
                }
                let ra: f64 = parse_field(parts.next(), "ra", n)?;
                let dec: f64 = parse_field(parts.next(), "dec", n)?;
                let radius: f64 = parse_field(parts.next(), "radius", n)?;
                objects.push(MatchObject::new(
                    liferaft_htm::Vec3::from_radec(ra, dec),
                    radius,
                    level,
                ));
            }
            queries.push(CrossMatchQuery::new(QueryId(id), objects, predicate));
        }
        Ok(Trace::new(level, queries))
    }
}

fn parse_kv<T: std::str::FromStr>(line: &str, key: &str, n: usize) -> Result<T, TraceReadError> {
    let mut parts = line.split_whitespace();
    if parts.next() != Some(key) {
        return Err(TraceReadError::Malformed(
            n,
            format!("expected `{key} <value>`, got {line:?}"),
        ));
    }
    parse_field(parts.next(), key, n)
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    what: &str,
    n: usize,
) -> Result<T, TraceReadError> {
    field
        .ok_or_else(|| TraceReadError::Malformed(n, format!("missing {what}")))?
        .parse()
        .map_err(|_| TraceReadError::Malformed(n, format!("unparseable {what}")))
}

/// Errors produced by [`Trace::read_from`].
#[derive(Debug)]
pub enum TraceReadError {
    /// I/O failure at a line.
    Io(usize, io::Error),
    /// Structurally invalid content at a line.
    Malformed(usize, String),
    /// Input ended while expecting more content.
    UnexpectedEof(String),
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(line, e) => write!(f, "I/O error at line {line}: {e}"),
            TraceReadError::Malformed(line, what) => {
                write!(f, "malformed trace at line {line}: {what}")
            }
            TraceReadError::UnexpectedEof(what) => {
                write!(f, "unexpected end of trace while reading {what}")
            }
        }
    }
}

impl std::error::Error for TraceReadError {}

/// A trace with arrival instants attached — directly replayable by the
/// simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedTrace {
    entries: Vec<(SimTime, CrossMatchQuery)>,
}

impl TimedTrace {
    /// The (arrival, query) pairs in arrival order.
    pub fn entries(&self) -> &[(SimTime, CrossMatchQuery)] {
        &self.entries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The offered load in queries/second (n / span of arrivals), or 0 for
    /// traces with fewer than two queries.
    pub fn offered_rate_qps(&self) -> f64 {
        if self.entries.len() < 2 {
            return 0.0;
        }
        let first = self.entries.first().expect("len checked").0;
        let last = self.entries.last().expect("len checked").0;
        let span = last.since(first).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.entries.len() as f64 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::uniform_arrivals;
    use liferaft_htm::Vec3;

    fn sample_trace() -> Trace {
        let mk = |id: u64, ra: f64, pred: Predicate| {
            CrossMatchQuery::from_positions(
                QueryId(id),
                &[
                    Vec3::from_radec_deg(ra, 10.0),
                    Vec3::from_radec_deg(ra + 0.5, -20.0),
                ],
                1e-4,
                8,
                pred,
            )
        };
        Trace::new(
            8,
            vec![
                mk(0, 10.0, Predicate::All),
                mk(
                    1,
                    120.0,
                    Predicate::MagRange {
                        min: 15.0,
                        max: 18.5,
                    },
                ),
                mk(2, 250.0, Predicate::BrighterThan(20.25)),
            ],
        )
    }

    #[test]
    fn codec_round_trips() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back.level(), t.level());
        assert_eq!(back.len(), t.len());
        for (a, b) in t.queries().iter().zip(back.queries()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.predicate, b.predicate);
            assert_eq!(a.len(), b.len());
            for (oa, ob) in a.objects.iter().zip(&b.objects) {
                assert!(oa.pos.angle_to(ob.pos) < 1e-12);
                assert_eq!(oa.radius, ob.radius);
                assert_eq!(oa.bbox, ob.bbox, "bbox must recompute identically");
            }
        }
    }

    #[test]
    fn read_rejects_bad_header() {
        let err = Trace::read_from("not-a-trace\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceReadError::Malformed(1, _)), "{err}");
    }

    #[test]
    fn read_rejects_truncation() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        // Drop the final line entirely (truncating mid-line could still leave
        // a parseable shorter float; a missing line is unambiguous).
        let cut = buf[..buf.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .expect("multi-line trace");
        let err = Trace::read_from(&buf[..=cut]).unwrap_err();
        assert!(matches!(err, TraceReadError::UnexpectedEof(_)), "{err}");
    }

    #[test]
    fn read_rejects_unknown_predicate() {
        let text = "liferaft-trace v1\nlevel 8\nqueries 1\nquery 0 0 frobnicate\n";
        let err = Trace::read_from(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown predicate"));
    }

    #[test]
    fn with_arrivals_builds_timed_trace() {
        let t = sample_trace();
        let timed = t.with_arrivals(uniform_arrivals(1.0, 3));
        assert_eq!(timed.len(), 3);
        assert_eq!(timed.entries()[0].0.as_secs_f64(), 1.0);
        assert_eq!(timed.entries()[2].1.id, QueryId(2));
        // 3 queries over a 2s span.
        assert!((timed.offered_rate_qps() - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one arrival per query")]
    fn with_arrivals_length_mismatch() {
        sample_trace().with_arrivals(uniform_arrivals(1.0, 2));
    }

    #[test]
    fn trace_accessors() {
        let t = sample_trace();
        assert_eq!(t.total_objects(), 6);
        assert!(!t.is_empty());
    }
}
