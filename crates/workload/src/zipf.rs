//! Zipf-distributed sampling over a finite set of ranks.

use rand::Rng;

/// A Zipf distribution over ranks `0..n`: rank `k` has probability
/// proportional to `1/(k+1)^s`.
///
/// Hotspot popularity in sky-survey workloads is heavy-tailed — a handful of
/// famous regions (survey overlaps, well-known objects) dominate — which is
/// precisely what produces the paper's "top ten buckets accessed by 61% of
/// queries" shape.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution, cdf[k] = P(rank ≤ k); last element is 1.
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf(s) distribution over `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0` or the exponent is not finite and non-negative.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "Zipf exponent must be ≥ 0, got {exponent}"
        );
        let weights: Vec<f64> = (0..n)
            .map(|k| 1.0 / ((k + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf, exponent }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let hi = self.cdf[k];
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        hi - lo
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // First rank whose cdf exceeds u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_normalized_and_monotone() {
        let z = Zipf::new(10, 1.2);
        assert_eq!(z.len(), 10);
        let cdf = &z.cdf;
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_ratios_follow_power_law() {
        let z = Zipf::new(8, 2.0);
        // p(0)/p(1) = 2^2 = 4.
        assert!((z.pmf(0) / z.pmf(1) - 4.0).abs() < 1e-9);
        assert!((z.pmf(1) / z.pmf(3) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            assert!(
                (freq - z.pmf(k)).abs() < 0.01,
                "rank {k}: freq {freq} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
