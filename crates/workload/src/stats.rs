//! Workload-shape analysis: the inputs to Figures 5 and 6.

use liferaft_catalog::Partition;
use liferaft_query::QueryPreProcessor;

use crate::trace::Trace;

/// Aggregate bucket-level statistics of a trace against a partition.
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    n_queries: usize,
    n_buckets: usize,
    /// Per bucket: number of distinct queries touching it.
    query_counts: Vec<u64>,
    /// Per bucket: total workload objects (assignments) routed to it.
    object_counts: Vec<u64>,
    /// Per query: the buckets it touches (for reuse scatter plots).
    query_buckets: Vec<Vec<u32>>,
}

impl WorkloadStats {
    /// Runs the pre-processor over every query and aggregates.
    pub fn analyze(trace: &Trace, partition: &Partition) -> Self {
        assert_eq!(
            trace.level(),
            partition.level(),
            "trace and partition must share the object level"
        );
        let pre = QueryPreProcessor::new(partition);
        let n_buckets = partition.num_buckets();
        let mut query_counts = vec![0u64; n_buckets];
        let mut object_counts = vec![0u64; n_buckets];
        let mut query_buckets = Vec::with_capacity(trace.len());
        for q in trace.queries() {
            let items = pre.preprocess(q);
            let mut touched = Vec::with_capacity(items.len());
            for item in &items {
                query_counts[item.bucket.index()] += 1;
                object_counts[item.bucket.index()] += item.len() as u64;
                touched.push(item.bucket.0);
            }
            query_buckets.push(touched);
        }
        WorkloadStats {
            n_queries: trace.len(),
            n_buckets,
            query_counts,
            object_counts,
            query_buckets,
        }
    }

    /// Number of queries analyzed.
    pub fn n_queries(&self) -> usize {
        self.n_queries
    }

    /// Number of buckets in the partition.
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// Buckets touched by at least one query.
    pub fn touched_buckets(&self) -> usize {
        self.query_counts.iter().filter(|&&c| c > 0).count()
    }

    /// The `k` most-queried buckets, most popular first.
    pub fn top_buckets_by_queries(&self, k: usize) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.n_buckets as u32).collect();
        order.sort_by_key(|&b| std::cmp::Reverse(self.query_counts[b as usize]));
        order.truncate(k);
        order
    }

    /// Fraction of queries that touch at least one of the `k` most-queried
    /// buckets — the paper reports 61% for k = 10 (Figure 5).
    pub fn top_k_query_coverage(&self, k: usize) -> f64 {
        let top = self.top_buckets_by_queries(k);
        let covered = self
            .query_buckets
            .iter()
            .filter(|buckets| buckets.iter().any(|b| top.contains(b)))
            .count();
        covered as f64 / self.n_queries.max(1) as f64
    }

    /// Figure 5's scatter: for each query touching a top-`k` bucket, the
    /// (query index, rank of that bucket within the top-k) points.
    pub fn reuse_events(&self, k: usize) -> Vec<(usize, usize)> {
        let top = self.top_buckets_by_queries(k);
        let mut events = Vec::new();
        for (qi, buckets) in self.query_buckets.iter().enumerate() {
            for b in buckets {
                if let Some(rank) = top.iter().position(|t| t == b) {
                    events.push((qi, rank));
                }
            }
        }
        events
    }

    /// Figure 6's CDF: cumulative fraction of total workload objects carried
    /// by buckets ranked by descending object count. `points` controls the
    /// resolution; returns (bucket rank, cumulative fraction ∈ [0, 1]).
    pub fn cumulative_workload(&self) -> Vec<(usize, f64)> {
        let mut counts: Vec<u64> = self.object_counts.clone();
        counts.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
        let total: u64 = counts.iter().sum();
        let mut acc = 0u64;
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                acc += c;
                (
                    i + 1,
                    if total == 0 {
                        0.0
                    } else {
                        acc as f64 / total as f64
                    },
                )
            })
            .collect()
    }

    /// Fraction of the total workload captured by the top `bucket_fraction`
    /// of all buckets — the paper reports ≈50% at 2% (Figure 6).
    pub fn workload_share_of_top_buckets(&self, bucket_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&bucket_fraction));
        let k = ((self.n_buckets as f64 * bucket_fraction).round() as usize).max(1);
        let cdf = self.cumulative_workload();
        cdf.get(k - 1).map(|&(_, f)| f).unwrap_or(1.0)
    }

    /// Mean buckets touched per query.
    pub fn mean_buckets_per_query(&self) -> f64 {
        let total: usize = self.query_buckets.iter().map(Vec::len).sum();
        total as f64 / self.n_queries.max(1) as f64
    }

    /// Total (object × bucket) assignments across the trace.
    pub fn total_assignments(&self) -> u64 {
        self.object_counts.iter().sum()
    }

    /// Temporal locality: the mean gap (in query sequence positions) between
    /// consecutive accesses to the same top-`k` bucket. Smaller = hotter
    /// temporal clustering (Figure 5's visual).
    pub fn mean_reuse_gap(&self, k: usize) -> f64 {
        let top = self.top_buckets_by_queries(k);
        let mut gaps = Vec::new();
        for b in &top {
            let mut last: Option<usize> = None;
            for (qi, buckets) in self.query_buckets.iter().enumerate() {
                if buckets.contains(b) {
                    if let Some(prev) = last {
                        gaps.push((qi - prev) as f64);
                    }
                    last = Some(qi);
                }
            }
        }
        if gaps.is_empty() {
            f64::INFINITY
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceGenerator, WorkloadConfig};
    use liferaft_catalog::Partition;

    const LEVEL: u8 = 8;
    const N_BUCKETS: u32 = 256;

    fn setup() -> (Trace, Partition) {
        let cfg = WorkloadConfig::paper_like(LEVEL, N_BUCKETS, 300, 7);
        let trace = TraceGenerator::new(cfg).generate();
        let partition = Partition::synthetic_uniform(LEVEL, N_BUCKETS, 1_000, 4096);
        (trace, partition)
    }

    #[test]
    fn hotspot_workload_is_concentrated() {
        let (trace, partition) = setup();
        let stats = WorkloadStats::analyze(&trace, &partition);
        // Paper: top-10 buckets touched by ~61% of queries. Accept a band.
        let coverage = stats.top_k_query_coverage(10);
        assert!(
            (0.40..=0.90).contains(&coverage),
            "top-10 coverage {coverage} outside the expected band"
        );
        // Concentration must be real: top-10 coverage far exceeds the
        // 10/n_buckets uniform expectation.
        assert!(coverage > 10.0 / N_BUCKETS as f64 * 5.0);
    }

    #[test]
    fn cumulative_workload_is_heavily_skewed() {
        let (trace, partition) = setup();
        let stats = WorkloadStats::analyze(&trace, &partition);
        // Paper: 2% of buckets capture ~50% of the workload.
        let share = stats.workload_share_of_top_buckets(0.02);
        assert!(
            (0.30..=0.95).contains(&share),
            "2% share {share} outside the expected band"
        );
        // CDF is monotone and ends at 1.
        let cdf = stats.cumulative_workload();
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reuse_events_reference_top_buckets_only() {
        let (trace, partition) = setup();
        let stats = WorkloadStats::analyze(&trace, &partition);
        let events = stats.reuse_events(10);
        assert!(!events.is_empty());
        for &(qi, rank) in &events {
            assert!(qi < stats.n_queries());
            assert!(rank < 10);
        }
    }

    #[test]
    fn temporal_locality_beats_shuffled_baseline() {
        let (trace, partition) = setup();
        let stats = WorkloadStats::analyze(&trace, &partition);
        // With epoch-based activity, reuse gaps of hot buckets must be far
        // smaller than the n_queries/(touch count) expectation of a uniform
        // spread... at minimum, finite and small relative to the trace.
        let gap = stats.mean_reuse_gap(5);
        assert!(gap.is_finite());
        assert!(
            gap < trace.len() as f64 / 4.0,
            "mean reuse gap {gap} too large"
        );
    }

    #[test]
    fn accounting_identities() {
        let (trace, partition) = setup();
        let stats = WorkloadStats::analyze(&trace, &partition);
        assert_eq!(stats.n_queries(), trace.len());
        assert_eq!(stats.n_buckets(), partition.num_buckets());
        assert!(stats.touched_buckets() > 0);
        assert!(stats.touched_buckets() <= stats.n_buckets());
        // Assignments ≥ objects (multi-bucket objects fan out).
        assert!(stats.total_assignments() >= trace.total_objects());
        assert!(stats.mean_buckets_per_query() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "share the object level")]
    fn level_mismatch_rejected() {
        let (trace, _) = setup();
        let other = Partition::synthetic_uniform(9, 64, 100, 4096);
        WorkloadStats::analyze(&trace, &other);
    }
}
