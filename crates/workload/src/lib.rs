//! Synthetic SkyQuery-style workloads for LifeRaft experiments.
//!
//! The paper evaluates against "a two-thousand query trace from SkyQuery
//! consisting of only long running cross-match queries" (Section 5.1) whose
//! defining properties are published in Figures 5 and 6:
//!
//! - the top ten buckets are reused frequently and "accessed by 61% of the
//!   queries";
//! - "queries that overlap in data access are close temporally";
//! - "2% of the buckets capture 50% of the workload while the remaining
//!   buckets make up the tail".
//!
//! The original web log is not available, so [`generator`] synthesizes
//! traces with exactly this shape: Zipf-popular hotspot regions activated in
//! temporal epochs over a uniform background, with a long-tailed query-size
//! mixture. [`stats`] recomputes the Figure 5/6 analyses from any trace so
//! tests (and the figure harness) can verify the shape rather than assume
//! it.
//!
//! Arrival processes live in [`arrivals`] (the saturation axis of Figure 8),
//! and [`trace`] provides a plain-text codec so traces can be saved,
//! inspected, and replayed bit-identically.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod generator;
pub mod stats;
pub mod trace;
pub mod zipf;

pub use generator::{TraceGenerator, WorkloadConfig};
pub use stats::WorkloadStats;
pub use trace::{TimedTrace, Trace};
pub use zipf::Zipf;
