//! Arrival processes: the saturation axis of the evaluation.
//!
//! Figure 8 replays the same trace at saturations of 0.1–0.5 queries/second;
//! the adaptive-α example additionally needs bursty, non-stationary
//! arrivals (Section 6 stresses that real query streams have "no steady
//! state").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use liferaft_storage::{SimDuration, SimTime};

/// Generates `n` Poisson arrival instants at `rate_qps` queries/second.
///
/// Inter-arrival gaps are i.i.d. exponential with mean `1/rate`; the first
/// arrival occurs after one gap (the simulation epoch is t = 0).
///
/// # Panics
/// Panics unless the rate is finite and positive.
pub fn poisson_arrivals(rate_qps: f64, n: usize, seed: u64) -> Vec<SimTime> {
    assert!(
        rate_qps.is_finite() && rate_qps > 0.0,
        "arrival rate must be positive, got {rate_qps}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = SimTime::ZERO;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap_s = -u.ln() / rate_qps;
            t += SimDuration::from_secs_f64(gap_s);
            t
        })
        .collect()
}

/// Deterministic arrivals at a fixed period (useful for reproducible tests).
pub fn uniform_arrivals(rate_qps: f64, n: usize) -> Vec<SimTime> {
    assert!(rate_qps.is_finite() && rate_qps > 0.0);
    let period = SimDuration::from_secs_f64(1.0 / rate_qps);
    (1..=n as u64)
        .map(|i| SimTime::ZERO + period.times(i))
        .collect()
}

/// On/off bursty arrivals: alternating phases of `phase` duration drawing
/// from `high_qps` then `low_qps` Poisson rates.
///
/// Models the bursty, non-stationary streams Section 6 argues stationary
/// schedulers mishandle.
pub fn bursty_arrivals(
    low_qps: f64,
    high_qps: f64,
    phase: SimDuration,
    n: usize,
    seed: u64,
) -> Vec<SimTime> {
    assert!(low_qps.is_finite() && low_qps > 0.0);
    assert!(high_qps.is_finite() && high_qps >= low_qps);
    assert!(phase > SimDuration::ZERO);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64; // seconds
    let phase_s = phase.as_secs_f64();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Phase index alternates high (even) / low (odd), starting high.
        let phase_idx = (t / phase_s) as u64;
        let rate = if phase_idx % 2 == 0 {
            high_qps
        } else {
            low_qps
        };
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate;
        out.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
    }
    out
}

/// Non-homogeneous Poisson arrivals by thinning: candidate events are drawn
/// at `rate_max` and accepted with probability `rate(t) / rate_max`, which
/// realizes any bounded time-varying rate exactly. Deterministic per seed.
fn thinned_arrivals(
    rate_of: impl Fn(f64) -> f64,
    rate_max: f64,
    n: usize,
    seed: u64,
) -> Vec<SimTime> {
    assert!(rate_max.is_finite() && rate_max > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64; // seconds
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate_max;
        let accept: f64 = rng.gen_range(0.0..1.0);
        let r = rate_of(t);
        debug_assert!((0.0..=rate_max).contains(&r), "rate {r} escapes [0, max]");
        if accept < r / rate_max {
            out.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
        }
    }
    out
}

/// A flash crowd: Poisson at `base_qps`, except the window
/// `[flash_at, flash_at + flash_len)` where the rate jumps to `flash_qps` —
/// the canonical overload scenario (a sudden burst far beyond service
/// capacity that an admission controller must absorb without starving
/// interactive work).
///
/// # Panics
/// Panics unless `0 < base_qps <= flash_qps` and the window is non-empty.
pub fn flash_crowd_arrivals(
    base_qps: f64,
    flash_qps: f64,
    flash_at: SimDuration,
    flash_len: SimDuration,
    n: usize,
    seed: u64,
) -> Vec<SimTime> {
    assert!(base_qps.is_finite() && base_qps > 0.0);
    assert!(flash_qps.is_finite() && flash_qps >= base_qps);
    assert!(
        flash_len > SimDuration::ZERO,
        "flash window must be non-empty"
    );
    let (from, until) = (flash_at.as_secs_f64(), (flash_at + flash_len).as_secs_f64());
    thinned_arrivals(
        |t| {
            if t >= from && t < until {
                flash_qps
            } else {
                base_qps
            }
        },
        flash_qps,
        n,
        seed,
    )
}

/// Diurnal arrivals: a sinusoidal rate cycling between `trough_qps` and
/// `peak_qps` with the given `period`, starting at the trough (t = 0 is
/// "night"). Models the daily load cycle a capacity-bounded front door sees.
///
/// # Panics
/// Panics unless `0 < trough_qps <= peak_qps` and the period is positive.
pub fn diurnal_arrivals(
    trough_qps: f64,
    peak_qps: f64,
    period: SimDuration,
    n: usize,
    seed: u64,
) -> Vec<SimTime> {
    assert!(trough_qps.is_finite() && trough_qps > 0.0);
    assert!(peak_qps.is_finite() && peak_qps >= trough_qps);
    assert!(period > SimDuration::ZERO, "period must be positive");
    let period_s = period.as_secs_f64();
    let mid = (peak_qps + trough_qps) / 2.0;
    let amp = (peak_qps - trough_qps) / 2.0;
    thinned_arrivals(
        |t| mid - amp * (2.0 * std::f64::consts::PI * t / period_s).cos(),
        peak_qps,
        n,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_sorted_and_rate_accurate() {
        let arrivals = poisson_arrivals(0.5, 4_000, 7);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        let span = arrivals.last().unwrap().as_secs_f64();
        let rate = 4_000.0 / span;
        assert!(
            (rate - 0.5).abs() < 0.03,
            "empirical rate {rate} too far from 0.5"
        );
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        assert_eq!(poisson_arrivals(1.0, 50, 3), poisson_arrivals(1.0, 50, 3));
        assert_ne!(poisson_arrivals(1.0, 50, 3), poisson_arrivals(1.0, 50, 4));
    }

    #[test]
    fn uniform_arrivals_are_periodic() {
        let a = uniform_arrivals(2.0, 4);
        let times: Vec<f64> = a.iter().map(|t| t.as_secs_f64()).collect();
        assert_eq!(times, vec![0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn bursty_has_two_regimes() {
        let phase = SimDuration::from_secs(1_000);
        let arrivals = bursty_arrivals(0.05, 2.0, phase, 3_000, 11);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Count arrivals in the first high phase vs the first low phase.
        let in_phase = |lo: f64, hi: f64| {
            arrivals
                .iter()
                .filter(|t| t.as_secs_f64() >= lo && t.as_secs_f64() < hi)
                .count()
        };
        let high = in_phase(0.0, 1_000.0);
        let low = in_phase(1_000.0, 2_000.0);
        assert!(high > low * 5, "burst not visible: high {high}, low {low}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        poisson_arrivals(0.0, 1, 0);
    }

    #[test]
    fn flash_crowd_concentrates_in_the_window() {
        let at = SimDuration::from_secs(100);
        let len = SimDuration::from_secs(50);
        let arrivals = flash_crowd_arrivals(0.5, 20.0, at, len, 2_000, 9);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            arrivals,
            flash_crowd_arrivals(0.5, 20.0, at, len, 2_000, 9),
            "same seed, same stream"
        );
        let in_window = arrivals
            .iter()
            .filter(|t| t.as_secs_f64() >= 100.0 && t.as_secs_f64() < 150.0)
            .count();
        // 50 s at 20 q/s ≈ 1000 arrivals vs ≈ 50 in the preceding 100 s of
        // base load; the window must dominate its surroundings by far.
        let before = arrivals
            .iter()
            .filter(|t| t.as_secs_f64() < 100.0)
            .count()
            .max(1);
        assert!(
            in_window > before * 5,
            "flash not visible: {in_window} in-window vs {before} before"
        );
    }

    #[test]
    fn diurnal_peaks_mid_cycle() {
        let period = SimDuration::from_secs(1_000);
        let arrivals = diurnal_arrivals(0.2, 4.0, period, 3_000, 13);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // The first half-period is the ramp to the peak (t = period/2); the
        // window around the peak must far out-arrive the window at the
        // trough (cycle start).
        let count = |lo: f64, hi: f64| {
            arrivals
                .iter()
                .filter(|t| t.as_secs_f64() >= lo && t.as_secs_f64() < hi)
                .count()
        };
        let peak = count(400.0, 600.0);
        let trough = count(900.0, 1_100.0).max(1);
        assert!(
            peak > trough * 3,
            "cycle not visible: peak {peak}, trough {trough}"
        );
    }
}
