//! The synthetic trace generator.
//!
//! Reproduces the published shape of the SkyQuery trace (Section 5.1,
//! Figures 5–6) from four ingredients:
//!
//! 1. **Hotspots** — a small set of popular sky regions (survey overlap
//!    areas, famous objects) with Zipf-distributed popularity. Queries
//!    hitting the same hotspot contend for the same buckets, producing the
//!    "top ten buckets accessed by 61% of queries" concentration.
//! 2. **Temporal epochs** — the trace is divided into epochs during which
//!    only a few hotspots are *active*; this yields Figure 5's pattern that
//!    "queries that overlap in data access are close temporally".
//! 3. **Background** — the remaining queries explore uniformly random
//!    regions, generating the long tail of sparsely-touched buckets that
//!    "are susceptible to starvation by the scheduler" (Figure 6).
//! 4. **Size mixture** — small/large/full-sky query sizes, since
//!    cross-matches range from focused probes to multi-hour sky sweeps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use liferaft_htm::{CachingCoverer, Vec3};
use liferaft_query::{CrossMatchQuery, MatchObject, Predicate, QueryId};

use crate::trace::Trace;
use crate::zipf::Zipf;

/// Parameters of the synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries in the trace (the paper uses 2 000).
    pub n_queries: usize,
    /// Generator seed.
    pub seed: u64,
    /// HTM level of object bounding boxes — must match the partition level.
    pub level: u8,
    /// Number of hotspot regions.
    pub hotspots: usize,
    /// Zipf exponent of hotspot popularity.
    pub hotspot_zipf: f64,
    /// Fraction of queries directed at hotspots (rest are background).
    pub hotspot_fraction: f64,
    /// Angular radius (radians) of a hotspot footprint.
    pub hotspot_radius: f64,
    /// Number of temporal epochs across the trace.
    pub epochs: usize,
    /// Hotspots active per epoch.
    pub active_per_epoch: usize,
    /// The most popular hotspots are "famous regions" active in *every*
    /// epoch (survey overlap areas drawing queries across the whole trace);
    /// the remainder of each epoch's active set rotates. Continuous activity
    /// on the hottest buckets is what makes caching matter: "queries that
    /// overlap in data access are close temporally, which benefits caching"
    /// (Section 5.1).
    pub always_active: usize,
    /// Inclusive range of objects for small queries.
    pub size_small: (usize, usize),
    /// Inclusive range of objects for large queries.
    pub size_large: (usize, usize),
    /// Fraction of large queries among background/full-sky queries.
    pub large_fraction: f64,
    /// Fraction of large queries among hotspot queries. Famous regions draw
    /// many *focused* probes (most queries, fewer objects each), while the
    /// exploratory background carries the bulk of the object mass — that is
    /// how the published trace can have the top-10 buckets touched by 61%
    /// of queries (Figure 5) while 98% of buckets still hold half the
    /// workload objects (Figure 6).
    pub hot_large_fraction: f64,
    /// Fraction of full-sky queries (objects spread over the whole sphere).
    pub full_sky_fraction: f64,
    /// Cross-match error radius in radians (arcseconds in practice).
    pub error_radius: f64,
    /// Log-uniform range of footprint-radius multipliers: each query's
    /// region is `hotspot_radius × m` with `m ∈ [min, max]`. Values above 1
    /// make queries span several buckets, which controls the mean
    /// buckets-per-query (and therefore per-query service time).
    pub region_spread: (f64, f64),
}

impl WorkloadConfig {
    /// A workload shaped like the paper's trace, scaled to a partition of
    /// `n_buckets` buckets at `level`.
    ///
    /// The hotspot radius is sized to cover roughly one bucket's worth of
    /// sky (`area ≈ 4π/n_buckets`), so hotspot queries pile onto the same
    /// few buckets.
    pub fn paper_like(level: u8, n_buckets: u32, n_queries: usize, seed: u64) -> Self {
        let bucket_area = 4.0 * std::f64::consts::PI / n_buckets as f64;
        // Cap area ≈ π r² for small r. Hotspot cores cover well under one
        // bucket so the global hot set stays near the published shape —
        // ten-ish buckets drawing the majority of queries (Figure 5), a
        // working set comparable to the 20-bucket cache.
        let hotspot_radius = (0.35 * bucket_area / std::f64::consts::PI).sqrt();
        WorkloadConfig {
            n_queries,
            seed,
            level,
            hotspots: 12,
            hotspot_zipf: 1.1,
            hotspot_fraction: 0.72,
            hotspot_radius,
            epochs: 8,
            active_per_epoch: 4,
            always_active: 2,
            // Cross-match queries ship the *intermediate result list* of the
            // previous archive in the join chain — hundreds to thousands of
            // objects concentrated in the query footprint. Dense lists are
            // what push per-bucket workload queues around the hybrid
            // strategy's 3% break-even (Figure 2's x-axis).
            size_small: (100, 400),
            size_large: (600, 2_000),
            large_fraction: 0.65,
            hot_large_fraction: 0.15,
            full_sky_fraction: 0.005,
            error_radius: (10.0 / 3600.0_f64).to_radians(), // 10 arcsec
            region_spread: (1.0, 2.2),
        }
    }

    fn validate(&self) {
        assert!(self.n_queries > 0, "n_queries must be positive");
        assert!(self.hotspots > 0, "need at least one hotspot");
        assert!((0.0..=1.0).contains(&self.hotspot_fraction));
        assert!((0.0..=1.0).contains(&self.large_fraction));
        assert!((0.0..=1.0).contains(&self.hot_large_fraction));
        assert!((0.0..=1.0).contains(&self.full_sky_fraction));
        assert!(self.epochs > 0 && self.active_per_epoch > 0);
        assert!(
            self.always_active <= self.active_per_epoch,
            "always_active hotspots must fit in the per-epoch active set"
        );
        assert!(self.hotspot_radius > 0.0 && self.error_radius > 0.0);
        assert!(self.size_small.0 >= 1 && self.size_small.0 <= self.size_small.1);
        assert!(self.size_large.0 >= 1 && self.size_large.0 <= self.size_large.1);
        assert!(
            self.region_spread.0 > 0.0 && self.region_spread.0 <= self.region_spread.1,
            "region_spread must satisfy 0 < min ≤ max"
        );
    }
}

/// The per-trace hotspot geometry every query draws from: the hotspot
/// centers and each epoch's active set. A pure function of the
/// configuration ([`TraceGenerator::layout`]), shared by the serial
/// generator and every chunk of a parallel build.
#[derive(Debug, Clone)]
pub struct TraceLayout {
    centers: Vec<Vec3>,
    active: Vec<Vec<usize>>,
}

/// Generates [`Trace`]s from a [`WorkloadConfig`].
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: WorkloadConfig,
}

impl TraceGenerator {
    /// Creates a generator, validating the configuration.
    pub fn new(config: WorkloadConfig) -> Self {
        config.validate();
        TraceGenerator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Derives the hotspot layout from `rng` (the serial generator threads
    /// its one stream through here and on into the queries).
    fn layout_with(&self, rng: &mut StdRng) -> TraceLayout {
        let cfg = &self.config;
        // Hotspot centers, fixed for the whole trace.
        let centers: Vec<Vec3> = (0..cfg.hotspots).map(|_| uniform_point(rng)).collect();
        let popularity = Zipf::new(cfg.hotspots, cfg.hotspot_zipf);

        // Active hotspots per epoch: the most popular few are always active
        // (famous regions), the rest of the slots rotate by Zipf sampling so
        // each epoch has temporal focus.
        let pinned = cfg.always_active.min(cfg.hotspots);
        let active: Vec<Vec<usize>> = (0..cfg.epochs)
            .map(|_| {
                let mut set: Vec<usize> = (0..pinned).collect();
                // Rejection-sample distinct hotspots; bounded because
                // active_per_epoch ≤ hotspots.
                while set.len() < cfg.active_per_epoch.min(cfg.hotspots) {
                    let h = popularity.sample(rng);
                    if !set.contains(&h) {
                        set.push(h);
                    }
                }
                set
            })
            .collect();
        TraceLayout { centers, active }
    }

    /// The hotspot layout of the *independently seeded* trace family — the
    /// shared input of every [`generate_block`](Self::generate_block) call.
    /// Deterministic per configuration.
    pub fn layout(&self) -> TraceLayout {
        self.layout_with(&mut StdRng::seed_from_u64(self.config.seed))
    }

    /// Generates the trace (deterministic per configuration).
    ///
    /// This is the *sequential* trace family: one RNG stream threads
    /// through the layout and every query in order, so the content of query
    /// `i` depends on all earlier queries. For a chunkable trace whose
    /// queries are independently seeded (parallel fixture builds), see
    /// [`generate_block`](Self::generate_block).
    pub fn generate(&self) -> Trace {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let layout = self.layout_with(&mut rng);
        let mut coverer = CachingCoverer::new(cfg.level);

        let queries = (0..cfg.n_queries)
            .map(|i| {
                let epoch = i * cfg.epochs / cfg.n_queries;
                self.generate_query(
                    i as u64,
                    &mut rng,
                    &layout.centers,
                    &layout.active[epoch],
                    &mut coverer,
                )
            })
            .collect();
        Trace::new(cfg.level, queries)
    }

    /// Generates queries `start..end` of the **independently seeded** trace
    /// family: query `i` draws from its own SplitMix64-derived RNG stream,
    /// so concatenating blocks `[0, a) ∪ [a, b) ∪ … ∪ [z, n)` produces the
    /// same queries for *any* split points — the determinism contract that
    /// lets a fixture build fan blocks across threads (e.g.
    /// `liferaft-runtime`'s `parallel_map`) and stay bit-identical at every
    /// thread and chunk count.
    ///
    /// The layout must come from [`layout`](Self::layout) on the same
    /// configuration.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > n_queries`.
    pub fn generate_block(
        &self,
        layout: &TraceLayout,
        start: usize,
        end: usize,
    ) -> Vec<CrossMatchQuery> {
        let cfg = &self.config;
        assert!(start <= end && end <= cfg.n_queries, "block out of range");
        let mut coverer = CachingCoverer::new(cfg.level);
        (start..end)
            .map(|i| {
                let epoch = i * cfg.epochs / cfg.n_queries;
                let mut rng = StdRng::seed_from_u64(query_seed(cfg.seed, i as u64));
                self.generate_query(
                    i as u64,
                    &mut rng,
                    &layout.centers,
                    &layout.active[epoch],
                    &mut coverer,
                )
            })
            .collect()
    }

    /// The whole independently-seeded trace, serially — the reference a
    /// parallel block build must reproduce.
    pub fn generate_seeded(&self) -> Trace {
        let layout = self.layout();
        Trace::new(
            self.config.level,
            self.generate_block(&layout, 0, self.config.n_queries),
        )
    }

    fn generate_query(
        &self,
        id: u64,
        rng: &mut StdRng,
        centers: &[Vec3],
        active: &[usize],
        coverer: &mut CachingCoverer,
    ) -> CrossMatchQuery {
        let cfg = &self.config;

        // Footprint radius: hotspot base × a log-uniform spread multiplier,
        // capped below a hemisphere (the Cap type's domain).
        let (m_lo, m_hi) = cfg.region_spread;
        let mult = (m_lo.ln() + rng.gen_range(0.0f64..=1.0) * (m_hi / m_lo).ln()).exp();
        let radius = (cfg.hotspot_radius * mult).min(std::f64::consts::FRAC_PI_2 * 0.99);

        fn sample_size(rng: &mut StdRng, cfg: &WorkloadConfig, large_fraction: f64) -> usize {
            if rng.gen_bool(large_fraction) {
                rng.gen_range(cfg.size_large.0..=cfg.size_large.1)
            } else {
                rng.gen_range(cfg.size_small.0..=cfg.size_small.1)
            }
        }

        let positions: Vec<Vec3> = if rng.gen_bool(cfg.full_sky_fraction) {
            // A full-sky sweep: objects anywhere.
            let n = sample_size(rng, cfg, cfg.large_fraction);
            (0..n).map(|_| uniform_point(rng)).collect()
        } else if rng.gen_bool(cfg.hotspot_fraction) {
            // A hotspot query: focused probe of one active hotspot. The
            // active set is popularity-ordered (pinned famous regions
            // first); choose Zipf-weighted so the famous regions draw most
            // of the traffic.
            let slot_dist = Zipf::new(active.len(), cfg.hotspot_zipf);
            let h = active[slot_dist.sample(rng)];
            let sampler = CapSampler::new(centers[h], radius);
            let n = sample_size(rng, cfg, cfg.hot_large_fraction);
            (0..n).map(|_| sampler.sample(rng)).collect()
        } else {
            // Background exploration: a random region of the same extent,
            // typically carrying a large object list.
            let sampler = CapSampler::new(uniform_point(rng), radius);
            let n = sample_size(rng, cfg, cfg.large_fraction);
            (0..n).map(|_| sampler.sample(rng)).collect()
        };

        let predicate = match rng.gen_range(0..4u8) {
            0 => Predicate::All,
            1 => Predicate::BrighterThan(rng.gen_range(18.0f32..23.0)),
            _ => {
                let min = rng.gen_range(14.0f32..19.0);
                Predicate::MagRange {
                    min,
                    max: min + rng.gen_range(1.0f32..5.0),
                }
            }
        };

        let objects = positions
            .into_iter()
            .map(|p| MatchObject::with_coverer(p, cfg.error_radius, coverer))
            .collect();
        CrossMatchQuery::new(QueryId(id), objects, predicate)
    }
}

/// The per-query RNG seed of the independently seeded trace family: a
/// SplitMix64 finalizer over `(trace seed, query id)`. Streams are decided
/// by the pair alone, which is what makes [`TraceGenerator::generate_block`]
/// chunking-invariant.
fn query_seed(seed: u64, id: u64) -> u64 {
    let mut z = seed
        ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform random point on the sphere.
fn uniform_point<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    let z: f64 = rng.gen_range(-1.0..1.0);
    let ra: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    Vec3::from_radec(ra, z.asin())
}

/// Area-uniform sampler over one spherical cap, with the tangent basis
/// hoisted out of the per-point loop (a query samples hundreds of objects
/// from the same cap; the basis is a pure function of the center).
struct CapSampler {
    center: Vec3,
    cos_r: f64,
    e1: Vec3,
    e2: Vec3,
}

impl CapSampler {
    fn new(center: Vec3, radius: f64) -> Self {
        // Tangent basis at center.
        let helper = if center.z.abs() < 0.9 {
            Vec3::NORTH
        } else {
            Vec3::new(1.0, 0.0, 0.0)
        };
        let e1 = center.cross(helper).normalized();
        let e2 = center.cross(e1).normalized();
        CapSampler {
            center,
            cos_r: radius.cos(),
            e1,
            e2,
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec3 {
        // Uniform over cap area: cos θ uniform in [cos r, 1].
        let cos_t: f64 = rng.gen_range(self.cos_r..=1.0);
        let sin_t = (1.0 - cos_t * cos_t).max(0.0).sqrt();
        let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        (self.center.scale(cos_t)
            + self.e1.scale(sin_t * phi.cos())
            + self.e2.scale(sin_t * phi.sin()))
        .normalized()
    }
}

/// Uniform random point within the cap of angular `radius` around `center`
/// (one-shot [`CapSampler`]; production paths hoist the sampler instead).
#[cfg(test)]
fn point_in_cap<R: Rng + ?Sized>(rng: &mut R, center: Vec3, radius: f64) -> Vec3 {
    CapSampler::new(center, radius).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        let mut cfg = WorkloadConfig::paper_like(8, 256, 60, 42);
        cfg.size_small = (5, 10);
        cfg.size_large = (15, 30);
        cfg
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = TraceGenerator::new(small_config());
        let a = gen.generate();
        let b = gen.generate();
        assert_eq!(a.queries().len(), b.queries().len());
        for (qa, qb) in a.queries().iter().zip(b.queries()) {
            assert_eq!(qa, qb);
        }
    }

    #[test]
    fn seeds_differ() {
        let mut cfg2 = small_config();
        cfg2.seed = 43;
        let a = TraceGenerator::new(small_config()).generate();
        let b = TraceGenerator::new(cfg2).generate();
        assert_ne!(a.queries()[0], b.queries()[0]);
    }

    #[test]
    fn query_sizes_respect_mixture_bounds() {
        let cfg = small_config();
        let trace = TraceGenerator::new(cfg.clone()).generate();
        for q in trace.queries() {
            assert!(q.len() >= cfg.size_small.0);
            assert!(q.len() <= cfg.size_large.1);
        }
    }

    #[test]
    fn ids_are_sequential() {
        let trace = TraceGenerator::new(small_config()).generate();
        for (i, q) in trace.queries().iter().enumerate() {
            assert_eq!(q.id, QueryId(i as u64));
        }
    }

    #[test]
    fn seeded_blocks_are_chunking_invariant() {
        let gen = TraceGenerator::new(small_config());
        let layout = gen.layout();
        let whole = gen.generate_seeded();
        // Any split of the range reproduces the whole, query by query.
        for splits in [vec![0, 60], vec![0, 1, 60], vec![0, 7, 23, 24, 60]] {
            let mut rebuilt = Vec::new();
            for w in splits.windows(2) {
                rebuilt.extend(gen.generate_block(&layout, w[0], w[1]));
            }
            assert_eq!(rebuilt.len(), whole.queries().len());
            for (a, b) in rebuilt.iter().zip(whole.queries()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn seeded_family_is_deterministic_but_distinct_from_sequential() {
        let gen = TraceGenerator::new(small_config());
        let a = gen.generate_seeded();
        let b = gen.generate_seeded();
        for (qa, qb) in a.queries().iter().zip(b.queries()) {
            assert_eq!(qa, qb);
        }
        // Same config bounds apply to the seeded family.
        let cfg = small_config();
        for q in a.queries() {
            assert!(q.len() >= cfg.size_small.0 && q.len() <= cfg.size_large.1);
        }
        for (i, q) in a.queries().iter().enumerate() {
            assert_eq!(q.id, QueryId(i as u64));
        }
        // The two families share the layout but not the per-query streams.
        let sequential = gen.generate();
        assert_ne!(a.queries()[0], sequential.queries()[0]);
    }

    #[test]
    #[should_panic(expected = "block out of range")]
    fn out_of_range_block_rejected() {
        let gen = TraceGenerator::new(small_config());
        let layout = gen.layout();
        let _ = gen.generate_block(&layout, 0, 61);
    }

    #[test]
    fn point_in_cap_stays_in_cap() {
        let mut rng = StdRng::seed_from_u64(9);
        let center = Vec3::from_radec_deg(123.0, -45.0);
        for _ in 0..500 {
            let p = point_in_cap(&mut rng, center, 0.05);
            assert!(center.angle_to(p) <= 0.05 + 1e-12);
            assert!((p.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn point_in_cap_covers_the_cap_not_just_center() {
        let mut rng = StdRng::seed_from_u64(10);
        let center = Vec3::NORTH;
        let mut max_angle = 0.0f64;
        for _ in 0..500 {
            max_angle = max_angle.max(center.angle_to(point_in_cap(&mut rng, center, 0.1)));
        }
        assert!(
            max_angle > 0.08,
            "samples should reach the rim, max {max_angle}"
        );
    }

    #[test]
    fn objects_carry_the_configured_error_radius() {
        let cfg = small_config();
        let trace = TraceGenerator::new(cfg.clone()).generate();
        let q = &trace.queries()[0];
        for o in &q.objects {
            assert_eq!(o.radius, cfg.error_radius);
        }
    }

    #[test]
    #[should_panic(expected = "n_queries")]
    fn zero_queries_rejected() {
        let mut cfg = small_config();
        cfg.n_queries = 0;
        TraceGenerator::new(cfg);
    }
}
