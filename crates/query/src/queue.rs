//! Per-bucket workload queues — the data structure LifeRaft schedules over.
//!
//! "The workload queue for a bucket Bj consists of the union of W_1^j,
//! W_2^j, ..., and W_m^j. Thus, requests from multiple queries are
//! interleaved in the same workload queue and are joined in one pass"
//! — Section 3.1.

use liferaft_htm::{HtmRange, Vec3};
use liferaft_storage::{BucketId, SimTime};

use crate::crossmatch::{CrossMatchQuery, QueryId};
use crate::index::CandidateIndex;
use crate::preprocess::WorkItem;
use crate::snapshot::{BucketSnapshot, Residency};

/// One queued cross-match request: a single object of a single query,
/// waiting to be joined against one bucket.
///
/// Entries are self-contained (position, radius, bounding range) so the join
/// evaluator needs no back-reference to the query object list.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueEntry {
    /// The parent query.
    pub query: QueryId,
    /// Index of the object within the parent query.
    pub object_index: u32,
    /// Mean position of the observation.
    pub pos: Vec3,
    /// Error-circle radius in radians.
    pub radius: f64,
    /// Bounding HTM range of the error circle (object level).
    pub bbox: HtmRange,
    /// When the request entered the queue (the age term's clock).
    pub enqueued_at: SimTime,
}

/// The workload queue of a single bucket.
#[derive(Debug, Clone, Default)]
pub struct WorkloadQueue {
    entries: Vec<QueueEntry>,
    /// Parallel array of `(query, enqueued_at)` per entry — the dense scan
    /// key for per-query drains. A [`drain_query_into`](Self::drain_query_into)
    /// sweep reads 16 bytes per kept entry from here instead of striding
    /// through the ~100-byte entries, which is what makes NoShare's
    /// drain-the-shared-queue discipline bandwidth-cheap.
    keys: Vec<(QueryId, SimTime)>,
    /// Earliest enqueue time among current entries (None when empty).
    oldest: Option<SimTime>,
}

impl WorkloadQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WorkloadQueue::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, e: QueueEntry) {
        self.oldest = Some(match self.oldest {
            Some(t) => t.min(e.enqueued_at),
            None => e.enqueued_at,
        });
        self.keys.push((e.query, e.enqueued_at));
        self.entries.push(e);
    }

    /// Number of queued objects (`Σ_j W_i^j` for this bucket).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queued entries in arrival order.
    pub fn entries(&self) -> &[QueueEntry] {
        &self.entries
    }

    /// Enqueue time of the oldest request (`A(i)`'s reference point).
    pub fn oldest_enqueue(&self) -> Option<SimTime> {
        self.oldest
    }

    /// Age of the oldest request in milliseconds at time `now` — the paper's
    /// `A(i)`. Zero when empty.
    pub fn oldest_age_ms(&self, now: SimTime) -> f64 {
        match self.oldest {
            Some(t) => now.since(t).as_millis_f64(),
            None => 0.0,
        }
    }

    /// Removes and returns all entries (a full-batch drain).
    pub fn drain_all(&mut self) -> Vec<QueueEntry> {
        self.oldest = None;
        self.keys.clear();
        std::mem::take(&mut self.entries)
    }

    /// Moves all entries into `out` (cleared first), preserving arrival
    /// order. Unlike [`drain_all`](Self::drain_all) this keeps the queue's
    /// allocation, so a steady-state enqueue/drain cycle performs no heap
    /// traffic on either side.
    pub fn drain_all_into(&mut self, out: &mut Vec<QueueEntry>) {
        out.clear();
        out.append(&mut self.entries);
        self.keys.clear();
        self.oldest = None;
    }

    /// Removes and returns only the entries of `query` (the NoShare batch
    /// scope), recomputing the oldest timestamp for the remainder.
    ///
    /// Kept entries may be **reordered** (swap-remove); see
    /// [`drain_query_into`](Self::drain_query_into).
    pub fn drain_query(&mut self, query: QueryId) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        self.drain_query_into(query, &mut out);
        out
    }

    /// Moves the entries of `query` into `out` (cleared first) in a single
    /// swap-remove pass that also folds in the surviving oldest timestamp.
    ///
    /// Matched entries are *moved* out (no clone) and each removal costs one
    /// tail-element copy; kept entries are never written, so a drain's cost
    /// is one read sweep plus O(matched) — not the O(queue) entry-by-entry
    /// compaction this used to do, which dominated NoShare's wall time (a
    /// deep shared queue was rewritten once per co-queued query).
    ///
    /// The price is that kept entries lose arrival order. That order is not
    /// part of the queue's contract: batches consume entries as an unordered
    /// set (completion accounting groups by query ID, join results are
    /// counted, and the age term reads the maintained `oldest`, all
    /// order-insensitive) — pinned end-to-end by the golden determinism
    /// fingerprints.
    pub fn drain_query_into(&mut self, query: QueryId, out: &mut Vec<QueueEntry>) {
        out.clear();
        let mut i = 0;
        let mut kept_oldest: Option<SimTime> = None;
        // The sweep reads only the dense key sidecar; the wide entries are
        // touched exactly once per *matched* element.
        while i < self.keys.len() {
            let (q, t) = self.keys[i];
            if q == query {
                // The tail element moves into the hole and is examined next.
                self.keys.swap_remove(i);
                out.push(self.entries.swap_remove(i));
            } else {
                kept_oldest = Some(match kept_oldest {
                    Some(o) => o.min(t),
                    None => t,
                });
                i += 1;
            }
        }
        if out.is_empty() {
            return; // nothing left the queue: `oldest` is still correct
        }
        self.oldest = kept_oldest;
    }

    /// Distinct queries with work in this queue.
    pub fn distinct_queries(&self) -> usize {
        let mut ids: Vec<QueryId> = self.entries.iter().map(|e| e.query).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// All per-bucket workload queues of one archive, indexed by bucket.
///
/// This is the state behind the paper's Workload Manager: it "maintains
/// state information such as a mapping of pending queries to workload queues
/// and the age of the oldest query in each queue" (Section 4).
///
/// The table keeps a live [`BucketSnapshot`] slot per bucket, updated in
/// O(1) on [`enqueue`](Self::enqueue) and the drain paths, plus a
/// [`CandidateIndex`] over the non-empty slots, updated in O(log n) on the
/// same mutations (and on residency-epoch bumps via
/// [`sync_residency`](Self::sync_residency)). A scheduling decision is then
/// an index lookup ([`top_candidate_age`](Self::top_candidate_age),
/// [`top_candidate_uncached`](Self::top_candidate_uncached) plus an exact
/// re-rank of the small resident pool, the frontier accessors)
/// instead of an O(non-empty buckets) gather + re-score; the gather
/// ([`snapshots_into`](Self::snapshots_into)) is retained for tests and
/// diagnostics. Slots are updated in place (never shifted), which keeps hot
/// drain/refill cycles free of the O(candidates) memmoves a dense sorted
/// snapshot vector would pay.
#[derive(Debug, Clone)]
pub struct WorkloadTable {
    queues: Vec<WorkloadQueue>,
    /// Sorted list of currently non-empty buckets (the scheduler's
    /// candidate set; kept small relative to the partition).
    non_empty: Vec<BucketId>,
    /// Live snapshot slots indexed by bucket like `queues`. A slot is
    /// meaningful only while its bucket appears in `non_empty`; the
    /// `bucket` and `bucket_objects` fields are static, and the `cached`
    /// bit is brought current by `sync_residency` (eagerly, feeding the
    /// index) or `snapshots_into` (lazily, against the oracle's epoch).
    snapshot_slots: Vec<BucketSnapshot>,
    /// Residency-oracle epoch at which each slot's `cached` bit was last
    /// probed (0 = never). While the oracle's epoch matches, the stored bit
    /// is served without re-probing.
    phi_stamp: Vec<u64>,
    /// The candidate index over the non-empty slots. Invariant: holds
    /// exactly one entry per `non_empty` bucket, keyed by that bucket's
    /// current slot values.
    index: CandidateIndex,
    /// Oracle epoch the slots' `cached` bits (and the index's φ keys) were
    /// last synced to; `None` before the first [`sync_residency`](Self::sync_residency).
    /// Epochs are only comparable against a single oracle (see [`Residency`]).
    synced_epoch: Option<u64>,
    /// Total queued objects across all buckets.
    total_queued: u64,
}

impl WorkloadTable {
    /// Creates a table for a partition of `n_buckets` buckets.
    pub fn new(n_buckets: usize) -> Self {
        WorkloadTable {
            queues: vec![WorkloadQueue::new(); n_buckets],
            non_empty: Vec::new(),
            snapshot_slots: (0..n_buckets)
                .map(|i| BucketSnapshot {
                    bucket: BucketId(i as u32),
                    queue_len: 0,
                    oldest_enqueue: SimTime::ZERO,
                    cached: false,
                    bucket_objects: 0,
                })
                .collect(),
            phi_stamp: vec![0; n_buckets],
            index: CandidateIndex::new(),
            synced_epoch: None,
            total_queued: 0,
        }
    }

    /// Installs the static per-bucket catalog object counts that snapshots
    /// carry (`BucketSnapshot::bucket_objects`). Call once at setup, before
    /// any work is enqueued.
    ///
    /// # Panics
    /// Panics if work is already queued — counts are snapshot state and
    /// must not change underneath live snapshots.
    pub fn with_object_counts(mut self, mut count_of: impl FnMut(BucketId) -> u64) -> Self {
        assert!(
            self.non_empty.is_empty(),
            "object counts must be installed before enqueuing work"
        );
        for slot in self.snapshot_slots.iter_mut() {
            slot.bucket_objects = count_of(slot.bucket);
        }
        self
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a work item produced by the pre-processor, expanding it into
    /// self-contained queue entries using the parent query's object data.
    ///
    /// # Panics
    /// Panics if the item's indices do not refer to `query`'s objects or the
    /// item targets an unknown bucket.
    pub fn enqueue(&mut self, item: &WorkItem, query: &CrossMatchQuery, now: SimTime) {
        assert_eq!(item.query, query.id, "work item / query mismatch");
        let idx = item.bucket.index();
        assert!(idx < self.queues.len(), "unknown bucket {}", item.bucket);
        let was_empty = self.queues[idx].is_empty();
        for &oi in &item.object_indices {
            let obj = &query.objects[oi as usize];
            self.queues[idx].push(QueueEntry {
                query: query.id,
                object_index: oi,
                pos: obj.pos,
                radius: obj.radius,
                bbox: obj.bounding_range(),
                enqueued_at: now,
            });
            self.total_queued += 1;
        }
        let q = &self.queues[idx];
        if q.is_empty() {
            return; // the item carried no object indices
        }
        if !was_empty {
            self.index.remove(&self.snapshot_slots[idx]);
        }
        let slot = &mut self.snapshot_slots[idx];
        slot.queue_len = q.len() as u64;
        slot.oldest_enqueue = q.oldest_enqueue().expect("non-empty queue has an oldest");
        self.index.insert(&self.snapshot_slots[idx]);
        if was_empty {
            let pos = self.non_empty.partition_point(|&b| b < item.bucket);
            self.non_empty.insert(pos, item.bucket);
        }
    }

    /// The queue of one bucket.
    pub fn queue(&self, bucket: BucketId) -> &WorkloadQueue {
        &self.queues[bucket.index()]
    }

    /// Sorted bucket IDs with pending work.
    pub fn non_empty_buckets(&self) -> &[BucketId] {
        &self.non_empty
    }

    /// Total queued objects across all buckets.
    pub fn total_queued(&self) -> u64 {
        self.total_queued
    }

    /// True if no work is pending anywhere.
    pub fn is_idle(&self) -> bool {
        self.total_queued == 0
    }

    /// Drains a bucket's queue entirely (standard batch).
    pub fn take_all(&mut self, bucket: BucketId) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        self.take_all_into(bucket, &mut out);
        out
    }

    /// Drains a bucket's queue entirely into `out` (cleared first), keeping
    /// both the queue's and `out`'s allocations for reuse.
    pub fn take_all_into(&mut self, bucket: BucketId, out: &mut Vec<QueueEntry>) {
        self.queues[bucket.index()].drain_all_into(out);
        self.after_drain(bucket, out.len());
    }

    /// Drains only one query's entries from a bucket (NoShare batch).
    pub fn take_query(&mut self, bucket: BucketId, query: QueryId) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        self.take_query_into(bucket, query, &mut out);
        out
    }

    /// Drains only one query's entries from a bucket into `out` (cleared
    /// first); the single-pass, allocation-reusing variant.
    pub fn take_query_into(&mut self, bucket: BucketId, query: QueryId, out: &mut Vec<QueueEntry>) {
        self.queues[bucket.index()].drain_query_into(query, out);
        self.after_drain(bucket, out.len());
    }

    /// The live snapshot of one bucket, or `None` if it has no queued work.
    /// The `cached` bit is not maintained here; see
    /// [`snapshots_into`](Self::snapshots_into) for decision-ready copies.
    pub fn snapshot_of(&self, bucket: BucketId) -> Option<BucketSnapshot> {
        if self.queues[bucket.index()].is_empty() {
            None
        } else {
            Some(self.snapshot_slots[bucket.index()])
        }
    }

    /// Gathers the candidate snapshots into `out` (cleared first, sorted by
    /// bucket) and refreshes only their `cached` bits against `residency` —
    /// the scheduler's per-decision view, built without touching the queues.
    ///
    /// When the oracle exposes a residency epoch (see
    /// [`Residency::residency_epoch`]), φ bits are cached in the slots and
    /// stamped with the epoch they were probed at: between cache mutations
    /// the gather performs **zero** residency probes. Oracles without an
    /// epoch are probed per candidate per call, as before, and leave the
    /// stored bits untouched.
    pub fn snapshots_into(&mut self, out: &mut Vec<BucketSnapshot>, residency: &dyn Residency) {
        out.clear();
        out.reserve(self.non_empty.len());
        match residency.residency_epoch() {
            Some(epoch) => {
                for &b in &self.non_empty {
                    let i = b.index();
                    if self.phi_stamp[i] != epoch {
                        self.snapshot_slots[i].cached = residency.is_resident(b);
                        self.phi_stamp[i] = epoch;
                    }
                    out.push(self.snapshot_slots[i]);
                }
            }
            None => {
                for &b in &self.non_empty {
                    let mut s = self.snapshot_slots[b.index()];
                    s.cached = residency.is_resident(b);
                    out.push(s);
                }
            }
        }
    }

    /// Brings every slot's `cached` (φ) bit — and the candidate index's
    /// φ-dependent keys — current with `residency`. Must be called before
    /// the pick accessors whenever the oracle may have mutated; the decision
    /// loop calls it once per decision.
    ///
    /// Cost: O(changed buckets · log n) when the oracle can enumerate its
    /// mutations since the last sync ([`Residency::for_each_mutation_since`]),
    /// O(candidates) re-probes when it cannot, and one O(buckets) full probe
    /// on the first sync (to seed the bits of still-empty buckets, whose
    /// slots feed the index when they go non-empty). Like `snapshots_into`,
    /// all syncs of one table must use the same oracle.
    pub fn sync_residency(&mut self, residency: &dyn Residency) {
        let epoch = residency.residency_epoch();
        if epoch.is_some() && epoch == self.synced_epoch {
            return; // nothing can have changed since the last sync
        }
        let replayed = match (self.synced_epoch, epoch) {
            (Some(synced), Some(e)) => {
                let slots = &mut self.snapshot_slots;
                let queues = &self.queues;
                let index = &mut self.index;
                let phi_stamp = &mut self.phi_stamp;
                residency.for_each_mutation_since(synced, &mut |bucket: BucketId, resident| {
                    let i = bucket.index();
                    if i >= slots.len() {
                        return; // outside this table
                    }
                    // Only mutated slots are stamped; unmutated ones keep an
                    // older stamp, so the diagnostic `snapshots_into` may
                    // re-probe them (getting the same bit back) — the hot
                    // path stays O(changed), not O(buckets).
                    phi_stamp[i] = e;
                    if slots[i].cached == resident {
                        return; // already current
                    }
                    if !queues[i].is_empty() {
                        index.remove(&slots[i]);
                        slots[i].cached = resident;
                        index.insert(&slots[i]);
                    } else {
                        slots[i].cached = resident;
                    }
                })
            }
            _ => false,
        };
        if !replayed {
            // First sync, an epoch-less oracle, or a truncated mutation log:
            // probe from scratch. Epoch-bearing oracles get *every* bucket
            // probed (empty ones included) so later mutation replays keep
            // all bits current; epoch-less oracles get only the candidates
            // refreshed — every pick re-syncs anyway, so a bucket's bit is
            // re-probed before it can influence a decision.
            let all = epoch.is_some();
            let n = self.snapshot_slots.len();
            for i in 0..n {
                let bucket = BucketId(i as u32);
                if !all && self.queues[i].is_empty() {
                    continue;
                }
                let resident = residency.is_resident(bucket);
                if let Some(e) = epoch {
                    self.phi_stamp[i] = e;
                }
                if self.snapshot_slots[i].cached != resident {
                    if !self.queues[i].is_empty() {
                        self.index.remove(&self.snapshot_slots[i]);
                        self.snapshot_slots[i].cached = resident;
                        self.index.insert(&self.snapshot_slots[i]);
                    } else {
                        self.snapshot_slots[i].cached = resident;
                    }
                }
            }
        }
        self.synced_epoch = epoch;
    }

    /// Number of candidates (non-empty buckets).
    pub fn candidate_count(&self) -> usize {
        self.non_empty.len()
    }

    /// Streams every candidate snapshot in ascending bucket order, straight
    /// from the maintained slots — no gather, no allocation. φ freshness
    /// requires a preceding [`sync_residency`](Self::sync_residency).
    pub fn for_each_candidate(&self, f: &mut dyn FnMut(&BucketSnapshot)) {
        for &b in &self.non_empty {
            f(&self.snapshot_slots[b.index()]);
        }
    }

    /// Number of resident candidates (bounded by the cache capacity).
    pub fn cached_candidate_count(&self) -> usize {
        self.index.cached_len()
    }

    /// Streams every resident candidate (best tie-break first) — the small
    /// set the α = 0 pick re-scores exactly. φ freshness requires a
    /// preceding [`sync_residency`](Self::sync_residency).
    pub fn for_each_cached_candidate(&self, f: &mut dyn FnMut(&BucketSnapshot)) {
        for b in self.index.iter_cached() {
            f(&self.snapshot_slots[b.index()]);
        }
    }

    /// The uncached candidate maximal under `Ut` (exact, tie-breaks
    /// included) — the only non-resident candidate an α = 0 pick can choose.
    pub fn top_candidate_uncached(&self) -> Option<BucketSnapshot> {
        self.index
            .top_uncached()
            .map(|b| self.snapshot_slots[b.index()])
    }

    /// The uncached candidate minimal under `Ut` (normalization lower
    /// bound).
    pub fn bottom_candidate_uncached(&self) -> Option<BucketSnapshot> {
        self.index
            .bottom_uncached()
            .map(|b| self.snapshot_slots[b.index()])
    }

    /// The candidate maximal under the age lens — the α = 1 pick.
    pub fn top_candidate_age(&self) -> Option<BucketSnapshot> {
        self.index.top_age().map(|b| self.snapshot_slots[b.index()])
    }

    /// The candidate minimal under the age lens.
    pub fn bottom_candidate_age(&self) -> Option<BucketSnapshot> {
        self.index
            .bottom_age()
            .map(|b| self.snapshot_slots[b.index()])
    }

    /// Fills `out` (cleared first) with up to `k` uncached candidates in
    /// descending `Ut` order — the mixed-α threshold scan's first list.
    pub fn uncached_frontier_into(&self, k: usize, out: &mut Vec<BucketSnapshot>) {
        out.clear();
        out.extend(
            self.index
                .iter_uncached_desc()
                .take(k)
                .map(|b| self.snapshot_slots[b.index()]),
        );
    }

    /// Fills `out` (cleared first) with up to `k` candidates in descending
    /// age-lens order — the mixed-α threshold scan's second list.
    pub fn age_frontier_into(&self, k: usize, out: &mut Vec<BucketSnapshot>) {
        out.clear();
        out.extend(
            self.index
                .iter_age_desc()
                .take(k)
                .map(|b| self.snapshot_slots[b.index()]),
        );
    }

    /// The first candidate at or after `bucket` in bucket order, if any —
    /// the round-robin cursor's probe (the caller wraps to `BucketId(0)`).
    pub fn candidate_at_or_after(&self, bucket: BucketId) -> Option<BucketSnapshot> {
        let pos = self.non_empty.partition_point(|&b| b < bucket);
        self.non_empty
            .get(pos)
            .map(|b| self.snapshot_slots[b.index()])
    }

    /// The oldest candidate other than `excluded` — the starvation
    /// monitor's "oldest passed-over request" in O(log n).
    pub fn oldest_candidate_excluding(&self, excluded: BucketId) -> Option<BucketSnapshot> {
        self.index
            .top_age_excluding(excluded)
            .map(|b| self.snapshot_slots[b.index()])
    }

    /// Checks the index invariant (one entry per non-empty bucket, keyed by
    /// its live slot) by rebuilding a reference index — O(n log n), meant
    /// for tests and debug assertions, not the hot path.
    ///
    /// # Panics
    /// Panics if the maintained index diverged.
    pub fn validate_index(&self) {
        let mut reference = CandidateIndex::new();
        for &b in &self.non_empty {
            reference.insert(&self.snapshot_slots[b.index()]);
        }
        assert_eq!(self.index.len(), reference.len(), "index size diverged");
        let got: Vec<BucketId> = self.index.iter_cached().collect();
        let want: Vec<BucketId> = reference.iter_cached().collect();
        assert_eq!(got, want, "resident pool diverged");
        let got: Vec<BucketId> = self.index.iter_uncached_desc().collect();
        let want: Vec<BucketId> = reference.iter_uncached_desc().collect();
        assert_eq!(got, want, "uncached order diverged");
        let got: Vec<BucketId> = self.index.iter_age_desc().collect();
        let want: Vec<BucketId> = reference.iter_age_desc().collect();
        assert_eq!(got, want, "age order diverged");
    }

    fn after_drain(&mut self, bucket: BucketId, n: usize) {
        if n == 0 {
            return; // nothing drained: membership, slot, and index unchanged
        }
        self.total_queued -= n as u64;
        self.index.remove(&self.snapshot_slots[bucket.index()]);
        let q = &self.queues[bucket.index()];
        if q.is_empty() {
            if let Ok(pos) = self.non_empty.binary_search(&bucket) {
                self.non_empty.remove(pos);
            }
        } else {
            let slot = &mut self.snapshot_slots[bucket.index()];
            slot.queue_len = q.len() as u64;
            slot.oldest_enqueue = q.oldest_enqueue().expect("non-empty queue has an oldest");
            self.index.insert(&self.snapshot_slots[bucket.index()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossmatch::Predicate;
    use liferaft_storage::SimDuration;

    const LEVEL: u8 = 6;

    fn entry_source(n: usize) -> CrossMatchQuery {
        let positions: Vec<Vec3> = (0..n)
            .map(|i| Vec3::from_radec_deg(10.0 + i as f64 * 0.01, 5.0))
            .collect();
        CrossMatchQuery::from_positions(QueryId(1), &positions, 1e-5, LEVEL, Predicate::All)
    }

    fn item(query: &CrossMatchQuery, bucket: u32) -> WorkItem {
        WorkItem {
            query: query.id,
            bucket: BucketId(bucket),
            object_indices: (0..query.len() as u32).collect(),
        }
    }

    #[test]
    fn enqueue_tracks_counts_and_non_empty() {
        let q = entry_source(3);
        let mut t = WorkloadTable::new(8);
        assert!(t.is_idle());
        t.enqueue(&item(&q, 5), &q, SimTime::ZERO);
        assert_eq!(t.total_queued(), 3);
        assert_eq!(t.non_empty_buckets(), &[BucketId(5)]);
        assert_eq!(t.queue(BucketId(5)).len(), 3);
        assert_eq!(t.queue(BucketId(5)).distinct_queries(), 1);
    }

    #[test]
    fn non_empty_stays_sorted() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(8);
        for b in [6u32, 2, 4, 0] {
            t.enqueue(&item(&q, b), &q, SimTime::ZERO);
        }
        assert_eq!(
            t.non_empty_buckets(),
            &[BucketId(0), BucketId(2), BucketId(4), BucketId(6)]
        );
    }

    #[test]
    fn oldest_age_tracks_minimum() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(10);
        t.enqueue(&item(&q, 2), &q, t1);
        let q2 = {
            let mut q2 = entry_source(1);
            q2.id = QueryId(2);
            q2
        };
        t.enqueue(&item(&q2, 2), &q2, t0);
        let now = t1 + SimDuration::from_secs(5);
        // Oldest is t0 → age 15s.
        assert_eq!(t.queue(BucketId(2)).oldest_age_ms(now), 15_000.0);
    }

    #[test]
    fn take_all_empties_and_updates_index() {
        let q = entry_source(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        let drained = t.take_all(BucketId(1));
        assert_eq!(drained.len(), 2);
        assert!(t.is_idle());
        assert!(t.non_empty_buckets().is_empty());
        assert_eq!(t.queue(BucketId(1)).oldest_enqueue(), None);
    }

    #[test]
    fn take_query_is_selective() {
        let qa = entry_source(2);
        let mut qb = entry_source(3);
        qb.id = QueryId(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&qa, 1), &qa, SimTime::ZERO);
        t.enqueue(&item(&qb, 1), &qb, SimTime::from_micros(10));
        assert_eq!(t.queue(BucketId(1)).distinct_queries(), 2);
        let drained = t.take_query(BucketId(1), QueryId(1));
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|e| e.query == QueryId(1)));
        assert_eq!(t.total_queued(), 3);
        assert_eq!(t.non_empty_buckets(), &[BucketId(1)]);
        // Oldest recomputed to the remaining query's enqueue time.
        assert_eq!(
            t.queue(BucketId(1)).oldest_enqueue(),
            Some(SimTime::from_micros(10))
        );
    }

    #[test]
    fn entries_are_self_contained() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 0), &q, SimTime::ZERO);
        let e = &t.queue(BucketId(0)).entries()[0];
        assert_eq!(e.pos, q.objects[0].pos);
        assert_eq!(e.radius, q.objects[0].radius);
        assert_eq!(e.bbox, q.objects[0].bounding_range());
        assert_eq!(e.object_index, 0);
    }

    #[test]
    #[should_panic(expected = "unknown bucket")]
    fn enqueue_rejects_out_of_range_bucket() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(2);
        t.enqueue(&item(&q, 7), &q, SimTime::ZERO);
    }

    /// Gathers the maintained snapshots through the public decision-path
    /// API (cold residency, to match `rebuild`'s default).
    fn gather(t: &mut WorkloadTable) -> Vec<BucketSnapshot> {
        let mut out = Vec::new();
        t.snapshots_into(&mut out, &crate::snapshot::NoResidency);
        out
    }

    /// From-scratch snapshot rebuild via the public queue accessors — the
    /// reference the incrementally-maintained snapshots must match.
    fn rebuild(t: &WorkloadTable) -> Vec<BucketSnapshot> {
        t.non_empty_buckets()
            .iter()
            .map(|&b| {
                let q = t.queue(b);
                BucketSnapshot {
                    bucket: b,
                    queue_len: q.len() as u64,
                    oldest_enqueue: q.oldest_enqueue().expect("non-empty"),
                    cached: false,
                    bucket_objects: 0,
                }
            })
            .collect()
    }

    #[test]
    fn snapshots_track_enqueue_and_drains() {
        let qa = entry_source(2);
        let mut qb = entry_source(3);
        qb.id = QueryId(2);
        let mut t = WorkloadTable::new(8);
        t.enqueue(&item(&qa, 5), &qa, SimTime::ZERO);
        t.enqueue(&item(&qb, 5), &qb, SimTime::from_micros(10));
        t.enqueue(&item(&qa, 2), &qa, SimTime::from_micros(20));
        let r = rebuild(&t);
        assert_eq!(gather(&mut t), r);
        t.take_query(BucketId(5), QueryId(1));
        let r = rebuild(&t);
        assert_eq!(gather(&mut t), r);
        t.take_all(BucketId(5));
        let r = rebuild(&t);
        assert_eq!(gather(&mut t), r);
        assert_eq!(t.snapshot_of(BucketId(5)), None);
        t.take_all(BucketId(2));
        assert!(gather(&mut t).is_empty());
    }

    #[test]
    fn snapshots_into_refreshes_residency_only() {
        use crate::snapshot::Residency;
        struct Always;
        impl Residency for Always {
            fn is_resident(&self, _b: BucketId) -> bool {
                true
            }
        }
        let q = entry_source(2);
        let mut t = WorkloadTable::new(4).with_object_counts(|b| 100 + b.0 as u64);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        let mut out = vec![BucketSnapshot {
            bucket: BucketId(9),
            queue_len: 0,
            oldest_enqueue: SimTime::ZERO,
            cached: false,
            bucket_objects: 0,
        }];
        t.snapshots_into(&mut out, &Always);
        assert_eq!(out.len(), 1, "scratch must be cleared first");
        assert_eq!(out[0].bucket, BucketId(1));
        assert_eq!(out[0].queue_len, 2);
        assert!(out[0].cached);
        assert_eq!(out[0].bucket_objects, 101);
        // The maintained slot keeps its cold default.
        assert!(!t.snapshot_of(BucketId(1)).expect("non-empty").cached);
    }

    #[test]
    fn epoch_stamped_phi_skips_probes_between_mutations() {
        use crate::snapshot::Residency;
        use std::cell::Cell;
        /// An epoch-bearing oracle that counts `is_resident` probes.
        struct Counting {
            epoch: Cell<u64>,
            resident: Cell<bool>,
            probes: Cell<u64>,
        }
        impl Residency for Counting {
            fn is_resident(&self, _b: BucketId) -> bool {
                self.probes.set(self.probes.get() + 1);
                self.resident.get()
            }
            fn residency_epoch(&self) -> Option<u64> {
                Some(self.epoch.get())
            }
        }
        let oracle = Counting {
            epoch: Cell::new(7),
            resident: Cell::new(false),
            probes: Cell::new(0),
        };
        let qa = entry_source(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&qa, 1), &qa, SimTime::ZERO);
        t.enqueue(&item(&qa, 3), &qa, SimTime::ZERO);
        let mut out = Vec::new();
        // First gather at epoch 7: one probe per candidate, bits stamped.
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 2);
        assert!(out.iter().all(|s| !s.cached));
        // Same epoch: zero probes, stored bits served.
        t.snapshots_into(&mut out, &oracle);
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 2);
        // Epoch bump (resident set changed): every candidate re-probed once.
        oracle.epoch.set(8);
        oracle.resident.set(true);
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 4);
        assert!(
            out.iter().all(|s| s.cached),
            "refreshed bits must be served"
        );
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 4);
    }

    #[test]
    fn drain_query_into_partitions_and_repairs_oldest() {
        let qa = entry_source(3);
        let mut qb = entry_source(2);
        qb.id = QueryId(2);
        let mut wq = WorkloadQueue::new();
        for (i, e) in [&qa, &qb, &qa, &qa, &qb]
            .iter()
            .flat_map(|q| {
                std::iter::once(QueueEntry {
                    query: q.id,
                    object_index: 0,
                    pos: q.objects[0].pos,
                    radius: q.objects[0].radius,
                    bbox: q.objects[0].bounding_range(),
                    enqueued_at: SimTime::ZERO,
                })
            })
            .enumerate()
        {
            let mut e = e;
            e.object_index = i as u32;
            e.enqueued_at = SimTime::from_micros(i as u64);
            wq.push(e);
        }
        let mut out = Vec::new();
        wq.drain_query_into(QueryId(1), &mut out);
        // Drained ∪ kept is an exact partition by query (order is not part
        // of the contract — the swap-remove drain may reorder both sides).
        let mut drained: Vec<u32> = out.iter().map(|e| e.object_index).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 2, 3]);
        let mut kept: Vec<u32> = wq.entries().iter().map(|e| e.object_index).collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![1, 4]);
        assert_eq!(wq.oldest_enqueue(), Some(SimTime::from_micros(1)));
        // Draining an absent query leaves state (and `oldest`) untouched.
        wq.drain_query_into(QueryId(99), &mut out);
        assert!(out.is_empty());
        assert_eq!(wq.len(), 2);
        assert_eq!(wq.oldest_enqueue(), Some(SimTime::from_micros(1)));
    }

    #[test]
    #[should_panic(expected = "before enqueuing work")]
    fn object_counts_after_enqueue_rejected() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        let _ = t.with_object_counts(|_| 1);
    }

    #[test]
    fn index_tracks_enqueue_and_drains() {
        let qa = entry_source(2);
        let mut qb = entry_source(5);
        qb.id = QueryId(2);
        let mut t = WorkloadTable::new(8);
        assert_eq!(t.candidate_count(), 0);
        assert_eq!(t.top_candidate_uncached(), None);
        t.enqueue(&item(&qa, 5), &qa, SimTime::from_micros(100));
        t.enqueue(&item(&qb, 2), &qb, SimTime::from_micros(50));
        t.validate_index();
        // Longer queue wins the uncached order; older enqueue the age lens.
        assert_eq!(
            t.top_candidate_uncached().unwrap().bucket,
            BucketId(2),
            "5 queued beats 2"
        );
        assert_eq!(t.cached_candidate_count(), 0);
        assert_eq!(t.top_candidate_age().unwrap().bucket, BucketId(2));
        assert_eq!(t.bottom_candidate_uncached().unwrap().bucket, BucketId(5));
        assert_eq!(t.bottom_candidate_age().unwrap().bucket, BucketId(5));
        assert_eq!(
            t.oldest_candidate_excluding(BucketId(2)).unwrap().bucket,
            BucketId(5)
        );
        let mut frontier = Vec::new();
        t.uncached_frontier_into(10, &mut frontier);
        assert_eq!(
            frontier.iter().map(|s| s.bucket).collect::<Vec<_>>(),
            vec![BucketId(2), BucketId(5)]
        );
        t.age_frontier_into(1, &mut frontier);
        assert_eq!(frontier.len(), 1);
        t.take_all(BucketId(2));
        t.validate_index();
        assert_eq!(t.top_candidate_uncached().unwrap().bucket, BucketId(5));
        assert_eq!(t.oldest_candidate_excluding(BucketId(5)), None);
        t.take_query(BucketId(5), QueryId(1));
        t.validate_index();
        assert_eq!(t.candidate_count(), 0);
    }

    #[test]
    fn candidate_at_or_after_is_the_rr_probe() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(16);
        for b in [2u32, 5, 9] {
            t.enqueue(&item(&q, b), &q, SimTime::ZERO);
        }
        assert_eq!(
            t.candidate_at_or_after(BucketId(0)).unwrap().bucket,
            BucketId(2)
        );
        assert_eq!(
            t.candidate_at_or_after(BucketId(2)).unwrap().bucket,
            BucketId(2)
        );
        assert_eq!(
            t.candidate_at_or_after(BucketId(3)).unwrap().bucket,
            BucketId(5)
        );
        assert_eq!(t.candidate_at_or_after(BucketId(10)), None);
    }

    /// A scripted oracle whose epoch and resident set the test controls,
    /// with a replayable mutation log.
    struct ScriptedOracle {
        epoch: u64,
        resident: std::collections::HashSet<u32>,
        log: Vec<(u64, u32, bool)>,
        log_complete_from: u64,
        probes: std::cell::Cell<u64>,
    }

    impl ScriptedOracle {
        fn new() -> Self {
            ScriptedOracle {
                epoch: 1,
                resident: Default::default(),
                log: Vec::new(),
                log_complete_from: 1,
                probes: std::cell::Cell::new(0),
            }
        }
        fn flip(&mut self, bucket: u32, resident: bool) {
            self.epoch += 1;
            if resident {
                self.resident.insert(bucket);
            } else {
                self.resident.remove(&bucket);
            }
            self.log.push((self.epoch, bucket, resident));
        }
    }

    impl Residency for ScriptedOracle {
        fn is_resident(&self, b: BucketId) -> bool {
            self.probes.set(self.probes.get() + 1);
            self.resident.contains(&b.0)
        }
        fn residency_epoch(&self) -> Option<u64> {
            Some(self.epoch)
        }
        fn for_each_mutation_since(
            &self,
            epoch: u64,
            apply: &mut dyn FnMut(BucketId, bool),
        ) -> bool {
            if epoch < self.log_complete_from {
                return false;
            }
            for &(e, b, r) in &self.log {
                if e > epoch {
                    apply(BucketId(b), r);
                }
            }
            true
        }
    }

    #[test]
    fn sync_residency_replays_mutations_into_the_index() {
        let q = entry_source(3);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        t.enqueue(&item(&q, 3), &q, SimTime::from_micros(10));
        let mut oracle = ScriptedOracle::new();
        oracle.flip(3, true);
        // First sync: full probe (all 4 buckets), bits and index seeded.
        t.sync_residency(&oracle);
        assert_eq!(oracle.probes.get(), 4);
        assert!(t.snapshot_of(BucketId(3)).unwrap().cached);
        assert!(!t.snapshot_of(BucketId(1)).unwrap().cached);
        // The resident candidate moved into the cached pool.
        assert_eq!(t.cached_candidate_count(), 1);
        let mut cached = Vec::new();
        t.for_each_cached_candidate(&mut |s| cached.push(s.bucket));
        assert_eq!(cached, vec![BucketId(3)]);
        assert_eq!(t.top_candidate_uncached().unwrap().bucket, BucketId(1));
        t.validate_index();
        // Same epoch: a no-op.
        t.sync_residency(&oracle);
        assert_eq!(oracle.probes.get(), 4);
        // Mutations replay without probes — including for the currently
        // empty bucket 0, whose bit must be current when it fills later.
        oracle.flip(3, false);
        oracle.flip(1, true);
        oracle.flip(0, true);
        t.sync_residency(&oracle);
        assert_eq!(oracle.probes.get(), 4, "replay must not probe");
        cached.clear();
        t.for_each_cached_candidate(&mut |s| cached.push(s.bucket));
        assert_eq!(cached, vec![BucketId(1)]);
        assert_eq!(t.top_candidate_uncached().unwrap().bucket, BucketId(3));
        t.validate_index();
        t.enqueue(&item(&q, 0), &q, SimTime::from_micros(20));
        assert!(
            t.snapshot_of(BucketId(0)).unwrap().cached,
            "empty buckets' bits must stay current across syncs"
        );
        t.validate_index();
        // A truncated log falls back to a full re-probe (empty buckets too,
        // so their bits cannot go permanently stale).
        oracle.flip(0, false);
        oracle.log.clear();
        oracle.log_complete_from = oracle.epoch;
        t.sync_residency(&oracle);
        assert_eq!(oracle.probes.get(), 8, "fallback probes every bucket");
        assert!(!t.snapshot_of(BucketId(0)).unwrap().cached);
        t.validate_index();
    }
}
