//! Per-bucket workload queues — the data structure LifeRaft schedules over.
//!
//! "The workload queue for a bucket Bj consists of the union of W_1^j,
//! W_2^j, ..., and W_m^j. Thus, requests from multiple queries are
//! interleaved in the same workload queue and are joined in one pass"
//! — Section 3.1.

use liferaft_htm::{HtmRange, Vec3};
use liferaft_storage::{BucketId, SimTime};

use crate::crossmatch::{CrossMatchQuery, QueryId};
use crate::preprocess::WorkItem;

/// One queued cross-match request: a single object of a single query,
/// waiting to be joined against one bucket.
///
/// Entries are self-contained (position, radius, bounding range) so the join
/// evaluator needs no back-reference to the query object list.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueEntry {
    /// The parent query.
    pub query: QueryId,
    /// Index of the object within the parent query.
    pub object_index: u32,
    /// Mean position of the observation.
    pub pos: Vec3,
    /// Error-circle radius in radians.
    pub radius: f64,
    /// Bounding HTM range of the error circle (object level).
    pub bbox: HtmRange,
    /// When the request entered the queue (the age term's clock).
    pub enqueued_at: SimTime,
}

/// The workload queue of a single bucket.
#[derive(Debug, Clone, Default)]
pub struct WorkloadQueue {
    entries: Vec<QueueEntry>,
    /// Earliest enqueue time among current entries (None when empty).
    oldest: Option<SimTime>,
}

impl WorkloadQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WorkloadQueue::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, e: QueueEntry) {
        self.oldest = Some(match self.oldest {
            Some(t) => t.min(e.enqueued_at),
            None => e.enqueued_at,
        });
        self.entries.push(e);
    }

    /// Number of queued objects (`Σ_j W_i^j` for this bucket).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queued entries in arrival order.
    pub fn entries(&self) -> &[QueueEntry] {
        &self.entries
    }

    /// Enqueue time of the oldest request (`A(i)`'s reference point).
    pub fn oldest_enqueue(&self) -> Option<SimTime> {
        self.oldest
    }

    /// Age of the oldest request in milliseconds at time `now` — the paper's
    /// `A(i)`. Zero when empty.
    pub fn oldest_age_ms(&self, now: SimTime) -> f64 {
        match self.oldest {
            Some(t) => now.since(t).as_millis_f64(),
            None => 0.0,
        }
    }

    /// Removes and returns all entries (a full-batch drain).
    pub fn drain_all(&mut self) -> Vec<QueueEntry> {
        self.oldest = None;
        std::mem::take(&mut self.entries)
    }

    /// Removes and returns only the entries of `query` (the NoShare batch
    /// scope), recomputing the oldest timestamp for the remainder.
    pub fn drain_query(&mut self, query: QueryId) -> Vec<QueueEntry> {
        let mut drained = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if e.query == query {
                drained.push(e);
            } else {
                kept.push(e);
            }
        }
        self.entries = kept;
        self.oldest = self.entries.iter().map(|e| e.enqueued_at).min();
        drained
    }

    /// Distinct queries with work in this queue.
    pub fn distinct_queries(&self) -> usize {
        let mut ids: Vec<QueryId> = self.entries.iter().map(|e| e.query).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// All per-bucket workload queues of one archive, indexed by bucket.
///
/// This is the state behind the paper's Workload Manager: it "maintains
/// state information such as a mapping of pending queries to workload queues
/// and the age of the oldest query in each queue" (Section 4).
#[derive(Debug, Clone)]
pub struct WorkloadTable {
    queues: Vec<WorkloadQueue>,
    /// Sorted list of currently non-empty buckets (the scheduler's
    /// candidate set; kept small relative to the partition).
    non_empty: Vec<BucketId>,
    /// Total queued objects across all buckets.
    total_queued: u64,
}

impl WorkloadTable {
    /// Creates a table for a partition of `n_buckets` buckets.
    pub fn new(n_buckets: usize) -> Self {
        WorkloadTable {
            queues: vec![WorkloadQueue::new(); n_buckets],
            non_empty: Vec::new(),
            total_queued: 0,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a work item produced by the pre-processor, expanding it into
    /// self-contained queue entries using the parent query's object data.
    ///
    /// # Panics
    /// Panics if the item's indices do not refer to `query`'s objects or the
    /// item targets an unknown bucket.
    pub fn enqueue(&mut self, item: &WorkItem, query: &CrossMatchQuery, now: SimTime) {
        assert_eq!(item.query, query.id, "work item / query mismatch");
        let idx = item.bucket.index();
        assert!(idx < self.queues.len(), "unknown bucket {}", item.bucket);
        let was_empty = self.queues[idx].is_empty();
        for &oi in &item.object_indices {
            let obj = &query.objects[oi as usize];
            self.queues[idx].push(QueueEntry {
                query: query.id,
                object_index: oi,
                pos: obj.pos,
                radius: obj.radius,
                bbox: obj.bounding_range(),
                enqueued_at: now,
            });
            self.total_queued += 1;
        }
        if was_empty && !self.queues[idx].is_empty() {
            let pos = self.non_empty.partition_point(|&b| b < item.bucket);
            self.non_empty.insert(pos, item.bucket);
        }
    }

    /// The queue of one bucket.
    pub fn queue(&self, bucket: BucketId) -> &WorkloadQueue {
        &self.queues[bucket.index()]
    }

    /// Sorted bucket IDs with pending work.
    pub fn non_empty_buckets(&self) -> &[BucketId] {
        &self.non_empty
    }

    /// Total queued objects across all buckets.
    pub fn total_queued(&self) -> u64 {
        self.total_queued
    }

    /// True if no work is pending anywhere.
    pub fn is_idle(&self) -> bool {
        self.total_queued == 0
    }

    /// Drains a bucket's queue entirely (standard batch).
    pub fn take_all(&mut self, bucket: BucketId) -> Vec<QueueEntry> {
        let drained = self.queues[bucket.index()].drain_all();
        self.after_drain(bucket, drained.len());
        drained
    }

    /// Drains only one query's entries from a bucket (NoShare batch).
    pub fn take_query(&mut self, bucket: BucketId, query: QueryId) -> Vec<QueueEntry> {
        let drained = self.queues[bucket.index()].drain_query(query);
        self.after_drain(bucket, drained.len());
        drained
    }

    fn after_drain(&mut self, bucket: BucketId, n: usize) {
        self.total_queued -= n as u64;
        if self.queues[bucket.index()].is_empty() {
            if let Ok(pos) = self.non_empty.binary_search(&bucket) {
                self.non_empty.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossmatch::Predicate;
    use liferaft_storage::SimDuration;

    const LEVEL: u8 = 6;

    fn entry_source(n: usize) -> CrossMatchQuery {
        let positions: Vec<Vec3> = (0..n)
            .map(|i| Vec3::from_radec_deg(10.0 + i as f64 * 0.01, 5.0))
            .collect();
        CrossMatchQuery::from_positions(QueryId(1), &positions, 1e-5, LEVEL, Predicate::All)
    }

    fn item(query: &CrossMatchQuery, bucket: u32) -> WorkItem {
        WorkItem {
            query: query.id,
            bucket: BucketId(bucket),
            object_indices: (0..query.len() as u32).collect(),
        }
    }

    #[test]
    fn enqueue_tracks_counts_and_non_empty() {
        let q = entry_source(3);
        let mut t = WorkloadTable::new(8);
        assert!(t.is_idle());
        t.enqueue(&item(&q, 5), &q, SimTime::ZERO);
        assert_eq!(t.total_queued(), 3);
        assert_eq!(t.non_empty_buckets(), &[BucketId(5)]);
        assert_eq!(t.queue(BucketId(5)).len(), 3);
        assert_eq!(t.queue(BucketId(5)).distinct_queries(), 1);
    }

    #[test]
    fn non_empty_stays_sorted() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(8);
        for b in [6u32, 2, 4, 0] {
            t.enqueue(&item(&q, b), &q, SimTime::ZERO);
        }
        assert_eq!(
            t.non_empty_buckets(),
            &[BucketId(0), BucketId(2), BucketId(4), BucketId(6)]
        );
    }

    #[test]
    fn oldest_age_tracks_minimum() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(10);
        t.enqueue(&item(&q, 2), &q, t1);
        let q2 = {
            let mut q2 = entry_source(1);
            q2.id = QueryId(2);
            q2
        };
        t.enqueue(&item(&q2, 2), &q2, t0);
        let now = t1 + SimDuration::from_secs(5);
        // Oldest is t0 → age 15s.
        assert_eq!(t.queue(BucketId(2)).oldest_age_ms(now), 15_000.0);
    }

    #[test]
    fn take_all_empties_and_updates_index() {
        let q = entry_source(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        let drained = t.take_all(BucketId(1));
        assert_eq!(drained.len(), 2);
        assert!(t.is_idle());
        assert!(t.non_empty_buckets().is_empty());
        assert_eq!(t.queue(BucketId(1)).oldest_enqueue(), None);
    }

    #[test]
    fn take_query_is_selective() {
        let qa = entry_source(2);
        let mut qb = entry_source(3);
        qb.id = QueryId(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&qa, 1), &qa, SimTime::ZERO);
        t.enqueue(&item(&qb, 1), &qb, SimTime::from_micros(10));
        assert_eq!(t.queue(BucketId(1)).distinct_queries(), 2);
        let drained = t.take_query(BucketId(1), QueryId(1));
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|e| e.query == QueryId(1)));
        assert_eq!(t.total_queued(), 3);
        assert_eq!(t.non_empty_buckets(), &[BucketId(1)]);
        // Oldest recomputed to the remaining query's enqueue time.
        assert_eq!(
            t.queue(BucketId(1)).oldest_enqueue(),
            Some(SimTime::from_micros(10))
        );
    }

    #[test]
    fn entries_are_self_contained() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 0), &q, SimTime::ZERO);
        let e = &t.queue(BucketId(0)).entries()[0];
        assert_eq!(e.pos, q.objects[0].pos);
        assert_eq!(e.radius, q.objects[0].radius);
        assert_eq!(e.bbox, q.objects[0].bounding_range());
        assert_eq!(e.object_index, 0);
    }

    #[test]
    #[should_panic(expected = "unknown bucket")]
    fn enqueue_rejects_out_of_range_bucket() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(2);
        t.enqueue(&item(&q, 7), &q, SimTime::ZERO);
    }
}
