//! Per-bucket workload queues — the data structure LifeRaft schedules over.
//!
//! "The workload queue for a bucket Bj consists of the union of W_1^j,
//! W_2^j, ..., and W_m^j. Thus, requests from multiple queries are
//! interleaved in the same workload queue and are joined in one pass"
//! — Section 3.1.

use liferaft_htm::{HtmRange, Vec3};
use liferaft_storage::{BucketId, SimTime};

use crate::crossmatch::{CrossMatchQuery, QueryId};
use crate::preprocess::WorkItem;
use crate::snapshot::{BucketSnapshot, Residency};

/// One queued cross-match request: a single object of a single query,
/// waiting to be joined against one bucket.
///
/// Entries are self-contained (position, radius, bounding range) so the join
/// evaluator needs no back-reference to the query object list.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueEntry {
    /// The parent query.
    pub query: QueryId,
    /// Index of the object within the parent query.
    pub object_index: u32,
    /// Mean position of the observation.
    pub pos: Vec3,
    /// Error-circle radius in radians.
    pub radius: f64,
    /// Bounding HTM range of the error circle (object level).
    pub bbox: HtmRange,
    /// When the request entered the queue (the age term's clock).
    pub enqueued_at: SimTime,
}

/// The workload queue of a single bucket.
#[derive(Debug, Clone, Default)]
pub struct WorkloadQueue {
    entries: Vec<QueueEntry>,
    /// Earliest enqueue time among current entries (None when empty).
    oldest: Option<SimTime>,
}

impl WorkloadQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WorkloadQueue::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, e: QueueEntry) {
        self.oldest = Some(match self.oldest {
            Some(t) => t.min(e.enqueued_at),
            None => e.enqueued_at,
        });
        self.entries.push(e);
    }

    /// Number of queued objects (`Σ_j W_i^j` for this bucket).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queued entries in arrival order.
    pub fn entries(&self) -> &[QueueEntry] {
        &self.entries
    }

    /// Enqueue time of the oldest request (`A(i)`'s reference point).
    pub fn oldest_enqueue(&self) -> Option<SimTime> {
        self.oldest
    }

    /// Age of the oldest request in milliseconds at time `now` — the paper's
    /// `A(i)`. Zero when empty.
    pub fn oldest_age_ms(&self, now: SimTime) -> f64 {
        match self.oldest {
            Some(t) => now.since(t).as_millis_f64(),
            None => 0.0,
        }
    }

    /// Removes and returns all entries (a full-batch drain).
    pub fn drain_all(&mut self) -> Vec<QueueEntry> {
        self.oldest = None;
        std::mem::take(&mut self.entries)
    }

    /// Moves all entries into `out` (cleared first), preserving arrival
    /// order. Unlike [`drain_all`](Self::drain_all) this keeps the queue's
    /// allocation, so a steady-state enqueue/drain cycle performs no heap
    /// traffic on either side.
    pub fn drain_all_into(&mut self, out: &mut Vec<QueueEntry>) {
        out.clear();
        out.append(&mut self.entries);
        self.oldest = None;
    }

    /// Removes and returns only the entries of `query` (the NoShare batch
    /// scope), recomputing the oldest timestamp for the remainder.
    pub fn drain_query(&mut self, query: QueryId) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        self.drain_query_into(query, &mut out);
        out
    }

    /// Moves the entries of `query` into `out` (cleared first) in a single
    /// in-place pass: kept entries are compacted toward the front in order,
    /// so neither side allocates beyond `out`'s growth. The oldest timestamp
    /// is only recomputed when something was actually drained.
    pub fn drain_query_into(&mut self, query: QueryId, out: &mut Vec<QueueEntry>) {
        out.clear();
        let mut write = 0;
        for read in 0..self.entries.len() {
            if self.entries[read].query == query {
                out.push(self.entries[read].clone());
            } else {
                self.entries.swap(write, read);
                write += 1;
            }
        }
        if out.is_empty() {
            return; // nothing left the queue: `oldest` is still correct
        }
        self.entries.truncate(write);
        self.oldest = self.entries.iter().map(|e| e.enqueued_at).min();
    }

    /// Distinct queries with work in this queue.
    pub fn distinct_queries(&self) -> usize {
        let mut ids: Vec<QueryId> = self.entries.iter().map(|e| e.query).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// All per-bucket workload queues of one archive, indexed by bucket.
///
/// This is the state behind the paper's Workload Manager: it "maintains
/// state information such as a mapping of pending queries to workload queues
/// and the age of the oldest query in each queue" (Section 4).
///
/// The table keeps a live [`BucketSnapshot`] slot per bucket, updated in
/// O(1) on [`enqueue`](Self::enqueue) and the drain paths, so a scheduling
/// decision costs one gather plus a residency probe per candidate
/// ([`snapshots_into`](Self::snapshots_into)) instead of an O(non-empty
/// buckets) rebuild from the queues. Slots are updated in place (never
/// shifted), which keeps hot drain/refill cycles free of the O(candidates)
/// memmoves a dense sorted snapshot vector would pay.
#[derive(Debug, Clone)]
pub struct WorkloadTable {
    queues: Vec<WorkloadQueue>,
    /// Sorted list of currently non-empty buckets (the scheduler's
    /// candidate set; kept small relative to the partition).
    non_empty: Vec<BucketId>,
    /// Live snapshot slots indexed by bucket like `queues`. A slot is
    /// meaningful only while its bucket appears in `non_empty`; the
    /// `bucket` and `bucket_objects` fields are static, and the `cached`
    /// bit is refreshed lazily by `snapshots_into` against the residency
    /// oracle's epoch.
    snapshot_slots: Vec<BucketSnapshot>,
    /// Residency-oracle epoch at which each slot's `cached` bit was last
    /// probed (0 = never). While the oracle's epoch matches, the stored bit
    /// is served without re-probing.
    phi_stamp: Vec<u64>,
    /// Total queued objects across all buckets.
    total_queued: u64,
}

impl WorkloadTable {
    /// Creates a table for a partition of `n_buckets` buckets.
    pub fn new(n_buckets: usize) -> Self {
        WorkloadTable {
            queues: vec![WorkloadQueue::new(); n_buckets],
            non_empty: Vec::new(),
            snapshot_slots: (0..n_buckets)
                .map(|i| BucketSnapshot {
                    bucket: BucketId(i as u32),
                    queue_len: 0,
                    oldest_enqueue: SimTime::ZERO,
                    cached: false,
                    bucket_objects: 0,
                })
                .collect(),
            phi_stamp: vec![0; n_buckets],
            total_queued: 0,
        }
    }

    /// Installs the static per-bucket catalog object counts that snapshots
    /// carry (`BucketSnapshot::bucket_objects`). Call once at setup, before
    /// any work is enqueued.
    ///
    /// # Panics
    /// Panics if work is already queued — counts are snapshot state and
    /// must not change underneath live snapshots.
    pub fn with_object_counts(mut self, mut count_of: impl FnMut(BucketId) -> u64) -> Self {
        assert!(
            self.non_empty.is_empty(),
            "object counts must be installed before enqueuing work"
        );
        for slot in self.snapshot_slots.iter_mut() {
            slot.bucket_objects = count_of(slot.bucket);
        }
        self
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a work item produced by the pre-processor, expanding it into
    /// self-contained queue entries using the parent query's object data.
    ///
    /// # Panics
    /// Panics if the item's indices do not refer to `query`'s objects or the
    /// item targets an unknown bucket.
    pub fn enqueue(&mut self, item: &WorkItem, query: &CrossMatchQuery, now: SimTime) {
        assert_eq!(item.query, query.id, "work item / query mismatch");
        let idx = item.bucket.index();
        assert!(idx < self.queues.len(), "unknown bucket {}", item.bucket);
        let was_empty = self.queues[idx].is_empty();
        for &oi in &item.object_indices {
            let obj = &query.objects[oi as usize];
            self.queues[idx].push(QueueEntry {
                query: query.id,
                object_index: oi,
                pos: obj.pos,
                radius: obj.radius,
                bbox: obj.bounding_range(),
                enqueued_at: now,
            });
            self.total_queued += 1;
        }
        let q = &self.queues[idx];
        if q.is_empty() {
            return; // the item carried no object indices
        }
        let slot = &mut self.snapshot_slots[idx];
        slot.queue_len = q.len() as u64;
        slot.oldest_enqueue = q.oldest_enqueue().expect("non-empty queue has an oldest");
        if was_empty {
            let pos = self.non_empty.partition_point(|&b| b < item.bucket);
            self.non_empty.insert(pos, item.bucket);
        }
    }

    /// The queue of one bucket.
    pub fn queue(&self, bucket: BucketId) -> &WorkloadQueue {
        &self.queues[bucket.index()]
    }

    /// Sorted bucket IDs with pending work.
    pub fn non_empty_buckets(&self) -> &[BucketId] {
        &self.non_empty
    }

    /// Total queued objects across all buckets.
    pub fn total_queued(&self) -> u64 {
        self.total_queued
    }

    /// True if no work is pending anywhere.
    pub fn is_idle(&self) -> bool {
        self.total_queued == 0
    }

    /// Drains a bucket's queue entirely (standard batch).
    pub fn take_all(&mut self, bucket: BucketId) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        self.take_all_into(bucket, &mut out);
        out
    }

    /// Drains a bucket's queue entirely into `out` (cleared first), keeping
    /// both the queue's and `out`'s allocations for reuse.
    pub fn take_all_into(&mut self, bucket: BucketId, out: &mut Vec<QueueEntry>) {
        self.queues[bucket.index()].drain_all_into(out);
        self.after_drain(bucket, out.len());
    }

    /// Drains only one query's entries from a bucket (NoShare batch).
    pub fn take_query(&mut self, bucket: BucketId, query: QueryId) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        self.take_query_into(bucket, query, &mut out);
        out
    }

    /// Drains only one query's entries from a bucket into `out` (cleared
    /// first); the single-pass, allocation-reusing variant.
    pub fn take_query_into(&mut self, bucket: BucketId, query: QueryId, out: &mut Vec<QueueEntry>) {
        self.queues[bucket.index()].drain_query_into(query, out);
        self.after_drain(bucket, out.len());
    }

    /// The live snapshot of one bucket, or `None` if it has no queued work.
    /// The `cached` bit is not maintained here; see
    /// [`snapshots_into`](Self::snapshots_into) for decision-ready copies.
    pub fn snapshot_of(&self, bucket: BucketId) -> Option<BucketSnapshot> {
        if self.queues[bucket.index()].is_empty() {
            None
        } else {
            Some(self.snapshot_slots[bucket.index()])
        }
    }

    /// Gathers the candidate snapshots into `out` (cleared first, sorted by
    /// bucket) and refreshes only their `cached` bits against `residency` —
    /// the scheduler's per-decision view, built without touching the queues.
    ///
    /// When the oracle exposes a residency epoch (see
    /// [`Residency::residency_epoch`]), φ bits are cached in the slots and
    /// stamped with the epoch they were probed at: between cache mutations
    /// the gather performs **zero** residency probes. Oracles without an
    /// epoch are probed per candidate per call, as before, and leave the
    /// stored bits untouched.
    pub fn snapshots_into(&mut self, out: &mut Vec<BucketSnapshot>, residency: &dyn Residency) {
        out.clear();
        out.reserve(self.non_empty.len());
        match residency.residency_epoch() {
            Some(epoch) => {
                for &b in &self.non_empty {
                    let i = b.index();
                    if self.phi_stamp[i] != epoch {
                        self.snapshot_slots[i].cached = residency.is_resident(b);
                        self.phi_stamp[i] = epoch;
                    }
                    out.push(self.snapshot_slots[i]);
                }
            }
            None => {
                for &b in &self.non_empty {
                    let mut s = self.snapshot_slots[b.index()];
                    s.cached = residency.is_resident(b);
                    out.push(s);
                }
            }
        }
    }

    fn after_drain(&mut self, bucket: BucketId, n: usize) {
        if n == 0 {
            return; // nothing drained: membership and slot are unchanged
        }
        self.total_queued -= n as u64;
        let q = &self.queues[bucket.index()];
        if q.is_empty() {
            if let Ok(pos) = self.non_empty.binary_search(&bucket) {
                self.non_empty.remove(pos);
            }
        } else {
            let slot = &mut self.snapshot_slots[bucket.index()];
            slot.queue_len = q.len() as u64;
            slot.oldest_enqueue = q.oldest_enqueue().expect("non-empty queue has an oldest");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossmatch::Predicate;
    use liferaft_storage::SimDuration;

    const LEVEL: u8 = 6;

    fn entry_source(n: usize) -> CrossMatchQuery {
        let positions: Vec<Vec3> = (0..n)
            .map(|i| Vec3::from_radec_deg(10.0 + i as f64 * 0.01, 5.0))
            .collect();
        CrossMatchQuery::from_positions(QueryId(1), &positions, 1e-5, LEVEL, Predicate::All)
    }

    fn item(query: &CrossMatchQuery, bucket: u32) -> WorkItem {
        WorkItem {
            query: query.id,
            bucket: BucketId(bucket),
            object_indices: (0..query.len() as u32).collect(),
        }
    }

    #[test]
    fn enqueue_tracks_counts_and_non_empty() {
        let q = entry_source(3);
        let mut t = WorkloadTable::new(8);
        assert!(t.is_idle());
        t.enqueue(&item(&q, 5), &q, SimTime::ZERO);
        assert_eq!(t.total_queued(), 3);
        assert_eq!(t.non_empty_buckets(), &[BucketId(5)]);
        assert_eq!(t.queue(BucketId(5)).len(), 3);
        assert_eq!(t.queue(BucketId(5)).distinct_queries(), 1);
    }

    #[test]
    fn non_empty_stays_sorted() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(8);
        for b in [6u32, 2, 4, 0] {
            t.enqueue(&item(&q, b), &q, SimTime::ZERO);
        }
        assert_eq!(
            t.non_empty_buckets(),
            &[BucketId(0), BucketId(2), BucketId(4), BucketId(6)]
        );
    }

    #[test]
    fn oldest_age_tracks_minimum() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(10);
        t.enqueue(&item(&q, 2), &q, t1);
        let q2 = {
            let mut q2 = entry_source(1);
            q2.id = QueryId(2);
            q2
        };
        t.enqueue(&item(&q2, 2), &q2, t0);
        let now = t1 + SimDuration::from_secs(5);
        // Oldest is t0 → age 15s.
        assert_eq!(t.queue(BucketId(2)).oldest_age_ms(now), 15_000.0);
    }

    #[test]
    fn take_all_empties_and_updates_index() {
        let q = entry_source(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        let drained = t.take_all(BucketId(1));
        assert_eq!(drained.len(), 2);
        assert!(t.is_idle());
        assert!(t.non_empty_buckets().is_empty());
        assert_eq!(t.queue(BucketId(1)).oldest_enqueue(), None);
    }

    #[test]
    fn take_query_is_selective() {
        let qa = entry_source(2);
        let mut qb = entry_source(3);
        qb.id = QueryId(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&qa, 1), &qa, SimTime::ZERO);
        t.enqueue(&item(&qb, 1), &qb, SimTime::from_micros(10));
        assert_eq!(t.queue(BucketId(1)).distinct_queries(), 2);
        let drained = t.take_query(BucketId(1), QueryId(1));
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|e| e.query == QueryId(1)));
        assert_eq!(t.total_queued(), 3);
        assert_eq!(t.non_empty_buckets(), &[BucketId(1)]);
        // Oldest recomputed to the remaining query's enqueue time.
        assert_eq!(
            t.queue(BucketId(1)).oldest_enqueue(),
            Some(SimTime::from_micros(10))
        );
    }

    #[test]
    fn entries_are_self_contained() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 0), &q, SimTime::ZERO);
        let e = &t.queue(BucketId(0)).entries()[0];
        assert_eq!(e.pos, q.objects[0].pos);
        assert_eq!(e.radius, q.objects[0].radius);
        assert_eq!(e.bbox, q.objects[0].bounding_range());
        assert_eq!(e.object_index, 0);
    }

    #[test]
    #[should_panic(expected = "unknown bucket")]
    fn enqueue_rejects_out_of_range_bucket() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(2);
        t.enqueue(&item(&q, 7), &q, SimTime::ZERO);
    }

    /// Gathers the maintained snapshots through the public decision-path
    /// API (cold residency, to match `rebuild`'s default).
    fn gather(t: &mut WorkloadTable) -> Vec<BucketSnapshot> {
        let mut out = Vec::new();
        t.snapshots_into(&mut out, &crate::snapshot::NoResidency);
        out
    }

    /// From-scratch snapshot rebuild via the public queue accessors — the
    /// reference the incrementally-maintained snapshots must match.
    fn rebuild(t: &WorkloadTable) -> Vec<BucketSnapshot> {
        t.non_empty_buckets()
            .iter()
            .map(|&b| {
                let q = t.queue(b);
                BucketSnapshot {
                    bucket: b,
                    queue_len: q.len() as u64,
                    oldest_enqueue: q.oldest_enqueue().expect("non-empty"),
                    cached: false,
                    bucket_objects: 0,
                }
            })
            .collect()
    }

    #[test]
    fn snapshots_track_enqueue_and_drains() {
        let qa = entry_source(2);
        let mut qb = entry_source(3);
        qb.id = QueryId(2);
        let mut t = WorkloadTable::new(8);
        t.enqueue(&item(&qa, 5), &qa, SimTime::ZERO);
        t.enqueue(&item(&qb, 5), &qb, SimTime::from_micros(10));
        t.enqueue(&item(&qa, 2), &qa, SimTime::from_micros(20));
        let r = rebuild(&t);
        assert_eq!(gather(&mut t), r);
        t.take_query(BucketId(5), QueryId(1));
        let r = rebuild(&t);
        assert_eq!(gather(&mut t), r);
        t.take_all(BucketId(5));
        let r = rebuild(&t);
        assert_eq!(gather(&mut t), r);
        assert_eq!(t.snapshot_of(BucketId(5)), None);
        t.take_all(BucketId(2));
        assert!(gather(&mut t).is_empty());
    }

    #[test]
    fn snapshots_into_refreshes_residency_only() {
        use crate::snapshot::Residency;
        struct Always;
        impl Residency for Always {
            fn is_resident(&self, _b: BucketId) -> bool {
                true
            }
        }
        let q = entry_source(2);
        let mut t = WorkloadTable::new(4).with_object_counts(|b| 100 + b.0 as u64);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        let mut out = vec![BucketSnapshot {
            bucket: BucketId(9),
            queue_len: 0,
            oldest_enqueue: SimTime::ZERO,
            cached: false,
            bucket_objects: 0,
        }];
        t.snapshots_into(&mut out, &Always);
        assert_eq!(out.len(), 1, "scratch must be cleared first");
        assert_eq!(out[0].bucket, BucketId(1));
        assert_eq!(out[0].queue_len, 2);
        assert!(out[0].cached);
        assert_eq!(out[0].bucket_objects, 101);
        // The maintained slot keeps its cold default.
        assert!(!t.snapshot_of(BucketId(1)).expect("non-empty").cached);
    }

    #[test]
    fn epoch_stamped_phi_skips_probes_between_mutations() {
        use crate::snapshot::Residency;
        use std::cell::Cell;
        /// An epoch-bearing oracle that counts `is_resident` probes.
        struct Counting {
            epoch: Cell<u64>,
            resident: Cell<bool>,
            probes: Cell<u64>,
        }
        impl Residency for Counting {
            fn is_resident(&self, _b: BucketId) -> bool {
                self.probes.set(self.probes.get() + 1);
                self.resident.get()
            }
            fn residency_epoch(&self) -> Option<u64> {
                Some(self.epoch.get())
            }
        }
        let oracle = Counting {
            epoch: Cell::new(7),
            resident: Cell::new(false),
            probes: Cell::new(0),
        };
        let qa = entry_source(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&qa, 1), &qa, SimTime::ZERO);
        t.enqueue(&item(&qa, 3), &qa, SimTime::ZERO);
        let mut out = Vec::new();
        // First gather at epoch 7: one probe per candidate, bits stamped.
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 2);
        assert!(out.iter().all(|s| !s.cached));
        // Same epoch: zero probes, stored bits served.
        t.snapshots_into(&mut out, &oracle);
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 2);
        // Epoch bump (resident set changed): every candidate re-probed once.
        oracle.epoch.set(8);
        oracle.resident.set(true);
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 4);
        assert!(
            out.iter().all(|s| s.cached),
            "refreshed bits must be served"
        );
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 4);
    }

    #[test]
    fn drain_query_into_reuses_and_preserves_order() {
        let qa = entry_source(3);
        let mut qb = entry_source(2);
        qb.id = QueryId(2);
        let mut wq = WorkloadQueue::new();
        for (i, e) in [&qa, &qb, &qa, &qa, &qb]
            .iter()
            .flat_map(|q| {
                std::iter::once(QueueEntry {
                    query: q.id,
                    object_index: 0,
                    pos: q.objects[0].pos,
                    radius: q.objects[0].radius,
                    bbox: q.objects[0].bounding_range(),
                    enqueued_at: SimTime::ZERO,
                })
            })
            .enumerate()
        {
            let mut e = e;
            e.object_index = i as u32;
            e.enqueued_at = SimTime::from_micros(i as u64);
            wq.push(e);
        }
        let mut out = Vec::new();
        wq.drain_query_into(QueryId(1), &mut out);
        assert_eq!(
            out.iter().map(|e| e.object_index).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        assert_eq!(
            wq.entries()
                .iter()
                .map(|e| e.object_index)
                .collect::<Vec<_>>(),
            vec![1, 4]
        );
        assert_eq!(wq.oldest_enqueue(), Some(SimTime::from_micros(1)));
        // Draining an absent query leaves state (and `oldest`) untouched.
        wq.drain_query_into(QueryId(99), &mut out);
        assert!(out.is_empty());
        assert_eq!(wq.len(), 2);
        assert_eq!(wq.oldest_enqueue(), Some(SimTime::from_micros(1)));
    }

    #[test]
    #[should_panic(expected = "before enqueuing work")]
    fn object_counts_after_enqueue_rejected() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        let _ = t.with_object_counts(|_| 1);
    }
}
