//! Per-bucket workload queues — the data structure LifeRaft schedules over.
//!
//! "The workload queue for a bucket Bj consists of the union of W_1^j,
//! W_2^j, ..., and W_m^j. Thus, requests from multiple queries are
//! interleaved in the same workload queue and are joined in one pass"
//! — Section 3.1.
//!
//! # Segmented storage
//!
//! Each bucket's queue is physically *segmented by query*: the entries of
//! one `(bucket, query)` pair live in a chain of fixed-capacity segments
//! allocated from a per-bucket slab, behind a compact per-bucket directory
//! (one `QueryRun` per co-queued query, sorted by query ID). The three
//! queue operations the engine drives then cost:
//!
//! - **enqueue**: O(log d) directory lookup (d = co-queued queries) plus an
//!   O(1) amortized append to the run's tail segment;
//! - **[`drain_query_into`](WorkloadQueue::drain_query_into)** (the NoShare
//!   batch): O(matched) — the run's chain is unlinked and its entries moved
//!   out with **zero compares against other queries' entries**, plus an
//!   O(d) directory repair;
//! - **[`drain_all_into`](WorkloadQueue::drain_all_into)** (the shared
//!   batch): O(batch) — every chain is walked once.
//!
//! The previous layout (one dense entry vector + a 16-byte key sidecar)
//! made the per-query drain O(queue length): every co-queued entry was
//! *read and compared* per drain, which multiplied up to O(queue²) when a
//! deep shared queue was drained once per co-queued query — the measured
//! long pole of the NoShare baseline (971 k entries/s vs 7–8 M for every
//! sharing policy in `BENCH_sim.json`).
//!
//! # The unordered-batch contract
//!
//! Batch drains yield entries grouped by query (directory order), not in
//! global arrival order. Queue order is **not** part of the contract:
//! batches are consumed as unordered sets (completion accounting groups by
//! query ID, join results are counted, and the age term reads the
//! maintained `oldest`), which is pinned end-to-end by the golden
//! determinism fingerprints.

use liferaft_htm::{HtmRange, Vec3};
use liferaft_storage::{BucketId, SimTime};

use crate::crossmatch::{CrossMatchQuery, QueryId};
use crate::index::CandidateIndex;
use crate::preprocess::WorkItem;
use crate::snapshot::{BucketSnapshot, Residency};

/// One queued cross-match request: a single object of a single query,
/// waiting to be joined against one bucket.
///
/// Entries are self-contained (position, radius, bounding range) so the join
/// evaluator needs no back-reference to the query object list.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueEntry {
    /// The parent query.
    pub query: QueryId,
    /// Index of the object within the parent query.
    pub object_index: u32,
    /// Mean position of the observation.
    pub pos: Vec3,
    /// Error-circle radius in radians.
    pub radius: f64,
    /// Bounding HTM range of the error circle (object level).
    pub bbox: HtmRange,
    /// When the request entered the queue (the age term's clock).
    pub enqueued_at: SimTime,
}

/// Entries per segment. Chosen so a segment (~2.3 KB of ~72-byte entries)
/// amortizes slab bookkeeping without stranding much capacity on the many
/// short `(bucket, query)` runs a hotspot workload produces.
const SEGMENT_CAPACITY: usize = 32;

/// Null link in a segment chain.
const NO_SEGMENT: u32 = u32::MAX;

/// A fixed-capacity run of entries plus the link to the next segment of the
/// same `(bucket, query)` chain. Freed segments keep their buffer and are
/// recycled through the slab's free list, so steady-state enqueue/drain
/// cycles perform no heap traffic.
#[derive(Debug, Clone)]
struct Segment {
    entries: Vec<QueueEntry>,
    next: u32,
}

impl Segment {
    fn fresh() -> Self {
        Segment {
            entries: Vec::with_capacity(SEGMENT_CAPACITY),
            next: NO_SEGMENT,
        }
    }
}

/// One directory row: the segment chain holding every queued entry of one
/// query at this bucket, with the per-run accounting the drains and the age
/// term need.
#[derive(Debug, Clone, Copy)]
struct QueryRun {
    query: QueryId,
    /// First segment of the chain (always valid: runs hold ≥ 1 entry).
    head: u32,
    /// Last segment of the chain — the append target.
    tail: u32,
    /// Entries in the chain.
    len: u32,
    /// Earliest enqueue time in the chain.
    oldest: SimTime,
}

/// Byte-level accounting of one queue's (or, summed, one table's) segmented
/// storage — the number behind the "segment directory adds per-bucket
/// memory" question.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueMemoryStats {
    /// Live queued entries.
    pub queued_entries: u64,
    /// Live `(bucket, query)` directory rows.
    pub directory_runs: u64,
    /// Bytes allocated for directories (capacity × row size).
    pub directory_bytes: u64,
    /// Segment slots in the slabs (live chains + free list).
    pub segments: u64,
    /// Slots currently on free lists.
    pub free_segments: u64,
    /// Bytes allocated for segment buffers and slab headers.
    pub segment_bytes: u64,
    /// Bytes of live entry payload (`queued_entries` × entry size).
    pub entry_bytes: u64,
}

impl QueueMemoryStats {
    /// Folds another accounting into this one (per-bucket → table totals).
    pub fn merge(&mut self, other: &QueueMemoryStats) {
        self.queued_entries += other.queued_entries;
        self.directory_runs += other.directory_runs;
        self.directory_bytes += other.directory_bytes;
        self.segments += other.segments;
        self.free_segments += other.free_segments;
        self.segment_bytes += other.segment_bytes;
        self.entry_bytes += other.entry_bytes;
    }

    /// Allocated bytes beyond the live entry payload — the price of the
    /// segmented layout (directory rows, free segments, tail slack).
    pub fn overhead_bytes(&self) -> u64 {
        (self.directory_bytes + self.segment_bytes).saturating_sub(self.entry_bytes)
    }

    /// Total allocated bytes.
    pub fn total_bytes(&self) -> u64 {
        self.directory_bytes + self.segment_bytes
    }
}

/// The workload queue of a single bucket, segmented by query.
#[derive(Debug, Clone, Default)]
pub struct WorkloadQueue {
    /// Per-query runs, sorted by query ID. Compact: one 32-byte row per
    /// co-queued query.
    directory: Vec<QueryRun>,
    /// The segment slab backing every chain of this bucket.
    segments: Vec<Segment>,
    /// Recycled segment slots.
    free: Vec<u32>,
    /// Total queued entries.
    len: usize,
    /// Earliest enqueue time among current entries (None when empty).
    oldest: Option<SimTime>,
}

impl WorkloadQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WorkloadQueue::default()
    }

    /// Appends an entry to its query's run (O(log d) lookup + O(1)
    /// amortized append).
    pub fn push(&mut self, e: QueueEntry) {
        self.oldest = Some(match self.oldest {
            Some(t) => t.min(e.enqueued_at),
            None => e.enqueued_at,
        });
        self.len += 1;
        match self.directory.binary_search_by_key(&e.query, |r| r.query) {
            Ok(i) => {
                let tail = self.directory[i].tail;
                let tail = if self.segments[tail as usize].entries.len() == SEGMENT_CAPACITY {
                    let s = self.alloc_segment();
                    self.segments[tail as usize].next = s;
                    self.directory[i].tail = s;
                    s
                } else {
                    tail
                };
                let run = &mut self.directory[i];
                run.len += 1;
                run.oldest = run.oldest.min(e.enqueued_at);
                self.segments[tail as usize].entries.push(e);
            }
            Err(i) => {
                let s = self.alloc_segment();
                self.directory.insert(
                    i,
                    QueryRun {
                        query: e.query,
                        head: s,
                        tail: s,
                        len: 1,
                        oldest: e.enqueued_at,
                    },
                );
                self.segments[s as usize].entries.push(e);
            }
        }
    }

    fn alloc_segment(&mut self) -> u32 {
        match self.free.pop() {
            Some(s) => s,
            None => {
                self.segments.push(Segment::fresh());
                (self.segments.len() - 1) as u32
            }
        }
    }

    /// Number of queued objects (`Σ_i W_i^j` for this bucket).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Streams every queued entry, grouped by query (ascending query ID),
    /// in arrival order within each group. This grouping is a storage
    /// artifact, not a contract — consumers treat the queue as an unordered
    /// set.
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> + '_ {
        self.directory.iter().flat_map(move |run| {
            std::iter::successors(Some(run.head), move |&s| {
                let next = self.segments[s as usize].next;
                (next != NO_SEGMENT).then_some(next)
            })
            .flat_map(move |s| self.segments[s as usize].entries.iter())
        })
    }

    /// Enqueue time of the oldest request (`A(i)`'s reference point).
    pub fn oldest_enqueue(&self) -> Option<SimTime> {
        self.oldest
    }

    /// Age of the oldest request in milliseconds at time `now` — the paper's
    /// `A(i)`. Zero when empty.
    pub fn oldest_age_ms(&self, now: SimTime) -> f64 {
        match self.oldest {
            Some(t) => now.since(t).as_millis_f64(),
            None => 0.0,
        }
    }

    /// Number of entries queued for `query` (0 if it has no run here).
    pub fn pending_of(&self, query: QueryId) -> usize {
        match self.directory.binary_search_by_key(&query, |r| r.query) {
            Ok(i) => self.directory[i].len as usize,
            Err(_) => 0,
        }
    }

    /// Unlinks one chain into `out`, recycling its segments. Does not touch
    /// the directory or the queue counters.
    fn drain_chain(&mut self, head: u32, out: &mut Vec<QueueEntry>) {
        let mut s = head;
        while s != NO_SEGMENT {
            let seg = &mut self.segments[s as usize];
            out.append(&mut seg.entries);
            let next = seg.next;
            seg.next = NO_SEGMENT;
            self.free.push(s);
            s = next;
        }
    }

    /// Moves all entries into `out` (cleared first) in O(batch): every
    /// chain is walked exactly once, segments return to the free list, and
    /// both the queue's and `out`'s allocations are kept for reuse.
    pub fn drain_all_into(&mut self, out: &mut Vec<QueueEntry>) {
        out.clear();
        out.reserve(self.len);
        let mut i = 0;
        while i < self.directory.len() {
            let head = self.directory[i].head;
            self.drain_chain(head, out);
            i += 1;
        }
        self.directory.clear();
        self.len = 0;
        self.oldest = None;
    }

    /// Moves the entries of `query` into `out` (cleared first) in
    /// O(matched): the run's chain is unlinked whole, with zero reads of —
    /// let alone compares against — any other query's entries. The
    /// directory repair (row removal + surviving-oldest fold) is O(d) over
    /// the co-queued *queries*, not their entries.
    pub fn drain_query_into(&mut self, query: QueryId, out: &mut Vec<QueueEntry>) {
        out.clear();
        let Ok(i) = self.directory.binary_search_by_key(&query, |r| r.query) else {
            return; // no run: nothing leaves the queue
        };
        let run = self.directory.remove(i);
        out.reserve(run.len as usize);
        self.drain_chain(run.head, out);
        self.len -= run.len as usize;
        self.oldest = self.directory.iter().map(|r| r.oldest).min();
    }

    /// Distinct queries with work in this queue (one directory row each).
    pub fn distinct_queries(&self) -> usize {
        self.directory.len()
    }

    /// This queue's storage accounting.
    pub fn memory_stats(&self) -> QueueMemoryStats {
        let entry = std::mem::size_of::<QueueEntry>() as u64;
        let segment_bytes = self.segments.len() as u64 * std::mem::size_of::<Segment>() as u64
            + self
                .segments
                .iter()
                .map(|s| s.entries.capacity() as u64 * entry)
                .sum::<u64>()
            + self.free.capacity() as u64 * std::mem::size_of::<u32>() as u64;
        QueueMemoryStats {
            queued_entries: self.len as u64,
            directory_runs: self.directory.len() as u64,
            directory_bytes: self.directory.capacity() as u64
                * std::mem::size_of::<QueryRun>() as u64,
            segments: self.segments.len() as u64,
            free_segments: self.free.len() as u64,
            segment_bytes,
            entry_bytes: self.len as u64 * entry,
        }
    }

    /// Checks every structural invariant of the segmented storage: the
    /// directory is strictly sorted by query; each run's chain holds exactly
    /// `run.len` entries, all of `run.query`, with every non-tail segment
    /// full and `run.oldest` their true minimum; the queue counters match
    /// the directory; and every slab slot is on exactly one chain or the
    /// free list.
    ///
    /// # Panics
    /// Panics on any violated invariant. O(entries) — for tests and debug
    /// assertions, not the hot path.
    pub fn validate_segments(&self) {
        assert!(
            self.directory.windows(2).all(|w| w[0].query < w[1].query),
            "directory must be strictly sorted by query"
        );
        let mut seen = vec![false; self.segments.len()];
        let mut total = 0usize;
        let mut oldest: Option<SimTime> = None;
        for run in &self.directory {
            assert!(run.len > 0, "empty run for {} survived a drain", run.query);
            let mut chain_len = 0usize;
            let mut chain_oldest: Option<SimTime> = None;
            let mut s = run.head;
            let mut last = s;
            while s != NO_SEGMENT {
                assert!(
                    !std::mem::replace(&mut seen[s as usize], true),
                    "segment {s} linked twice"
                );
                let seg = &self.segments[s as usize];
                assert!(
                    seg.next == NO_SEGMENT || seg.entries.len() == SEGMENT_CAPACITY,
                    "non-tail segment {s} of {} is not full",
                    run.query
                );
                assert!(!seg.entries.is_empty(), "empty segment {s} left in chain");
                for e in &seg.entries {
                    assert_eq!(e.query, run.query, "foreign entry in {}'s chain", run.query);
                    chain_oldest = Some(match chain_oldest {
                        Some(t) => t.min(e.enqueued_at),
                        None => e.enqueued_at,
                    });
                }
                chain_len += seg.entries.len();
                last = s;
                s = seg.next;
            }
            assert_eq!(last, run.tail, "tail link of {} diverged", run.query);
            assert_eq!(chain_len, run.len as usize, "run length of {}", run.query);
            assert_eq!(
                chain_oldest,
                Some(run.oldest),
                "run oldest of {}",
                run.query
            );
            oldest = match (oldest, Some(run.oldest)) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            total += chain_len;
        }
        assert_eq!(total, self.len, "queue length diverged from chains");
        assert_eq!(oldest, self.oldest, "queue oldest diverged from runs");
        for (s, &on_chain) in seen.iter().enumerate() {
            let freed = self.free.contains(&(s as u32));
            assert!(
                on_chain != freed,
                "segment {s} must be on exactly one chain or the free list"
            );
            if freed {
                assert!(
                    self.segments[s].entries.is_empty(),
                    "freed segment {s} still holds entries"
                );
            }
        }
    }
}

/// All per-bucket workload queues of one archive, indexed by bucket.
///
/// This is the state behind the paper's Workload Manager: it "maintains
/// state information such as a mapping of pending queries to workload queues
/// and the age of the oldest query in each queue" (Section 4).
///
/// The table keeps a live [`BucketSnapshot`] slot per bucket, updated in
/// O(1) on [`enqueue`](Self::enqueue) and the drain paths, plus a
/// [`CandidateIndex`] over the non-empty slots, updated in O(log n) on the
/// same mutations (and on residency-epoch bumps via
/// [`sync_residency`](Self::sync_residency)). A scheduling decision is then
/// an index lookup ([`top_candidate_age`](Self::top_candidate_age),
/// [`top_candidate_uncached`](Self::top_candidate_uncached) plus an exact
/// re-rank of the small resident pool, the frontier accessors)
/// instead of an O(non-empty buckets) gather + re-score; the gather
/// ([`snapshots_into`](Self::snapshots_into)) is retained for tests and
/// diagnostics. Slots are updated in place (never shifted), which keeps hot
/// drain/refill cycles free of the O(candidates) memmoves a dense sorted
/// snapshot vector would pay.
#[derive(Debug, Clone)]
pub struct WorkloadTable {
    queues: Vec<WorkloadQueue>,
    /// Sorted list of currently non-empty buckets (the scheduler's
    /// candidate set; kept small relative to the partition).
    non_empty: Vec<BucketId>,
    /// Live snapshot slots indexed by bucket like `queues`. A slot is
    /// meaningful only while its bucket appears in `non_empty`; the
    /// `bucket` and `bucket_objects` fields are static, and the `cached`
    /// bit is brought current by `sync_residency` (eagerly, feeding the
    /// index) or `snapshots_into` (lazily, against the oracle's epoch).
    snapshot_slots: Vec<BucketSnapshot>,
    /// Residency-oracle epoch at which each slot's `cached` bit was last
    /// probed (0 = never). While the oracle's epoch matches, the stored bit
    /// is served without re-probing.
    phi_stamp: Vec<u64>,
    /// The candidate index over the non-empty slots. Invariant: holds
    /// exactly one entry per `non_empty` bucket, keyed by that bucket's
    /// current slot values.
    index: CandidateIndex,
    /// Oracle epoch the slots' `cached` bits (and the index's φ keys) were
    /// last synced to; `None` before the first [`sync_residency`](Self::sync_residency).
    /// Epochs are only comparable against a single oracle (see [`Residency`]).
    synced_epoch: Option<u64>,
    /// Total queued objects across all buckets.
    total_queued: u64,
}

impl WorkloadTable {
    /// Creates a table for a partition of `n_buckets` buckets.
    pub fn new(n_buckets: usize) -> Self {
        WorkloadTable {
            queues: vec![WorkloadQueue::new(); n_buckets],
            non_empty: Vec::new(),
            snapshot_slots: (0..n_buckets)
                .map(|i| BucketSnapshot {
                    bucket: BucketId(i as u32),
                    queue_len: 0,
                    oldest_enqueue: SimTime::ZERO,
                    cached: false,
                    bucket_objects: 0,
                })
                .collect(),
            phi_stamp: vec![0; n_buckets],
            index: CandidateIndex::new(),
            synced_epoch: None,
            total_queued: 0,
        }
    }

    /// Installs the static per-bucket catalog object counts that snapshots
    /// carry (`BucketSnapshot::bucket_objects`). Call once at setup, before
    /// any work is enqueued.
    ///
    /// # Panics
    /// Panics if work is already queued — counts are snapshot state and
    /// must not change underneath live snapshots.
    pub fn with_object_counts(mut self, mut count_of: impl FnMut(BucketId) -> u64) -> Self {
        assert!(
            self.non_empty.is_empty(),
            "object counts must be installed before enqueuing work"
        );
        for slot in self.snapshot_slots.iter_mut() {
            slot.bucket_objects = count_of(slot.bucket);
        }
        self
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a work item produced by the pre-processor, expanding it into
    /// self-contained queue entries using the parent query's object data.
    ///
    /// # Panics
    /// Panics if the item's indices do not refer to `query`'s objects or the
    /// item targets an unknown bucket.
    pub fn enqueue(&mut self, item: &WorkItem, query: &CrossMatchQuery, now: SimTime) {
        assert_eq!(item.query, query.id, "work item / query mismatch");
        let idx = item.bucket.index();
        assert!(idx < self.queues.len(), "unknown bucket {}", item.bucket);
        let was_empty = self.queues[idx].is_empty();
        for &oi in &item.object_indices {
            let obj = &query.objects[oi as usize];
            self.queues[idx].push(QueueEntry {
                query: query.id,
                object_index: oi,
                pos: obj.pos,
                radius: obj.radius,
                bbox: obj.bounding_range(),
                enqueued_at: now,
            });
            self.total_queued += 1;
        }
        let q = &self.queues[idx];
        if q.is_empty() {
            return; // the item carried no object indices
        }
        if !was_empty {
            self.index.remove(&self.snapshot_slots[idx]);
        }
        let slot = &mut self.snapshot_slots[idx];
        slot.queue_len = q.len() as u64;
        slot.oldest_enqueue = q.oldest_enqueue().expect("non-empty queue has an oldest");
        self.index.insert(&self.snapshot_slots[idx]);
        if was_empty {
            let pos = self.non_empty.partition_point(|&b| b < item.bucket);
            self.non_empty.insert(pos, item.bucket);
        }
    }

    /// The queue of one bucket.
    pub fn queue(&self, bucket: BucketId) -> &WorkloadQueue {
        &self.queues[bucket.index()]
    }

    /// Sorted bucket IDs with pending work.
    pub fn non_empty_buckets(&self) -> &[BucketId] {
        &self.non_empty
    }

    /// Total queued objects across all buckets.
    pub fn total_queued(&self) -> u64 {
        self.total_queued
    }

    /// True if no work is pending anywhere.
    pub fn is_idle(&self) -> bool {
        self.total_queued == 0
    }

    /// Drains a bucket's queue entirely into `out` (cleared first) in
    /// O(batch), keeping both the queue's and `out`'s allocations for
    /// reuse. Output is grouped by query, not arrival-ordered (see the
    /// module docs on the unordered-batch contract).
    pub fn take_all_into(&mut self, bucket: BucketId, out: &mut Vec<QueueEntry>) {
        self.queues[bucket.index()].drain_all_into(out);
        self.after_drain(bucket, out.len());
    }

    /// Drains only one query's entries from a bucket into `out` (cleared
    /// first) — the NoShare batch — in O(matched entries + co-queued
    /// queries), independent of how deep the rest of the queue is.
    pub fn take_query_into(&mut self, bucket: BucketId, query: QueryId, out: &mut Vec<QueueEntry>) {
        self.queues[bucket.index()].drain_query_into(query, out);
        self.after_drain(bucket, out.len());
    }

    /// Removes a bucket's entire queue state into `out` (cleared first) —
    /// the elastic runtime's **migration extraction**. Mechanically this is
    /// [`take_all_into`](Self::take_all_into) (the table cannot tell
    /// servicing from departure), but the entries keep their `enqueued_at`
    /// stamps so the receiving table's [`merge_bucket`](Self::merge_bucket)
    /// preserves every arrival age. Leaves the candidate index, the
    /// non-empty set, and `total_queued` consistent, exactly like a drain.
    ///
    /// ```
    /// use liferaft_htm::Vec3;
    /// use liferaft_query::{CrossMatchQuery, Predicate, QueryId, WorkItem, WorkloadTable};
    /// use liferaft_storage::{BucketId, SimTime};
    ///
    /// let q = CrossMatchQuery::from_positions(
    ///     QueryId(7), &[Vec3::from_radec_deg(10.0, 5.0)], 1e-5, 6, Predicate::All,
    /// );
    /// let item = WorkItem { query: q.id, bucket: BucketId(2), object_indices: vec![0] };
    ///
    /// let mut src = WorkloadTable::new(4);
    /// let mut dst = WorkloadTable::new(4);
    /// src.enqueue(&item, &q, SimTime::from_micros(42));
    ///
    /// // Migrate bucket 2: extraction + absorption conserve the entry and
    /// // its arrival stamp.
    /// let mut payload = Vec::new();
    /// src.extract_bucket(BucketId(2), &mut payload);
    /// dst.merge_bucket(BucketId(2), &mut payload);
    /// assert_eq!(src.total_queued(), 0);
    /// assert_eq!(dst.total_queued(), 1);
    /// let moved = dst.queue(BucketId(2)).iter().next().unwrap();
    /// assert_eq!(moved.enqueued_at, SimTime::from_micros(42));
    /// ```
    pub fn extract_bucket(&mut self, bucket: BucketId, out: &mut Vec<QueueEntry>) {
        self.take_all_into(bucket, out);
    }

    /// Merges previously [extracted](Self::extract_bucket) entries into this
    /// table's queue for `bucket` — the elastic runtime's **migration
    /// absorption**. Entries are re-enqueued at their *original*
    /// `enqueued_at` stamps (ages survive the move), the bucket's snapshot
    /// slot and the candidate index are brought current, and `entries` is
    /// drained (emptied) into the queue. A no-op for an empty `entries`.
    ///
    /// The destination bucket may already hold work (arrivals routed to the
    /// new owner before the migration lands); the merged queue is the union.
    pub fn merge_bucket(&mut self, bucket: BucketId, entries: &mut Vec<QueueEntry>) {
        if entries.is_empty() {
            return;
        }
        let idx = bucket.index();
        assert!(idx < self.queues.len(), "unknown bucket {bucket}");
        let was_empty = self.queues[idx].is_empty();
        if !was_empty {
            self.index.remove(&self.snapshot_slots[idx]);
        }
        for e in entries.drain(..) {
            self.total_queued += 1;
            self.queues[idx].push(e);
        }
        let q = &self.queues[idx];
        let slot = &mut self.snapshot_slots[idx];
        slot.queue_len = q.len() as u64;
        slot.oldest_enqueue = q.oldest_enqueue().expect("merged queue is non-empty");
        self.index.insert(&self.snapshot_slots[idx]);
        if was_empty {
            let pos = self.non_empty.partition_point(|&b| b < bucket);
            self.non_empty.insert(pos, bucket);
        }
    }

    /// The live snapshot of one bucket, or `None` if it has no queued work.
    /// The `cached` bit is not maintained here; see
    /// [`snapshots_into`](Self::snapshots_into) for decision-ready copies.
    pub fn snapshot_of(&self, bucket: BucketId) -> Option<BucketSnapshot> {
        if self.queues[bucket.index()].is_empty() {
            None
        } else {
            Some(self.snapshot_slots[bucket.index()])
        }
    }

    /// Gathers the candidate snapshots into `out` (cleared first, sorted by
    /// bucket) and refreshes only their `cached` bits against `residency` —
    /// the scheduler's per-decision view, built without touching the queues.
    ///
    /// When the oracle exposes a residency epoch (see
    /// [`Residency::residency_epoch`]), φ bits are cached in the slots and
    /// stamped with the epoch they were probed at: between cache mutations
    /// the gather performs **zero** residency probes. Oracles without an
    /// epoch are probed per candidate per call, as before, and leave the
    /// stored bits untouched.
    pub fn snapshots_into(&mut self, out: &mut Vec<BucketSnapshot>, residency: &dyn Residency) {
        out.clear();
        out.reserve(self.non_empty.len());
        match residency.residency_epoch() {
            Some(epoch) => {
                for &b in &self.non_empty {
                    let i = b.index();
                    if self.phi_stamp[i] != epoch {
                        self.snapshot_slots[i].cached = residency.is_resident(b);
                        self.phi_stamp[i] = epoch;
                    }
                    out.push(self.snapshot_slots[i]);
                }
            }
            None => {
                for &b in &self.non_empty {
                    let mut s = self.snapshot_slots[b.index()];
                    s.cached = residency.is_resident(b);
                    out.push(s);
                }
            }
        }
    }

    /// Brings every slot's `cached` (φ) bit — and the candidate index's
    /// φ-dependent keys — current with `residency`. Must be called before
    /// the pick accessors whenever the oracle may have mutated; the decision
    /// loop calls it once per decision.
    ///
    /// Cost: O(changed buckets · log n) when the oracle can enumerate its
    /// mutations since the last sync ([`Residency::for_each_mutation_since`]),
    /// O(candidates) re-probes when it cannot, and one O(buckets) full probe
    /// on the first sync (to seed the bits of still-empty buckets, whose
    /// slots feed the index when they go non-empty). Like `snapshots_into`,
    /// all syncs of one table must use the same oracle.
    pub fn sync_residency(&mut self, residency: &dyn Residency) {
        let epoch = residency.residency_epoch();
        if epoch.is_some() && epoch == self.synced_epoch {
            return; // nothing can have changed since the last sync
        }
        let replayed = match (self.synced_epoch, epoch) {
            (Some(synced), Some(e)) => {
                let slots = &mut self.snapshot_slots;
                let queues = &self.queues;
                let index = &mut self.index;
                let phi_stamp = &mut self.phi_stamp;
                residency.for_each_mutation_since(synced, &mut |bucket: BucketId, resident| {
                    let i = bucket.index();
                    if i >= slots.len() {
                        return; // outside this table
                    }
                    // Only mutated slots are stamped; unmutated ones keep an
                    // older stamp, so the diagnostic `snapshots_into` may
                    // re-probe them (getting the same bit back) — the hot
                    // path stays O(changed), not O(buckets).
                    phi_stamp[i] = e;
                    if slots[i].cached == resident {
                        return; // already current
                    }
                    if !queues[i].is_empty() {
                        index.remove(&slots[i]);
                        slots[i].cached = resident;
                        index.insert(&slots[i]);
                    } else {
                        slots[i].cached = resident;
                    }
                })
            }
            _ => false,
        };
        if !replayed {
            // First sync, an epoch-less oracle, or a truncated mutation log:
            // probe from scratch. Epoch-bearing oracles get *every* bucket
            // probed (empty ones included) so later mutation replays keep
            // all bits current; epoch-less oracles get only the candidates
            // refreshed — every pick re-syncs anyway, so a bucket's bit is
            // re-probed before it can influence a decision.
            let all = epoch.is_some();
            let n = self.snapshot_slots.len();
            for i in 0..n {
                let bucket = BucketId(i as u32);
                if !all && self.queues[i].is_empty() {
                    continue;
                }
                let resident = residency.is_resident(bucket);
                if let Some(e) = epoch {
                    self.phi_stamp[i] = e;
                }
                if self.snapshot_slots[i].cached != resident {
                    if !self.queues[i].is_empty() {
                        self.index.remove(&self.snapshot_slots[i]);
                        self.snapshot_slots[i].cached = resident;
                        self.index.insert(&self.snapshot_slots[i]);
                    } else {
                        self.snapshot_slots[i].cached = resident;
                    }
                }
            }
        }
        self.synced_epoch = epoch;
    }

    /// Number of candidates (non-empty buckets).
    pub fn candidate_count(&self) -> usize {
        self.non_empty.len()
    }

    /// Streams every candidate snapshot in ascending bucket order, straight
    /// from the maintained slots — no gather, no allocation. φ freshness
    /// requires a preceding [`sync_residency`](Self::sync_residency).
    pub fn for_each_candidate(&self, f: &mut dyn FnMut(&BucketSnapshot)) {
        for &b in &self.non_empty {
            f(&self.snapshot_slots[b.index()]);
        }
    }

    /// Number of resident candidates (bounded by the cache capacity).
    pub fn cached_candidate_count(&self) -> usize {
        self.index.cached_len()
    }

    /// Streams every resident candidate (best tie-break first) — the small
    /// set the α = 0 pick re-scores exactly. φ freshness requires a
    /// preceding [`sync_residency`](Self::sync_residency).
    pub fn for_each_cached_candidate(&self, f: &mut dyn FnMut(&BucketSnapshot)) {
        for b in self.index.iter_cached() {
            f(&self.snapshot_slots[b.index()]);
        }
    }

    /// The uncached candidate maximal under `Ut` (exact, tie-breaks
    /// included) — the only non-resident candidate an α = 0 pick can choose.
    pub fn top_candidate_uncached(&self) -> Option<BucketSnapshot> {
        self.index
            .top_uncached()
            .map(|b| self.snapshot_slots[b.index()])
    }

    /// The uncached candidate minimal under `Ut` (normalization lower
    /// bound).
    pub fn bottom_candidate_uncached(&self) -> Option<BucketSnapshot> {
        self.index
            .bottom_uncached()
            .map(|b| self.snapshot_slots[b.index()])
    }

    /// The candidate maximal under the age lens — the α = 1 pick.
    pub fn top_candidate_age(&self) -> Option<BucketSnapshot> {
        self.index.top_age().map(|b| self.snapshot_slots[b.index()])
    }

    /// The candidate minimal under the age lens.
    pub fn bottom_candidate_age(&self) -> Option<BucketSnapshot> {
        self.index
            .bottom_age()
            .map(|b| self.snapshot_slots[b.index()])
    }

    /// Fills `out` (cleared first) with up to `k` uncached candidates in
    /// descending `Ut` order — the mixed-α threshold scan's first list.
    pub fn uncached_frontier_into(&self, k: usize, out: &mut Vec<BucketSnapshot>) {
        out.clear();
        out.extend(
            self.index
                .iter_uncached_desc()
                .take(k)
                .map(|b| self.snapshot_slots[b.index()]),
        );
    }

    /// Fills `out` (cleared first) with up to `k` candidates in descending
    /// age-lens order — the mixed-α threshold scan's second list.
    pub fn age_frontier_into(&self, k: usize, out: &mut Vec<BucketSnapshot>) {
        out.clear();
        out.extend(
            self.index
                .iter_age_desc()
                .take(k)
                .map(|b| self.snapshot_slots[b.index()]),
        );
    }

    /// The first candidate at or after `bucket` in bucket order, if any —
    /// the round-robin cursor's probe (the caller wraps to `BucketId(0)`).
    pub fn candidate_at_or_after(&self, bucket: BucketId) -> Option<BucketSnapshot> {
        let pos = self.non_empty.partition_point(|&b| b < bucket);
        self.non_empty
            .get(pos)
            .map(|b| self.snapshot_slots[b.index()])
    }

    /// The oldest candidate other than `excluded` — the starvation
    /// monitor's "oldest passed-over request" in O(log n).
    pub fn oldest_candidate_excluding(&self, excluded: BucketId) -> Option<BucketSnapshot> {
        self.index
            .top_age_excluding(excluded)
            .map(|b| self.snapshot_slots[b.index()])
    }

    /// Aggregated segmented-storage accounting across every bucket queue
    /// (directories, segment slabs, free lists — not the table's snapshot
    /// slots or candidate index, whose footprint predates the segmented
    /// layout) — the number behind the ROADMAP's "segment directory adds
    /// per-bucket memory" question.
    pub fn memory_stats(&self) -> QueueMemoryStats {
        let mut total = QueueMemoryStats::default();
        for q in &self.queues {
            total.merge(&q.memory_stats());
        }
        total
    }

    /// Checks the index invariant (one entry per non-empty bucket, keyed by
    /// its live slot) by rebuilding a reference index, and every bucket
    /// queue's segment-directory invariants
    /// ([`WorkloadQueue::validate_segments`]) — O(entries), meant for tests
    /// and debug assertions, not the hot path.
    ///
    /// # Panics
    /// Panics if the maintained index or any segment directory diverged.
    pub fn validate_index(&self) {
        let mut reference = CandidateIndex::new();
        for &b in &self.non_empty {
            reference.insert(&self.snapshot_slots[b.index()]);
        }
        assert_eq!(self.index.len(), reference.len(), "index size diverged");
        let got: Vec<BucketId> = self.index.iter_cached().collect();
        let want: Vec<BucketId> = reference.iter_cached().collect();
        assert_eq!(got, want, "resident pool diverged");
        let got: Vec<BucketId> = self.index.iter_uncached_desc().collect();
        let want: Vec<BucketId> = reference.iter_uncached_desc().collect();
        assert_eq!(got, want, "uncached order diverged");
        let got: Vec<BucketId> = self.index.iter_age_desc().collect();
        let want: Vec<BucketId> = reference.iter_age_desc().collect();
        assert_eq!(got, want, "age order diverged");
        let mut total = 0u64;
        for (i, q) in self.queues.iter().enumerate() {
            q.validate_segments();
            total += q.len() as u64;
            let slot = &self.snapshot_slots[i];
            if q.is_empty() {
                assert!(
                    self.non_empty.binary_search(&BucketId(i as u32)).is_err(),
                    "empty bucket {i} listed as non-empty"
                );
            } else {
                assert_eq!(slot.queue_len, q.len() as u64, "slot len of bucket {i}");
                assert_eq!(
                    Some(slot.oldest_enqueue),
                    q.oldest_enqueue(),
                    "slot oldest of bucket {i}"
                );
            }
        }
        assert_eq!(total, self.total_queued, "total_queued diverged");
    }

    fn after_drain(&mut self, bucket: BucketId, n: usize) {
        if n == 0 {
            return; // nothing drained: membership, slot, and index unchanged
        }
        self.total_queued -= n as u64;
        self.index.remove(&self.snapshot_slots[bucket.index()]);
        let q = &self.queues[bucket.index()];
        if q.is_empty() {
            if let Ok(pos) = self.non_empty.binary_search(&bucket) {
                self.non_empty.remove(pos);
            }
        } else {
            let slot = &mut self.snapshot_slots[bucket.index()];
            slot.queue_len = q.len() as u64;
            slot.oldest_enqueue = q.oldest_enqueue().expect("non-empty queue has an oldest");
            self.index.insert(&self.snapshot_slots[bucket.index()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossmatch::Predicate;
    use liferaft_storage::SimDuration;

    const LEVEL: u8 = 6;

    fn entry_source(n: usize) -> CrossMatchQuery {
        let positions: Vec<Vec3> = (0..n)
            .map(|i| Vec3::from_radec_deg(10.0 + i as f64 * 0.01, 5.0))
            .collect();
        CrossMatchQuery::from_positions(QueryId(1), &positions, 1e-5, LEVEL, Predicate::All)
    }

    fn item(query: &CrossMatchQuery, bucket: u32) -> WorkItem {
        WorkItem {
            query: query.id,
            bucket: BucketId(bucket),
            object_indices: (0..query.len() as u32).collect(),
        }
    }

    /// `take_all_into` through a scratch vector, for test ergonomics.
    fn take_all(t: &mut WorkloadTable, bucket: BucketId) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        t.take_all_into(bucket, &mut out);
        out
    }

    /// `take_query_into` through a scratch vector, for test ergonomics.
    fn take_query(t: &mut WorkloadTable, bucket: BucketId, query: QueryId) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        t.take_query_into(bucket, query, &mut out);
        out
    }

    #[test]
    fn enqueue_tracks_counts_and_non_empty() {
        let q = entry_source(3);
        let mut t = WorkloadTable::new(8);
        assert!(t.is_idle());
        t.enqueue(&item(&q, 5), &q, SimTime::ZERO);
        assert_eq!(t.total_queued(), 3);
        assert_eq!(t.non_empty_buckets(), &[BucketId(5)]);
        assert_eq!(t.queue(BucketId(5)).len(), 3);
        assert_eq!(t.queue(BucketId(5)).distinct_queries(), 1);
    }

    #[test]
    fn non_empty_stays_sorted() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(8);
        for b in [6u32, 2, 4, 0] {
            t.enqueue(&item(&q, b), &q, SimTime::ZERO);
        }
        assert_eq!(
            t.non_empty_buckets(),
            &[BucketId(0), BucketId(2), BucketId(4), BucketId(6)]
        );
    }

    #[test]
    fn oldest_age_tracks_minimum() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(10);
        t.enqueue(&item(&q, 2), &q, t1);
        let q2 = {
            let mut q2 = entry_source(1);
            q2.id = QueryId(2);
            q2
        };
        t.enqueue(&item(&q2, 2), &q2, t0);
        let now = t1 + SimDuration::from_secs(5);
        // Oldest is t0 → age 15s.
        assert_eq!(t.queue(BucketId(2)).oldest_age_ms(now), 15_000.0);
    }

    #[test]
    fn take_all_empties_and_updates_index() {
        let q = entry_source(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        let drained = take_all(&mut t, BucketId(1));
        assert_eq!(drained.len(), 2);
        assert!(t.is_idle());
        assert!(t.non_empty_buckets().is_empty());
        assert_eq!(t.queue(BucketId(1)).oldest_enqueue(), None);
    }

    #[test]
    fn take_query_is_selective() {
        let qa = entry_source(2);
        let mut qb = entry_source(3);
        qb.id = QueryId(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&qa, 1), &qa, SimTime::ZERO);
        t.enqueue(&item(&qb, 1), &qb, SimTime::from_micros(10));
        assert_eq!(t.queue(BucketId(1)).distinct_queries(), 2);
        let drained = take_query(&mut t, BucketId(1), QueryId(1));
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|e| e.query == QueryId(1)));
        assert_eq!(t.total_queued(), 3);
        assert_eq!(t.non_empty_buckets(), &[BucketId(1)]);
        // Oldest recomputed to the remaining query's enqueue time.
        assert_eq!(
            t.queue(BucketId(1)).oldest_enqueue(),
            Some(SimTime::from_micros(10))
        );
    }

    #[test]
    fn extract_then_merge_moves_a_bucket_between_tables() {
        let qa = entry_source(2);
        let mut qb = entry_source(3);
        qb.id = QueryId(2);
        let mut src = WorkloadTable::new(8);
        let mut dst = WorkloadTable::new(8);
        src.enqueue(&item(&qa, 5), &qa, SimTime::ZERO);
        src.enqueue(&item(&qb, 5), &qb, SimTime::from_micros(10));
        let mut payload = Vec::new();
        src.extract_bucket(BucketId(5), &mut payload);
        assert_eq!(payload.len(), 5);
        assert!(src.is_idle());
        src.validate_index();
        dst.merge_bucket(BucketId(5), &mut payload);
        assert!(payload.is_empty(), "merge drains the payload");
        assert_eq!(dst.total_queued(), 5);
        assert_eq!(dst.non_empty_buckets(), &[BucketId(5)]);
        // Arrival ages survive: the oldest stamp crossed the tables intact.
        assert_eq!(dst.queue(BucketId(5)).oldest_enqueue(), Some(SimTime::ZERO));
        assert_eq!(dst.queue(BucketId(5)).distinct_queries(), 2);
        dst.validate_index();
    }

    #[test]
    fn merge_into_an_occupied_bucket_is_a_union() {
        let qa = entry_source(2);
        let mut qb = entry_source(1);
        qb.id = QueryId(2);
        let mut src = WorkloadTable::new(4);
        let mut dst = WorkloadTable::new(4);
        src.enqueue(&item(&qa, 1), &qa, SimTime::from_micros(5));
        // The destination already routed new work to the bucket it is
        // about to adopt.
        dst.enqueue(&item(&qb, 1), &qb, SimTime::from_micros(50));
        let mut payload = Vec::new();
        src.extract_bucket(BucketId(1), &mut payload);
        dst.merge_bucket(BucketId(1), &mut payload);
        assert_eq!(dst.total_queued(), 3);
        assert_eq!(dst.queue(BucketId(1)).distinct_queries(), 2);
        // The migrated (older) work now anchors the age term.
        assert_eq!(
            dst.queue(BucketId(1)).oldest_enqueue(),
            Some(SimTime::from_micros(5))
        );
        dst.validate_index();
        // Merging nothing is a no-op.
        let mut empty = Vec::new();
        dst.merge_bucket(BucketId(2), &mut empty);
        assert_eq!(dst.non_empty_buckets(), &[BucketId(1)]);
    }

    #[test]
    fn entries_are_self_contained() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 0), &q, SimTime::ZERO);
        let queue = t.queue(BucketId(0));
        let e = queue.iter().next().expect("one entry queued");
        assert_eq!(e.pos, q.objects[0].pos);
        assert_eq!(e.radius, q.objects[0].radius);
        assert_eq!(e.bbox, q.objects[0].bounding_range());
        assert_eq!(e.object_index, 0);
    }

    #[test]
    #[should_panic(expected = "unknown bucket")]
    fn enqueue_rejects_out_of_range_bucket() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(2);
        t.enqueue(&item(&q, 7), &q, SimTime::ZERO);
    }

    /// Gathers the maintained snapshots through the public decision-path
    /// API (cold residency, to match `rebuild`'s default).
    fn gather(t: &mut WorkloadTable) -> Vec<BucketSnapshot> {
        let mut out = Vec::new();
        t.snapshots_into(&mut out, &crate::snapshot::NoResidency);
        out
    }

    /// From-scratch snapshot rebuild via the public queue accessors — the
    /// reference the incrementally-maintained snapshots must match.
    fn rebuild(t: &WorkloadTable) -> Vec<BucketSnapshot> {
        t.non_empty_buckets()
            .iter()
            .map(|&b| {
                let q = t.queue(b);
                BucketSnapshot {
                    bucket: b,
                    queue_len: q.len() as u64,
                    oldest_enqueue: q.oldest_enqueue().expect("non-empty"),
                    cached: false,
                    bucket_objects: 0,
                }
            })
            .collect()
    }

    #[test]
    fn snapshots_track_enqueue_and_drains() {
        let qa = entry_source(2);
        let mut qb = entry_source(3);
        qb.id = QueryId(2);
        let mut t = WorkloadTable::new(8);
        t.enqueue(&item(&qa, 5), &qa, SimTime::ZERO);
        t.enqueue(&item(&qb, 5), &qb, SimTime::from_micros(10));
        t.enqueue(&item(&qa, 2), &qa, SimTime::from_micros(20));
        let r = rebuild(&t);
        assert_eq!(gather(&mut t), r);
        take_query(&mut t, BucketId(5), QueryId(1));
        let r = rebuild(&t);
        assert_eq!(gather(&mut t), r);
        take_all(&mut t, BucketId(5));
        let r = rebuild(&t);
        assert_eq!(gather(&mut t), r);
        assert_eq!(t.snapshot_of(BucketId(5)), None);
        take_all(&mut t, BucketId(2));
        assert!(gather(&mut t).is_empty());
    }

    #[test]
    fn snapshots_into_refreshes_residency_only() {
        use crate::snapshot::Residency;
        struct Always;
        impl Residency for Always {
            fn is_resident(&self, _b: BucketId) -> bool {
                true
            }
        }
        let q = entry_source(2);
        let mut t = WorkloadTable::new(4).with_object_counts(|b| 100 + b.0 as u64);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        let mut out = vec![BucketSnapshot {
            bucket: BucketId(9),
            queue_len: 0,
            oldest_enqueue: SimTime::ZERO,
            cached: false,
            bucket_objects: 0,
        }];
        t.snapshots_into(&mut out, &Always);
        assert_eq!(out.len(), 1, "scratch must be cleared first");
        assert_eq!(out[0].bucket, BucketId(1));
        assert_eq!(out[0].queue_len, 2);
        assert!(out[0].cached);
        assert_eq!(out[0].bucket_objects, 101);
        // The maintained slot keeps its cold default.
        assert!(!t.snapshot_of(BucketId(1)).expect("non-empty").cached);
    }

    #[test]
    fn epoch_stamped_phi_skips_probes_between_mutations() {
        use crate::snapshot::Residency;
        use std::cell::Cell;
        /// An epoch-bearing oracle that counts `is_resident` probes.
        struct Counting {
            epoch: Cell<u64>,
            resident: Cell<bool>,
            probes: Cell<u64>,
        }
        impl Residency for Counting {
            fn is_resident(&self, _b: BucketId) -> bool {
                self.probes.set(self.probes.get() + 1);
                self.resident.get()
            }
            fn residency_epoch(&self) -> Option<u64> {
                Some(self.epoch.get())
            }
        }
        let oracle = Counting {
            epoch: Cell::new(7),
            resident: Cell::new(false),
            probes: Cell::new(0),
        };
        let qa = entry_source(2);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&qa, 1), &qa, SimTime::ZERO);
        t.enqueue(&item(&qa, 3), &qa, SimTime::ZERO);
        let mut out = Vec::new();
        // First gather at epoch 7: one probe per candidate, bits stamped.
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 2);
        assert!(out.iter().all(|s| !s.cached));
        // Same epoch: zero probes, stored bits served.
        t.snapshots_into(&mut out, &oracle);
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 2);
        // Epoch bump (resident set changed): every candidate re-probed once.
        oracle.epoch.set(8);
        oracle.resident.set(true);
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 4);
        assert!(
            out.iter().all(|s| s.cached),
            "refreshed bits must be served"
        );
        t.snapshots_into(&mut out, &oracle);
        assert_eq!(oracle.probes.get(), 4);
    }

    fn raw_entry(query: u64, object_index: u32, at_us: u64) -> QueueEntry {
        let q = entry_source(1);
        QueueEntry {
            query: QueryId(query),
            object_index,
            pos: q.objects[0].pos,
            radius: q.objects[0].radius,
            bbox: q.objects[0].bounding_range(),
            enqueued_at: SimTime::from_micros(at_us),
        }
    }

    #[test]
    fn drain_query_into_partitions_and_repairs_oldest() {
        let mut wq = WorkloadQueue::new();
        for (i, q) in [1u64, 2, 1, 1, 2].iter().enumerate() {
            wq.push(raw_entry(*q, i as u32, i as u64));
        }
        wq.validate_segments();
        let mut out = Vec::new();
        wq.drain_query_into(QueryId(1), &mut out);
        wq.validate_segments();
        // Drained ∪ kept is an exact partition by query (order is not part
        // of the contract — batches are consumed as unordered sets).
        let mut drained: Vec<u32> = out.iter().map(|e| e.object_index).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 2, 3]);
        let mut kept: Vec<u32> = wq.iter().map(|e| e.object_index).collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![1, 4]);
        assert_eq!(wq.oldest_enqueue(), Some(SimTime::from_micros(1)));
        // Draining an absent query leaves state (and `oldest`) untouched.
        wq.drain_query_into(QueryId(99), &mut out);
        assert!(out.is_empty());
        assert_eq!(wq.len(), 2);
        assert_eq!(wq.oldest_enqueue(), Some(SimTime::from_micros(1)));
    }

    #[test]
    fn multi_segment_chains_preserve_arrival_order_within_a_query() {
        // 2.5 segments' worth of one query, interleaved with another.
        let n = SEGMENT_CAPACITY as u32 * 2 + SEGMENT_CAPACITY as u32 / 2;
        let mut wq = WorkloadQueue::new();
        for i in 0..n {
            wq.push(raw_entry(1, i, 100 + i as u64));
            if i % 3 == 0 {
                wq.push(raw_entry(2, i, i as u64));
            }
        }
        wq.validate_segments();
        assert_eq!(wq.distinct_queries(), 2);
        assert_eq!(wq.pending_of(QueryId(1)), n as usize);
        let mut out = Vec::new();
        wq.drain_query_into(QueryId(1), &mut out);
        wq.validate_segments();
        // Within one query's run, segments chain in arrival order.
        let got: Vec<u32> = out.iter().map(|e| e.object_index).collect();
        let want: Vec<u32> = (0..n).collect();
        assert_eq!(got, want);
        // The other query's run — and the queue-level oldest — survive.
        assert_eq!(wq.oldest_enqueue(), Some(SimTime::ZERO));
        assert_eq!(wq.distinct_queries(), 1);
    }

    #[test]
    fn freed_segments_are_recycled() {
        let mut wq = WorkloadQueue::new();
        let mut out = Vec::new();
        for round in 0..5u64 {
            for i in 0..(SEGMENT_CAPACITY as u32 * 3) {
                wq.push(raw_entry(round, i, i as u64));
            }
            wq.drain_all_into(&mut out);
            wq.validate_segments();
        }
        // Steady state: the slab never grows beyond one round's worth.
        assert_eq!(wq.memory_stats().segments, 3);
        assert_eq!(wq.memory_stats().free_segments, 3);
        assert_eq!(wq.len(), 0);
        assert_eq!(wq.oldest_enqueue(), None);
    }

    #[test]
    fn memory_stats_account_for_directory_and_segments() {
        let mut wq = WorkloadQueue::new();
        for q in 0..4u64 {
            for i in 0..3u32 {
                wq.push(raw_entry(q, i, q * 10 + i as u64));
            }
        }
        let m = wq.memory_stats();
        assert_eq!(m.queued_entries, 12);
        assert_eq!(m.directory_runs, 4);
        assert_eq!(m.segments, 4, "one segment per short run");
        assert_eq!(m.free_segments, 0);
        assert_eq!(m.entry_bytes, 12 * std::mem::size_of::<QueueEntry>() as u64);
        assert!(m.directory_bytes >= 4 * std::mem::size_of::<QueryRun>() as u64);
        // Four segments allocate four full buffers; 12 live entries.
        assert!(m.segment_bytes >= m.entry_bytes);
        assert_eq!(m.total_bytes(), m.directory_bytes + m.segment_bytes);
        assert_eq!(m.overhead_bytes(), m.total_bytes() - m.entry_bytes);
        let mut table_total = QueueMemoryStats::default();
        table_total.merge(&m);
        table_total.merge(&WorkloadQueue::new().memory_stats());
        assert_eq!(table_total.queued_entries, 12);
    }

    #[test]
    fn table_memory_stats_aggregate_buckets() {
        let q = entry_source(3);
        let mut t = WorkloadTable::new(8);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        t.enqueue(&item(&q, 5), &q, SimTime::ZERO);
        let m = t.memory_stats();
        assert_eq!(m.queued_entries, 6);
        assert_eq!(m.directory_runs, 2);
        assert!(m.total_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "before enqueuing work")]
    fn object_counts_after_enqueue_rejected() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        let _ = t.with_object_counts(|_| 1);
    }

    #[test]
    fn index_tracks_enqueue_and_drains() {
        let qa = entry_source(2);
        let mut qb = entry_source(5);
        qb.id = QueryId(2);
        let mut t = WorkloadTable::new(8);
        assert_eq!(t.candidate_count(), 0);
        assert_eq!(t.top_candidate_uncached(), None);
        t.enqueue(&item(&qa, 5), &qa, SimTime::from_micros(100));
        t.enqueue(&item(&qb, 2), &qb, SimTime::from_micros(50));
        t.validate_index();
        // Longer queue wins the uncached order; older enqueue the age lens.
        assert_eq!(
            t.top_candidate_uncached().unwrap().bucket,
            BucketId(2),
            "5 queued beats 2"
        );
        assert_eq!(t.cached_candidate_count(), 0);
        assert_eq!(t.top_candidate_age().unwrap().bucket, BucketId(2));
        assert_eq!(t.bottom_candidate_uncached().unwrap().bucket, BucketId(5));
        assert_eq!(t.bottom_candidate_age().unwrap().bucket, BucketId(5));
        assert_eq!(
            t.oldest_candidate_excluding(BucketId(2)).unwrap().bucket,
            BucketId(5)
        );
        let mut frontier = Vec::new();
        t.uncached_frontier_into(10, &mut frontier);
        assert_eq!(
            frontier.iter().map(|s| s.bucket).collect::<Vec<_>>(),
            vec![BucketId(2), BucketId(5)]
        );
        t.age_frontier_into(1, &mut frontier);
        assert_eq!(frontier.len(), 1);
        take_all(&mut t, BucketId(2));
        t.validate_index();
        assert_eq!(t.top_candidate_uncached().unwrap().bucket, BucketId(5));
        assert_eq!(t.oldest_candidate_excluding(BucketId(5)), None);
        take_query(&mut t, BucketId(5), QueryId(1));
        t.validate_index();
        assert_eq!(t.candidate_count(), 0);
    }

    #[test]
    fn candidate_at_or_after_is_the_rr_probe() {
        let q = entry_source(1);
        let mut t = WorkloadTable::new(16);
        for b in [2u32, 5, 9] {
            t.enqueue(&item(&q, b), &q, SimTime::ZERO);
        }
        assert_eq!(
            t.candidate_at_or_after(BucketId(0)).unwrap().bucket,
            BucketId(2)
        );
        assert_eq!(
            t.candidate_at_or_after(BucketId(2)).unwrap().bucket,
            BucketId(2)
        );
        assert_eq!(
            t.candidate_at_or_after(BucketId(3)).unwrap().bucket,
            BucketId(5)
        );
        assert_eq!(t.candidate_at_or_after(BucketId(10)), None);
    }

    /// A scripted oracle whose epoch and resident set the test controls,
    /// with a replayable mutation log.
    struct ScriptedOracle {
        epoch: u64,
        resident: std::collections::HashSet<u32>,
        log: Vec<(u64, u32, bool)>,
        log_complete_from: u64,
        probes: std::cell::Cell<u64>,
    }

    impl ScriptedOracle {
        fn new() -> Self {
            ScriptedOracle {
                epoch: 1,
                resident: Default::default(),
                log: Vec::new(),
                log_complete_from: 1,
                probes: std::cell::Cell::new(0),
            }
        }
        fn flip(&mut self, bucket: u32, resident: bool) {
            self.epoch += 1;
            if resident {
                self.resident.insert(bucket);
            } else {
                self.resident.remove(&bucket);
            }
            self.log.push((self.epoch, bucket, resident));
        }
    }

    impl Residency for ScriptedOracle {
        fn is_resident(&self, b: BucketId) -> bool {
            self.probes.set(self.probes.get() + 1);
            self.resident.contains(&b.0)
        }
        fn residency_epoch(&self) -> Option<u64> {
            Some(self.epoch)
        }
        fn for_each_mutation_since(
            &self,
            epoch: u64,
            apply: &mut dyn FnMut(BucketId, bool),
        ) -> bool {
            if epoch < self.log_complete_from {
                return false;
            }
            for &(e, b, r) in &self.log {
                if e > epoch {
                    apply(BucketId(b), r);
                }
            }
            true
        }
    }

    #[test]
    fn sync_residency_replays_mutations_into_the_index() {
        let q = entry_source(3);
        let mut t = WorkloadTable::new(4);
        t.enqueue(&item(&q, 1), &q, SimTime::ZERO);
        t.enqueue(&item(&q, 3), &q, SimTime::from_micros(10));
        let mut oracle = ScriptedOracle::new();
        oracle.flip(3, true);
        // First sync: full probe (all 4 buckets), bits and index seeded.
        t.sync_residency(&oracle);
        assert_eq!(oracle.probes.get(), 4);
        assert!(t.snapshot_of(BucketId(3)).unwrap().cached);
        assert!(!t.snapshot_of(BucketId(1)).unwrap().cached);
        // The resident candidate moved into the cached pool.
        assert_eq!(t.cached_candidate_count(), 1);
        let mut cached = Vec::new();
        t.for_each_cached_candidate(&mut |s| cached.push(s.bucket));
        assert_eq!(cached, vec![BucketId(3)]);
        assert_eq!(t.top_candidate_uncached().unwrap().bucket, BucketId(1));
        t.validate_index();
        // Same epoch: a no-op.
        t.sync_residency(&oracle);
        assert_eq!(oracle.probes.get(), 4);
        // Mutations replay without probes — including for the currently
        // empty bucket 0, whose bit must be current when it fills later.
        oracle.flip(3, false);
        oracle.flip(1, true);
        oracle.flip(0, true);
        t.sync_residency(&oracle);
        assert_eq!(oracle.probes.get(), 4, "replay must not probe");
        cached.clear();
        t.for_each_cached_candidate(&mut |s| cached.push(s.bucket));
        assert_eq!(cached, vec![BucketId(1)]);
        assert_eq!(t.top_candidate_uncached().unwrap().bucket, BucketId(3));
        t.validate_index();
        t.enqueue(&item(&q, 0), &q, SimTime::from_micros(20));
        assert!(
            t.snapshot_of(BucketId(0)).unwrap().cached,
            "empty buckets' bits must stay current across syncs"
        );
        t.validate_index();
        // A truncated log falls back to a full re-probe (empty buckets too,
        // so their bits cannot go permanently stale).
        oracle.flip(0, false);
        oracle.log.clear();
        oracle.log_complete_from = oracle.epoch;
        t.sync_residency(&oracle);
        assert_eq!(oracle.probes.get(), 8, "fallback probes every bucket");
        assert!(!t.snapshot_of(BucketId(0)).unwrap().cached);
        t.validate_index();
    }
}
