//! Per-bucket candidate snapshots and cache-residency probing.
//!
//! [`BucketSnapshot`] is the unit the scheduler reasons about: one
//! non-empty workload queue, reduced to the fields Eq. 1 and Eq. 2 consume.
//! It lives here (rather than in the scheduler crate) so the Workload
//! Manager can maintain snapshots *incrementally* as queues change — the
//! paper's "state information such as a mapping of pending queries to
//! workload queues and the age of the oldest query in each queue"
//! (Section 4) — instead of rebuilding them from the queues on every
//! scheduling decision.
//!
//! Only the `cached` bit (φ(i)) is owned by another component, the bucket
//! cache; the [`Residency`] trait is how the table refreshes it at decision
//! time without depending on a concrete cache type.

use liferaft_storage::{BucketCache, BucketId, SimTime};

/// A per-decision snapshot of one candidate bucket (a non-empty workload
/// queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketSnapshot {
    /// The bucket.
    pub bucket: BucketId,
    /// Objects pending in its workload queue (`Σ_j |W_j^i|`).
    pub queue_len: u64,
    /// Enqueue time of the oldest pending request (the age reference).
    pub oldest_enqueue: SimTime,
    /// Whether the bucket is resident in the bucket cache (φ(i) = 0).
    pub cached: bool,
    /// Catalog objects stored in the bucket (for hybrid-ratio context).
    pub bucket_objects: u64,
}

impl BucketSnapshot {
    /// Age of the oldest request in milliseconds at `now` — the paper's `A(i)`.
    pub fn age_ms(&self, now: SimTime) -> f64 {
        now.since(self.oldest_enqueue).as_millis_f64()
    }
}

/// Answers "is this bucket memory-resident?" — the φ(i) term of Eq. 1.
///
/// The probe must be read-only: the scheduler consults it for *every*
/// candidate on every decision, which must not perturb cache state.
pub trait Residency {
    /// True if `bucket` is resident (φ(i) = 0).
    fn is_resident(&self, bucket: BucketId) -> bool;

    /// A stamp that changes whenever the resident set may have changed, or
    /// `None` if the oracle cannot promise stability between calls.
    ///
    /// When `Some(e)` is returned, a φ bit probed while the epoch was `e`
    /// stays valid for as long as the oracle keeps returning `e` — which
    /// lets the workload table cache φ bits in its snapshot slots and skip
    /// the per-candidate residency probe entirely between cache mutations.
    /// Stamps are only comparable against a single oracle: re-pointing a
    /// table at a different oracle requires fresh slots (epochs from
    /// different oracles may collide).
    fn residency_epoch(&self) -> Option<u64> {
        None
    }

    /// Enumerates, oldest first, every residency change that happened after
    /// `epoch` by calling `apply(bucket, now_resident)`, and returns `true`;
    /// or returns `false` (without calling `apply`) if the oracle cannot
    /// enumerate that far back — the caller must then re-probe from scratch.
    ///
    /// Only meaningful for epoch-bearing oracles: `epoch` must be a value a
    /// previous [`residency_epoch`](Self::residency_epoch) call returned.
    /// This is what lets the workload table's candidate index repair exactly
    /// the φ bits an eviction or insertion touched, instead of re-probing
    /// every candidate.
    fn for_each_mutation_since(&self, _epoch: u64, _apply: &mut dyn FnMut(BucketId, bool)) -> bool {
        false
    }
}

impl Residency for BucketCache {
    fn is_resident(&self, bucket: BucketId) -> bool {
        self.contains(bucket)
    }

    fn residency_epoch(&self) -> Option<u64> {
        Some(self.residency_epoch())
    }

    fn for_each_mutation_since(&self, epoch: u64, apply: &mut dyn FnMut(BucketId, bool)) -> bool {
        match self.mutations_since(epoch) {
            Some(muts) => {
                for m in muts {
                    apply(m.bucket, m.resident);
                }
                true
            }
            None => false, // the bounded log no longer reaches back to `epoch`
        }
    }
}

/// A residency oracle that reports nothing resident — cold-cache tests and
/// tools that score queues without a cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoResidency;

impl Residency for NoResidency {
    fn is_resident(&self, _bucket: BucketId) -> bool {
        false
    }

    fn residency_epoch(&self) -> Option<u64> {
        // The (empty) resident set never changes.
        Some(1)
    }

    fn for_each_mutation_since(&self, _epoch: u64, _apply: &mut dyn FnMut(BucketId, bool)) -> bool {
        true // nothing ever mutates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_storage::SimDuration;

    #[test]
    fn snapshot_age() {
        let s = BucketSnapshot {
            bucket: BucketId(1),
            queue_len: 5,
            oldest_enqueue: SimTime::ZERO,
            cached: false,
            bucket_objects: 100,
        };
        let now = SimTime::ZERO + SimDuration::from_millis(2500);
        assert_eq!(s.age_ms(now), 2500.0);
    }

    #[test]
    fn bucket_cache_is_a_residency_oracle() {
        let mut cache = BucketCache::new(2);
        cache.insert(BucketId(3));
        let r: &dyn Residency = &cache;
        assert!(r.is_resident(BucketId(3)));
        assert!(!r.is_resident(BucketId(4)));
        let e = r.residency_epoch().expect("caches expose epochs");
        cache.insert(BucketId(4));
        assert_ne!(Residency::residency_epoch(&cache), Some(e));
    }

    #[test]
    fn no_residency_is_always_cold() {
        assert!(!NoResidency.is_resident(BucketId(0)));
        assert_eq!(NoResidency.residency_epoch(), Some(1));
    }
}
