//! Per-query lifecycle tracking.
//!
//! "A query cannot finish until every object is cross-matched" (Section 3.3)
//! — response time is therefore governed by a query's *last* scheduled
//! bucket, the "last mile bottleneck" that motivates the aging term. The
//! tracker counts outstanding (object × bucket) assignments per query and
//! reports completion times.

use std::collections::{HashMap, VecDeque};

use liferaft_storage::{SimDuration, SimTime};

use crate::crossmatch::QueryId;

/// Outcome of one finished query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The query.
    pub query: QueryId,
    /// When it arrived.
    pub arrival: SimTime,
    /// When its last assignment finished.
    pub completion: SimTime,
    /// Total (object × bucket) assignments it expanded to.
    pub assignments: u64,
}

impl QueryOutcome {
    /// Response time: completion − arrival.
    pub fn response_time(&self) -> SimDuration {
        self.completion.since(self.arrival)
    }
}

#[derive(Debug, Clone)]
struct Pending {
    arrival: SimTime,
    remaining: u64,
    assignments: u64,
}

/// Tracks outstanding work per query and records completions.
#[derive(Debug, Clone, Default)]
pub struct QueryTracker {
    pending: HashMap<QueryId, Pending>,
    completed: Vec<QueryOutcome>,
    /// In-flight queries ordered by (arrival, id) — the NoShare cursor.
    ///
    /// Entries *behind* the front may be stale (already completed); the
    /// front is always a live pending query, restored eagerly on every
    /// completion, so `oldest_pending` is O(1) instead of a scan over all
    /// in-flight queries. Stale entries are dropped exactly once when they
    /// reach the front, so maintenance is amortized O(1) per completion.
    arrival_order: VecDeque<(SimTime, QueryId)>,
}

impl QueryTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        QueryTracker::default()
    }

    /// Registers an arriving query expanding to `assignments` (object ×
    /// bucket) pairs. Queries with zero assignments complete immediately.
    ///
    /// # Panics
    /// Panics on duplicate registration.
    pub fn register(&mut self, query: QueryId, assignments: u64, arrival: SimTime) {
        if assignments == 0 {
            self.completed.push(QueryOutcome {
                query,
                arrival,
                completion: arrival,
                assignments: 0,
            });
            return;
        }
        let prev = self.pending.insert(
            query,
            Pending {
                arrival,
                remaining: assignments,
                assignments,
            },
        );
        assert!(prev.is_none(), "query {query} registered twice");
        // Trace arrivals are (near-)monotone, so this is almost always a
        // push; the partition-point insert handles the rare out-of-order
        // registration (e.g. arrival ties registered out of id order).
        let key = (arrival, query);
        match self.arrival_order.back() {
            Some(&back) if back > key => {
                let pos = self.arrival_order.partition_point(|&e| e < key);
                self.arrival_order.insert(pos, key);
            }
            _ => self.arrival_order.push_back(key),
        }
    }

    /// Records that `n` assignments of `query` finished at `now`; returns
    /// the outcome if this completed the query.
    ///
    /// # Panics
    /// Panics if the query is unknown or over-completed — either means the
    /// executor and the workload table disagree about outstanding work.
    pub fn complete_assignments(
        &mut self,
        query: QueryId,
        n: u64,
        now: SimTime,
    ) -> Option<QueryOutcome> {
        let p = self
            .pending
            .get_mut(&query)
            .unwrap_or_else(|| panic!("completion for unknown query {query}"));
        assert!(
            p.remaining >= n,
            "query {query} over-completed: {} remaining, {n} reported",
            p.remaining
        );
        p.remaining -= n;
        if p.remaining == 0 {
            let p = self.pending.remove(&query).expect("present above");
            // Restore the front-is-pending invariant: stale entries that
            // surfaced at the front are dropped here, once each.
            while let Some(&(_, q)) = self.arrival_order.front() {
                if self.pending.contains_key(&q) {
                    break;
                }
                self.arrival_order.pop_front();
            }
            let outcome = QueryOutcome {
                query,
                arrival: p.arrival,
                completion: now,
                assignments: p.assignments,
            };
            self.completed.push(outcome);
            Some(outcome)
        } else {
            None
        }
    }

    /// Hands `n` outstanding assignments of `query` to another tracker (the
    /// elastic runtime's bucket migration): the departing work stops being
    /// this tracker's responsibility, so both `remaining` and the recorded
    /// `assignments` shrink by `n`.
    ///
    /// If nothing of the query remains here, the local record closes: with
    /// locally serviced work an outcome is emitted at `now` covering exactly
    /// the assignments serviced *here* (so per-shard reports stay a complete
    /// account of local work), and with none the record is dropped silently
    /// — the receiving tracker owns the whole story via
    /// [`transfer_in`](Self::transfer_in).
    ///
    /// # Panics
    /// Panics if the query is unknown or has fewer than `n` outstanding
    /// assignments.
    pub fn transfer_out(&mut self, query: QueryId, n: u64, now: SimTime) -> Option<QueryOutcome> {
        let p = self
            .pending
            .get_mut(&query)
            .unwrap_or_else(|| panic!("transfer out of unknown query {query}"));
        assert!(
            p.remaining >= n,
            "query {query} over-transferred: {} remaining, {n} leaving",
            p.remaining
        );
        p.remaining -= n;
        p.assignments -= n;
        if p.remaining > 0 {
            return None;
        }
        let p = self.pending.remove(&query).expect("present above");
        while let Some(&(_, q)) = self.arrival_order.front() {
            if self.pending.contains_key(&q) {
                break;
            }
            self.arrival_order.pop_front();
        }
        if p.assignments == 0 {
            return None; // nothing was serviced here: no local outcome
        }
        let outcome = QueryOutcome {
            query,
            arrival: p.arrival,
            completion: now,
            assignments: p.assignments,
        };
        self.completed.push(outcome);
        Some(outcome)
    }

    /// Accepts `n` assignments handed over by another tracker's
    /// [`transfer_out`](Self::transfer_out), at the query's *original*
    /// arrival (ages survive the move). Tops up an in-flight record, or
    /// opens one — possibly re-opening a query this tracker already
    /// completed locally, which then yields a second local outcome; the
    /// global aggregation counts assignments, not outcomes, so the query
    /// still completes exactly once globally.
    ///
    /// # Panics
    /// Panics on `n == 0` (a transfer must carry work) or if an in-flight
    /// record disagrees about the arrival instant.
    pub fn transfer_in(&mut self, query: QueryId, n: u64, arrival: SimTime) {
        assert!(n > 0, "empty transfer into {query}");
        if let Some(p) = self.pending.get_mut(&query) {
            assert_eq!(p.arrival, arrival, "query {query} arrival diverged");
            p.remaining += n;
            p.assignments += n;
            return;
        }
        self.register(query, n, arrival);
    }

    /// Number of queries still in flight.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The oldest in-flight query (by arrival, ties by id), if any —
    /// NoShare's cursor. O(1): the front of the arrival-ordered index.
    pub fn oldest_pending(&self) -> Option<(QueryId, SimTime)> {
        self.arrival_order.front().map(|&(t, q)| (q, t))
    }

    /// Arrival time of an in-flight query.
    pub fn arrival_of(&self, query: QueryId) -> Option<SimTime> {
        self.pending.get(&query).map(|p| p.arrival)
    }

    /// Outstanding assignments of an in-flight query.
    pub fn remaining_of(&self, query: QueryId) -> Option<u64> {
        self.pending.get(&query).map(|p| p.remaining)
    }

    /// All completed queries in completion order.
    pub fn completed(&self) -> &[QueryOutcome] {
        &self.completed
    }

    /// True when nothing is in flight.
    pub fn all_complete(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    #[test]
    fn lifecycle_completes_at_last_assignment() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(1), 3, t(0));
        assert_eq!(tr.pending_count(), 1);
        assert!(tr.complete_assignments(QueryId(1), 1, t(5)).is_none());
        assert!(tr.complete_assignments(QueryId(1), 1, t(6)).is_none());
        let out = tr.complete_assignments(QueryId(1), 1, t(9)).unwrap();
        assert_eq!(out.response_time().as_secs_f64(), 9.0);
        assert_eq!(out.assignments, 3);
        assert!(tr.all_complete());
        assert_eq!(tr.completed().len(), 1);
    }

    #[test]
    fn batch_completion_in_one_call() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(2), 5, t(1));
        let out = tr.complete_assignments(QueryId(2), 5, t(4)).unwrap();
        assert_eq!(out.response_time().as_secs_f64(), 3.0);
    }

    #[test]
    fn zero_assignment_query_completes_instantly() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(3), 0, t(2));
        assert!(tr.all_complete());
        assert_eq!(tr.completed()[0].response_time(), SimDuration::ZERO);
    }

    #[test]
    fn oldest_pending_is_fifo_cursor() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(10), 1, t(5));
        tr.register(QueryId(11), 1, t(3));
        tr.register(QueryId(12), 1, t(7));
        assert_eq!(tr.oldest_pending(), Some((QueryId(11), t(3))));
        tr.complete_assignments(QueryId(11), 1, t(8));
        assert_eq!(tr.oldest_pending(), Some((QueryId(10), t(5))));
    }

    #[test]
    fn oldest_pending_breaks_arrival_ties_by_id() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(2), 1, t(1));
        tr.register(QueryId(1), 1, t(1));
        assert_eq!(tr.oldest_pending(), Some((QueryId(1), t(1))));
    }

    #[test]
    fn introspection_accessors() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(1), 4, t(2));
        assert_eq!(tr.arrival_of(QueryId(1)), Some(t(2)));
        assert_eq!(tr.remaining_of(QueryId(1)), Some(4));
        tr.complete_assignments(QueryId(1), 3, t(3));
        assert_eq!(tr.remaining_of(QueryId(1)), Some(1));
        assert_eq!(tr.arrival_of(QueryId(99)), None);
    }

    #[test]
    fn index_survives_out_of_order_registration_and_tombstones() {
        let mut tr = QueryTracker::new();
        // Monotone arrivals, then two out-of-order registrations.
        tr.register(QueryId(5), 1, t(10));
        tr.register(QueryId(6), 1, t(20));
        tr.register(QueryId(2), 1, t(5)); // earlier than the front
        tr.register(QueryId(4), 1, t(10)); // tie with 5, smaller id
        assert_eq!(tr.oldest_pending(), Some((QueryId(2), t(5))));
        // Complete mid-deque queries (tombstones), then the front.
        tr.complete_assignments(QueryId(4), 1, t(30));
        tr.complete_assignments(QueryId(5), 1, t(31));
        assert_eq!(tr.oldest_pending(), Some((QueryId(2), t(5))));
        tr.complete_assignments(QueryId(2), 1, t(32));
        // Tombstones of 4 and 5 must be skipped in one hop.
        assert_eq!(tr.oldest_pending(), Some((QueryId(6), t(20))));
        tr.complete_assignments(QueryId(6), 1, t(33));
        assert_eq!(tr.oldest_pending(), None);
        assert!(tr.all_complete());
    }

    #[test]
    fn transfer_out_partial_keeps_query_in_flight() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(1), 5, t(0));
        assert!(tr.transfer_out(QueryId(1), 2, t(10)).is_none());
        assert_eq!(tr.remaining_of(QueryId(1)), Some(3));
        // The eventual outcome only covers what stayed (and was serviced).
        let out = tr.complete_assignments(QueryId(1), 3, t(20)).unwrap();
        assert_eq!(out.assignments, 3);
        assert_eq!(out.arrival, t(0));
    }

    #[test]
    fn transfer_out_of_everything_after_partial_service_closes_locally() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(1), 5, t(0));
        tr.complete_assignments(QueryId(1), 2, t(4));
        // The remaining 3 leave: the local record closes over the 2 serviced.
        let out = tr.transfer_out(QueryId(1), 3, t(10)).unwrap();
        assert_eq!(out.assignments, 2);
        assert_eq!(out.completion, t(10));
        assert!(tr.all_complete());
    }

    #[test]
    fn transfer_out_of_an_untouched_query_leaves_no_trace() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(1), 4, t(0));
        assert!(tr.transfer_out(QueryId(1), 4, t(5)).is_none());
        assert!(tr.all_complete());
        assert!(tr.completed().is_empty());
        assert_eq!(tr.oldest_pending(), None);
    }

    #[test]
    fn transfer_in_tops_up_or_opens_at_original_arrival() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(7), 2, t(9));
        tr.transfer_in(QueryId(7), 3, t(9));
        assert_eq!(tr.remaining_of(QueryId(7)), Some(5));
        // A fresh query opens with its original (possibly older) arrival.
        tr.transfer_in(QueryId(3), 1, t(1));
        assert_eq!(tr.oldest_pending(), Some((QueryId(3), t(1))));
        let out = tr.complete_assignments(QueryId(3), 1, t(12)).unwrap();
        assert_eq!(out.arrival, t(1));
        assert_eq!(out.assignments, 1);
    }

    #[test]
    fn transfer_in_can_reopen_a_locally_completed_query() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(1), 2, t(0));
        tr.complete_assignments(QueryId(1), 2, t(3));
        assert_eq!(tr.completed().len(), 1);
        // Migration returns work of the same query: a second local record.
        tr.transfer_in(QueryId(1), 4, t(0));
        assert!(!tr.all_complete());
        let out = tr.complete_assignments(QueryId(1), 4, t(8)).unwrap();
        assert_eq!(out.assignments, 4);
        assert_eq!(tr.completed().len(), 2);
    }

    #[test]
    #[should_panic(expected = "over-transferred")]
    fn transfer_out_beyond_remaining_panics() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(1), 2, t(0));
        tr.transfer_out(QueryId(1), 3, t(1));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(1), 1, t(0));
        tr.register(QueryId(1), 1, t(1));
    }

    #[test]
    #[should_panic(expected = "over-completed")]
    fn over_completion_panics() {
        let mut tr = QueryTracker::new();
        tr.register(QueryId(1), 1, t(0));
        tr.complete_assignments(QueryId(1), 2, t(1));
    }

    #[test]
    #[should_panic(expected = "unknown query")]
    fn unknown_completion_panics() {
        let mut tr = QueryTracker::new();
        tr.complete_assignments(QueryId(1), 1, t(1));
    }
}
