//! The query pre-processor: objects → per-bucket sub-queries.

use liferaft_catalog::Partition;
use liferaft_storage::BucketId;

use crate::crossmatch::CrossMatchQuery;
use crate::crossmatch::QueryId;

/// A sub-query: the slice of one query's objects that overlaps one bucket.
///
/// `W_i^j` in the paper's notation — "the set of objects from Qi that
/// overlap bucket Bj (i.e. the object and bucket's HTM ID ranges overlap)".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkItem {
    /// The parent query.
    pub query: QueryId,
    /// The bucket this sub-query joins against.
    pub bucket: BucketId,
    /// Indices into the parent query's `objects` vector.
    pub object_indices: Vec<u32>,
}

impl WorkItem {
    /// Number of objects in this sub-query.
    pub fn len(&self) -> usize {
        self.object_indices.len()
    }

    /// True if the item carries no objects (never produced by preprocessing).
    pub fn is_empty(&self) -> bool {
        self.object_indices.is_empty()
    }
}

/// Splits queries into per-bucket work items against a partition.
#[derive(Debug, Clone)]
pub struct QueryPreProcessor<'a> {
    partition: &'a Partition,
}

impl<'a> QueryPreProcessor<'a> {
    /// Creates a pre-processor for the given bucket layout.
    pub fn new(partition: &'a Partition) -> Self {
        QueryPreProcessor { partition }
    }

    /// Decomposes a query into work items, one per overlapped bucket,
    /// ordered by bucket ID.
    ///
    /// An object whose bounding box spans `k` buckets contributes to `k`
    /// work items; each bucket is joined independently and no duplicate
    /// elimination is needed because every catalog point lives in exactly
    /// one bucket (Section 3.1).
    pub fn preprocess(&self, query: &CrossMatchQuery) -> Vec<WorkItem> {
        // Buckets are dense indices; collect per-bucket index lists in a map
        // keyed by bucket. Queries touch few distinct buckets relative to the
        // partition size, so a BTreeMap keeps output ordered without a full
        // bucket-count allocation per query.
        let mut per_bucket: std::collections::BTreeMap<BucketId, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (idx, obj) in query.objects.iter().enumerate() {
            let buckets = self.partition.buckets_overlapping_set(&obj.bbox);
            for b in buckets {
                per_bucket.entry(b).or_default().push(idx as u32);
            }
        }
        per_bucket
            .into_iter()
            .map(|(bucket, object_indices)| WorkItem {
                query: query.id,
                bucket,
                object_indices,
            })
            .collect()
    }

    /// Total number of (object, bucket) assignments a query expands to —
    /// the amount of workload-queue space it will occupy.
    pub fn workload_size(&self, query: &CrossMatchQuery) -> u64 {
        self.preprocess(query).iter().map(|w| w.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossmatch::{MatchObject, Predicate};
    use liferaft_catalog::Partition;
    use liferaft_htm::Vec3;

    const LEVEL: u8 = 8;

    fn partition() -> Partition {
        Partition::synthetic_uniform(LEVEL, 64, 100, 4096)
    }

    fn query_at(positions: &[(f64, f64)], radius: f64) -> CrossMatchQuery {
        let ps: Vec<Vec3> = positions
            .iter()
            .map(|&(ra, dec)| Vec3::from_radec_deg(ra, dec))
            .collect();
        CrossMatchQuery::from_positions(QueryId(1), &ps, radius, LEVEL, Predicate::All)
    }

    #[test]
    fn single_tiny_object_maps_to_one_or_few_buckets() {
        let p = partition();
        let q = query_at(&[(123.0, 45.0)], 1e-6);
        let items = QueryPreProcessor::new(&p).preprocess(&q);
        assert!(!items.is_empty());
        assert!(items.len() <= 4, "tiny object hit {} buckets", items.len());
        let total: usize = items.iter().map(WorkItem::len).sum();
        assert!(total >= 1);
        for item in &items {
            assert_eq!(item.query, QueryId(1));
            assert!(!item.is_empty());
        }
    }

    #[test]
    fn objects_group_by_bucket() {
        let p = partition();
        // Two objects at the same position must land in the same bucket(s),
        // grouped into shared work items.
        let q = query_at(&[(200.0, -30.0), (200.0, -30.0)], 1e-6);
        let items = QueryPreProcessor::new(&p).preprocess(&q);
        for item in &items {
            assert_eq!(item.object_indices, vec![0, 1]);
        }
    }

    #[test]
    fn work_items_are_sorted_by_bucket() {
        let p = partition();
        let q = query_at(
            &[(10.0, 0.0), (100.0, 40.0), (200.0, -40.0), (300.0, 10.0)],
            1e-5,
        );
        let items = QueryPreProcessor::new(&p).preprocess(&q);
        assert!(items.windows(2).all(|w| w[0].bucket < w[1].bucket));
    }

    #[test]
    fn every_object_appears_somewhere() {
        let p = partition();
        let q = query_at(
            &[
                (0.1, 0.1),
                (90.0, 45.0),
                (180.0, -45.0),
                (270.0, 80.0),
                (45.0, -80.0),
            ],
            1e-4,
        );
        let items = QueryPreProcessor::new(&p).preprocess(&q);
        let mut seen = vec![false; q.len()];
        for item in &items {
            for &i in &item.object_indices {
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "an object was dropped: {seen:?}");
    }

    #[test]
    fn wide_region_spans_many_buckets() {
        let p = partition();
        // A 20° error circle crosses many level-8 buckets.
        let q = query_at(&[(50.0, 20.0)], 20f64.to_radians());
        let items = QueryPreProcessor::new(&p).preprocess(&q);
        assert!(items.len() > 1, "wide region should span buckets");
    }

    #[test]
    fn workload_size_counts_assignments() {
        let p = partition();
        let q = query_at(&[(50.0, 20.0), (51.0, 20.0)], 1e-6);
        let pre = QueryPreProcessor::new(&p);
        let total: u64 = pre.preprocess(&q).iter().map(|w| w.len() as u64).sum();
        assert_eq!(pre.workload_size(&q), total);
        assert!(total >= 2);
    }

    #[test]
    fn empty_query_yields_no_items() {
        let p = partition();
        let q = CrossMatchQuery::new(QueryId(9), vec![], Predicate::All);
        assert!(QueryPreProcessor::new(&p).preprocess(&q).is_empty());
    }

    #[test]
    fn object_spanning_bucket_boundary_appears_in_both() {
        let p = partition();
        // Place an object exactly at a bucket boundary with a radius wide
        // enough to spill over.
        let boundary = p.buckets()[10].htm_range.lo();
        let pos = liferaft_htm::trixel_of(boundary).center();
        let obj = MatchObject::new(pos, 0.02, LEVEL);
        let q = CrossMatchQuery::new(QueryId(2), vec![obj], Predicate::All);
        let items = QueryPreProcessor::new(&p).preprocess(&q);
        assert!(
            items.len() >= 2,
            "boundary object should hit both neighbouring buckets, got {}",
            items.len()
        );
        assert!(items
            .iter()
            .any(|i| i.bucket == liferaft_storage::BucketId(10)));
    }
}
