//! The cross-match query model.

use std::fmt;

use liferaft_htm::cover::CachingCoverer;
use liferaft_htm::{Cap, Coverer, HtmRange, HtmRangeSet, Vec3};

/// Unique identifier of a query within a trace/run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// Maximum number of HTM ranges kept per object bounding box.
///
/// The paper attaches a single `[start, end]` pair per object; we keep a few
/// ranges for tighter bucket assignment but cap the count so pre-processing
/// stays cheap.
pub const BBOX_MAX_RANGES: usize = 4;

/// One object shipped to this archive to be cross-matched.
///
/// "Included with each object is its mean cartesian coordinate and a range
/// of HTM ID values, which serve as a bounding box covering all potential
/// regions for cross matching" — Section 3.1.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchObject {
    /// Mean position of the observation.
    pub pos: Vec3,
    /// Error-circle radius in radians (match tolerance).
    pub radius: f64,
    /// Conservative HTM cover of the error circle at the partition's object
    /// level — drives bucket assignment.
    pub bbox: HtmRangeSet,
}

impl MatchObject {
    /// Builds an object, computing its bounding box at `level`.
    pub fn new(pos: Vec3, radius: f64, level: u8) -> Self {
        let cap = Cap::new(pos, radius);
        let bbox = Coverer::new(level).cover_bounded(&cap, BBOX_MAX_RANGES);
        MatchObject { pos, radius, bbox }
    }

    /// [`MatchObject::new`] through a shared [`CachingCoverer`] (which must
    /// be at the same level) — bit-identical output, but bulk builders that
    /// cover many spatially clustered objects (trace generators, ingest
    /// pipelines) skip most of the repeated mesh subdivision.
    pub fn with_coverer(pos: Vec3, radius: f64, coverer: &mut CachingCoverer) -> Self {
        let cap = Cap::new(pos, radius);
        let bbox = coverer.cover_bounded(&cap, BBOX_MAX_RANGES);
        MatchObject { pos, radius, bbox }
    }

    /// The single `[start, end]` range spanning the bounding box (the
    /// paper's representation).
    pub fn bounding_range(&self) -> HtmRange {
        self.bbox
            .bounding_range()
            .expect("a cap cover is never empty")
    }
}

/// A query-specific predicate applied to catalog objects that succeed in the
/// spatial join ("query specific predicates are applied on the output tuples
/// that succeed in the spatial join", Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// Accept every spatial match.
    All,
    /// Accept catalog objects with magnitude in `[min, max)`.
    MagRange {
        /// Inclusive lower bound.
        min: f32,
        /// Exclusive upper bound.
        max: f32,
    },
    /// Accept catalog objects brighter (smaller magnitude) than the bound.
    BrighterThan(
        /// Exclusive magnitude upper bound.
        f32,
    ),
}

impl Predicate {
    /// Evaluates the predicate against a catalog object's magnitude.
    #[inline]
    pub fn accepts_mag(&self, mag: f32) -> bool {
        match *self {
            Predicate::All => true,
            Predicate::MagRange { min, max } => mag >= min && mag < max,
            Predicate::BrighterThan(bound) => mag < bound,
        }
    }
}

/// A cross-match query as received by one archive of the federation.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossMatchQuery {
    /// Query identity.
    pub id: QueryId,
    /// The objects to cross-match against this archive.
    pub objects: Vec<MatchObject>,
    /// Predicate applied to spatially matched catalog objects.
    pub predicate: Predicate,
}

impl CrossMatchQuery {
    /// Creates a query from prepared match objects.
    pub fn new(id: QueryId, objects: Vec<MatchObject>, predicate: Predicate) -> Self {
        CrossMatchQuery {
            id,
            objects,
            predicate,
        }
    }

    /// Convenience: builds a query from raw positions sharing one error
    /// radius, computing bounding boxes at `level`.
    pub fn from_positions(
        id: QueryId,
        positions: &[Vec3],
        radius: f64,
        level: u8,
        predicate: Predicate,
    ) -> Self {
        let objects = positions
            .iter()
            .map(|&p| MatchObject::new(p, radius, level))
            .collect();
        CrossMatchQuery {
            id,
            objects,
            predicate,
        }
    }

    /// Number of objects to cross-match.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the query carries no work.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_htm::locate;

    const ARCSEC: f64 = std::f64::consts::PI / (180.0 * 3600.0);

    #[test]
    fn match_object_bbox_covers_position() {
        let pos = Vec3::from_radec_deg(33.0, -12.0);
        let o = MatchObject::new(pos, 5.0 * ARCSEC, 12);
        assert!(o.bbox.contains(locate(pos, 12)));
        assert!(o.bbox.num_ranges() <= BBOX_MAX_RANGES.max(8));
        let b = o.bounding_range();
        assert!(b.contains(locate(pos, 12)));
    }

    #[test]
    fn predicate_semantics() {
        assert!(Predicate::All.accepts_mag(99.0));
        let r = Predicate::MagRange {
            min: 15.0,
            max: 20.0,
        };
        assert!(r.accepts_mag(15.0));
        assert!(r.accepts_mag(19.99));
        assert!(!r.accepts_mag(20.0));
        assert!(!r.accepts_mag(14.9));
        let b = Predicate::BrighterThan(18.0);
        assert!(b.accepts_mag(17.0));
        assert!(!b.accepts_mag(18.0));
    }

    #[test]
    fn from_positions_builds_all_objects() {
        let ps: Vec<Vec3> = (0..5)
            .map(|i| Vec3::from_radec_deg(10.0 + i as f64, 5.0))
            .collect();
        let q = CrossMatchQuery::from_positions(QueryId(3), &ps, ARCSEC, 10, Predicate::All);
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        assert_eq!(q.id, QueryId(3));
        for (p, o) in ps.iter().zip(&q.objects) {
            assert_eq!(o.pos, *p);
        }
    }

    #[test]
    fn query_id_display() {
        assert_eq!(QueryId(7).to_string(), "Q7");
    }
}
