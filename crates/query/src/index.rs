//! The incrementally maintained candidate index.
//!
//! Every scheduling decision used to gather all candidate snapshots and
//! re-score them — O(non-empty buckets) per decision, ~71k decisions per
//! NoShare bench run. The index replaces that with exact, incrementally
//! maintained orders over the candidate set, updated in O(log n) as queues
//! mutate, so the α = 0 and α = 1 picks become O(log n + resident)
//! lookups and mixed-α picks a bounded frontier re-rank (threshold
//! algorithm in `liferaft-core`).
//!
//! # Why these orders suffice — the monotone-aging invariant
//!
//! The aged metric (Eq. 2) blends two terms per candidate `i`:
//!
//! - the workload throughput `Ut(i) = W / (Tb·φ(i) + Tm·W)` (Eq. 1), a
//!   function of `(φ(i), W)` only, **independent of time**; and
//! - the age `A(i) = now − oldest_enqueue(i)`, where *pure aging* advances
//!   every candidate's age by the same delta between mutations, so the age
//!   *order* (and, under min–max normalization, every pairwise age
//!   difference) is fixed by `oldest_enqueue` alone.
//!
//! Between queue/residency mutations the candidate order under either term
//! is therefore **constant** — the index only reorders when a queue or a
//! φ bit actually changes, never because time passed.
//!
//! # The resident split — exactness under floating point
//!
//! `Ut` of a *cached* bucket is mathematically `1/Tm` for every queue
//! length, but is computed as `fl(W / fl(Tm·W))`, which wobbles around
//! `1/Tm` by a few ULPs in a `W`-dependent, non-monotone way — so no static
//! key can reproduce the score order *among resident candidates* bitwise.
//! Residency is bounded by the bucket cache's capacity (20 in the paper),
//! so the index keeps the resident candidates as their own small set
//! ([`iter_cached`](CandidateIndex::iter_cached)) that pick paths re-score
//! exactly, and maintains the key order only where it is exact:
//!
//! - [`uncached_key`] over non-resident candidates: `Ut` is strictly
//!   increasing in queue length, and its floating-point image stays
//!   monotone as long as consecutive queue lengths move `Ut` by more than a
//!   rounding error — which holds for any queue shorter than ~10⁹ entries
//!   under the paper's constants. The key's tail is the decision tie-break
//!   (longer queue, then lower bucket), which is also exactly where the
//!   score order falls back when min–max normalization collapses two
//!   nearby `Ut` values to one float.
//! - [`age_key`] over all candidates: `A` is strictly decreasing in
//!   `oldest_enqueue`, and microsecond-granular enqueue times keep distinct
//!   normalized ages distinct for any virtual horizon under ~285 years
//!   (spans beyond `2⁵³ µs` would be needed to collapse them).
//!
//! The equivalence proptests (`crates/core/tests/` and
//! `tests/decision_path_equivalence.rs`) pin both regimes against the
//! legacy gather-and-score path.

use std::cmp::Reverse;
use std::collections::BTreeSet;

use liferaft_storage::BucketId;

use crate::snapshot::BucketSnapshot;

/// The ordering key among *uncached* candidates: sorts like `Ut`, with the
/// decision tie-break (`queue_len` descending, bucket ascending) as its
/// tail.
pub type UncachedKey = (u64, Reverse<u32>);

/// The age-lens ordering key (all candidates): sorts like `A`, with the
/// decision tie-break as its tail.
pub type AgeKey = (Reverse<u64>, u64, Reverse<u32>);

/// The uncached-throughput key of a candidate snapshot.
#[inline]
pub fn uncached_key(s: &BucketSnapshot) -> UncachedKey {
    (s.queue_len, Reverse(s.bucket.0))
}

/// The age-lens key of a candidate snapshot.
#[inline]
pub fn age_key(s: &BucketSnapshot) -> AgeKey {
    (
        Reverse(s.oldest_enqueue.as_micros()),
        s.queue_len,
        Reverse(s.bucket.0),
    )
}

/// Exact orders over the live candidate set, keyed by the α-decomposed
/// score terms, with resident candidates split out for exact re-scoring.
/// Owned and kept in sync by [`WorkloadTable`](crate::queue::WorkloadTable);
/// schedulers query it through the table's pick accessors.
#[derive(Debug, Clone, Default)]
pub struct CandidateIndex {
    /// Resident (φ = 0) candidates, in tie-break order. Small: bounded by
    /// the bucket cache capacity.
    cached: BTreeSet<UncachedKey>,
    /// Non-resident candidates in exact `Ut` order.
    uncached: BTreeSet<UncachedKey>,
    /// All candidates in exact age order.
    by_age: BTreeSet<AgeKey>,
}

impl CandidateIndex {
    /// An empty index.
    pub fn new() -> Self {
        CandidateIndex::default()
    }

    /// Number of indexed candidates.
    pub fn len(&self) -> usize {
        self.by_age.len()
    }

    /// True if no candidate is indexed.
    pub fn is_empty(&self) -> bool {
        self.by_age.is_empty()
    }

    /// Number of resident candidates.
    pub fn cached_len(&self) -> usize {
        self.cached.len()
    }

    /// Adds a candidate. The snapshot's `(cached, queue_len,
    /// oldest_enqueue, bucket)` must match its live slot state.
    pub fn insert(&mut self, s: &BucketSnapshot) {
        let pool = if s.cached {
            &mut self.cached
        } else {
            &mut self.uncached
        };
        let t = pool.insert(uncached_key(s));
        let a = self.by_age.insert(age_key(s));
        debug_assert!(t && a, "candidate {} indexed twice", s.bucket);
    }

    /// Removes a candidate by the snapshot that was inserted for it.
    pub fn remove(&mut self, s: &BucketSnapshot) {
        let pool = if s.cached {
            &mut self.cached
        } else {
            &mut self.uncached
        };
        let t = pool.remove(&uncached_key(s));
        let a = self.by_age.remove(&age_key(s));
        debug_assert!(t && a, "candidate {} was not indexed", s.bucket);
    }

    /// Resident candidates, best tie-break first.
    pub fn iter_cached(&self) -> impl Iterator<Item = BucketId> + '_ {
        self.cached.iter().rev().map(|&(_, Reverse(b))| BucketId(b))
    }

    /// The uncached candidate maximal under `Ut` (tie-breaks included).
    pub fn top_uncached(&self) -> Option<BucketId> {
        self.uncached.last().map(|&(_, Reverse(b))| BucketId(b))
    }

    /// The uncached candidate minimal under `Ut`.
    pub fn bottom_uncached(&self) -> Option<BucketId> {
        self.uncached.first().map(|&(_, Reverse(b))| BucketId(b))
    }

    /// Uncached candidates in descending `Ut` order (best first).
    pub fn iter_uncached_desc(&self) -> impl Iterator<Item = BucketId> + '_ {
        self.uncached
            .iter()
            .rev()
            .map(|&(_, Reverse(b))| BucketId(b))
    }

    /// The candidate maximal under the age lens (the α = 1 pick).
    pub fn top_age(&self) -> Option<BucketId> {
        self.by_age.last().map(|&(_, _, Reverse(b))| BucketId(b))
    }

    /// The candidate minimal under the age lens.
    pub fn bottom_age(&self) -> Option<BucketId> {
        self.by_age.first().map(|&(_, _, Reverse(b))| BucketId(b))
    }

    /// Candidates in descending age order (oldest first).
    pub fn iter_age_desc(&self) -> impl Iterator<Item = BucketId> + '_ {
        self.by_age
            .iter()
            .rev()
            .map(|&(_, _, Reverse(b))| BucketId(b))
    }

    /// The age-lens maximum excluding one bucket — the oldest candidate
    /// *passed over* when `excluded` is serviced (starvation accounting).
    pub fn top_age_excluding(&self, excluded: BucketId) -> Option<BucketId> {
        self.iter_age_desc().find(|&b| b != excluded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_storage::SimTime;

    fn snap(bucket: u32, queue_len: u64, enq_us: u64, cached: bool) -> BucketSnapshot {
        BucketSnapshot {
            bucket: BucketId(bucket),
            queue_len,
            oldest_enqueue: SimTime::from_micros(enq_us),
            cached,
            bucket_objects: 1_000,
        }
    }

    #[test]
    fn uncached_order_matches_eq1_among_uncached() {
        // Longer queue wins; full ties break toward the lower bucket.
        assert!(uncached_key(&snap(1, 1_000, 0, false)) > uncached_key(&snap(2, 10, 0, false)));
        assert!(uncached_key(&snap(3, 10, 0, false)) > uncached_key(&snap(4, 10, 0, false)));
    }

    #[test]
    fn age_order_prefers_oldest_then_longest_then_lowest() {
        assert!(age_key(&snap(1, 1, 100, false)) > age_key(&snap(2, 99, 200, false)));
        assert!(age_key(&snap(1, 5, 100, false)) > age_key(&snap(2, 3, 100, false)));
        assert!(age_key(&snap(1, 5, 100, false)) > age_key(&snap(2, 5, 100, false)));
    }

    #[test]
    fn pools_split_by_residency() {
        let mut idx = CandidateIndex::new();
        let a = snap(0, 5, 300, false);
        let b = snap(1, 50, 100, false);
        let c = snap(2, 2, 200, true);
        let d = snap(3, 9, 250, true);
        for s in [&a, &b, &c, &d] {
            idx.insert(s);
        }
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.cached_len(), 2);
        assert_eq!(
            idx.iter_cached().collect::<Vec<_>>(),
            vec![BucketId(3), BucketId(2)],
            "resident pool iterates best tie-break first"
        );
        assert_eq!(idx.top_uncached(), Some(BucketId(1)));
        assert_eq!(idx.bottom_uncached(), Some(BucketId(0)));
        assert_eq!(
            idx.iter_uncached_desc().collect::<Vec<_>>(),
            vec![BucketId(1), BucketId(0)]
        );
        assert_eq!(idx.top_age(), Some(BucketId(1)));
        assert_eq!(idx.bottom_age(), Some(BucketId(0)));
        assert_eq!(idx.top_age_excluding(BucketId(1)), Some(BucketId(2)));
        assert_eq!(idx.top_age_excluding(BucketId(9)), Some(BucketId(1)));
        idx.remove(&b);
        assert_eq!(idx.top_uncached(), Some(BucketId(0)));
        assert_eq!(idx.top_age(), Some(BucketId(2)));
        idx.remove(&a);
        idx.remove(&c);
        idx.remove(&d);
        assert!(idx.is_empty());
        assert_eq!(idx.top_uncached(), None);
        assert_eq!(idx.top_age_excluding(BucketId(0)), None);
    }
}
