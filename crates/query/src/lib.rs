//! Cross-match queries, pre-processing, and per-bucket workload queues.
//!
//! "Each incoming query is pre-processed to determine a list of sub-queries
//! which satisfy the following property: each sub-query operates on a single
//! bucket and can be processed in any order. […] Requests from multiple
//! queries are interleaved in the same workload queue and are joined in one
//! pass" — Section 3.
//!
//! The pipeline here mirrors Figure 3's left half:
//!
//! 1. A [`CrossMatchQuery`] arrives carrying a list of [`MatchObject`]s
//!    (intermediate results shipped from the previous archive in the
//!    cross-match chain), each with a mean position and an HTM bounding box
//!    over its error circle.
//! 2. The [`preprocess::QueryPreProcessor`] maps every object to the buckets
//!    its bounding box overlaps, yielding per-bucket [`WorkItem`]s.
//! 3. [`queue::WorkloadTable`] accumulates work items into per-bucket
//!    workload queues — the unit the LifeRaft scheduler reasons about —
//!    and incrementally maintains the [`snapshot::BucketSnapshot`]s the
//!    scheduler scores, so decisions never rebuild state from the queues.
//! 4. [`tracker::QueryTracker`] watches per-query completion ("a query
//!    cannot finish until every object is cross-matched").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crossmatch;
pub mod index;
pub mod preprocess;
pub mod queue;
pub mod snapshot;
pub mod tracker;

pub use crossmatch::{CrossMatchQuery, MatchObject, Predicate, QueryId};
pub use index::CandidateIndex;
pub use preprocess::{QueryPreProcessor, WorkItem};
pub use queue::{QueueEntry, QueueMemoryStats, WorkloadQueue, WorkloadTable};
pub use snapshot::{BucketSnapshot, NoResidency, Residency};
pub use tracker::QueryTracker;
