//! Property tests for queue-state migration between workload tables.
//!
//! The elastic runtime moves a bucket between shards with
//! `WorkloadTable::extract_bucket` on the source and
//! `WorkloadTable::merge_bucket` on the destination. Under arbitrary
//! enqueue interleavings — including destinations that already hold work
//! for the migrated bucket — the transfer must conserve the entry multiset,
//! preserve every `enqueued_at` arrival stamp, and leave `validate_index`
//! green on **both** tables after every hop.

use liferaft_htm::Vec3;
use liferaft_query::{CrossMatchQuery, Predicate, QueryId, QueueEntry, WorkItem, WorkloadTable};
use liferaft_storage::{BucketId, SimTime};
use proptest::prelude::*;

const LEVEL: u8 = 6;
const BUCKETS: u32 = 3;

/// Canonical multiset key of an entry; the embedded `enqueued_at`
/// microseconds make arrival-age preservation part of every equality check.
fn keys<'a>(entries: impl IntoIterator<Item = &'a QueueEntry>) -> Vec<(u64, u32, u64)> {
    let mut v: Vec<_> = entries
        .into_iter()
        .map(|e| (e.query.0, e.object_index, e.enqueued_at.as_micros()))
        .collect();
    v.sort_unstable();
    v
}

/// All live entries of one table, as canonical keys per bucket.
fn table_keys(t: &WorkloadTable) -> Vec<Vec<(u64, u32, u64)>> {
    (0..BUCKETS)
        .map(|b| keys(t.queue(BucketId(b)).iter()))
        .collect()
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Enqueue one entry for `query` into `bucket` on table `side`.
    Push {
        side: bool,
        query: u64,
        bucket: u32,
        at_us: u64,
    },
    /// Extract `bucket` from one table and merge it into the other.
    Migrate { from_left: bool, bucket: u32 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..8, 0u8..2, 0u64..6, 0u32..BUCKETS, 0u64..50), 1..150).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(kind, side, query, bucket, at_us)| {
                    let side = side == 1;
                    match kind {
                        0..=5 => Op::Push {
                            side,
                            query,
                            bucket,
                            at_us,
                        },
                        _ => Op::Migrate {
                            from_left: side,
                            bucket,
                        },
                    }
                })
                .collect()
        },
    )
}

fn push(t: &mut WorkloadTable, step: usize, query: u64, bucket: u32, at_us: u64) {
    let q = CrossMatchQuery::from_positions(
        QueryId(query),
        &[Vec3::from_radec_deg(10.0 + (step % 7) as f64, 5.0)],
        1e-5,
        LEVEL,
        Predicate::All,
    );
    let item = WorkItem {
        query: q.id,
        bucket: BucketId(bucket),
        object_indices: vec![0],
    };
    t.enqueue(&item, &q, SimTime::from_micros(at_us + step as u64));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Extract→merge between two tables is a pure relocation: the union of
    /// both tables' entry multisets (arrival stamps included) never changes,
    /// the migrated bucket's state lands verbatim on the destination (as a
    /// union with anything already queued there), and both tables' indices
    /// and segment directories stay valid at every step.
    #[test]
    fn bucket_migration_conserves_entries_and_ages(ops in arb_ops()) {
        let mut left = WorkloadTable::new(BUCKETS as usize);
        let mut right = WorkloadTable::new(BUCKETS as usize);
        let mut scratch = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Push { side, query, bucket, at_us } => {
                    let t = if side { &mut left } else { &mut right };
                    push(t, step, query, bucket, at_us);
                }
                Op::Migrate { from_left, bucket } => {
                    // Buckets the migration does not touch must come through
                    // unchanged on both sides.
                    let (left_before, right_before) = (table_keys(&left), table_keys(&right));
                    let (src, dst) = if from_left {
                        (&mut left, &mut right)
                    } else {
                        (&mut right, &mut left)
                    };
                    let src_before = keys(src.queue(BucketId(bucket)).iter());
                    let dst_before = keys(dst.queue(BucketId(bucket)).iter());
                    src.extract_bucket(BucketId(bucket), &mut scratch);
                    // The extraction hands over exactly the source's state…
                    prop_assert_eq!(keys(scratch.iter()), src_before.clone());
                    prop_assert!(src.queue(BucketId(bucket)).is_empty());
                    dst.merge_bucket(BucketId(bucket), &mut scratch);
                    prop_assert!(scratch.is_empty(), "merge must drain the payload");
                    // …and the destination ends with the union, every
                    // arrival stamp preserved.
                    let mut want = src_before;
                    want.extend(dst_before);
                    want.sort_unstable();
                    prop_assert_eq!(keys(dst.queue(BucketId(bucket)).iter()), want);
                    for b in 0..BUCKETS {
                        if b == bucket {
                            continue;
                        }
                        prop_assert_eq!(
                            keys(left.queue(BucketId(b)).iter()),
                            left_before[b as usize].clone()
                        );
                        prop_assert_eq!(
                            keys(right.queue(BucketId(b)).iter()),
                            right_before[b as usize].clone()
                        );
                    }
                }
            }
            left.validate_index();
            right.validate_index();
            // Global conservation: every entry ever pushed is still live in
            // exactly one of the two tables (nothing drains in this suite).
            let pushed = ops[..=step]
                .iter()
                .filter(|o| matches!(o, Op::Push { .. }))
                .count();
            let live = left.total_queued() + right.total_queued();
            prop_assert_eq!(live, pushed as u64);
        }
    }
}
