//! Property tests for the incrementally-maintained candidate snapshots.
//!
//! The workload table updates its per-bucket `BucketSnapshot`s on every
//! `enqueue`/`take_all_into`/`take_query_into` instead of rebuilding them at
//! decision time. These properties interleave arbitrary enqueues and drains
//! and assert the maintained state always equals a from-scratch rebuild
//! through the public queue accessors.

use liferaft_htm::Vec3;
use liferaft_query::snapshot::{BucketSnapshot, NoResidency};
use liferaft_query::{CrossMatchQuery, Predicate, QueryId, WorkItem, WorkloadTable};
use liferaft_storage::{BucketId, SimTime};
use proptest::prelude::*;

const LEVEL: u8 = 6;
const N_BUCKETS: usize = 8;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Enqueue `n` objects of `query` at `bucket`.
    Enqueue { bucket: u32, query: u64, n: u8 },
    /// Drain everything at `bucket`.
    TakeAll { bucket: u32 },
    /// Drain one query's entries at `bucket`.
    TakeQuery { bucket: u32, query: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0u32..N_BUCKETS as u32, 0u64..5, 1u8..4), 1..60).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(kind, bucket, query, n)| match kind {
                    0 | 1 => Op::Enqueue { bucket, query, n },
                    2 => Op::TakeAll { bucket },
                    _ => Op::TakeQuery { bucket, query },
                })
                .collect()
        },
    )
}

/// A small query whose objects are at distinct positions.
fn query_of(id: u64, n: usize, salt: u64) -> CrossMatchQuery {
    let positions: Vec<Vec3> = (0..n)
        .map(|i| Vec3::from_radec_deg(10.0 + (salt % 97) as f64 + i as f64 * 0.01, 5.0))
        .collect();
    CrossMatchQuery::from_positions(QueryId(id), &positions, 1e-5, LEVEL, Predicate::All)
}

/// From-scratch snapshot rebuild through the public accessors — the
/// reference the incremental maintenance must match.
fn rebuild(t: &WorkloadTable) -> Vec<BucketSnapshot> {
    t.non_empty_buckets()
        .iter()
        .map(|&b| {
            let q = t.queue(b);
            BucketSnapshot {
                bucket: b,
                queue_len: q.len() as u64,
                oldest_enqueue: q.oldest_enqueue().expect("non-empty queue has an oldest"),
                cached: false,
                bucket_objects: 1_000 + b.0 as u64,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any interleaving of enqueues and drains, the maintained
    /// snapshots equal the from-scratch rebuild, and the aggregate counters
    /// agree with the queues.
    #[test]
    fn snapshots_always_equal_a_from_scratch_rebuild(ops in arb_ops()) {
        let mut t = WorkloadTable::new(N_BUCKETS).with_object_counts(|b| 1_000 + b.0 as u64);
        for (step, op) in ops.iter().enumerate() {
            let now = SimTime::from_micros(step as u64 * 1_000);
            match *op {
                Op::Enqueue { bucket, query, n } => {
                    let q = query_of(query, n as usize, step as u64);
                    let item = WorkItem {
                        query: q.id,
                        bucket: BucketId(bucket),
                        object_indices: (0..q.len() as u32).collect(),
                    };
                    t.enqueue(&item, &q, now);
                }
                Op::TakeAll { bucket } => {
                    let mut drained = Vec::new();
                    t.take_all_into(BucketId(bucket), &mut drained);
                    prop_assert!(drained
                        .iter()
                        .all(|e| !t.queue(BucketId(bucket)).iter().any(|kept| kept == e)));
                }
                Op::TakeQuery { bucket, query } => {
                    let mut drained = Vec::new();
                    t.take_query_into(BucketId(bucket), QueryId(query), &mut drained);
                    prop_assert!(drained.iter().all(|e| e.query == QueryId(query)));
                }
            }
            let mut gathered = Vec::new();
            t.snapshots_into(&mut gathered, &NoResidency);
            prop_assert_eq!(
                gathered,
                rebuild(&t),
                "maintained snapshots diverged from rebuild after step {}",
                step
            );
            // The candidate index must always mirror the slots: one entry
            // per non-empty bucket, in the exact lens orders.
            t.validate_index();
            prop_assert_eq!(t.candidate_count(), t.non_empty_buckets().len());
            // Index maxima agree with a brute-force scan of the rebuild.
            let brute_oldest = rebuild(&t)
                .iter()
                .map(|s| (s.oldest_enqueue, std::cmp::Reverse(s.queue_len), s.bucket))
                .min();
            prop_assert_eq!(
                t.top_candidate_age()
                    .map(|s| (s.oldest_enqueue, std::cmp::Reverse(s.queue_len), s.bucket)),
                brute_oldest
            );
            let brute_longest = rebuild(&t)
                .iter()
                .map(|s| (std::cmp::Reverse(s.queue_len), s.bucket))
                .min();
            prop_assert_eq!(
                t.top_candidate_uncached()
                    .map(|s| (std::cmp::Reverse(s.queue_len), s.bucket)),
                brute_longest,
                "cold residency: every candidate is in the uncached pool"
            );
            let total: u64 = t
                .non_empty_buckets()
                .iter()
                .map(|&b| t.queue(b).len() as u64)
                .sum();
            prop_assert_eq!(t.total_queued(), total);
            prop_assert_eq!(t.is_idle(), total == 0);
        }
    }

    /// `drain_query_into` is equivalent to filtering: drained ∪ kept is an
    /// exact partition of the original entries by query. (Order is not part
    /// of the contract — the swap-remove drain may reorder both sides;
    /// everything downstream consumes batches as unordered sets, pinned by
    /// the golden determinism fingerprints.)
    #[test]
    fn drain_query_is_a_partition(
        queries in proptest::collection::vec(0u64..4, 1..30),
        victim in 0u64..4,
    ) {
        let mut t = WorkloadTable::new(2);
        for (i, &qid) in queries.iter().enumerate() {
            let q = query_of(qid, 1, i as u64);
            let item = WorkItem {
                query: q.id,
                bucket: BucketId(0),
                object_indices: vec![0],
            };
            t.enqueue(&item, &q, SimTime::from_micros(i as u64));
        }
        let before: Vec<(QueryId, SimTime)> = t
            .queue(BucketId(0))
            .iter()
            .map(|e| (e.query, e.enqueued_at))
            .collect();
        let mut drained = Vec::new();
        t.take_query_into(BucketId(0), QueryId(victim), &mut drained);
        let mut kept: Vec<(QueryId, SimTime)> = t
            .queue(BucketId(0))
            .iter()
            .map(|e| (e.query, e.enqueued_at))
            .collect();
        let mut expected_drained: Vec<(QueryId, SimTime)> = before
            .iter()
            .copied()
            .filter(|(q, _)| *q == QueryId(victim))
            .collect();
        let mut expected_kept: Vec<(QueryId, SimTime)> = before
            .iter()
            .copied()
            .filter(|(q, _)| *q != QueryId(victim))
            .collect();
        let mut drained_keys: Vec<(QueryId, SimTime)> =
            drained.iter().map(|e| (e.query, e.enqueued_at)).collect();
        drained_keys.sort();
        expected_drained.sort();
        kept.sort();
        expected_kept.sort();
        prop_assert_eq!(drained_keys, expected_drained);
        prop_assert_eq!(kept, expected_kept);
        // The maintained oldest must equal the kept minimum.
        prop_assert_eq!(
            t.queue(BucketId(0)).oldest_enqueue(),
            t.queue(BucketId(0)).iter().map(|e| e.enqueued_at).min()
        );
    }
}
