//! Property tests for the segmented per-(bucket, query) queue storage.
//!
//! A naive reference queue (one flat vector, `retain`-based drains) defines
//! the semantics; the segmented [`WorkloadQueue`] must stay *set-equivalent*
//! to it under arbitrary enqueue/drain interleavings — batch order is
//! explicitly not part of the contract (batches are consumed as unordered
//! sets; see the queue module docs) — while every structural invariant of
//! the segment directory holds at every step.

use liferaft_htm::Vec3;
use liferaft_query::{
    CrossMatchQuery, Predicate, QueryId, QueueEntry, WorkItem, WorkloadQueue, WorkloadTable,
};
use liferaft_storage::{BucketId, SimTime};
use proptest::prelude::*;

const LEVEL: u8 = 6;

/// The reference: a flat vector with filter-based drains.
#[derive(Default)]
struct NaiveQueue {
    entries: Vec<QueueEntry>,
}

impl NaiveQueue {
    fn push(&mut self, e: QueueEntry) {
        self.entries.push(e);
    }

    fn drain_all(&mut self) -> Vec<QueueEntry> {
        std::mem::take(&mut self.entries)
    }

    fn drain_query(&mut self, query: QueryId) -> Vec<QueueEntry> {
        let (out, kept) = std::mem::take(&mut self.entries)
            .into_iter()
            .partition(|e| e.query == query);
        self.entries = kept;
        out
    }

    fn oldest(&self) -> Option<SimTime> {
        self.entries.iter().map(|e| e.enqueued_at).min()
    }
}

/// Canonical multiset key of an entry (object_index is unique per push in
/// these tests, so the key set is an exact identity check).
fn keys(entries: &[QueueEntry]) -> Vec<(u64, u32, u64)> {
    let mut v: Vec<_> = entries
        .iter()
        .map(|e| (e.query.0, e.object_index, e.enqueued_at.as_micros()))
        .collect();
    v.sort_unstable();
    v
}

fn entry(query: u64, object_index: u32, at_us: u64) -> QueueEntry {
    let q = CrossMatchQuery::from_positions(
        QueryId(query),
        &[Vec3::from_radec_deg(10.0, 5.0)],
        1e-5,
        LEVEL,
        Predicate::All,
    );
    QueueEntry {
        query: QueryId(query),
        object_index,
        pos: q.objects[0].pos,
        radius: q.objects[0].radius,
        bbox: q.objects[0].bounding_range(),
        enqueued_at: SimTime::from_micros(at_us),
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Enqueue one entry of `query`, `at_us` microseconds (plus step).
    Push { query: u64, at_us: u64 },
    /// Drain everything.
    DrainAll,
    /// Drain one query.
    DrainQuery { query: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..8, 0u64..6, 0u64..50), 1..200).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, query, at_us)| match kind {
                0..=4 => Op::Push { query, at_us },
                5 => Op::DrainAll,
                _ => Op::DrainQuery { query },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Under any interleaving: every drain is set-equivalent to the naive
    /// reference's, the per-query/oldest/len accounting agrees, and the
    /// segment directory's invariants hold at every step.
    #[test]
    fn segmented_queue_is_set_equivalent_to_naive(ops in arb_ops()) {
        let mut seg = WorkloadQueue::new();
        let mut naive = NaiveQueue::default();
        let mut scratch = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Push { query, at_us } => {
                    let e = entry(query, step as u32, at_us + step as u64);
                    seg.push(e.clone());
                    naive.push(e);
                }
                Op::DrainAll => {
                    seg.drain_all_into(&mut scratch);
                    prop_assert_eq!(keys(&scratch), keys(&naive.drain_all()));
                }
                Op::DrainQuery { query } => {
                    seg.drain_query_into(QueryId(query), &mut scratch);
                    prop_assert_eq!(keys(&scratch), keys(&naive.drain_query(QueryId(query))));
                }
            }
            seg.validate_segments();
            prop_assert_eq!(seg.len(), naive.entries.len());
            prop_assert_eq!(seg.is_empty(), naive.entries.is_empty());
            prop_assert_eq!(seg.oldest_enqueue(), naive.oldest());
            // The live view agrees as a set.
            let live: Vec<QueueEntry> = seg.iter().cloned().collect();
            prop_assert_eq!(keys(&live), keys(&naive.entries));
            // Per-query accounting.
            for q in 0..6u64 {
                let want = naive.entries.iter().filter(|e| e.query == QueryId(q)).count();
                prop_assert_eq!(seg.pending_of(QueryId(q)), want);
            }
            let mut distinct: Vec<u64> = naive.entries.iter().map(|e| e.query.0).collect();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(seg.distinct_queries(), distinct.len());
            // Memory accounting stays consistent with the live size.
            let m = seg.memory_stats();
            prop_assert_eq!(m.queued_entries, seg.len() as u64);
            prop_assert_eq!(m.directory_runs as usize, seg.distinct_queries());
            prop_assert!(m.total_bytes() >= m.entry_bytes);
        }
    }

    /// The same ops through a `WorkloadTable` (bucket 0) keep the table's
    /// index, slots, and segment directories valid — `validate_index` does
    /// the cross-checking.
    #[test]
    fn table_drains_keep_index_and_segments_valid(ops in arb_ops()) {
        let mut t = WorkloadTable::new(2);
        let mut scratch = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Push { query, at_us } => {
                    let q = CrossMatchQuery::from_positions(
                        QueryId(query),
                        &[Vec3::from_radec_deg(10.0 + (step % 7) as f64, 5.0)],
                        1e-5,
                        LEVEL,
                        Predicate::All,
                    );
                    let item = WorkItem {
                        query: q.id,
                        bucket: BucketId((step % 2) as u32),
                        object_indices: vec![0],
                    };
                    t.enqueue(&item, &q, SimTime::from_micros(at_us + step as u64));
                }
                Op::DrainAll => t.take_all_into(BucketId(0), &mut scratch),
                Op::DrainQuery { query } => {
                    t.take_query_into(BucketId(0), QueryId(query), &mut scratch)
                }
            }
            t.validate_index();
        }
    }
}
