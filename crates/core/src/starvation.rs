//! Starvation monitoring.
//!
//! The greedy policy "may starve requests […] there is no guarantee that a
//! particular bucket or query receives service" (Section 3.2). The monitor
//! quantifies this: it records, at every scheduling decision, the age of the
//! oldest request left *waiting* (not serviced), giving a direct measure of
//! how unfair a policy is and letting tests assert that α = 1 bounds waits
//! while α = 0 does not.

use liferaft_metrics::StreamingStats;
use liferaft_storage::SimTime;

use crate::scheduler::BucketSnapshot;

/// Accumulates waiting-time observations across scheduling decisions.
#[derive(Debug, Clone, Default)]
pub struct StarvationMonitor {
    waits_ms: StreamingStats,
    max_wait_ms: f64,
    decisions: u64,
}

impl StarvationMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        StarvationMonitor::default()
    }

    /// Records a decision: `candidates` were pending, `picked` (an index
    /// into `candidates`) was serviced. The ages of everything left behind
    /// are the waiting times of this decision.
    pub fn record_decision(&mut self, now: SimTime, candidates: &[BucketSnapshot], picked: usize) {
        assert!(picked < candidates.len(), "picked index out of range");
        self.decisions += 1;
        for (i, c) in candidates.iter().enumerate() {
            if i == picked {
                continue;
            }
            let age = c.age_ms(now);
            self.waits_ms.push(age);
            self.max_wait_ms = self.max_wait_ms.max(age);
        }
    }

    /// Number of decisions recorded.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Longest wait (ms) any pending bucket experienced at a decision point.
    pub fn max_wait_ms(&self) -> f64 {
        self.max_wait_ms
    }

    /// Mean wait (ms) across all passed-over buckets.
    pub fn mean_wait_ms(&self) -> f64 {
        self.waits_ms.mean()
    }

    /// Full wait statistics.
    pub fn stats(&self) -> &StreamingStats {
        &self.waits_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_storage::{BucketId, SimDuration};

    fn snap(bucket: u32, enq_ms: u64) -> BucketSnapshot {
        BucketSnapshot {
            bucket: BucketId(bucket),
            queue_len: 1,
            oldest_enqueue: SimTime::ZERO + SimDuration::from_millis(enq_ms),
            cached: false,
            bucket_objects: 100,
        }
    }

    #[test]
    fn records_passed_over_ages() {
        let mut m = StarvationMonitor::new();
        let now = SimTime::ZERO + SimDuration::from_millis(1_000);
        // Pick index 0; buckets at ages 0 (picked), 600, 900 ms.
        let cands = vec![snap(0, 1_000), snap(1, 400), snap(2, 100)];
        m.record_decision(now, &cands, 0);
        assert_eq!(m.decisions(), 1);
        assert_eq!(m.max_wait_ms(), 900.0);
        assert_eq!(m.mean_wait_ms(), 750.0);
        assert_eq!(m.stats().count(), 2);
    }

    #[test]
    fn picked_bucket_is_not_a_wait() {
        let mut m = StarvationMonitor::new();
        let now = SimTime::ZERO + SimDuration::from_millis(500);
        m.record_decision(now, &[snap(0, 0)], 0);
        assert_eq!(m.stats().count(), 0);
        assert_eq!(m.max_wait_ms(), 0.0);
    }

    #[test]
    fn max_tracks_across_decisions() {
        let mut m = StarvationMonitor::new();
        let t1 = SimTime::ZERO + SimDuration::from_millis(100);
        let t2 = SimTime::ZERO + SimDuration::from_millis(5_000);
        m.record_decision(t1, &[snap(0, 0), snap(1, 50)], 0);
        m.record_decision(t2, &[snap(0, 0), snap(1, 50)], 0);
        assert_eq!(m.max_wait_ms(), 4_950.0);
        assert_eq!(m.decisions(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_pick_index() {
        let mut m = StarvationMonitor::new();
        m.record_decision(SimTime::ZERO, &[], 0);
    }
}
