//! Starvation monitoring.
//!
//! The greedy policy "may starve requests […] there is no guarantee that a
//! particular bucket or query receives service" (Section 3.2). The monitor
//! quantifies this: it records, at every scheduling decision, the age of the
//! oldest request left *waiting* (not serviced), giving a direct measure of
//! how unfair a policy is and letting tests assert that α = 1 bounds waits
//! while α = 0 does not.
//!
//! Recording is O(1) per decision: the caller supplies the *summary* of the
//! passed-over set — how many candidates waited and the enqueue time of the
//! oldest among them, both of which the candidate index answers without a
//! scan. (The monitor used to walk every candidate per decision, which put
//! an O(candidates) floor under every scheduler — including NoShare, which
//! never looks at candidates at all.)

use liferaft_metrics::StreamingStats;
use liferaft_storage::SimTime;

/// Accumulates waiting-time observations across scheduling decisions.
#[derive(Debug, Clone, Default)]
pub struct StarvationMonitor {
    /// Per-decision *oldest* passed-over wait (ms); empty-field decisions
    /// contribute nothing.
    waits_ms: StreamingStats,
    max_wait_ms: f64,
    decisions: u64,
    passed_over: u64,
}

impl StarvationMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        StarvationMonitor::default()
    }

    /// Records a decision that passed over `passed_over` candidates, the
    /// oldest of which was enqueued at `oldest_passed` (`None` iff the
    /// picked bucket was the only candidate).
    pub fn record_decision(
        &mut self,
        now: SimTime,
        passed_over: u64,
        oldest_passed: Option<SimTime>,
    ) {
        self.decisions += 1;
        self.passed_over += passed_over;
        debug_assert_eq!(
            oldest_passed.is_none(),
            passed_over == 0,
            "oldest-passed must be present exactly when candidates waited"
        );
        if let Some(enqueued) = oldest_passed {
            let age = now.since(enqueued).as_millis_f64();
            self.waits_ms.push(age);
            self.max_wait_ms = self.max_wait_ms.max(age);
        }
    }

    /// Number of decisions recorded.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Total candidates passed over across all decisions.
    pub fn passed_over(&self) -> u64 {
        self.passed_over
    }

    /// Longest wait (ms) any pending bucket experienced at a decision point.
    pub fn max_wait_ms(&self) -> f64 {
        self.max_wait_ms
    }

    /// Mean per-decision oldest wait (ms), over decisions that left
    /// something waiting.
    pub fn mean_wait_ms(&self) -> f64 {
        self.waits_ms.mean()
    }

    /// Full statistics over the per-decision oldest waits.
    pub fn stats(&self) -> &StreamingStats {
        &self.waits_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liferaft_storage::SimDuration;

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn records_oldest_passed_over_age() {
        let mut m = StarvationMonitor::new();
        // Pick left two buckets waiting; the older was enqueued at 100 ms.
        m.record_decision(at_ms(1_000), 2, Some(at_ms(100)));
        assert_eq!(m.decisions(), 1);
        assert_eq!(m.passed_over(), 2);
        assert_eq!(m.max_wait_ms(), 900.0);
        assert_eq!(m.mean_wait_ms(), 900.0);
        assert_eq!(m.stats().count(), 1);
    }

    #[test]
    fn sole_candidate_decisions_record_no_wait() {
        let mut m = StarvationMonitor::new();
        m.record_decision(at_ms(500), 0, None);
        assert_eq!(m.decisions(), 1);
        assert_eq!(m.passed_over(), 0);
        assert_eq!(m.stats().count(), 0);
        assert_eq!(m.max_wait_ms(), 0.0);
    }

    #[test]
    fn max_tracks_across_decisions() {
        let mut m = StarvationMonitor::new();
        m.record_decision(at_ms(100), 1, Some(at_ms(50)));
        m.record_decision(at_ms(5_000), 1, Some(at_ms(50)));
        assert_eq!(m.max_wait_ms(), 4_950.0);
        assert_eq!(m.decisions(), 2);
        assert_eq!(m.mean_wait_ms(), 2_500.0);
    }
}
