//! The LifeRaft scheduling policy.

use std::cmp::Ordering;

use liferaft_storage::{BucketId, SimTime};

use crate::metric::{AgingMode, MetricParams, ScorePass};
use crate::scheduler::{
    BatchScope, BatchSpec, BucketSnapshot, DecisionStats, Lens, Scheduler, SchedulerView,
};

/// How many frontier candidates the mixed-α pick examines per lens before
/// its first prune check; doubles until the score bound closes.
const FRONTIER_SEED: usize = 4;

/// LifeRaft at a fixed age bias α.
///
/// Every decision services the candidate maximal under the aged workload
/// throughput metric: "buckets are evaluated greedily in order of
/// decreasing workload throughput" (Section 3.2), with α trading throughput
/// against arrival-order fairness (Section 3.3). The batch always consumes
/// the whole queue and shares I/O through the bucket cache.
///
/// # How the pick uses the candidate index
///
/// At α = 1 the blended score is a monotone image of the age term, so the
/// pick is a single [`top_candidate`](SchedulerView::top_candidate) lookup
/// under [`Lens::Age`] (tie-breaks are the order's tail).
///
/// At α = 0 the score is a monotone image of `Ut` — but the floating-point
/// `Ut` of *resident* candidates wobbles around `1/Tm` non-monotonically in
/// queue length, so the pick re-scores, exactly, the small resident pool
/// (bounded by the cache capacity) plus the one uncached candidate that can
/// win: the [`Lens::UncachedThroughput`] maximum.
///
/// For mixed α the pick runs a threshold (Fagin-style) scan: score the
/// resident pool and the top-k frontier of both lens orders, and stop as
/// soon as the score upper bound of every *unseen* candidate —
/// `(1−α)·ût(uncached frontier) + α·â(age frontier)` — drops strictly below
/// the best seen score. Both terms are monotone non-increasing along their
/// lists and float rounding is monotone, so the bound is sound;
/// normalization bounds come from the resident scan plus the index
/// extremes, which realize the candidate-set extremes of both terms. If the
/// bound cannot close by the time the frontier covers most of the set, the
/// pick falls back to a full streamed scan — still allocation-free, and
/// bit-identical to the legacy gather-and-score path.
#[derive(Debug, Clone)]
pub struct LifeRaftScheduler {
    params: MetricParams,
    mode: AgingMode,
    alpha: f64,
    /// Frontier scratch for the mixed-α threshold scan (throughput lens).
    scratch_t: Vec<BucketSnapshot>,
    /// Frontier scratch for the mixed-α threshold scan (age lens).
    scratch_a: Vec<BucketSnapshot>,
    /// Lifetime counters of how mixed-α picks resolved (frontier bound vs
    /// full-stream fallback) — the kinetic-heap question's evidence.
    stats: DecisionStats,
}

impl LifeRaftScheduler {
    /// Creates a scheduler with bias `alpha ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if α is outside `[0, 1]`.
    pub fn new(params: MetricParams, mode: AgingMode, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "α must be in [0,1], got {alpha}"
        );
        LifeRaftScheduler {
            params,
            mode,
            alpha,
            scratch_t: Vec::new(),
            scratch_a: Vec::new(),
            stats: DecisionStats::default(),
        }
    }

    /// The greedy, maximum-throughput configuration (α = 0).
    pub fn greedy(params: MetricParams) -> Self {
        Self::new(params, AgingMode::Normalized, 0.0)
    }

    /// The purely age-driven configuration (α = 1).
    pub fn age_based(params: MetricParams) -> Self {
        Self::new(params, AgingMode::Normalized, 1.0)
    }

    /// Current bias.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Adjusts the bias (the adaptive controller's knob).
    pub fn set_alpha(&mut self, alpha: f64) {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "α must be in [0,1], got {alpha}"
        );
        self.alpha = alpha;
    }

    /// Picks the best candidate index for the given time, or `None` if there
    /// are no candidates — the legacy full-materialization path, kept as the
    /// bit-exact reference for the indexed pick (equivalence proptests, the
    /// `decision_path` micro-bench) and for tooling that already holds a
    /// snapshot slice.
    ///
    /// The decision is fully fused and allocation-free: one sweep bounds the
    /// metric terms ([`ScorePass`]), a second scores and arg-maxes. Scores
    /// are compared with [`f64::total_cmp`], so the ordering is total and a
    /// NaN (impossible upstream, but defended against) cannot poison every
    /// subsequent `>` comparison the way partial ordering would; ties are
    /// broken by longer queue (amortize more work per read), then by lower
    /// bucket ID for determinism.
    pub fn pick_index(&self, now: SimTime, candidates: &[BucketSnapshot]) -> Option<usize> {
        let first = candidates.first()?;
        let pass = ScorePass::new(&self.params, self.mode, self.alpha, now, candidates);
        let mut best = 0usize;
        let mut best_score = pass.score(first);
        for (i, c) in candidates.iter().enumerate().skip(1) {
            let score = pass.score(c);
            if better(score, best_score, c, &candidates[best]) {
                best = i;
                best_score = score;
            }
        }
        Some(best)
    }

    /// The candidate snapshots realizing the exact min and max float `Ut`
    /// over the whole set: the resident pool is scanned (its `Ut` wobble is
    /// not monotone in any key), the uncached pool contributes its key-order
    /// extremes (where the float `Ut` order *is* the key order).
    fn ut_extreme_snaps(
        &self,
        view: &dyn SchedulerView,
    ) -> Option<(BucketSnapshot, BucketSnapshot)> {
        let params = self.params;
        let mut lo: Option<(f64, BucketSnapshot)> = None;
        let mut hi: Option<(f64, BucketSnapshot)> = None;
        let fold = |c: &BucketSnapshot,
                    lo: &mut Option<(f64, BucketSnapshot)>,
                    hi: &mut Option<(f64, BucketSnapshot)>| {
            let ut = params.workload_throughput(c.queue_len, c.cached);
            if lo.map_or(true, |(v, _)| ut < v) {
                *lo = Some((ut, *c));
            }
            if hi.map_or(true, |(v, _)| ut > v) {
                *hi = Some((ut, *c));
            }
        };
        view.for_each_cached_candidate(&mut |c| fold(c, &mut lo, &mut hi));
        if let Some(t) = view.top_candidate(Lens::UncachedThroughput) {
            fold(&t, &mut lo, &mut hi);
            let b = view
                .bottom_candidate(Lens::UncachedThroughput)
                .expect("pool with a top has a bottom");
            fold(&b, &mut lo, &mut hi);
        }
        lo.map(|(_, lo_snap)| (lo_snap, hi.expect("hi set with lo").1))
    }

    /// The α = 0 indexed pick: exact re-rank of the resident pool plus the
    /// best uncached candidate. Any other uncached candidate is dominated
    /// by the uncached maximum under the score order *and* under the
    /// tie-break that decides collapsed scores, so it can never win.
    fn pick_greedy(&self, view: &dyn SchedulerView) -> Option<BucketId> {
        let top_uncached = view.top_candidate(Lens::UncachedThroughput);
        let (ut_lo, ut_hi) = self.ut_extreme_snaps(view)?;
        // At α = 0 the age term contributes exactly ±0.0 to every score, so
        // the pass only needs the `Ut` bounds to normalize bit-identically
        // to the legacy full-slice pass.
        let pass = ScorePass::new(
            &self.params,
            self.mode,
            self.alpha,
            view.now(),
            &[ut_lo, ut_hi],
        );
        let mut best: Option<(f64, BucketSnapshot)> = None;
        let mut consider = |c: &BucketSnapshot| {
            let score = pass.score(c);
            best = Some(match best {
                Some((bs, b)) if !better(score, bs, c, &b) => (bs, b),
                _ => (score, *c),
            });
        };
        view.for_each_cached_candidate(&mut consider);
        if let Some(t) = top_uncached {
            consider(&t);
        }
        best.map(|(_, b)| b.bucket)
    }

    /// The mixed-α indexed pick: threshold scan over the resident pool and
    /// both lens frontiers, falling back to a full streamed scan when the
    /// bound cannot prune.
    fn pick_blended(&mut self, view: &dyn SchedulerView) -> Option<BucketId> {
        let n = view.candidate_count();
        let a_hi = view.top_candidate(Lens::Age)?;
        let a_lo = view.bottom_candidate(Lens::Age)?;
        let (ut_lo, ut_hi) = self.ut_extreme_snaps(view)?;
        // These four snapshots realize the candidate set's exact min/max of
        // both metric terms, so this pass normalizes bit-identically to one
        // prepared over the full candidate slice.
        let pass = ScorePass::new(
            &self.params,
            self.mode,
            self.alpha,
            view.now(),
            &[ut_lo, ut_hi, a_lo, a_hi],
        );
        let mut k = FRONTIER_SEED;
        loop {
            view.top_candidates(Lens::UncachedThroughput, k, &mut self.scratch_t);
            view.top_candidates(Lens::Age, k, &mut self.scratch_a);
            let mut best: Option<(f64, BucketSnapshot)> = None;
            let mut consider = |c: &BucketSnapshot| {
                let score = pass.score(c);
                best = Some(match best {
                    Some((bs, b)) if !better(score, bs, c, &b) => (bs, b),
                    _ => (score, *c),
                });
            };
            view.for_each_cached_candidate(&mut consider);
            for c in self.scratch_t.iter().chain(self.scratch_a.iter()) {
                consider(c);
            }
            let (best_score, best_snap) = best?;
            if k >= n || self.scratch_t.len() < k {
                // The age list (k ≥ n) or the resident pool + uncached list
                // (uncached exhausted) covered every candidate.
                self.stats.frontier_picks += 1;
                return Some(best_snap.bucket);
            }
            // Unseen candidates are uncached beyond the `Ut` frontier and
            // beyond the age frontier; both terms are monotone along their
            // lists and float rounding is monotone, so this bounds every
            // unseen score from above. Strictly below the best seen score,
            // nothing unseen can win — a score-tie would lose only to a
            // *seen* candidate under the tie-break.
            let bound = pass.ut_term(&self.scratch_t[k - 1]) * (1.0 - self.alpha)
                + pass.age_term(&self.scratch_a[k - 1]) * self.alpha;
            if bound < best_score {
                self.stats.frontier_picks += 1;
                return Some(best_snap.bucket);
            }
            if 2 * k >= n {
                // The bound will not close much later than this; finish with
                // one streamed scan (the legacy argmax, unmaterialized).
                self.stats.fallback_picks += 1;
                let mut full: Option<(f64, BucketSnapshot)> = None;
                view.for_each_candidate(&mut |c| {
                    let score = pass.score(c);
                    full = Some(match full.take() {
                        Some((bs, b)) if !better(score, bs, c, &b) => (bs, b),
                        _ => (score, *c),
                    });
                });
                return full.map(|(_, b)| b.bucket);
            }
            k *= 2;
        }
    }
}

/// The decision ordering: score (total order via `total_cmp`), then longer
/// queue (amortize more work per read), then lower bucket ID.
#[inline]
fn better(score: f64, best_score: f64, c: &BucketSnapshot, best: &BucketSnapshot) -> bool {
    match score.total_cmp(&best_score) {
        Ordering::Greater => true,
        Ordering::Less => false,
        Ordering::Equal => {
            c.queue_len > best.queue_len
                || (c.queue_len == best.queue_len && c.bucket < best.bucket)
        }
    }
}

impl Scheduler for LifeRaftScheduler {
    fn name(&self) -> String {
        format!("LifeRaft(α={:.2})", self.alpha)
    }

    fn pick(&mut self, view: &dyn SchedulerView) -> Option<BatchSpec> {
        // At the α extremes the blended score is a monotone image of a
        // single term (the other coefficient is exactly 0.0 and both terms
        // are finite, so it contributes ±0.0 to every score).
        let bucket = if self.alpha == 0.0 {
            self.pick_greedy(view)?
        } else if self.alpha == 1.0 {
            view.top_candidate(Lens::Age)?.bucket
        } else {
            self.pick_blended(view)?
        };
        Some(BatchSpec {
            bucket,
            scope: BatchScope::AllQueued,
            share_io: true,
        })
    }

    fn decision_stats(&self) -> DecisionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FixtureView;
    use liferaft_storage::{BucketId, SimDuration};

    fn snap(bucket: u32, queue_len: u64, enq_s: u64, cached: bool) -> BucketSnapshot {
        BucketSnapshot {
            bucket: BucketId(bucket),
            queue_len,
            oldest_enqueue: SimTime::ZERO + SimDuration::from_secs(enq_s),
            cached,
            bucket_objects: 10_000,
        }
    }

    fn view(candidates: Vec<BucketSnapshot>, now_s: u64) -> FixtureView {
        FixtureView {
            now: SimTime::ZERO + SimDuration::from_secs(now_s),
            candidates,
            oldest_query: None,
            query_buckets: vec![],
        }
    }

    #[test]
    fn greedy_prefers_cached_then_longest_queue() {
        let mut s = LifeRaftScheduler::greedy(MetricParams::paper());
        // Cached small queue beats uncached huge queue at α=0.
        let v = view(vec![snap(0, 5_000, 10, false), snap(1, 10, 10, true)], 20);
        let pick = s.pick(&v).unwrap();
        assert_eq!(pick.bucket, BucketId(1));
        assert_eq!(pick.scope, BatchScope::AllQueued);
        assert!(pick.share_io);
        // Among uncached queues, longest wins.
        let v = view(vec![snap(0, 100, 10, false), snap(1, 900, 10, false)], 20);
        assert_eq!(s.pick(&v).unwrap().bucket, BucketId(1));
    }

    #[test]
    fn age_based_services_oldest_first() {
        let mut s = LifeRaftScheduler::age_based(MetricParams::paper());
        let v = view(vec![snap(0, 9_000, 15, false), snap(1, 1, 2, false)], 20);
        assert_eq!(s.pick(&v).unwrap().bucket, BucketId(1));
    }

    #[test]
    fn no_candidates_yields_none() {
        let mut s = LifeRaftScheduler::greedy(MetricParams::paper());
        assert!(s.pick(&view(vec![], 1)).is_none());
        let mut mid = LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, 0.5);
        assert!(mid.pick(&view(vec![], 1)).is_none());
    }

    #[test]
    fn ties_break_by_queue_then_bucket() {
        let mut s = LifeRaftScheduler::greedy(MetricParams::paper());
        // Two identical cached buckets (both at max Ut): longer queue wins.
        let v = view(vec![snap(3, 10, 5, true), snap(7, 20, 5, true)], 20);
        assert_eq!(s.pick(&v).unwrap().bucket, BucketId(7));
        // Fully identical: lower bucket ID wins.
        let v = view(vec![snap(9, 10, 5, true), snap(4, 10, 5, true)], 20);
        assert_eq!(s.pick(&v).unwrap().bucket, BucketId(4));
    }

    /// Every α, every aging mode: the indexed pick through a view must equal
    /// the legacy `pick_index` over the materialized slice — the same
    /// contract the cross-scheduler proptests pin at engine scale.
    #[test]
    fn indexed_pick_matches_legacy_pick_index() {
        let candidates: Vec<BucketSnapshot> = (0..57)
            .map(|i| {
                snap(
                    i,
                    (i as u64 * 37) % 900 + 1,
                    (i as u64 * 7_993) % 90,
                    i % 5 == 0,
                )
            })
            .collect();
        let v = view(candidates.clone(), 100);
        for mode in [AgingMode::Normalized, AgingMode::Raw] {
            for alpha in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
                let mut s = LifeRaftScheduler::new(MetricParams::paper(), mode, alpha);
                let legacy = s.pick_index(v.now, &candidates).unwrap();
                let picked = s.pick(&v).unwrap().bucket;
                assert_eq!(picked, candidates[legacy].bucket, "mode {mode:?} α={alpha}");
            }
        }
    }

    /// Near-total ties force the threshold bound to stay open: the blended
    /// pick must fall back to the full scan and still agree with the legacy
    /// path.
    #[test]
    fn blended_pick_survives_degenerate_ties() {
        // All cached, identical queues and ages → every score is equal.
        let candidates: Vec<BucketSnapshot> = (0..33).map(|i| snap(i, 10, 5, true)).collect();
        let v = view(candidates.clone(), 20);
        let mut s = LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, 0.5);
        let legacy = s.pick_index(v.now, &candidates).unwrap();
        assert_eq!(s.pick(&v).unwrap().bucket, candidates[legacy].bucket);
        assert_eq!(s.pick(&v).unwrap().bucket, BucketId(0));
        // All-resident ties resolve by exact re-scoring of the (complete)
        // resident pool — counted as frontier picks, not fallbacks.
        assert_eq!(s.decision_stats().frontier_picks, 2);
        assert_eq!(s.decision_stats().fallback_picks, 0);
        // All-*uncached* ties keep the bound exactly open (bound == best):
        // the scan must give up and stream every candidate once.
        let uncached: Vec<BucketSnapshot> = (0..33).map(|i| snap(i, 10, 5, false)).collect();
        let v = view(uncached.clone(), 20);
        let mut s = LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, 0.5);
        let legacy = s.pick_index(v.now, &uncached).unwrap();
        assert_eq!(s.pick(&v).unwrap().bucket, uncached[legacy].bucket);
        assert_eq!(s.decision_stats().fallback_picks, 1);
        assert_eq!(s.decision_stats().frontier_picks, 0);
    }

    #[test]
    fn frontier_picks_are_counted_when_the_bound_closes() {
        // A sharply skewed candidate set: one candidate dominates both
        // terms, so the threshold bound closes at the first frontier check.
        let candidates: Vec<BucketSnapshot> = (0..64)
            .map(|i| snap(i, if i == 0 { 5_000 } else { 1 }, i as u64, false))
            .collect();
        let v = view(candidates, 100);
        let mut s = LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, 0.5);
        assert_eq!(s.pick(&v).unwrap().bucket, BucketId(0));
        assert_eq!(s.decision_stats().frontier_picks, 1);
        assert_eq!(s.decision_stats().fallback_picks, 0);
        // The α extremes bypass the threshold scan entirely.
        let mut greedy = LifeRaftScheduler::greedy(MetricParams::paper());
        greedy.pick(&v).unwrap();
        assert_eq!(greedy.decision_stats(), DecisionStats::default());
    }

    #[test]
    fn alpha_is_tunable_at_runtime() {
        let mut s = LifeRaftScheduler::greedy(MetricParams::paper());
        assert_eq!(s.alpha(), 0.0);
        s.set_alpha(0.75);
        assert_eq!(s.alpha(), 0.75);
        assert!(s.name().contains("0.75"));
    }

    #[test]
    #[should_panic(expected = "α must be in")]
    fn invalid_alpha_rejected() {
        LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, -0.1);
    }
}
