//! The LifeRaft scheduling policy.

use std::cmp::Ordering;

use liferaft_storage::SimTime;

use crate::metric::{AgingMode, MetricParams, ScorePass};
use crate::scheduler::{BatchScope, BatchSpec, BucketSnapshot, Pick, Scheduler, SchedulerView};

/// LifeRaft at a fixed age bias α.
///
/// Every decision scores all non-empty workload queues with the aged
/// workload throughput metric and services the maximum: "buckets are
/// evaluated greedily in order of decreasing workload throughput"
/// (Section 3.2), with α trading throughput against arrival-order fairness
/// (Section 3.3). The batch always consumes the whole queue and shares I/O
/// through the bucket cache.
#[derive(Debug, Clone)]
pub struct LifeRaftScheduler {
    params: MetricParams,
    mode: AgingMode,
    alpha: f64,
}

impl LifeRaftScheduler {
    /// Creates a scheduler with bias `alpha ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if α is outside `[0, 1]`.
    pub fn new(params: MetricParams, mode: AgingMode, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "α must be in [0,1], got {alpha}"
        );
        LifeRaftScheduler {
            params,
            mode,
            alpha,
        }
    }

    /// The greedy, maximum-throughput configuration (α = 0).
    pub fn greedy(params: MetricParams) -> Self {
        Self::new(params, AgingMode::Normalized, 0.0)
    }

    /// The purely age-driven configuration (α = 1).
    pub fn age_based(params: MetricParams) -> Self {
        Self::new(params, AgingMode::Normalized, 1.0)
    }

    /// Current bias.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Adjusts the bias (the adaptive controller's knob).
    pub fn set_alpha(&mut self, alpha: f64) {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "α must be in [0,1], got {alpha}"
        );
        self.alpha = alpha;
    }

    /// Picks the best candidate index for the given time, or `None` if there
    /// are no candidates. Exposed for metric-level tests and tooling.
    ///
    /// The decision is fully fused and allocation-free: one sweep bounds the
    /// metric terms ([`ScorePass`]), a second scores and arg-maxes. Scores
    /// are compared with [`f64::total_cmp`], so the ordering is total and a
    /// NaN (impossible upstream, but defended against) cannot poison every
    /// subsequent `>` comparison the way partial ordering would; ties are
    /// broken by longer queue (amortize more work per read), then by lower
    /// bucket ID for determinism.
    pub fn pick_index(&self, now: SimTime, candidates: &[BucketSnapshot]) -> Option<usize> {
        let first = candidates.first()?;
        let pass = ScorePass::new(&self.params, self.mode, self.alpha, now, candidates);
        let mut best = 0usize;
        let mut best_score = pass.score(first);
        for (i, c) in candidates.iter().enumerate().skip(1) {
            let score = pass.score(c);
            if better(score, best_score, c, &candidates[best]) {
                best = i;
                best_score = score;
            }
        }
        Some(best)
    }
}

/// The decision ordering: score (total order via `total_cmp`), then longer
/// queue (amortize more work per read), then lower bucket ID.
#[inline]
fn better(score: f64, best_score: f64, c: &BucketSnapshot, best: &BucketSnapshot) -> bool {
    match score.total_cmp(&best_score) {
        Ordering::Greater => true,
        Ordering::Less => false,
        Ordering::Equal => {
            c.queue_len > best.queue_len
                || (c.queue_len == best.queue_len && c.bucket < best.bucket)
        }
    }
}

impl Scheduler for LifeRaftScheduler {
    fn name(&self) -> String {
        format!("LifeRaft(α={:.2})", self.alpha)
    }

    fn pick(&mut self, view: &dyn SchedulerView) -> Option<Pick> {
        let candidates = view.candidates();
        let idx = self.pick_index(view.now(), candidates)?;
        Some(Pick::of_candidate(
            idx,
            BatchSpec {
                bucket: candidates[idx].bucket,
                scope: BatchScope::AllQueued,
                share_io: true,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FixtureView;
    use liferaft_storage::{BucketId, SimDuration};

    fn snap(bucket: u32, queue_len: u64, enq_s: u64, cached: bool) -> BucketSnapshot {
        BucketSnapshot {
            bucket: BucketId(bucket),
            queue_len,
            oldest_enqueue: SimTime::ZERO + SimDuration::from_secs(enq_s),
            cached,
            bucket_objects: 10_000,
        }
    }

    fn view(candidates: Vec<BucketSnapshot>, now_s: u64) -> FixtureView {
        FixtureView {
            now: SimTime::ZERO + SimDuration::from_secs(now_s),
            candidates,
            oldest_query: None,
            query_buckets: vec![],
        }
    }

    #[test]
    fn greedy_prefers_cached_then_longest_queue() {
        let mut s = LifeRaftScheduler::greedy(MetricParams::paper());
        // Cached small queue beats uncached huge queue at α=0.
        let v = view(vec![snap(0, 5_000, 10, false), snap(1, 10, 10, true)], 20);
        let pick = s.pick(&v).unwrap();
        assert_eq!(pick.candidate, Some(1));
        assert_eq!(pick.spec.bucket, BucketId(1));
        assert_eq!(pick.spec.scope, BatchScope::AllQueued);
        assert!(pick.spec.share_io);
        // Among uncached queues, longest wins.
        let v = view(vec![snap(0, 100, 10, false), snap(1, 900, 10, false)], 20);
        assert_eq!(s.pick(&v).unwrap().spec.bucket, BucketId(1));
    }

    #[test]
    fn age_based_services_oldest_first() {
        let mut s = LifeRaftScheduler::age_based(MetricParams::paper());
        let v = view(vec![snap(0, 9_000, 15, false), snap(1, 1, 2, false)], 20);
        assert_eq!(s.pick(&v).unwrap().spec.bucket, BucketId(1));
    }

    #[test]
    fn no_candidates_yields_none() {
        let mut s = LifeRaftScheduler::greedy(MetricParams::paper());
        assert!(s.pick(&view(vec![], 1)).is_none());
    }

    #[test]
    fn ties_break_by_queue_then_bucket() {
        let mut s = LifeRaftScheduler::greedy(MetricParams::paper());
        // Two identical cached buckets (both at max Ut): longer queue wins.
        let v = view(vec![snap(3, 10, 5, true), snap(7, 20, 5, true)], 20);
        assert_eq!(s.pick(&v).unwrap().spec.bucket, BucketId(7));
        // Fully identical: lower bucket ID wins.
        let v = view(vec![snap(9, 10, 5, true), snap(4, 10, 5, true)], 20);
        assert_eq!(s.pick(&v).unwrap().spec.bucket, BucketId(4));
    }

    #[test]
    fn alpha_is_tunable_at_runtime() {
        let mut s = LifeRaftScheduler::greedy(MetricParams::paper());
        assert_eq!(s.alpha(), 0.0);
        s.set_alpha(0.75);
        assert_eq!(s.alpha(), 0.75);
        assert!(s.name().contains("0.75"));
    }

    #[test]
    #[should_panic(expected = "α must be in")]
    fn invalid_alpha_rejected() {
        LifeRaftScheduler::new(MetricParams::paper(), AgingMode::Normalized, -0.1);
    }
}
