//! The LifeRaft data-driven batch scheduler.
//!
//! This crate is the paper's primary contribution: a query scheduler that
//! "relaxes in-order scheduling to achieve large improvements in query
//! throughput […] by exploiting contention between queries for shared data"
//! (Section 1), balanced against starvation with an aging term inspired by
//! VSCAN(R)-style disk-head scheduling.
//!
//! # The pieces
//!
//! - [`metric`] — Eq. 1's workload throughput `Ut(i) = W / (Tb·φ(i) + Tm·W)`
//!   and Eq. 2's aged metric `Ua(i) = Ut(i)·(1−α) + A(i)·α`.
//! - [`scheduler`] — the [`Scheduler`] trait: given a view of the
//!   per-bucket workload queues, produce the next [`BatchSpec`] to execute.
//! - [`liferaft`] — the LifeRaft policy at any fixed bias α ∈ [0, 1].
//! - [`noshare`] — the NoShare baseline: queries evaluated independently in
//!   arrival order with no I/O sharing (Section 5).
//! - [`round_robin`] — the RR baseline: buckets serviced in HTM-ID order.
//! - [`adaptive`] — workload-adaptive α selection from offline trade-off
//!   curves and a tolerance threshold (Section 4, Figure 4).
//! - [`starvation`] — wait-time monitoring used to quantify starvation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod liferaft;
pub mod metric;
pub mod noshare;
pub mod round_robin;
pub mod scheduler;
pub mod starvation;

pub use adaptive::{
    AdaptiveScheduler, AlphaController, SaturationEstimator, TradeoffCurve, TradeoffTable,
};
pub use liferaft::LifeRaftScheduler;
pub use metric::{AgingMode, MetricParams};
pub use noshare::NoShareScheduler;
pub use round_robin::RoundRobinScheduler;
pub use scheduler::{
    BatchScope, BatchSpec, BucketSnapshot, DecisionStats, IndexedSchedulerView, Lens, Scheduler,
    SchedulerView,
};
pub use starvation::StarvationMonitor;
